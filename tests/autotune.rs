//! Autotuner acceptance tests (DESIGN.md §4j).
//!
//! Two contracts:
//!
//! 1. **Hostile-input hardening** — `tune-cache.json` is an on-disk
//!    artifact that survives reboots, partial writes, and hand edits,
//!    so `TuneCache::from_json` must treat every byte as adversarial:
//!    truncations, bit-flips, forged headers, and out-of-range knobs
//!    parse to errors, never panics, exactly like the checkpoint
//!    codecs in `tests/resilience.rs`.
//! 2. **Determinism** — the tuner is a launch-knob selector with no
//!    physics surface. With exploration disabled and the cache pinning
//!    the paper's hand-picked winners, a tuned run must be bit-identical
//!    to the untuned hand-picked run.

use crk_hacc::core::{DeviceConfig, SimConfig, Simulation};
use crk_hacc::kernels::tuning::{
    arch_digest, hand_picked_choice, kernel_digest, tuned_timers, TunedSelector,
};
use crk_hacc::kernels::Variant;
use crk_hacc::sycl::{GpuArch, GrfMode, Lang, LaunchBounds};
use crk_hacc::tune::{SizeBand, TuneCache, TuneChoice, TuneError, TuneKey, SCHEMA_VERSION};
use proptest::prelude::*;

/// A populated cache in canonical form: one winner per tuned timer,
/// alternating variants/knobs so the serializer's branches (large GRF,
/// capped bounds) all appear in the bytes the corruption tests mangle.
fn sample_cache() -> TuneCache {
    let arch = GpuArch::frontier();
    let mut cache = TuneCache::new(arch_digest(&arch), kernel_digest());
    let band = SizeBand::of(512);
    for (i, timer) in tuned_timers().into_iter().enumerate() {
        let choice = if i % 2 == 0 {
            hand_picked_choice(&arch, Variant::Select)
        } else {
            TuneChoice {
                variant: "broadcast".to_string(),
                sg_size: 64,
                wg_size: 256,
                grf: GrfMode::Default,
                bounds: LaunchBounds::Capped(96),
            }
        };
        cache.record(
            &TuneKey::new(timer, arch.id, band),
            &choice,
            1e-6 * (i + 1) as f64,
        );
    }
    cache
}

/// A syntactically valid cache file with the given header fields and
/// entries object body — the forgery template for the header tests.
fn forged(schema: &str, arch_digest: &str, kernel_digest: &str, entries: &str) -> String {
    format!(
        "{{ \"schema_version\": {schema}, \"arch_digest\": \"{arch_digest}\", \
         \"kernel_digest\": \"{kernel_digest}\", \"entries\": {{{entries}}} }}"
    )
}

/// An entry body that passes every knob range check.
const GOOD_ENTRY: &str = "\"variant\": \"select\", \"sg_size\": 64, \"wg_size\": 128, \
     \"grf\": \"default\", \"bounds\": \"default\", \"modeled_seconds\": 1e-4, \"trials\": 3";

#[test]
fn canonical_json_round_trips_byte_stable() {
    let cache = sample_cache();
    let text = cache.to_json();
    let reparsed = TuneCache::from_json(&text).expect("canonical form parses");
    assert_eq!(reparsed, cache, "round trip preserves every entry");
    assert_eq!(reparsed.to_json(), text, "canonical form is byte-stable");
}

#[test]
fn oversized_files_and_entry_sets_are_rejected() {
    let blob = " ".repeat(9 * 1024 * 1024);
    assert!(matches!(
        TuneCache::from_json(&blob),
        Err(TuneError::Parse(_))
    ));
    // One entry over the alloc cap: rejected before any key parsing.
    let mut entries = String::new();
    for i in 0..=crk_hacc::tune::MAX_ENTRIES {
        if i > 0 {
            entries.push(',');
        }
        entries.push_str(&format!("\"k{i}@pvc@small\": {{ {GOOD_ENTRY} }}"));
    }
    let text = forged("1", "0123456789abcdef", "0123456789abcdef", &entries);
    assert!(matches!(
        TuneCache::from_json(&text),
        Err(TuneError::Parse(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random truncations of a valid cache file error out — a partial
    /// write can never parse as a smaller-but-valid cache.
    #[test]
    fn truncated_cache_files_error_and_never_panic(frac in 0.0f64..1.0) {
        let text = sample_cache().to_json();
        let cut = (text.len() as f64 * frac) as usize;
        let result = TuneCache::from_json(&text[..cut]);
        prop_assert!(result.is_err(), "prefix of {cut} bytes parsed");
    }

    /// Single-bit corruption anywhere in the file either still parses
    /// (a digit nudged to another digit) or errors — never panics, and
    /// whatever parses re-serializes cleanly.
    #[test]
    fn bit_flipped_cache_files_never_panic(byte_frac in 0.0f64..1.0, bit in 0usize..8) {
        let mut raw = sample_cache().to_json().into_bytes();
        let idx = ((raw.len() as f64 * byte_frac) as usize).min(raw.len() - 1);
        raw[idx] ^= 1 << bit;
        // from_json takes &str; a flip that breaks UTF-8 is rejected by
        // the read layer before the parser ever sees it.
        if let Ok(text) = String::from_utf8(raw) {
            if let Ok(cache) = TuneCache::from_json(&text) {
                let _ = cache.to_json();
            }
        }
    }

    /// Forged schema versions are rejected and echoed back in the error.
    #[test]
    fn hostile_schema_versions_are_rejected(schema in 2u64..u64::MAX) {
        let text = forged(&schema.to_string(), "0123456789abcdef", "0123456789abcdef", "");
        prop_assert_eq!(
            TuneCache::from_json(&text),
            Err(TuneError::Schema { found: Some(schema) })
        );
    }

    /// Digest headers parse only as exactly 16 lowercase hex digits;
    /// every other length or charset errors.
    #[test]
    fn hostile_digest_headers_never_panic(digest in "[0-9a-fxz]{0,24}") {
        let text = forged(&SCHEMA_VERSION.to_string(), &digest, "0123456789abcdef", "");
        let valid = digest.len() == 16 && digest.chars().all(|c| c.is_ascii_hexdigit());
        prop_assert_eq!(TuneCache::from_json(&text).is_ok(), valid, "digest {:?}", digest);
    }

    /// Hostile entry keys parse only when they decode as a well-formed
    /// `kernel@arch@band` triple; junk arity, charset, or band errors.
    #[test]
    fn hostile_entry_keys_never_panic(key in "[a-zA-Z0-9@._ ]{1,32}") {
        let entries = format!("\"{key}\": {{ {GOOD_ENTRY} }}");
        let text = forged(&SCHEMA_VERSION.to_string(), "0123456789abcdef", "0123456789abcdef", &entries);
        let valid = TuneKey::decode(&key).is_some();
        prop_assert_eq!(TuneCache::from_json(&text).is_ok(), valid, "key {:?}", key);
    }

    /// Out-of-range launch knobs are range-checked, not trusted: an
    /// entry parses only when every knob passes the same bounds the
    /// recorder enforces.
    #[test]
    fn hostile_knob_values_never_panic(sg in any::<u64>(), wg in any::<u64>(), trials in any::<u64>()) {
        let entries = format!(
            "\"upGeo@mi250x@small\": {{ \"variant\": \"select\", \"sg_size\": {sg}, \
             \"wg_size\": {wg}, \"grf\": \"default\", \"bounds\": \"default\", \
             \"modeled_seconds\": 1e-4, \"trials\": {trials} }}"
        );
        let text = forged(&SCHEMA_VERSION.to_string(), "0123456789abcdef", "0123456789abcdef", &entries);
        let valid = (1..=1024).contains(&sg)
            && (1..=1024).contains(&wg)
            && wg.is_multiple_of(sg)
            && (1..=1_000_000_000_000_000).contains(&trials);
        prop_assert_eq!(
            TuneCache::from_json(&text).is_ok(),
            valid,
            "sg {} wg {} trials {}", sg, wg, trials
        );
    }
}

// ---------------------------------------------------------------------
// Determinism: tuning with exploration off is bit-identical to the
// hand-picked table when the cache pins the same winners.
// ---------------------------------------------------------------------

/// The untuned reference build: Frontier with the paper's hand-picked
/// Select knobs (sub-group 64, standard GRF) fixed in the device config.
fn build_hand_picked() -> Simulation {
    let config = SimConfig::smoke();
    let device = DeviceConfig {
        lang: Lang::Sycl,
        fast_math: None,
        variant: Variant::Select,
        sg_size: Some(64),
        grf: GrfMode::Default,
    };
    let mut sim = Simulation::new(config, device, GpuArch::frontier());
    sim.set_deterministic();
    sim
}

#[test]
fn epsilon_zero_tuning_on_pinned_winners_is_bit_identical_to_hand_picked() {
    let arch = GpuArch::frontier();
    let mut reference = build_hand_picked();
    let mut tuned = build_hand_picked();

    // Pin every timer's cached winner to the hand-picked choice, with a
    // modeled time small enough that no observed estimate can replace
    // it mid-run (the cache only swaps winners on strict improvement).
    let n = tuned.n_particles();
    let mut cache = TuneCache::new(arch_digest(&arch), kernel_digest());
    let pinned = hand_picked_choice(&arch, Variant::Select);
    for timer in tuned_timers() {
        cache.record(
            &TuneKey::new(timer, arch.id, SizeBand::of(n)),
            &pinned,
            1e-30,
        );
    }
    tuned.set_tuning(TunedSelector::new(&arch, n, cache, 0.0, false));
    assert!(tuned.tuning_enabled());
    assert!(!reference.tuning_enabled());

    // Both smoke-config PM steps, each with tuned sub-cycle launches.
    for _ in 0..2 {
        reference.step();
        tuned.step();
    }
    assert_eq!(reference.pos, tuned.pos, "positions must match bitwise");
    assert_eq!(reference.mom, tuned.mom, "momenta must match bitwise");
    assert_eq!(reference.u_int, tuned.u_int, "energies must match bitwise");
    assert_eq!(
        reference.state_digest(),
        tuned.state_digest(),
        "tuned and hand-picked trajectories must share one digest"
    );

    // The run fed estimates back, but the pinned winners must survive:
    // observation bumps trial counts, never the choice.
    let selector = tuned.take_tuning().expect("tuner still attached");
    for timer in tuned_timers() {
        let key = TuneKey::new(timer, arch.id, SizeBand::of(n));
        let entry = selector.cache().lookup(&key).expect("winner survives");
        assert_eq!(entry.choice, pinned, "{timer} winner moved during the run");
        assert!(entry.trials >= 1);
    }
}
