//! Reproducibility: with deterministic launches, two simulations built
//! from the same configuration and seed must produce bitwise-identical
//! trajectories; different seeds must not.

use crk_hacc::core::{DeviceConfig, SimConfig, Simulation};
use crk_hacc::kernels::Variant;
use crk_hacc::sycl::{GpuArch, GrfMode, Lang};

fn build(seed: u64) -> Simulation {
    let mut config = SimConfig::smoke();
    config.seed = seed;
    let device = DeviceConfig {
        lang: Lang::Sycl,
        fast_math: None,
        variant: Variant::Select,
        sg_size: Some(32),
        grf: GrfMode::Default,
    };
    let mut sim = Simulation::new(config, device, GpuArch::polaris());
    sim.set_deterministic();
    sim
}

#[test]
fn same_seed_is_bitwise_reproducible() {
    let mut a = build(1234);
    let mut b = build(1234);
    a.step();
    b.step();
    assert_eq!(a.pos, b.pos, "positions must match bitwise");
    assert_eq!(a.mom, b.mom, "momenta must match bitwise");
    assert_eq!(a.u_int, b.u_int, "internal energies must match bitwise");
}

#[test]
fn different_seeds_diverge() {
    let mut a = build(1);
    let mut b = build(2);
    a.step();
    b.step();
    assert_ne!(a.pos, b.pos, "different realizations must differ");
}

#[test]
fn initial_conditions_are_seed_deterministic() {
    let a = build(777);
    let b = build(777);
    assert_eq!(a.pos, b.pos);
    assert_eq!(a.mom, b.mom);
}
