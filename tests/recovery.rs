//! End-to-end tests of the fault-tolerance stack: exact-restart
//! determinism of the full-state checkpoint, recovery of a
//! fault-injected run through retry/fallback/rollback, and the
//! zero-rate bit-identity guarantee (an attached injector with all
//! rates zero must change nothing).

use crk_hacc::core::{
    DeviceConfig, FullCheckpoint, RecoveryPolicy, SimConfig, Simulation, Species,
};
use crk_hacc::kernels::Variant;
use crk_hacc::sycl::{FaultConfig, GpuArch, GrfMode, Lang};
use crk_hacc::telemetry::counter_total;

fn smoke_sim() -> Simulation {
    let device = DeviceConfig {
        lang: Lang::Sycl,
        fast_math: None,
        variant: Variant::Select,
        sg_size: Some(32),
        grf: GrfMode::Default,
    };
    let mut sim = Simulation::new(SimConfig::smoke(), device, GpuArch::frontier());
    // Serial launches fix the atomic accumulation order, making whole
    // trajectories bit-reproducible.
    sim.set_deterministic();
    sim
}

fn assert_states_bit_identical(a: &Simulation, b: &Simulation) {
    assert_eq!(a.a.to_bits(), b.a.to_bits(), "scale factor");
    assert_eq!(a.step_count, b.step_count, "step count");
    for i in 0..a.n_particles() {
        for c in 0..3 {
            assert_eq!(
                a.pos[i][c].to_bits(),
                b.pos[i][c].to_bits(),
                "pos[{i}][{c}]"
            );
            assert_eq!(
                a.mom[i][c].to_bits(),
                b.mom[i][c].to_bits(),
                "mom[{i}][{c}]"
            );
        }
        assert_eq!(a.u_int[i].to_bits(), b.u_int[i].to_bits(), "u_int[{i}]");
        assert_eq!(a.h[i].to_bits(), b.h[i].to_bits(), "h[{i}]");
        assert_eq!(
            a.star_mass[i].to_bits(),
            b.star_mass[i].to_bits(),
            "star_mass[{i}]"
        );
    }
}

/// Run K steps, checkpoint, run K more; separately restore the
/// checkpoint into a fresh simulation and run K — the final states
/// must match bit for bit (through a serialization round trip).
#[test]
fn checkpoint_restart_is_bit_identical() {
    let mut original = smoke_sim();
    original.step();
    let snapshot = FullCheckpoint::capture(&original);
    // Serialize → deserialize: the restart must survive the disk format.
    let snapshot = FullCheckpoint::from_bytes(snapshot.to_bytes()).unwrap();
    original.step();

    let mut restarted = smoke_sim();
    snapshot.restore_into(&mut restarted).unwrap();
    assert_eq!(restarted.step_count, 1);
    restarted.step();

    assert_states_bit_identical(&original, &restarted);
}

/// A fault-injected run must complete through retry/fallback/rollback,
/// conserve mass exactly, and emit telemetry counters that reconcile
/// with the injector's own fault log.
#[test]
fn faulty_run_recovers_and_reconciles() {
    let mut sim = smoke_sim();
    let mass0: f64 = sim.mass.iter().sum();
    sim.enable_fault_injection(FaultConfig {
        seed: 7,
        transient_rate: 0.02,
        corrupt_rate: 0.02,
        persistent_variants: vec![Variant::Select.label().to_string()],
        ..Default::default()
    });
    let summary = sim
        .try_run_guarded(&RecoveryPolicy::default())
        .expect("the fault drill must be recoverable");
    assert_eq!(summary.steps, sim.config.n_steps);

    // Mass conservation is exact, not approximate.
    let mass: f64 = sim.mass.iter().sum();
    assert_eq!(mass.to_bits(), mass0.to_bits());

    // Every fault the injector recorded appears exactly once in the
    // telemetry counter, and the drill actually exercised the stack.
    let events = sim.telemetry.events();
    let injected = counter_total(&events, "faults.injected");
    let logged = sim.fault_injector().unwrap().log().len() as f64;
    assert_eq!(injected, logged, "telemetry vs injector log");
    assert!(injected > 0.0, "the drill must inject something");
    assert!(
        counter_total(&events, "launch.fallbacks") > 0.0,
        "the blocked variant must force fallbacks"
    );

    // The final state passes the same audit the recovery loop applies.
    let guard = crk_hacc::core::StepGuard::new(&smoke_sim());
    guard.check(&sim).expect("recovered state must be healthy");
    let n_baryons = sim
        .species
        .iter()
        .filter(|&&s| s == Species::Baryon)
        .count();
    assert!(n_baryons > 0);
}

/// Attaching an injector with every rate zero must leave the physics
/// bit-identical to a run without one.
#[test]
fn zero_rate_injection_is_bit_identical_to_plain_run() {
    let mut plain = smoke_sim();
    plain.run();

    let mut injected = smoke_sim();
    injected.enable_fault_injection(FaultConfig::default());
    injected.run();

    assert_states_bit_identical(&plain, &injected);
    assert!(injected.fault_injector().unwrap().log().is_empty());
    let events = injected.telemetry.events();
    assert_eq!(counter_total(&events, "faults.injected"), 0.0);
    assert_eq!(counter_total(&events, "launch.retries"), 0.0);
    assert_eq!(events.len(), plain.telemetry.events().len());
}
