//! Decomposition- and thread-invariance of the multi-rank engine.
//!
//! The acceptance contract for the distributed engine is twofold:
//!
//! 1. **Decomposition invariance** — an N-rank run lands on exactly the
//!    same per-particle bits as a single-rank run of the same problem.
//!    Ghost-zone halo exchange, particle migration, and the split
//!    interior/boundary force passes must be a pure reorganization of
//!    the arithmetic, not a perturbation of it.
//! 2. **Thread invariance** — the 8-rank run is bit-identical at any
//!    worker-thread count. Ranks step concurrently on the shared pool,
//!    but messages are claimed at the serial exchange barrier in
//!    ascending (source, sequence) order, so the schedule cannot leak
//!    into the physics — or even into the comm counters.

use crk_hacc::core::{MultiRankProblem, MultiRankSim};
use crk_hacc::sycl::{FaultConfig, GpuArch};
use crk_hacc::telemetry::{counter_total, Recorder};

/// Worker-thread counts the acceptance criterion names.
const THREADS: [usize; 3] = [1, 4, 8];
const STEPS: u64 = 3;

fn problem() -> MultiRankProblem {
    MultiRankProblem::small(512, 0xACCE55)
}

/// Runs `ranks` ranks under a pinned worker-thread count and returns
/// the final digest plus the transport's aggregate statistics.
fn run_with_threads(
    ranks: usize,
    threads: usize,
    faults: Option<FaultConfig>,
) -> (u64, crk_hacc::comm::TransportStats) {
    run_mode(ranks, threads, faults, false)
}

/// Same, with the step mode explicit: `async_on` selects the task-graph
/// executor over the barriered reference path.
fn run_mode(
    ranks: usize,
    threads: usize,
    faults: Option<FaultConfig>,
    async_on: bool,
) -> (u64, crk_hacc::comm::TransportStats) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
        sim.set_async(async_on);
        if let Some(config) = faults {
            sim.enable_fault_injection(config);
        }
        sim.run(STEPS).expect("run must complete");
        (sim.state_digest(), sim.comm_stats())
    })
}

#[test]
fn eight_ranks_reproduce_single_rank_bits() {
    let mut single = MultiRankSim::new(1, GpuArch::frontier(), problem());
    single.run(STEPS).unwrap();
    let reference = single.state_digest();

    let mut eight = MultiRankSim::new(8, GpuArch::frontier(), problem());
    eight.run(STEPS).unwrap();
    assert_eq!(
        eight.state_digest(),
        reference,
        "8-rank digest must match the 1-rank digest bit-for-bit"
    );
    assert_eq!(eight.n_particles(), single.n_particles());
}

#[test]
fn eight_ranks_are_bit_identical_across_thread_counts() {
    let (ref_digest, ref_stats) = run_with_threads(8, THREADS[0], None);
    for &threads in &THREADS[1..] {
        let (digest, stats) = run_with_threads(8, threads, None);
        assert_eq!(
            digest, ref_digest,
            "{threads} worker threads diverged from the 1-thread bits"
        );
        // Not just the physics: the comm layer itself must be schedule
        // independent — same message count, same wire bytes, same
        // modeled link seconds.
        assert_eq!(
            stats, ref_stats,
            "{threads} worker threads changed the transport statistics"
        );
    }
    assert!(ref_stats.bytes > 0, "8 ranks must exchange halo traffic");
    assert!(ref_stats.exchanges >= 2 * STEPS, "migrate + halo per step");
}

#[test]
fn every_rank_count_matches_the_single_rank_digest() {
    let mut single = MultiRankSim::new(1, GpuArch::frontier(), problem());
    single.run(STEPS).unwrap();
    let reference = single.state_digest();
    for ranks in [2, 4, 8] {
        let (digest, stats) = run_with_threads(ranks, 4, None);
        assert_eq!(digest, reference, "{ranks} ranks diverged from 1 rank");
        assert!(stats.bytes > 0);
    }
}

#[test]
fn link_faults_retry_without_perturbing_the_bits() {
    let (clean, _) = run_with_threads(8, 4, None);
    let faulty_config = FaultConfig {
        seed: 0xFA_17,
        transient_rate: 0.05,
        ..Default::default()
    };
    for &threads in &THREADS {
        let (digest, stats) = run_with_threads(8, threads, Some(faulty_config.clone()));
        assert_eq!(
            digest, clean,
            "retried link faults must not change the physics ({threads} threads)"
        );
        assert!(stats.retries > 0, "the fault schedule must actually fire");
    }
}

/// The async×barriered axis: the task-graph step — per-rank exchanges
/// flushed independently, interior force overlapped with the halo
/// window — must land on the barriered reference bits at every rank
/// count, worker-thread count, and fault schedule. Transport message
/// *counts* legitimately differ (per-source flushes vs one barriered
/// exchange), so only digests and wire bytes are compared across
/// modes; full stats equality is asserted within the async mode.
#[test]
fn async_mode_reproduces_barriered_bits_at_every_width() {
    let faults = FaultConfig {
        seed: 0xFA_17,
        transient_rate: 0.05,
        ..Default::default()
    };
    for fault_config in [None, Some(faults)] {
        for ranks in [1, 8] {
            let (reference, barriered_stats) =
                run_mode(ranks, THREADS[0], fault_config.clone(), false);
            let (ref_async_digest, ref_async_stats) =
                run_mode(ranks, THREADS[0], fault_config.clone(), true);
            assert_eq!(
                ref_async_digest,
                reference,
                "async diverged from barriered at {ranks} ranks (faults={})",
                fault_config.is_some()
            );
            assert_eq!(
                ref_async_stats.bytes, barriered_stats.bytes,
                "async moved different wire bytes at {ranks} ranks"
            );
            for &threads in &THREADS[1..] {
                let (digest, stats) = run_mode(ranks, threads, fault_config.clone(), true);
                assert_eq!(
                    digest, reference,
                    "async at {threads} threads diverged ({ranks} ranks)"
                );
                assert_eq!(
                    stats, ref_async_stats,
                    "async transport stats are schedule dependent at {threads} threads"
                );
            }
        }
    }
}

/// Under async the per-source flushes multiply the exchange count —
/// one per (phase, source) instead of one per phase — without adding
/// messages or bytes.
#[test]
fn async_flushes_per_source_without_extra_traffic() {
    let (_, barriered) = run_mode(8, 4, None, false);
    let (_, async_stats) = run_mode(8, 4, None, true);
    assert_eq!(async_stats.messages, barriered.messages);
    assert_eq!(async_stats.bytes, barriered.bytes);
    assert_eq!(
        async_stats.exchanges,
        2 * 8 * STEPS,
        "async must flush each of the 8 sources separately, twice a step"
    );
    assert_eq!(barriered.exchanges, 2 * STEPS);
}

#[test]
fn telemetry_counters_are_thread_invariant() {
    let capture = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let recorder = Recorder::new();
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.set_recorder(recorder.clone());
            sim.run(STEPS).unwrap();
            let events = recorder.events();
            (
                counter_total(&events, "comm.bytes_sent"),
                counter_total(&events, "comm.bytes_recv"),
            )
        })
    };
    let reference = capture(THREADS[0]);
    assert!(reference.0 > 0.0, "halo traffic must be counted");
    assert_eq!(reference.0, reference.1, "every byte sent is received");
    for &threads in &THREADS[1..] {
        assert_eq!(capture(threads), reference, "{threads} threads diverged");
    }
}

/// Byte-level telemetry is mode independent: the async step moves the
/// same wire traffic the barriered step does, and its counters are
/// thread invariant.
#[test]
fn async_telemetry_bytes_match_barriered() {
    let capture = |threads: usize, async_on: bool| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let recorder = Recorder::new();
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.set_async(async_on);
            sim.set_recorder(recorder.clone());
            sim.run(STEPS).unwrap();
            let events = recorder.events();
            (
                counter_total(&events, "comm.bytes_sent"),
                counter_total(&events, "comm.bytes_recv"),
            )
        })
    };
    let barriered = capture(4, false);
    assert!(barriered.0 > 0.0);
    for &threads in &THREADS {
        assert_eq!(
            capture(threads, true),
            barriered,
            "async byte counters diverged at {threads} threads"
        );
    }
}
