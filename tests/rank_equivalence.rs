//! Decomposition- and thread-invariance of the multi-rank engine.
//!
//! The acceptance contract for the distributed engine is twofold:
//!
//! 1. **Decomposition invariance** — an N-rank run lands on exactly the
//!    same per-particle bits as a single-rank run of the same problem.
//!    Ghost-zone halo exchange, particle migration, and the split
//!    interior/boundary force passes must be a pure reorganization of
//!    the arithmetic, not a perturbation of it.
//! 2. **Thread invariance** — the 8-rank run is bit-identical at any
//!    worker-thread count. Ranks step concurrently on the shared pool,
//!    but messages are claimed at the serial exchange barrier in
//!    ascending (source, sequence) order, so the schedule cannot leak
//!    into the physics — or even into the comm counters.

use crk_hacc::core::{MultiRankProblem, MultiRankSim};
use crk_hacc::sycl::{FaultConfig, GpuArch};
use crk_hacc::telemetry::{counter_total, Recorder};

/// Worker-thread counts the acceptance criterion names.
const THREADS: [usize; 3] = [1, 4, 8];
const STEPS: u64 = 3;

fn problem() -> MultiRankProblem {
    MultiRankProblem::small(512, 0xACCE55)
}

/// Runs `ranks` ranks under a pinned worker-thread count and returns
/// the final digest plus the transport's aggregate statistics.
fn run_with_threads(
    ranks: usize,
    threads: usize,
    faults: Option<FaultConfig>,
) -> (u64, crk_hacc::comm::TransportStats) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
        if let Some(config) = faults {
            sim.enable_fault_injection(config);
        }
        sim.run(STEPS).expect("run must complete");
        (sim.state_digest(), sim.comm_stats())
    })
}

#[test]
fn eight_ranks_reproduce_single_rank_bits() {
    let mut single = MultiRankSim::new(1, GpuArch::frontier(), problem());
    single.run(STEPS).unwrap();
    let reference = single.state_digest();

    let mut eight = MultiRankSim::new(8, GpuArch::frontier(), problem());
    eight.run(STEPS).unwrap();
    assert_eq!(
        eight.state_digest(),
        reference,
        "8-rank digest must match the 1-rank digest bit-for-bit"
    );
    assert_eq!(eight.n_particles(), single.n_particles());
}

#[test]
fn eight_ranks_are_bit_identical_across_thread_counts() {
    let (ref_digest, ref_stats) = run_with_threads(8, THREADS[0], None);
    for &threads in &THREADS[1..] {
        let (digest, stats) = run_with_threads(8, threads, None);
        assert_eq!(
            digest, ref_digest,
            "{threads} worker threads diverged from the 1-thread bits"
        );
        // Not just the physics: the comm layer itself must be schedule
        // independent — same message count, same wire bytes, same
        // modeled link seconds.
        assert_eq!(
            stats, ref_stats,
            "{threads} worker threads changed the transport statistics"
        );
    }
    assert!(ref_stats.bytes > 0, "8 ranks must exchange halo traffic");
    assert!(ref_stats.exchanges >= 2 * STEPS, "migrate + halo per step");
}

#[test]
fn every_rank_count_matches_the_single_rank_digest() {
    let mut single = MultiRankSim::new(1, GpuArch::frontier(), problem());
    single.run(STEPS).unwrap();
    let reference = single.state_digest();
    for ranks in [2, 4, 8] {
        let (digest, stats) = run_with_threads(ranks, 4, None);
        assert_eq!(digest, reference, "{ranks} ranks diverged from 1 rank");
        assert!(stats.bytes > 0);
    }
}

#[test]
fn link_faults_retry_without_perturbing_the_bits() {
    let (clean, _) = run_with_threads(8, 4, None);
    let faulty_config = FaultConfig {
        seed: 0xFA_17,
        transient_rate: 0.05,
        ..Default::default()
    };
    for &threads in &THREADS {
        let (digest, stats) = run_with_threads(8, threads, Some(faulty_config.clone()));
        assert_eq!(
            digest, clean,
            "retried link faults must not change the physics ({threads} threads)"
        );
        assert!(stats.retries > 0, "the fault schedule must actually fire");
    }
}

#[test]
fn telemetry_counters_are_thread_invariant() {
    let capture = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let recorder = Recorder::new();
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.set_recorder(recorder.clone());
            sim.run(STEPS).unwrap();
            let events = recorder.events();
            (
                counter_total(&events, "comm.bytes_sent"),
                counter_total(&events, "comm.bytes_recv"),
            )
        })
    };
    let reference = capture(THREADS[0]);
    assert!(reference.0 > 0.0, "halo traffic must be counted");
    assert_eq!(reference.0, reference.1, "every byte sent is received");
    for &threads in &THREADS[1..] {
        assert_eq!(capture(threads), reference, "{threads} threads diverged");
    }
}
