//! Acceptance tests for the cross-rank analysis plane.
//!
//! Three contracts:
//!
//! 1. **Counter conservation** — every wire byte the transport charges
//!    appears exactly once on each side of the ledger: the
//!    `comm.bytes_sent` and `comm.bytes_recv` counter totals agree at
//!    every rank count, and both reproduce the transport's own
//!    aggregate statistics.
//! 2. **Span/stats reconciliation** — per-link telemetry (one
//!    `link.<src>-><dst>` span plus α/β-decomposed counters per
//!    message) sums back to the transport's message count and modeled
//!    seconds; nothing is double-charged or dropped.
//! 3. **Overhead budget** — attaching the full telemetry plane to a
//!    512-particle multi-rank step costs less than 5% of host wall
//!    time (the emit path is a plain `Vec` push; everything expensive
//!    happens at analysis time).

use crk_hacc::core::{MultiRankProblem, MultiRankSim};
use crk_hacc::sycl::GpuArch;
use crk_hacc::telemetry::{counter_total, timer_totals, EventKind, Recorder};
use std::time::Instant;

/// Rank counts the conservation contract names.
const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];
const STEPS: u64 = 3;

fn problem() -> MultiRankProblem {
    MultiRankProblem::small(512, 0x0B5E)
}

/// Runs `ranks` ranks with a recorder attached, returning the events
/// and the transport's aggregate statistics.
fn run_instrumented(ranks: usize) -> (Vec<crk_hacc::telemetry::Event>, MultiRankSim) {
    let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
    let rec = Recorder::new();
    sim.set_recorder(rec.clone());
    sim.run(STEPS).expect("fault-free run must complete");
    (rec.events(), sim)
}

#[test]
fn bytes_sent_equals_bytes_recv_at_every_rank_count() {
    for ranks in RANK_COUNTS {
        let (events, sim) = run_instrumented(ranks);
        let sent = counter_total(&events, "comm.bytes_sent");
        let recv = counter_total(&events, "comm.bytes_recv");
        assert_eq!(sent, recv, "{ranks} ranks: byte ledger out of balance");
        assert_eq!(
            sent as u64,
            sim.comm_stats().bytes,
            "{ranks} ranks: counters diverged from transport stats"
        );
        if ranks > 1 {
            assert!(sent > 0.0, "{ranks} ranks must exchange halos");
        } else {
            assert_eq!(sent, 0.0, "1 rank has nobody to talk to");
        }
    }
}

#[test]
fn link_span_totals_reconcile_with_transport_stats() {
    for ranks in RANK_COUNTS {
        let (events, sim) = run_instrumented(ranks);
        let stats = sim.comm_stats();

        // One link span per delivered message, no more, no fewer.
        let link_spans = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.name.starts_with("link."))
            .count() as u64;
        assert_eq!(
            link_spans, stats.messages,
            "{ranks} ranks: link spans must match delivered messages"
        );

        // Modeled seconds: the per-message `comm.link` timers plus the
        // allreduce charges recover the transport's aggregate exactly
        // (up to summation-order rounding).
        let timers = timer_totals(&events);
        let total = |name: &str| {
            timers
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|&(_, s, _)| s)
                .unwrap_or(0.0)
        };
        let recovered = total("comm.link") + total("comm.allreduce");
        assert!(
            (recovered - stats.seconds).abs() <= 1e-9 * stats.seconds.max(1.0),
            "{ranks} ranks: timers recovered {recovered:e}s, stats say {:e}s",
            stats.seconds
        );

        // The α–β decomposition partitions the link timer: latency
        // charges plus serialization charges equal the total wire time.
        let alpha = counter_total(&events, "comm.link.alpha_s");
        let beta = counter_total(&events, "comm.link.beta_s");
        let link_seconds = total("comm.link");
        assert!(
            (alpha + beta - link_seconds).abs() <= 1e-9 * link_seconds.max(1.0),
            "{ranks} ranks: alpha {alpha:e} + beta {beta:e} != link {link_seconds:e}"
        );
        if ranks > 1 {
            let util_events = events
                .iter()
                .filter(|e| e.name == "comm.link.utilization")
                .count() as u64;
            assert_eq!(
                util_events, stats.messages,
                "one utilization sample per message"
            );
            assert!(events
                .iter()
                .filter(|e| e.name == "comm.link.utilization")
                .all(|e| (0.0..=1.0).contains(&e.value)));
        }
    }
}

#[test]
fn telemetry_overhead_stays_under_budget() {
    // Budget: attaching the recorder costs < 5% of a 512-particle
    // step's wall time. A single step is ~1 ms, far too short to time
    // against a 5% budget, so each measurement times a batch of steps;
    // wall clocks on shared CI runners are also noisy, so each side
    // takes the min of several trials (the least-disturbed run) and the
    // whole comparison retries a few times before failing.
    const BATCH: usize = 8;
    let wall = |instrument: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _trial in 0..5 {
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            if instrument {
                sim.set_recorder(Recorder::new());
            }
            sim.step().expect("warm-up step"); // populate ghosts, warm caches
            let t = Instant::now();
            for _ in 0..BATCH {
                sim.step().expect("timed step");
            }
            best = best.min(t.elapsed().as_secs_f64() / BATCH as f64);
        }
        best
    };

    const BUDGET: f64 = 0.05;
    let mut overhead = f64::INFINITY;
    for _attempt in 0..4 {
        let plain = wall(false);
        let instrumented = wall(true);
        overhead = (instrumented - plain) / plain;
        if overhead < BUDGET {
            return;
        }
    }
    panic!(
        "telemetry overhead {:.2}% exceeds the {:.0}% budget in 4 attempts",
        overhead * 100.0,
        BUDGET * 100.0
    );
}
