//! Parallel ≡ serial: the multi-threaded work-group scheduler must be
//! *bit-identical* to the serial reference path — not merely close — for
//! every pair kernel, every communication variant, and every thread
//! count, with and without injected faults. This is the contract that
//! makes thread count a pure speed knob (DESIGN.md, "Deterministic
//! commit ordering").

use crk_hacc::kernels::{
    run_gravity, run_hydro_step, DeviceParticles, GravityParams, HostParticles, TimerReport,
    Variant, WorkLists, ALL_VARIANTS,
};
use crk_hacc::sycl::{
    Device, ExecutionPolicy, FaultConfig, FaultInjector, GpuArch, LaunchConfig, LaunchError,
    MeterPolicy, StatsSource, Toolchain,
};
use crk_hacc::telemetry::Recorder;
use crk_hacc::tree::{InteractionList, RcbTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Thread counts every equivalence check sweeps.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn gas(n_side: usize, box_size: f64, seed: u64) -> HostParticles {
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing = box_size / n_side as f64;
    let mut hp = HostParticles::default();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                let jig = 0.25 * spacing;
                hp.pos.push([
                    (i as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    (j as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    (k as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                ]);
                hp.vel.push([
                    rng.gen_range(-0.3..0.3),
                    rng.gen_range(-0.3..0.3),
                    rng.gen_range(-0.3..0.3),
                ]);
                hp.mass.push(rng.gen_range(0.5..1.5));
                hp.h.push(1.25 * spacing);
                hp.u.push(rng.gen_range(0.5..1.5));
            }
        }
    }
    hp
}

/// Everything observable from one step: the bit image of every device
/// buffer, per-timer instruction histograms, and fault counts.
#[derive(Debug, PartialEq)]
struct StepImage {
    buffers: Vec<(&'static str, Vec<u32>)>,
    counts: Vec<(String, Vec<u64>, u32)>,
    outcome: Result<(), String>,
}

/// Runs one full step (hydro + gravity) of `variant` under `exec` and
/// `meter`, optionally with a seeded fault injector, and captures the
/// image.
fn run_step(
    variant: Variant,
    sg_size: usize,
    hp: &HostParticles,
    box_size: f64,
    exec: ExecutionPolicy,
    faults: Option<FaultConfig>,
    meter: MeterPolicy,
) -> (StepImage, usize) {
    let arch = GpuArch::aurora();
    let tc = if variant.needs_visa() {
        Toolchain::sycl_visa()
    } else {
        Toolchain::sycl()
    };
    let mut device = Device::new(arch.clone(), tc).unwrap();
    let injector = match faults {
        Some(cfg) => {
            let inj = Arc::new(FaultInjector::new(cfg));
            device = device.with_fault_injector(inj.clone());
            Some(inj)
        }
        None => None,
    };
    let cfg = LaunchConfig::defaults_for(&device.arch)
        .with_sg_size(sg_size)
        .with_exec(exec)
        .with_meter(meter);
    let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg_size));
    let cutoff = 2.0 * 1.25 * (box_size / 4.0) + 1e-9;
    let list = InteractionList::build(&tree, box_size, cutoff);
    let work = WorkLists::build(&tree, &list, sg_size);
    let data = DeviceParticles::upload(&hp.permuted(&tree.order));

    let mut reports: Vec<TimerReport> = Vec::new();
    let outcome: Result<(), LaunchError> = run_hydro_step(
        &device,
        &data,
        &work,
        variant,
        box_size as f32,
        cfg,
        &Recorder::new(),
    )
    .and_then(|mut rs| {
        reports.append(&mut rs);
        run_gravity(
            &device,
            &data,
            &work,
            variant,
            box_size as f32,
            GravityParams {
                poly: [1.0, -0.5, 0.1, 0.0, 0.0, 0.0],
                r_cut2: (cutoff * cutoff) as f32,
                soft2: 1e-4,
            },
            cfg,
            &Recorder::new(),
        )
        .map(|r| reports.push(r))
    });

    let image = StepImage {
        buffers: data
            .all_buffers()
            .into_iter()
            .map(|(name, buf)| (name, buf.to_u32_vec()))
            .collect(),
        counts: reports
            .iter()
            .map(|r| {
                (
                    r.timer.clone(),
                    r.report.stats.counts.to_vec(),
                    r.report.injected_faults,
                )
            })
            .collect(),
        outcome: outcome.map_err(|e| e.to_string()),
    };
    let injected = injector.map_or(0, |inj| inj.log().len());
    (image, injected)
}

/// Asserts parallel == serial at every thread count for one setup.
fn assert_equivalent(
    variant: Variant,
    sg_size: usize,
    hp: &HostParticles,
    box_size: f64,
    faults: Option<FaultConfig>,
) {
    let (serial, serial_faults) = run_step(
        variant,
        sg_size,
        hp,
        box_size,
        ExecutionPolicy::Serial,
        faults.clone(),
        MeterPolicy::Full,
    );
    assert!(
        serial.outcome.is_ok() || faults.is_some(),
        "fault-free serial step must succeed: {:?}",
        serial.outcome
    );
    for threads in THREADS {
        let (parallel, parallel_faults) = run_step(
            variant,
            sg_size,
            hp,
            box_size,
            ExecutionPolicy::with_threads(threads),
            faults.clone(),
            MeterPolicy::Full,
        );
        assert_eq!(
            parallel_faults, serial_faults,
            "{variant:?}/sg{sg_size}/{threads}t: fault schedules diverged"
        );
        assert_eq!(
            parallel.outcome, serial.outcome,
            "{variant:?}/sg{sg_size}/{threads}t: outcomes diverged"
        );
        assert_eq!(
            parallel.counts, serial.counts,
            "{variant:?}/sg{sg_size}/{threads}t: instruction histograms diverged"
        );
        for ((name, s), (_, p)) in serial.buffers.iter().zip(&parallel.buffers) {
            assert_eq!(
                s, p,
                "{variant:?}/sg{sg_size}/{threads}t: buffer {name} is not bit-identical"
            );
        }
    }
}

/// All five communication variants, fault-free, at threads 1/2/4/8.
#[test]
fn every_variant_is_bit_identical_at_every_thread_count() {
    let box_size = 4.0;
    let hp = gas(4, box_size, 1234);
    for variant in ALL_VARIANTS {
        assert_equivalent(variant, 16, &hp, box_size, None);
    }
}

/// The large sub-group size exercises a different work-group shape.
#[test]
fn large_subgroups_are_bit_identical_too() {
    let box_size = 4.0;
    let hp = gas(4, box_size, 77);
    assert_equivalent(Variant::Select, 32, &hp, box_size, None);
}

/// With a nonzero fault rate the injector's schedule is claimed on the
/// launcher thread, so retries, corruptions, and final bits all match
/// the serial run at any thread count.
#[test]
fn fault_injection_stays_deterministic_under_parallel_execution() {
    let box_size = 4.0;
    let hp = gas(4, box_size, 4321);
    for (transient, corrupt) in [(0.3, 0.0), (0.0, 0.5), (0.2, 0.2)] {
        assert_equivalent(
            Variant::Select,
            16,
            &hp,
            box_size,
            Some(FaultConfig {
                seed: 99,
                transient_rate: transient,
                corrupt_rate: corrupt,
                ..FaultConfig::default()
            }),
        );
    }
}

/// Asserts the unmetered fast path reproduces the metered reference
/// bits: same buffer images, same outcome, same fault schedule, at every
/// thread count. Instruction histograms are the one permitted
/// difference — fast mode records zeros — and that too is asserted.
fn assert_fast_matches_metered(
    variant: Variant,
    sg_size: usize,
    hp: &HostParticles,
    box_size: f64,
    faults: Option<FaultConfig>,
) {
    let (metered, metered_faults) = run_step(
        variant,
        sg_size,
        hp,
        box_size,
        ExecutionPolicy::Serial,
        faults.clone(),
        MeterPolicy::Full,
    );
    for threads in THREADS {
        let exec = if threads == 1 {
            ExecutionPolicy::Serial
        } else {
            ExecutionPolicy::with_threads(threads)
        };
        let (fast, fast_faults) = run_step(
            variant,
            sg_size,
            hp,
            box_size,
            exec,
            faults.clone(),
            MeterPolicy::Off,
        );
        assert_eq!(
            fast_faults, metered_faults,
            "{variant:?}/sg{sg_size}/{threads}t fast: fault schedules diverged"
        );
        assert_eq!(
            fast.outcome, metered.outcome,
            "{variant:?}/sg{sg_size}/{threads}t fast: outcomes diverged"
        );
        for ((name, m), (_, f)) in metered.buffers.iter().zip(&fast.buffers) {
            assert_eq!(
                m, f,
                "{variant:?}/sg{sg_size}/{threads}t: fast-mode buffer {name} is not bit-identical"
            );
        }
        // Same launches in the same order, same injected-fault counts —
        // but zeroed instruction histograms (nothing was metered).
        assert_eq!(fast.counts.len(), metered.counts.len());
        for ((mt, mc, mf), (ft, fc, ff)) in metered.counts.iter().zip(&fast.counts) {
            assert_eq!(mt, ft, "launch order diverged");
            assert_eq!(mf, ff, "{mt}: per-launch fault counts diverged");
            assert!(
                fc.iter().all(|&c| c == 0),
                "{ft}: fast mode metered something"
            );
            assert!(
                faults.is_some() || mc.iter().any(|&c| c > 0),
                "{mt}: metered reference recorded nothing"
            );
        }
    }
}

/// The tentpole contract: fast mode is a pure speed knob. Every
/// communication variant must produce the metered reference bits at
/// every thread count with metering off.
#[test]
fn fast_mode_is_bit_identical_for_every_variant_and_thread_count() {
    let box_size = 4.0;
    let hp = gas(4, box_size, 1234);
    for variant in ALL_VARIANTS {
        assert_fast_matches_metered(variant, 16, &hp, box_size, None);
    }
}

/// Fault injection is orthogonal to metering: the injector's schedule is
/// claimed per launch, so turning metering off must not shift which
/// launches fault, how often they retry, or the recovered bits.
#[test]
fn fast_mode_preserves_fault_schedules() {
    let box_size = 4.0;
    let hp = gas(4, box_size, 4321);
    for (transient, corrupt) in [(0.3, 0.0), (0.2, 0.2)] {
        assert_fast_matches_metered(
            Variant::Select,
            16,
            &hp,
            box_size,
            Some(FaultConfig {
                seed: 99,
                transient_rate: transient,
                corrupt_rate: corrupt,
                ..FaultConfig::default()
            }),
        );
    }
}

/// Sampled metering: physics bits identical to the fully-metered run,
/// and the extrapolated instruction totals conserve the measured budget
/// to within the documented steady-state error.
#[test]
fn sampled_metering_preserves_bits_and_conserves_counts() {
    use crk_hacc::sycl::SAMPLE_PERIOD;
    let box_size = 4.0;
    let hp = gas(4, box_size, 555);
    let variant = Variant::Select;
    let sg_size = 16;
    let steps = SAMPLE_PERIOD as usize + 2;

    // One device per policy; repeated steps advance the sampler ordinal
    // past the sampling period so later launches are extrapolated.
    let run = |meter: MeterPolicy| {
        let device = Device::new(GpuArch::aurora(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(sg_size)
            .with_meter(meter);
        let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg_size));
        let cutoff = 2.0 * 1.25 * (box_size / 4.0) + 1e-9;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let work = WorkLists::build(&tree, &list, sg_size);
        let data = DeviceParticles::upload(&hp.permuted(&tree.order));
        let mut per_step: Vec<(u64, StatsSource)> = Vec::new();
        for _ in 0..steps {
            let reports = run_hydro_step(
                &device,
                &data,
                &work,
                variant,
                box_size as f32,
                cfg,
                &Recorder::new(),
            )
            .unwrap();
            let total: u64 = reports
                .iter()
                .map(|r| r.report.stats.counts.iter().sum::<u64>())
                .sum();
            per_step.push((total, reports[0].report.stats_source));
        }
        let image: Vec<Vec<u32>> = data
            .all_buffers()
            .into_iter()
            .map(|(_, buf)| buf.to_u32_vec())
            .collect();
        (per_step, image)
    };

    let (full, full_image) = run(MeterPolicy::Full);
    let (sampled, sampled_image) = run(MeterPolicy::Sampled);
    assert_eq!(
        full_image, sampled_image,
        "sampled metering changed the physics bits"
    );
    assert!(
        sampled
            .iter()
            .any(|&(_, src)| src == StatsSource::Extrapolated),
        "no launch was extrapolated: {sampled:?}"
    );
    for (i, (&(f, _), &(s, src))) in full.iter().zip(&sampled).enumerate() {
        if src == StatsSource::Unmetered {
            continue; // warm-up before the first sample completes
        }
        let rel = (s as f64 - f as f64).abs() / f as f64;
        assert!(
            rel <= crk_hacc::sycl::SAMPLE_STEADY_ERROR,
            "step {i} ({src:?}): extrapolated total {s} vs measured {f} (rel {rel:.4})"
        );
    }
}

/// The async×barriered axis at the full-simulation level: the task-
/// graph step (host PM solve overlapped with the first gravity
/// offload) must land on the barriered reference bits for every
/// combination of worker-thread count, metering policy, and fault
/// schedule — and claim the identical fault schedule, since the device
/// sees the same launches in the same order either way.
mod async_axis {
    use crk_hacc::core::{DeviceConfig, SimConfig, Simulation};
    use crk_hacc::kernels::Variant;
    use crk_hacc::sycl::{ExecutionPolicy, FaultConfig, GpuArch, GrfMode, Lang, MeterPolicy};

    const STEPS: usize = 2;

    fn build() -> Simulation {
        let mut config = SimConfig::smoke();
        config.seed = 0xA51C;
        let device = DeviceConfig {
            lang: Lang::Sycl,
            fast_math: None,
            variant: Variant::Select,
            sg_size: Some(32),
            grf: GrfMode::Default,
        };
        Simulation::new(config, device, GpuArch::polaris())
    }

    /// Digest and fault-log length after `STEPS` steps of one config.
    fn run(
        async_on: bool,
        threads: usize,
        meter: MeterPolicy,
        faults: Option<FaultConfig>,
    ) -> (u64, usize) {
        let mut sim = build();
        sim.set_async(async_on);
        sim.set_execution_policy(if threads == 1 {
            ExecutionPolicy::Serial
        } else {
            ExecutionPolicy::with_threads(threads)
        });
        sim.set_meter_policy(meter);
        if let Some(config) = faults {
            sim.enable_fault_injection(config);
        }
        for _ in 0..STEPS {
            sim.step();
        }
        let log_len = sim.fault_injector().map_or(0, |inj| inj.log().len());
        (sim.state_digest(), log_len)
    }

    #[test]
    fn async_step_is_bit_identical_across_threads_meters_and_faults() {
        let faults = FaultConfig {
            seed: 0xFA_57,
            transient_rate: 0.2,
            ..FaultConfig::default()
        };
        for fault_config in [None, Some(faults)] {
            let (reference, ref_log) = run(false, 1, MeterPolicy::Full, fault_config.clone());
            for threads in super::THREADS {
                for meter in [MeterPolicy::Full, MeterPolicy::Off] {
                    let (digest, log_len) = run(true, threads, meter, fault_config.clone());
                    assert_eq!(
                        digest,
                        reference,
                        "async diverged from barriered at {threads}t/{meter:?}/faults={}",
                        fault_config.is_some()
                    );
                    assert_eq!(
                        log_len, ref_log,
                        "async shifted the fault schedule at {threads}t/{meter:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hacc_async_env_default_is_overridable() {
        let mut sim = build();
        let env_default = sim.is_async();
        sim.set_async(!env_default);
        assert_eq!(sim.is_async(), !env_default);
        sim.set_async(env_default);
        assert_eq!(sim.is_async(), env_default);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random particle states, random variant, random fault seed: the
    /// parallel engine never drifts from the serial bits. A zero fault
    /// seed means "no injector"; everything else attaches one.
    #[test]
    fn random_states_are_bit_identical(
        seed in any::<u64>(),
        variant_ix in 0usize..ALL_VARIANTS.len(),
        fault_seed in any::<u64>(),
    ) {
        let box_size = 4.0;
        let hp = gas(3, box_size, seed);
        let faults = (fault_seed != 0).then(|| FaultConfig {
            seed: fault_seed,
            transient_rate: 0.15,
            corrupt_rate: 0.15,
            ..FaultConfig::default()
        });
        assert_equivalent(ALL_VARIANTS[variant_ix], 16, &hp, box_size, faults);
    }
}
