#!/usr/bin/env python3
"""CI perf-regression gate for the deterministic cost-model sweeps.

Three gates share this file:

* The **rank-sweep gate** compares the multi-rank sweep
  (``BENCH_ranks.json``, produced by ``cargo run --release -p
  hacc-bench --bin figures -- ranks --json ...`` on the pinned small
  problem) against the committed baseline ``tests/perf_baseline.json``.

* The **explaining observe gate** (``--observe BENCH_observe.json``)
  compares the health report produced by ``figures -- health`` against
  ``tests/observe_baseline.json`` and, on violation, *names the
  kernel, phase, or rank that moved* and by how much: kernel metrics
  are attributed to their kernel, phase metrics to the (step, rank)
  with the largest movement in the critical-path attribution, comm
  metrics to the alpha-beta link model. Wall-clock metrics (``sched.*``)
  are recorded in the report but never gated — they belong to the
  runner, not to the code under test.

* The **tune gate** (``--tune BENCH_autotune.json``) compares the
  autotune sweep produced by ``figures -- autotune`` against the
  committed ``tests/tune_baseline.json`` and, on violation, *names the
  (arch, kernel, knob)* that moved: a winner whose variant, sub-group,
  work-group, GRF mode, or launch bounds differ from the baseline means
  the committed tuning cache is stale; a winner slower than the
  hand-picked table means the tuner would pin a suboptimal choice.

Everything gated here is *modeled* — node seconds come from each
architecture's cost model and the interconnect's alpha-beta link model,
bytes from the wire format, overlap from the post/interior/wait/boundary
split — so the numbers are bit-reproducible across machines and the
gate can be tight without flaking. Host wall-clock never enters: the
strong-scaling sweep (``BENCH_scaling.json``) is only checked for its
bitwise-equivalence flags (every mode x thread row against the metered
serial digest) and for the fast path not having regressed below the
metered interpreter.

On any failure the gate prints a diff table sorted largest-|delta|
first (metric, baseline, current, %delta) so the top regression is the
first line you read.

Tolerance is +/-25% relative per metric (override with --tolerance).
Regenerate the baselines after an intentional model change with:

    cargo run --release -p hacc-bench --bin figures -- ranks --json BENCH_ranks.json
    python3 tests/perf_gate.py --write-baseline tests/perf_baseline.json --ranks BENCH_ranks.json
    cargo run --release -p hacc-bench --bin figures -- health --json BENCH_observe.json
    python3 tests/perf_gate.py --observe BENCH_observe.json \\
        --write-observe-baseline tests/observe_baseline.json
    cargo run --release -p hacc-bench --bin figures -- autotune --seeds 1 \\
        --json BENCH_autotune.json
    python3 tests/perf_gate.py --tune BENCH_autotune.json \\
        --write-tune-baseline tests/tune_baseline.json
"""

import argparse
import json
import sys


def load_json(path, what):
    """Every input this gate reads comes through here, so a missing or
    corrupt file is a one-line usage error, not a stack trace."""
    if path is None:
        sys.exit(f"perf_gate: no path given for the {what} (see --help)")
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"perf_gate: {what} not found at {path!r} — generate it "
                 f"first (the module docstring lists the commands)")
    except json.JSONDecodeError as e:
        sys.exit(f"perf_gate: {what} at {path!r} is not valid JSON: {e}")

# Metrics gated per (arch, mode, ranks) row. All deterministic.
METRICS = ("node_seconds", "speedup", "overlap_fraction", "exchange_bytes")

# Metric prefixes carrying host wall-clock: present in the report for
# humans, never gated. Keep in sync with `health::is_volatile`.
VOLATILE_PREFIXES = ("sched.",)

# Health-report fields that pin the problem configuration.
OBSERVE_PIN = ("schema", "n_particles", "ranks", "steps", "seed")

PHASE_FIELDS = {
    "phase.migrate": "migrate_seconds",
    "phase.interior": "interior_seconds",
    "phase.halo": "halo_seconds",
    "phase.boundary": "boundary_seconds",
}


def key(rec):
    return f"{rec['arch']}/{rec['mode']}/{rec['ranks']}"


def reduce_sweep(sweep):
    """Folds a BENCH_ranks.json into the baseline's record map."""
    return {
        key(r): {m: r[m] for m in METRICS}
        for r in sweep["records"]
    }


def write_baseline(path, sweep, tolerance):
    baseline = {
        "comment": "Deterministic cost-model metrics from the pinned "
                   "`figures -- ranks` run; regenerate via perf_gate.py "
                   "--write-baseline after intentional model changes.",
        "pinned": {
            "n_base": sweep["n_base"],
            "steps": sweep["steps"],
            "seed": sweep["seed"],
        },
        "tolerance": tolerance,
        "records": reduce_sweep(sweep),
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline with {len(baseline['records'])} records to {path}")


def check_pin(sweep, baseline):
    """The gate is meaningless if the problem changed out from under it."""
    pin = baseline["pinned"]
    errors = []
    for field in ("n_base", "steps", "seed"):
        if sweep.get(field) != pin[field]:
            errors.append(
                f"pinned problem mismatch: {field} = {sweep.get(field)!r}, "
                f"baseline expects {pin[field]!r} — run the gate on the "
                f"pinned configuration or regenerate the baseline"
            )
    return errors


def print_sorted_diffs(rows, title, top=None):
    """Diff table sorted largest-|delta| first: the regression you came
    to find is the first data line."""
    def magnitude(row):
        rel = row[4]
        return abs(rel) if isinstance(rel, float) else float("inf")

    ordered = sorted(rows, key=magnitude, reverse=True)
    if top is not None:
        ordered = ordered[:top]
    if not ordered:
        return
    print(f"\n{title}")
    widths = (22, 30, 14, 14, 9)
    header = ("where", "metric", "baseline", "current", "delta")
    print("".join(h.ljust(w) for h, w in zip(header, widths)) + "status")
    for where, metric, base, cur, rel, ok in ordered:
        delta = f"{rel:+.1%}" if isinstance(rel, float) else str(rel)
        cells = (where, metric, f"{base:.6g}", f"{cur:.6g}", delta)
        print("".join(c.ljust(w) for c, w in zip(cells, widths))
              + ("ok" if ok else "FAIL"))


def gate(sweep, baseline, tolerance):
    current = reduce_sweep(sweep)
    expected = baseline["records"]
    rows = []       # (config, metric, base, cur, rel-or-str, ok)
    failures = []

    for cfg in sorted(expected):
        if cfg not in current:
            failures.append(f"{cfg}: configuration missing from the sweep")
            continue
        for metric in METRICS:
            base = expected[cfg][metric]
            cur = current[cfg][metric]
            if base == 0:
                # 1-rank rows: no traffic, no overlap. Exact.
                ok = cur == 0
                rel = "exact" if ok else f"{cur:g} != 0"
            else:
                rel = (cur - base) / base
                ok = abs(rel) <= tolerance
            rows.append((cfg, metric, base, cur, rel, ok))
            if not ok:
                delta = f"{rel:+.1%}" if isinstance(rel, float) else rel
                failures.append(
                    f"{cfg} {metric}: baseline {base:g}, current {cur:g} "
                    f"({delta}, tolerance +/-{tolerance:.0%})"
                )

    extra = sorted(set(current) - set(expected))
    if extra:
        print(f"note: {len(extra)} configurations not in the baseline "
              f"(new rank counts/architectures?): {', '.join(extra)}")

    widths = (22, 18, 14, 14, 9)
    header = ("config", "metric", "baseline", "current", "delta")
    print("".join(h.ljust(w) for h, w in zip(header, widths)) + "status")
    for cfg, metric, base, cur, rel, ok in rows:
        delta = f"{rel:+.1%}" if isinstance(rel, float) else str(rel)
        cells = (cfg, metric, f"{base:.6g}", f"{cur:.6g}", delta)
        line = "".join(c.ljust(w) for c, w in zip(cells, widths))
        print(line + ("ok" if ok else "FAIL"))
    if failures:
        print_sorted_diffs([r for r in rows if not r[5]],
                           "rank-sweep violations, largest delta first:")
    return failures


# ---------------------------------------------------------- observe gate

def is_volatile(name):
    return any(name.startswith(p) for p in VOLATILE_PREFIXES)


def metric_sums(arch_slice):
    """{name: sum} over an ArchHealth's gateable metrics."""
    return {m["name"]: m["sum"] for m in arch_slice["metrics"]
            if not is_volatile(m["name"])}


def explain(cur_arch, base_arch, name):
    """Names the kernel, phase, or rank behind a moved metric."""
    if name.startswith("kernel."):
        return f"kernel {name.split('.')[1]} moved (per-launch cost estimate)"
    if name in PHASE_FIELDS:
        field = PHASE_FIELDS[name]
        best = None
        for sc, sb in zip(cur_arch.get("critical_paths", []),
                          base_arch.get("critical_paths", [])):
            for rc, rb in zip(sc["per_rank"], sb["per_rank"]):
                d = abs(rc[field] - rb[field])
                if best is None or d > best[0]:
                    best = (d, sc["step"], rc["rank"], rb[field], rc[field])
        if best and best[0] > 0:
            _, step, rank, b, c = best
            return (f"largest mover: rank {rank} at step {step}, "
                    f"{b:.4e}s -> {c:.4e}s")
        return "multi-rank phase moved uniformly across ranks"
    if name.startswith("comm."):
        return "transport layer (alpha-beta link model) moved"
    if name.startswith("multirank."):
        return "multi-rank engine accounting moved"
    return f"kernel timer {name} moved (bracket seconds)"


def critical_path_notes(cur, base):
    """Informational: where the cross-rank critical path moved."""
    notes = []
    for ca in cur["archs"]:
        ba = next((a for a in base["archs"] if a["arch"] == ca["arch"]), None)
        if ba is None:
            continue
        for sc, sb in zip(ca.get("critical_paths", []),
                          ba.get("critical_paths", [])):
            if sc["critical_rank"] != sb["critical_rank"]:
                notes.append(
                    f"{ca['arch']} step {sc['step']}: critical rank moved "
                    f"{sb['critical_rank']} -> {sc['critical_rank']}")
    return notes


def gate_observe(cur, base, tolerance, top):
    failures = [
        f"observe pin mismatch: {k} = {cur.get(k)!r}, "
        f"baseline has {base.get(k)!r}"
        for k in OBSERVE_PIN if cur.get(k) != base.get(k)
    ]
    rows = []       # (arch, metric, base, cur, rel-or-str, ok)
    for ca in cur["archs"]:
        ba = next((a for a in base["archs"] if a["arch"] == ca["arch"]), None)
        if ba is None:
            failures.append(
                f"{ca['arch']}: architecture missing from the observe baseline")
            continue
        cm, bm = metric_sums(ca), metric_sums(ba)
        for name in sorted(set(cm) | set(bm)):
            if name not in cm:
                failures.append(f"{ca['arch']} {name}: metric disappeared "
                                f"from the report")
                continue
            if name not in bm:
                print(f"note: {ca['arch']} {name}: new metric, not in the "
                      f"baseline (regenerate to start gating it)")
                continue
            b, c = bm[name], cm[name]
            if b == 0:
                ok = c == 0
                rel = "exact" if ok else f"{c:g} != 0"
            else:
                rel = (c - b) / b
                ok = abs(rel) <= tolerance
            rows.append((ca["arch"], name, b, c, rel, ok))
            if not ok:
                delta = f"{rel:+.1%}" if isinstance(rel, float) else rel
                failures.append(
                    f"{ca['arch']} {name}: baseline {b:g}, current {c:g} "
                    f"({delta}, tolerance +/-{tolerance:.0%}) — "
                    + explain(ca, ba, name))

    moved = [r for r in rows if isinstance(r[4], float) and r[4] != 0.0]
    if moved:
        print_sorted_diffs(moved, f"observe gate: top {top} movers "
                                  f"(gated at +/-{tolerance:.0%}):", top=top)
    else:
        print("observe gate: no gateable metric moved against the baseline")
    if failures:
        print_sorted_diffs([r for r in rows if not r[5]],
                           "observe violations, largest delta first:")
    for note in critical_path_notes(cur, base):
        print(f"note: {note}")
    checked = len(rows)
    print(f"observe gate: checked {checked} metrics across "
          f"{len(cur['archs'])} architectures")
    return failures


def write_observe_baseline(path, report):
    if report.get("schema") is None or not report.get("archs"):
        sys.exit("refusing to write an observe baseline from a report "
                 "with no schema/archs")
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    n = sum(len(a["metrics"]) for a in report["archs"])
    print(f"wrote observe baseline ({n} metrics, "
          f"{len(report['archs'])} architectures) to {path}")


# ------------------------------------------------------------- tune gate

# The knobs a winner is pinned on; a move in any of them names the
# stale entry.
TUNE_KNOBS = ("variant", "sg_size", "wg_size", "grf", "bounds")

# Autotune-report fields that pin the sweep configuration.
TUNE_PIN = ("kernel_digest", "full_space", "pp_floor")


def reduce_tune(report):
    """Folds a BENCH_autotune.json into the baseline's winner map."""
    winners = {}
    for arch in report["archs"]:
        for w in arch["winners"]:
            rec = {k: w[k] for k in TUNE_KNOBS}
            rec["modeled_seconds"] = w["modeled_seconds"]
            winners[f"{arch['arch']}/{w['kernel']}"] = rec
    return winners


def write_tune_baseline(path, report, tolerance):
    if not report.get("archs") or not report.get("kernel_digest"):
        sys.exit("refusing to write a tune baseline from a report with no "
                 "archs/kernel_digest")
    baseline = {
        "comment": "Per-kernel autotune winners from the pinned "
                   "`figures -- autotune` sweep; regenerate via perf_gate.py "
                   "--tune ... --write-tune-baseline after intentional "
                   "cost-model or search-space changes.",
        "pinned": {k: report[k] for k in TUNE_PIN},
        "tolerance": tolerance,
        "pp": report["tuned_pp"],
        "winners": reduce_tune(report),
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote tune baseline with {len(baseline['winners'])} winners "
          f"to {path}")


def gate_tune(report, baseline, tolerance):
    pin = baseline["pinned"]
    failures = [
        f"tune pin mismatch: {k} = {report.get(k)!r}, baseline expects "
        f"{pin[k]!r} — the kernel/variant set or search space changed; "
        f"regenerate tests/tune_baseline.json"
        for k in TUNE_PIN if report.get(k) != pin[k]
    ]
    current = reduce_tune(report)
    expected = baseline["winners"]
    rows = []       # (where, metric, base, cur, rel-or-str, ok)
    for where in sorted(expected):
        if where not in current:
            failures.append(f"{where}: winner missing from the sweep")
            continue
        b, c = expected[where], current[where]
        for knob in TUNE_KNOBS:
            if b[knob] != c[knob]:
                failures.append(
                    f"{where}: winner knob {knob} moved "
                    f"{b[knob]!r} -> {c[knob]!r} — the committed tune "
                    f"baseline is stale; regenerate it if intentional")
        base_s, cur_s = b["modeled_seconds"], c["modeled_seconds"]
        if base_s == 0:
            ok = cur_s == 0
            rel = "exact" if ok else f"{cur_s:g} != 0"
        else:
            rel = (cur_s - base_s) / base_s
            ok = abs(rel) <= tolerance
        rows.append((where, "modeled_seconds", base_s, cur_s, rel, ok))
        if not ok:
            delta = f"{rel:+.1%}" if isinstance(rel, float) else rel
            failures.append(
                f"{where} modeled_seconds: baseline {base_s:g}, current "
                f"{cur_s:g} ({delta}, tolerance +/-{tolerance:.0%})")
    extra = sorted(set(current) - set(expected))
    if extra:
        print(f"note: {len(extra)} winners not in the tune baseline "
              f"(new kernels/architectures?): {', '.join(extra)}")

    # Freshness of the sweep itself: winners must not lose to the
    # hand-picked table, and the tuned PP must clear the floor.
    for arch in report["archs"]:
        for w in arch["winners"]:
            if w["modeled_seconds"] > w["hand_seconds"] * (1 + 1e-9):
                failures.append(
                    f"{arch['arch']}/{w['kernel']}: tuned winner "
                    f"{w['choice']} ({w['modeled_seconds']:g} s) is slower "
                    f"than the hand-picked table ({w['hand_seconds']:g} s) "
                    f"— the cache would pin a suboptimal choice")
    for mode in sorted(report["tuned_pp"]):
        pp = report["tuned_pp"][mode]
        if pp < report["pp_floor"]:
            failures.append(
                f"tuned PP {pp:.4f} under {mode} metering is below the "
                f"floor {report['pp_floor']:.2f}")

    moved = [r for r in rows if isinstance(r[4], float) and r[4] != 0.0]
    if moved:
        print_sorted_diffs(moved, "tune gate: modeled-seconds movers "
                                  f"(gated at +/-{tolerance:.0%}):")
    else:
        print("tune gate: no winner's modeled seconds moved against the "
              "baseline")
    if failures:
        print_sorted_diffs([r for r in rows if not r[5]],
                           "tune violations, largest delta first:")
    print(f"tune gate: checked {len(rows)} winners across "
          f"{len(report['archs'])} architectures")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="tests/perf_baseline.json")
    ap.add_argument("--ranks", default="BENCH_ranks.json",
                    help="multi-rank sweep JSON to gate")
    ap.add_argument("--scaling", default=None,
                    help="optional scaling sweep JSON; checked for bitwise flags only")
    ap.add_argument("--observe", default=None,
                    help="health report JSON (figures -- health) to gate "
                         "with the explaining observe gate")
    ap.add_argument("--observe-baseline", default="tests/observe_baseline.json")
    ap.add_argument("--tune", default=None,
                    help="autotune report JSON (figures -- autotune) to gate "
                         "against the committed tune baseline")
    ap.add_argument("--tune-baseline", default="tests/tune_baseline.json")
    ap.add_argument("--write-tune-baseline", metavar="PATH", default=None,
                    help="write PATH from --tune instead of gating")
    ap.add_argument("--top", type=int, default=3,
                    help="movers shown in the observe gate's summary table")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="relative tolerance (default: the baseline's, else 0.25)")
    ap.add_argument("--write-baseline", metavar="PATH", default=None,
                    help="write PATH from --ranks instead of gating")
    ap.add_argument("--write-observe-baseline", metavar="PATH", default=None,
                    help="write PATH from --observe instead of gating")
    args = ap.parse_args()

    if args.tune:
        report = load_json(args.tune, "autotune report (--tune)")
        if args.write_tune_baseline:
            write_tune_baseline(
                args.write_tune_baseline, report,
                args.tolerance if args.tolerance is not None else 0.25)
            return
        tune_base = load_json(args.tune_baseline,
                              "tune baseline (--tune-baseline)")
        tolerance = args.tolerance
        if tolerance is None:
            tolerance = tune_base.get("tolerance", 0.25)
        failures = gate_tune(report, tune_base, tolerance)
        if failures:
            print(f"\nPERF GATE (tune): {len(failures)} violation(s)",
                  file=sys.stderr)
            for f_ in failures:
                print(f"  - {f_}", file=sys.stderr)
            sys.exit(1)
        print("\nPERF GATE (tune): ok")
        return

    if args.observe:
        observe = load_json(args.observe, "health report (--observe)")
        if args.write_observe_baseline:
            write_observe_baseline(args.write_observe_baseline, observe)
            return
        observe_base = load_json(args.observe_baseline,
                                 "observe baseline (--observe-baseline)")
        tolerance = args.tolerance
        if tolerance is None:
            tolerance = 0.25
        failures = gate_observe(observe, observe_base, tolerance, args.top)
        if failures:
            print(f"\nPERF GATE (observe): {len(failures)} violation(s)",
                  file=sys.stderr)
            for f_ in failures:
                print(f"  - {f_}", file=sys.stderr)
            sys.exit(1)
        print("\nPERF GATE (observe): ok")
        return

    sweep = load_json(args.ranks, "rank sweep (--ranks)")

    failures = []
    diverged = [key(r) for r in sweep["records"] if not r["bit_identical"]]
    if diverged:
        failures.append(
            "rank sweep rows diverged from their 1-rank bits: " + ", ".join(diverged))

    if args.write_baseline:
        if failures:
            sys.exit("refusing to write a baseline from a diverged sweep:\n"
                     + "\n".join(failures))
        write_baseline(args.write_baseline, sweep,
                       args.tolerance if args.tolerance is not None else 0.25)
        return

    baseline = load_json(args.baseline, "rank baseline (--baseline)")
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)

    failures += check_pin(sweep, baseline)
    failures += gate(sweep, baseline, tolerance)

    if args.scaling:
        scaling = load_json(args.scaling, "scaling sweep (--scaling)")
        bad = [f"{r.get('mode', '?')}/{r['threads']}t"
               for r in scaling["records"] if not r["bit_identical"]]
        if bad:
            failures.append(f"scaling sweep diverged at {bad}")
        else:
            print(f"scaling sweep: all {len(scaling['records'])} (mode, thread) "
                  "rows bit-identical (wall times not gated)")
        fast = scaling.get("fast_speedup")
        if fast is not None and fast < 1.0:
            failures.append(
                f"fast execution mode slower than the metered interpreter: "
                f"{fast:.2f}x")

    if failures:
        print(f"\nPERF GATE: {len(failures)} violation(s)", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        sys.exit(1)
    print("\nPERF GATE: ok")


if __name__ == "__main__":
    main()
