#!/usr/bin/env python3
"""CI perf-regression gate for the deterministic cost-model sweeps.

Compares the multi-rank sweep (``BENCH_ranks.json``, produced by
``cargo run --release -p hacc-bench --bin figures -- ranks --json ...``
on the pinned small problem) against the committed baseline
``tests/perf_baseline.json``.

Everything gated here is *modeled* — node seconds come from each
architecture's cost model and the interconnect's alpha-beta link model,
bytes from the wire format, overlap from the post/interior/wait/boundary
split — so the numbers are bit-reproducible across machines and the
gate can be tight without flaking. Host wall-clock never enters: the
strong-scaling sweep (``BENCH_scaling.json``) is only checked for its
bitwise-equivalence flags, because its step times belong to the runner,
not to the code under test.

Tolerance is +/-25% *relative* per metric (override with --tolerance).
Regenerate the baseline after an intentional model change with:

    cargo run --release -p hacc-bench --bin figures -- ranks --json BENCH_ranks.json
    python3 tests/perf_gate.py --write-baseline tests/perf_baseline.json --ranks BENCH_ranks.json
"""

import argparse
import json
import sys

# Metrics gated per (arch, mode, ranks) row. All deterministic.
METRICS = ("node_seconds", "speedup", "overlap_fraction", "exchange_bytes")


def key(rec):
    return f"{rec['arch']}/{rec['mode']}/{rec['ranks']}"


def reduce_sweep(sweep):
    """Folds a BENCH_ranks.json into the baseline's record map."""
    return {
        key(r): {m: r[m] for m in METRICS}
        for r in sweep["records"]
    }


def write_baseline(path, sweep, tolerance):
    baseline = {
        "comment": "Deterministic cost-model metrics from the pinned "
                   "`figures -- ranks` run; regenerate via perf_gate.py "
                   "--write-baseline after intentional model changes.",
        "pinned": {
            "n_base": sweep["n_base"],
            "steps": sweep["steps"],
            "seed": sweep["seed"],
        },
        "tolerance": tolerance,
        "records": reduce_sweep(sweep),
    }
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline with {len(baseline['records'])} records to {path}")


def check_pin(sweep, baseline):
    """The gate is meaningless if the problem changed out from under it."""
    pin = baseline["pinned"]
    errors = []
    for field in ("n_base", "steps", "seed"):
        if sweep.get(field) != pin[field]:
            errors.append(
                f"pinned problem mismatch: {field} = {sweep.get(field)!r}, "
                f"baseline expects {pin[field]!r} — run the gate on the "
                f"pinned configuration or regenerate the baseline"
            )
    return errors


def gate(sweep, baseline, tolerance):
    current = reduce_sweep(sweep)
    expected = baseline["records"]
    rows = []       # (config, metric, base, cur, delta_str, ok)
    failures = []

    for cfg in sorted(expected):
        if cfg not in current:
            failures.append(f"{cfg}: configuration missing from the sweep")
            continue
        for metric in METRICS:
            base = expected[cfg][metric]
            cur = current[cfg][metric]
            if base == 0:
                # 1-rank rows: no traffic, no overlap. Exact.
                ok = cur == 0
                delta = "exact" if ok else f"{cur:g} != 0"
            else:
                rel = (cur - base) / base
                ok = abs(rel) <= tolerance
                delta = f"{rel:+.1%}"
            rows.append((cfg, metric, base, cur, delta, ok))
            if not ok:
                failures.append(
                    f"{cfg} {metric}: baseline {base:g}, current {cur:g} "
                    f"({delta}, tolerance +/-{tolerance:.0%})"
                )

    extra = sorted(set(current) - set(expected))
    if extra:
        print(f"note: {len(extra)} configurations not in the baseline "
              f"(new rank counts/architectures?): {', '.join(extra)}")

    widths = (22, 18, 14, 14, 9)
    header = ("config", "metric", "baseline", "current", "delta")
    print("".join(h.ljust(w) for h, w in zip(header, widths)) + "status")
    for cfg, metric, base, cur, delta, ok in rows:
        cells = (cfg, metric, f"{base:.6g}", f"{cur:.6g}", delta)
        line = "".join(c.ljust(w) for c, w in zip(cells, widths))
        print(line + ("ok" if ok else "FAIL"))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="tests/perf_baseline.json")
    ap.add_argument("--ranks", default="BENCH_ranks.json",
                    help="multi-rank sweep JSON to gate")
    ap.add_argument("--scaling", default=None,
                    help="optional scaling sweep JSON; checked for bitwise flags only")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="relative tolerance (default: the baseline's, else 0.25)")
    ap.add_argument("--write-baseline", metavar="PATH", default=None,
                    help="write PATH from --ranks instead of gating")
    args = ap.parse_args()

    with open(args.ranks) as f:
        sweep = json.load(f)

    failures = []
    diverged = [key(r) for r in sweep["records"] if not r["bit_identical"]]
    if diverged:
        failures.append(
            "rank sweep rows diverged from their 1-rank bits: " + ", ".join(diverged))

    if args.write_baseline:
        if failures:
            sys.exit("refusing to write a baseline from a diverged sweep:\n"
                     + "\n".join(failures))
        write_baseline(args.write_baseline, sweep,
                       args.tolerance if args.tolerance is not None else 0.25)
        return

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.25)

    failures += check_pin(sweep, baseline)
    failures += gate(sweep, baseline, tolerance)

    if args.scaling:
        with open(args.scaling) as f:
            scaling = json.load(f)
        bad = [r["threads"] for r in scaling["records"] if not r["bit_identical"]]
        if bad:
            failures.append(f"scaling sweep diverged at thread counts {bad}")
        else:
            print(f"scaling sweep: all {len(scaling['records'])} thread counts "
                  "bit-identical (wall times not gated)")

    if failures:
        print(f"\nPERF GATE: {len(failures)} violation(s)", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        sys.exit(1)
    print("\nPERF GATE: ok")


if __name__ == "__main__":
    main()
