//! The §7.2 workflow end-to-end: capture a checkpoint from a running
//! simulation, replay it into a standalone kernel, and verify the result
//! against the f64 reference — the "standalone applications driven by
//! checkpoint files" that accelerated the paper's optimization work.

use crk_hacc::core::{Checkpoint, DeviceConfig, SimConfig, Simulation};
use crk_hacc::kernels::{reference, run_hydro_step, DeviceParticles, Variant, WorkLists};
use crk_hacc::sycl::{Device, GpuArch, LaunchConfig, Toolchain};
use crk_hacc::telemetry::Recorder;
use crk_hacc::tree::{InteractionList, RcbTree};

fn device_cfg(variant: Variant) -> DeviceConfig {
    DeviceConfig {
        lang: crk_hacc::sycl::Lang::Sycl,
        fast_math: None,
        variant,
        sg_size: Some(32),
        grf: crk_hacc::sycl::GrfMode::Default,
    }
}

#[test]
fn checkpoint_replay_matches_reference() {
    // Run two steps of the real simulation and capture the baryon state.
    let mut sim = Simulation::new(
        SimConfig::smoke(),
        device_cfg(Variant::Select),
        GpuArch::frontier(),
    );
    sim.step();
    let cp = Checkpoint::capture(&sim);
    let blob = cp.to_bytes();
    let replayed = Checkpoint::from_bytes(blob).unwrap();
    assert_eq!(cp, replayed);

    // Standalone replay: drive the hydro kernels from the checkpoint
    // alone, on a *different* architecture and variant than the capture.
    let hp = &replayed.particles;
    let box_size = replayed.box_size;
    let device = Device::new(GpuArch::aurora(), Toolchain::sycl_visa()).unwrap();
    let sg = 32;
    let cfg = LaunchConfig::defaults_for(&device.arch)
        .with_sg_size(sg)
        .deterministic();
    let variant = Variant::Visa;
    let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg));
    let h_max = hp.h.iter().cloned().fold(0.0, f64::max);
    let list = InteractionList::build(&tree, box_size, 2.0 * h_max + 1e-9);
    let work = WorkLists::build(&tree, &list, sg);
    let ordered = hp.permuted(&tree.order);
    let data = DeviceParticles::upload(&ordered);
    let timers = run_hydro_step(
        &device,
        &data,
        &work,
        variant,
        box_size as f32,
        cfg,
        &Recorder::new(),
    )
    .expect("fault-free hydro step must succeed");
    assert_eq!(
        timers.len(),
        7,
        "the standalone replay runs all seven timers"
    );

    // Verify against the reference pipeline on the same checkpoint.
    let r = reference::full_pipeline(&ordered, box_size);
    let rho = data.rho.to_f32_vec();
    let scale = r.rho.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
    for (i, (&got, want)) in rho.iter().zip(&r.rho).enumerate() {
        assert!(
            (got as f64 - want).abs() < 1e-3 * scale,
            "rho[{i}] = {got} vs reference {want}"
        );
    }
    let dt = data.dt_min.read_f32(0) as f64;
    assert!(
        (dt / r.dt_min - 1.0).abs() < 1e-2,
        "CFL dt {dt} vs reference {}",
        r.dt_min
    );
}

#[test]
fn checkpoint_file_workflow() {
    let mut sim = Simulation::new(
        SimConfig::smoke(),
        device_cfg(Variant::Select),
        GpuArch::polaris(),
    );
    sim.step();
    let cp = Checkpoint::capture(&sim);
    let dir = std::env::temp_dir().join("crk_hacc_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("step1.ckpt");
    cp.save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.particles.len(), cp.particles.len());
    assert_eq!(loaded.a, cp.a);
    std::fs::remove_file(&path).ok();
}
