//! End-to-end portability analysis: the full Figure 12/13 pipeline on a
//! small workload must reproduce the paper's qualitative findings —
//! the variant rankings per platform (§5.4), the configuration ordering
//! of the cascade plot (§6.1), and the convergence structure of the
//! navigation chart (§6.2).

use hacc_bench::experiments::{run_all_variants, total_seconds, workload};
use hacc_bench::figures::{all_configs, fig12_records, portability_data};
use hacc_metrics::{find_workspace_root, ConfigKind, Mechanism, RepoInventory};
use std::path::Path;
use sycl_sim::GpuArch;

#[test]
fn variant_rankings_match_the_paper() {
    let problem = workload(6, 5);

    // Aurora (Fig 9): Select is always the worst variant.
    let aurora = run_all_variants(&GpuArch::aurora(), &problem);
    let t = |run: &hacc_bench::experiments::ArchRun, v: &str| total_seconds(&run.by_variant[v]);
    for other in ["Memory, 32-bit", "Memory, Object", "Broadcast", "vISA"] {
        assert!(
            t(&aurora, "Select") > t(&aurora, other),
            "Aurora: Select must be slowest (vs {other})"
        );
    }
    // §5.4: picking the right variant improves kernels by 2–5×.
    let gain = t(&aurora, "Select") / t(&aurora, "vISA");
    assert!(
        gain > 1.8 && gain < 6.0,
        "Aurora Select→best gain {gain:.2} should fall in the paper's 2–5× band"
    );

    // Polaris (Fig 10): Broadcast collapses on the register-heavy
    // kernels ("almost 10× slower in some cases").
    let polaris = run_all_variants(&GpuArch::polaris(), &problem);
    let ac_sel = polaris.by_variant["Select"]["upBarAc"];
    let ac_bc = polaris.by_variant["Broadcast"]["upBarAc"];
    assert!(
        ac_bc / ac_sel > 5.0,
        "Polaris Broadcast/Select on upBarAc = {:.1}, expected ≫ 1",
        ac_bc / ac_sel
    );
    // Select beats both memory variants overall on Polaris.
    assert!(t(&polaris, "Select") < t(&polaris, "Memory, 32-bit"));
    assert!(t(&polaris, "Select") < t(&polaris, "Memory, Object"));

    // Frontier (Fig 11): Select best overall; Broadcast ≈ 0.6 efficiency
    // on the force kernels; Memory (Object) second tier.
    let frontier = run_all_variants(&GpuArch::frontier(), &problem);
    assert!(t(&frontier, "Select") < t(&frontier, "Memory, Object"));
    let eff_bc =
        frontier.by_variant["Select"]["upBarAc"] / frontier.by_variant["Broadcast"]["upBarAc"];
    assert!(
        eff_bc > 0.4 && eff_bc < 0.85,
        "Frontier Broadcast efficiency on upBarAc = {eff_bc:.2}, paper ≈ 0.6"
    );
}

#[test]
fn cascade_ordering_matches_figure_12() {
    let problem = workload(6, 5);
    let data = portability_data(&problem);
    let records = fig12_records(&data);
    let pp = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing config {name}"))
            .pp()
    };

    // Unsupported-platform configurations score exactly zero.
    assert_eq!(pp("CUDA/HIP"), 0.0);
    assert_eq!(pp("vISA"), 0.0);

    // The paper's ordering: Select+vISA (0.96) ≥ Select+Memory (0.91) ≥
    // Unified (0.90) > Memory (0.79) > … > Broadcast (worst non-zero).
    assert!(pp("SYCL (Select + vISA)") >= pp("SYCL (Select + Memory)") - 1e-9);
    assert!(pp("SYCL (Select + Memory)") >= pp("Unified") - 1e-9);
    assert!(pp("Unified") > pp("SYCL (Memory)"));
    assert!(pp("SYCL (Memory)") > pp("SYCL (Broadcast)"));
    assert!(pp("SYCL (Select)") > pp("SYCL (Broadcast)"));

    // Band checks against the paper's headline values.
    let v = pp("SYCL (Select + vISA)");
    assert!(v > 0.9 && v <= 1.0, "Select+vISA PP = {v:.3}, paper: 0.96");
    let m = pp("SYCL (Memory)");
    assert!(m > 0.6 && m < 0.95, "Memory PP = {m:.3}, paper: 0.79");
}

#[test]
fn navigation_chart_structure_matches_figure_13() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let inv = RepoInventory::measure(&root).unwrap();

    // Specialized SYCL variants sit at convergence ≈ 1 (the paper: the
    // select and local-memory variants differ by ~19 lines; vISA adds
    // only 226 lines of 85k).
    for c in [
        ConfigKind::SyclSelectPlusMemory,
        ConfigKind::SyclSelectPlusVisa,
    ] {
        assert!(inv.convergence(c) > 0.98, "{c:?}: {}", inv.convergence(c));
    }
    // Single-source configurations are exactly 1.
    assert_eq!(
        inv.convergence(ConfigKind::SyclUniform(Mechanism::Select)),
        1.0
    );
    // Unified is the only configuration with significantly lower
    // convergence (two kernel-source bodies).
    let unified = inv.convergence(ConfigKind::Unified);
    assert!(
        unified < 0.9,
        "Unified convergence {unified} must stand out"
    );
    for c in all_configs() {
        if c != ConfigKind::Unified {
            assert!(inv.convergence(c) > unified);
        }
    }
}
