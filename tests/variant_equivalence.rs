//! Cross-crate equivalence: every communication variant, on every
//! architecture that supports it, at every legal sub-group size, must
//! produce the same physics — the paper's premise that the variants are
//! interchangeable implementations of identical kernels.

use crk_hacc::kernels::{
    reference, run_hydro_step, DeviceParticles, HostParticles, Variant, WorkLists, ALL_VARIANTS,
};
use crk_hacc::sycl::{Device, GpuArch, LaunchConfig, Toolchain};
use crk_hacc::telemetry::Recorder;
use crk_hacc::tree::{InteractionList, RcbTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gas(n_side: usize, box_size: f64, seed: u64) -> HostParticles {
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing = box_size / n_side as f64;
    let mut hp = HostParticles::default();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                let jig = 0.25 * spacing;
                hp.pos.push([
                    (i as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    (j as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    (k as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                ]);
                hp.vel.push([
                    rng.gen_range(-0.3..0.3),
                    rng.gen_range(-0.3..0.3),
                    rng.gen_range(-0.3..0.3),
                ]);
                hp.mass.push(rng.gen_range(0.5..1.5));
                hp.h.push(1.25 * spacing);
                hp.u.push(rng.gen_range(0.5..1.5));
            }
        }
    }
    hp
}

/// Runs one variant and returns (acc_x, du_dt, rho) in original particle
/// order.
fn run_one(
    arch: GpuArch,
    variant: Variant,
    sg_size: usize,
    hp: &HostParticles,
    box_size: f64,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let tc = if variant.needs_visa() {
        Toolchain::sycl_visa()
    } else {
        Toolchain::sycl()
    };
    let device = Device::new(arch, tc).unwrap();
    let cfg = LaunchConfig::defaults_for(&device.arch)
        .with_sg_size(sg_size)
        .deterministic();
    let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg_size));
    let cutoff = 2.0 * 1.25 * (box_size / 6.0) + 1e-9;
    let list = InteractionList::build(&tree, box_size, cutoff);
    let work = WorkLists::build(&tree, &list, sg_size);
    let ordered = hp.permuted(&tree.order);
    let data = DeviceParticles::upload(&ordered);
    run_hydro_step(
        &device,
        &data,
        &work,
        variant,
        box_size as f32,
        cfg,
        &Recorder::new(),
    )
    .expect("fault-free hydro step must succeed");
    // Scatter back to original order.
    let n = hp.len();
    let (mut ax, mut du, mut rho) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    for (slot, &pi) in tree.order.iter().enumerate() {
        ax[pi as usize] = data.acc[0].read_f32(slot);
        du[pi as usize] = data.du_dt.read_f32(slot);
        rho[pi as usize] = data.rho.read_f32(slot);
    }
    (ax, du, rho)
}

fn max_rel(a: &[f32], b: &[f32]) -> f64 {
    let scale = a.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-30) as f64;
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64 / scale)
        .fold(0.0, f64::max)
}

#[test]
fn all_variant_arch_sg_combinations_agree() {
    let box_size = 6.0;
    let hp = gas(6, box_size, 99);
    // Reference from the f64 pipeline.
    let r = reference::full_pipeline(&hp, box_size);
    let r_ax: Vec<f32> = r.acc.iter().map(|a| a[0] as f32).collect();

    let combos: Vec<(GpuArch, Variant, usize)> = {
        let mut v = Vec::new();
        for arch in GpuArch::all() {
            for variant in ALL_VARIANTS {
                if variant.needs_visa() && !arch.supports_visa {
                    continue;
                }
                for &sg in arch.sg_sizes {
                    v.push((arch.clone(), variant, sg));
                }
            }
        }
        v
    };
    assert!(
        combos.len() >= 15,
        "expected a broad sweep, got {}",
        combos.len()
    );

    for (arch, variant, sg) in combos {
        let (ax, du, rho) = run_one(arch.clone(), variant, sg, &hp, box_size);
        assert!(
            max_rel(&ax, &r_ax) < 7e-3,
            "{}/{:?}/sg{} acceleration deviates from reference by {}",
            arch.id,
            variant,
            sg,
            max_rel(&ax, &r_ax)
        );
        // du and rho compared against the reference too.
        let r_du: Vec<f32> = r.du_dt.iter().map(|v| *v as f32).collect();
        let r_rho: Vec<f32> = r.rho.iter().map(|v| *v as f32).collect();
        assert!(
            max_rel(&du, &r_du) < 7e-3,
            "{}/{:?}/sg{} du_dt",
            arch.id,
            variant,
            sg
        );
        assert!(
            max_rel(&rho, &r_rho) < 2e-3,
            "{}/{:?}/sg{} rho",
            arch.id,
            variant,
            sg
        );
    }
}

#[test]
fn fast_math_flag_does_not_change_results_materially() {
    // Fast math changes instruction classification (and real codes accept
    // small numerical differences); the simulated math paths are
    // identical, so results must match exactly here.
    let box_size = 6.0;
    let hp = gas(5, box_size, 7);
    let arch = GpuArch::polaris();
    let run = |tc: Toolchain| {
        let device = Device::new(arch.clone(), tc).unwrap();
        let cfg = LaunchConfig::defaults_for(&device.arch).deterministic();
        let tree = RcbTree::build(&hp.pos, 16);
        let cutoff = 2.0 * 1.25 * (box_size / 5.0) + 1e-9;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let work = WorkLists::build(&tree, &list, 32);
        let data = DeviceParticles::upload(&hp.permuted(&tree.order));
        run_hydro_step(
            &device,
            &data,
            &work,
            Variant::Select,
            box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .expect("fault-free hydro step must succeed");
        data.acc[0].to_f32_vec()
    };
    let precise = run(Toolchain::cuda());
    let fast = run(Toolchain::cuda_fast_math());
    assert_eq!(precise, fast);
}
