//! Distributed fault-tolerance acceptance tests.
//!
//! Three contracts from DESIGN.md §4g:
//!
//! 1. The `HCK3` multi-rank checkpoint codec round-trips bit-exactly
//!    and never panics on hostile input (truncations, bit flips).
//! 2. An 8-rank run that loses a rank mid-stream recovers — shrink or
//!    respawn — and finishes on the *same bits* as the fault-free run,
//!    for any loss step and any checkpoint interval.
//! 3. Recovery composes with the transport's transient-fault retry
//!    path without perturbing physics.

use bytes::{BufMut, BytesMut};
use hacc_core::{
    MultiRankCheckpoint, MultiRankProblem, MultiRankSim, RecoveryMode, ResilienceConfig,
};
use proptest::prelude::*;
use sycl_sim::{FaultConfig, GpuArch, RankLoss};

const N_PARTICLES: usize = 192;

fn problem() -> MultiRankProblem {
    MultiRankProblem::small(N_PARTICLES, 1234)
}

/// A realistic checkpoint: capture a real engine a few steps in.
fn checkpoint_for(ranks: usize, steps: u64) -> MultiRankCheckpoint {
    let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
    sim.run(steps).expect("fault-free run");
    sim.checkpoint()
}

fn fault_free_digest(ranks: usize, steps: u64) -> u64 {
    let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
    sim.run(steps).expect("fault-free run");
    sim.state_digest()
}

#[test]
fn hck3_round_trips_bit_exactly_across_layouts() {
    for ranks in [1usize, 2, 4, 8] {
        let cp = checkpoint_for(ranks, 2);
        assert_eq!(cp.ranks(), ranks);
        assert_eq!(cp.n_particles(), N_PARTICLES);
        let blob = cp.to_bytes();
        assert_eq!(blob.len() as u64, cp.total_bytes());
        let back = MultiRankCheckpoint::from_bytes(blob).expect("parse own bytes");
        assert_eq!(cp, back, "{ranks}-rank checkpoint must round-trip");
    }
}

#[test]
fn restoring_a_checkpoint_resumes_on_the_same_bits() {
    let reference = fault_free_digest(4, 5);
    let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
    sim.run(3).unwrap();
    let cp = MultiRankCheckpoint::from_bytes(sim.checkpoint().to_bytes()).unwrap();
    sim.run(2).unwrap(); // wander off…
    sim.restore(&cp).unwrap(); // …roll back…
    sim.run(2).unwrap(); // …and replay.
    assert_eq!(sim.state_digest(), reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random truncations of a valid HCK3 blob never panic.
    #[test]
    fn truncated_hck3_never_panics(frac in 0.0f64..1.0, ranks_pow in 0u32..4) {
        let blob = checkpoint_for(1 << ranks_pow, 1).to_bytes();
        let cut = (blob.len() as f64 * frac) as usize;
        let _ = MultiRankCheckpoint::from_bytes(blob.slice(0..cut));
    }

    /// Single-bit flips anywhere in a valid HCK3 blob either parse
    /// (the flip hit a benign payload bit) or error — never panic,
    /// never allocate absurdly.
    #[test]
    fn bit_flipped_hck3_never_panics(byte_frac in 0.0f64..1.0, bit in 0usize..8) {
        let blob = checkpoint_for(4, 1).to_bytes();
        let mut raw = BytesMut::from(&blob[..]);
        let idx = ((raw.len() as f64 * byte_frac) as usize).min(raw.len() - 1);
        raw[idx] ^= 1 << bit;
        let _ = MultiRankCheckpoint::from_bytes(raw.freeze());
    }

    /// A hostile header with random counts and dims never panics.
    #[test]
    fn hostile_hck3_headers_never_panic(
        step in 0u64..u64::MAX,
        ng in 0u64..u64::MAX,
        d0 in 0u64..u64::MAX,
        d1 in 0u64..64,
        d2 in 0u64..64,
        ranks in 0u64..u64::MAX,
        count in 1u64..u64::MAX,
    ) {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4843_4B33);
        buf.put_u64(step);
        buf.put_u64(ng);
        for d in [d0, d1, d2] {
            buf.put_u64(d);
        }
        buf.put_u64(ranks);
        buf.put_u64(count);
        prop_assert!(MultiRankCheckpoint::from_bytes(buf.freeze()).is_err());
    }
}

/// The tentpole acceptance gate: an 8-rank run with a seeded mid-run
/// rank loss completes via rollback + re-decomposition with a final
/// digest bit-identical to the fault-free run — for every loss step
/// and both recovery modes.
#[test]
fn eight_rank_recovery_is_bit_identical_for_any_loss_step() {
    let steps = 6u64;
    let clean = fault_free_digest(8, steps);
    for mode in [RecoveryMode::Shrink, RecoveryMode::Respawn] {
        for loss_step in 1..steps {
            let rank = 1 + (loss_step as usize % 7);
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.enable_fault_injection(FaultConfig {
                seed: 77,
                rank_loss: vec![RankLoss {
                    rank,
                    step: loss_step,
                }],
                ..FaultConfig::default()
            });
            let config = ResilienceConfig {
                checkpoint_interval: 2,
                mode,
                ..ResilienceConfig::default()
            };
            let report = sim
                .run_resilient(steps, &config)
                .unwrap_or_else(|e| panic!("{mode:?} loss of rank {rank} at {loss_step}: {e}"));
            assert_eq!(report.recoveries.len(), 1);
            assert_eq!(report.steps.len(), steps as usize);
            assert_eq!(
                sim.state_digest(),
                clean,
                "{mode:?} recovery from losing rank {rank} at step {loss_step} \
                 diverged from the fault-free bits"
            );
        }
    }
}

/// The async task-graph step surfaces a lost rank through its
/// barrier-free per-source flushes (`CommError::RankDead` from the
/// earliest affected flush, in canonical order), and the resilience
/// loop recovers the async run onto the barriered fault-free bits —
/// both recovery modes.
#[test]
fn async_mode_recovers_from_rank_loss_onto_fault_free_bits() {
    let steps = 6u64;
    let clean = fault_free_digest(8, steps);
    for mode in [RecoveryMode::Shrink, RecoveryMode::Respawn] {
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        sim.set_async(true);
        sim.enable_fault_injection(FaultConfig {
            seed: 77,
            rank_loss: vec![RankLoss { rank: 3, step: 3 }],
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: 2,
            mode,
            ..ResilienceConfig::default()
        };
        let report = sim
            .run_resilient(steps, &config)
            .unwrap_or_else(|e| panic!("async {mode:?} recovery failed: {e}"));
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(
            sim.state_digest(),
            clean,
            "async {mode:?} recovery diverged from the fault-free bits"
        );
    }
}

#[test]
fn checkpoint_interval_does_not_change_the_bits() {
    let steps = 6u64;
    let clean = fault_free_digest(8, steps);
    for interval in [1u64, 2, 3, 6] {
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        sim.enable_fault_injection(FaultConfig {
            seed: 5,
            rank_loss: vec![RankLoss { rank: 3, step: 4 }],
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: interval,
            mode: RecoveryMode::Respawn,
            ..ResilienceConfig::default()
        };
        let report = sim.run_resilient(steps, &config).expect("must recover");
        assert!(
            report.recoveries[0].rollback_steps < interval.max(1),
            "rollback is bounded by the interval"
        );
        assert_eq!(sim.state_digest(), clean, "interval {interval} diverged");
    }
}

#[test]
fn recovery_composes_with_transient_link_retries() {
    let steps = 5u64;
    let clean = fault_free_digest(4, steps);
    let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
    sim.enable_fault_injection(FaultConfig {
        seed: 13,
        transient_rate: 0.02,
        rank_loss: vec![RankLoss { rank: 2, step: 2 }],
        ..FaultConfig::default()
    });
    let config = ResilienceConfig {
        checkpoint_interval: 2,
        mode: RecoveryMode::Respawn,
        ..ResilienceConfig::default()
    };
    sim.run_resilient(steps, &config)
        .expect("retries and recovery must compose");
    assert!(
        sim.transport().injector().unwrap().injected() > 0,
        "the transient channel must actually fire"
    );
    assert_eq!(
        sim.state_digest(),
        clean,
        "retries during replay must not change physics"
    );
}
