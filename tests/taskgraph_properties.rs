//! Property-test harness for the task-graph executor (DESIGN §4i).
//!
//! The async step mode rests entirely on the scheduler guarantees this
//! file pins down: random DAGs and adversarial shapes (diamonds, long
//! chains, wide fan-outs) complete without deadlock under a watchdog,
//! execute every task exactly once, and never run a task before its
//! dependencies — at every worker count the CI matrix exercises.
//! Cycles are rejected at construction, so a hung schedule can only
//! mean a scheduler bug, never a malformed graph.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use sycl_sim::{GraphError, ResourceId, RunError, TaskGraph};

/// Worker counts the harness sweeps — the same axis the equivalence
/// tests and the CI matrix use.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Per-run deadlock watchdog. Generous next to the micro-task bodies
/// here; a graph that takes anywhere near this long has deadlocked.
const WATCHDOG: Duration = Duration::from_secs(60);

fn mix(state: &mut u64) -> u64 {
    // splitmix64 — deterministic stream from the proptest-drawn seed.
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Edge list of a graph captured before `run` consumes it.
fn edges_of<E>(graph: &TaskGraph<'_, E>) -> Vec<(usize, usize)> {
    (0..graph.len())
        .flat_map(|t| graph.deps(t).iter().map(move |&d| (t, d)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs — tasks with random read/write sets over a small
    /// resource pool plus random explicit backward edges — satisfy the
    /// core properties at every worker count.
    #[test]
    fn random_dags_complete_exactly_once_in_topological_order(
        seed in 0u64..1_000_000,
        n in 5usize..48,
        n_resources in 1usize..8,
        extra_edges in 0usize..24,
    ) {
        for &threads in &THREADS {
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let started: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let mut graph: TaskGraph<'_, String> = TaskGraph::new();
            let mut rng = seed;
            for t in 0..n {
                let n_reads = (mix(&mut rng) % 3) as usize;
                let n_writes = 1 + (mix(&mut rng) % 2) as usize;
                let reads: Vec<ResourceId> = (0..n_reads)
                    .map(|_| ResourceId::indexed("res", (mix(&mut rng) as usize) % n_resources))
                    .collect();
                let writes: Vec<ResourceId> = (0..n_writes)
                    .map(|_| ResourceId::indexed("res", (mix(&mut rng) as usize) % n_resources))
                    .collect();
                let (counts, started) = (&counts, &started);
                graph.add_task(format!("t{t}"), &reads, &writes, move || {
                    started.lock().unwrap().push(t);
                    counts[t].fetch_add(1, Ordering::SeqCst);
                    Ok(())
                });
            }
            for _ in 0..extra_edges {
                let task = 1 + (mix(&mut rng) as usize) % (n - 1);
                let dep = (mix(&mut rng) as usize) % task;
                graph.add_dep(task, dep).expect("backward edge is acyclic by construction");
            }
            let edges = edges_of(&graph);
            let stats = graph
                .run(threads, Some(WATCHDOG), None)
                .unwrap_or_else(|e| panic!("random DAG hung at {threads} threads: {e}"));
            prop_assert_eq!(stats.tasks, n);
            prop_assert_eq!(stats.order.len(), n);
            for c in &counts {
                prop_assert_eq!(c.load(Ordering::SeqCst), 1);
            }
            let body_order = started.into_inner().unwrap();
            for order in [&stats.order, &body_order] {
                let mut pos = vec![usize::MAX; n];
                for (slot, &id) in order.iter().enumerate() {
                    pos[id] = slot;
                }
                for &(task, dep) in &edges {
                    prop_assert!(
                        pos[dep] < pos[task],
                        "task {} ran before dependency {} ({} threads)",
                        task, dep, threads
                    );
                }
            }
        }
    }

    /// Forward and self edges are rejected as cycles at construction,
    /// for every split point — the structural half of the deadlock-
    /// freedom argument (all edges point backward, so the lowest
    /// unfinished id is always ready).
    #[test]
    fn forward_edges_are_rejected_at_construction(n in 2usize..20, at in 0usize..20) {
        let at = at % n;
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        for t in 0..n {
            graph.add_task(format!("t{t}"), &[], &[], move || Ok(()));
        }
        // Self edge.
        prop_assert!(matches!(
            graph.add_dep(at, at),
            Err(GraphError::Cycle { task, dep }) if task == at && dep == at
        ));
        // Forward edge.
        if at + 1 < n {
            prop_assert!(matches!(
                graph.add_dep(at, at + 1),
                Err(GraphError::Cycle { .. })
            ));
        }
        // Unknown ids on either end.
        prop_assert!(matches!(graph.add_dep(n + 3, 0), Err(GraphError::UnknownTask(_))));
        prop_assert!(matches!(graph.add_dep(at, n + 3), Err(GraphError::UnknownTask(_))));
    }
}

/// Diamond: one producer, two parallel readers, one join. The classic
/// shape the async step's migrate → (interior ∥ halo) → boundary
/// schedule reduces to.
#[test]
fn diamond_runs_in_topological_order_at_every_width() {
    for &threads in &THREADS {
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let started: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let root = ResourceId::named("root");
        let left = ResourceId::named("left");
        let right = ResourceId::named("right");
        let specs: [(&str, Vec<ResourceId>, Vec<ResourceId>); 4] = [
            ("produce", vec![], vec![root]),
            ("left", vec![root], vec![left]),
            ("right", vec![root], vec![right]),
            ("join", vec![left, right], vec![]),
        ];
        for (t, (label, reads, writes)) in specs.into_iter().enumerate() {
            let (counts, started) = (&counts, &started);
            graph.add_task(label, &reads, &writes, move || {
                started.lock().unwrap().push(t);
                counts[t].fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        assert_eq!(graph.edge_count(), 4, "diamond should infer 4 RAW edges");
        let stats = graph
            .run(threads, Some(WATCHDOG), None)
            .expect("diamond hung");
        assert_eq!(stats.order[0], 0, "producer must claim first");
        assert_eq!(stats.order[3], 3, "join must claim last");
        let order = started.into_inner().unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }
}

/// A 256-task WAW chain on one resource must execute strictly serially
/// in canonical order, regardless of worker count.
#[test]
fn long_chain_serializes_in_canonical_order() {
    const N: usize = 256;
    for &threads in &THREADS {
        let started: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let res = ResourceId::named("accumulator");
        for t in 0..N {
            let started = &started;
            graph.add_task(format!("link{t}"), &[], &[res], move || {
                started.lock().unwrap().push(t);
                Ok(())
            });
        }
        assert_eq!(graph.edge_count(), N - 1, "WAW chain should have N-1 edges");
        let stats = graph
            .run(threads, Some(WATCHDOG), None)
            .expect("chain hung");
        let want: Vec<usize> = (0..N).collect();
        assert_eq!(stats.order, want, "chain claim order must be canonical");
        assert_eq!(
            started.into_inner().unwrap(),
            want,
            "chain body order must be canonical"
        );
        assert_eq!(
            stats.max_queue_depth, 1,
            "a chain never has more than one ready task"
        );
    }
}

/// Wide fan-out: one root, 128 independent leaves, one join reading
/// every leaf output. The scheduler must expose the full width (queue
/// depth reaches the leaf count) and still join exactly once.
#[test]
fn wide_fan_out_exposes_width_and_joins_once() {
    const LEAVES: usize = 128;
    for &threads in &THREADS {
        let counts: Vec<AtomicUsize> = (0..LEAVES + 2).map(|_| AtomicUsize::new(0)).collect();
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let root = ResourceId::named("root");
        {
            let counts = &counts;
            graph.add_task("root", &[], &[root], move || {
                counts[0].fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        let mut leaf_outputs = Vec::with_capacity(LEAVES);
        for l in 0..LEAVES {
            let out = ResourceId::indexed("leaf", l);
            leaf_outputs.push(out);
            let counts = &counts;
            graph.add_task(format!("leaf{l}"), &[root], &[out], move || {
                counts[1 + l].fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        {
            let counts = &counts;
            graph.add_task("join", &leaf_outputs, &[], move || {
                counts[LEAVES + 1].fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        let stats = graph
            .run(threads, Some(WATCHDOG), None)
            .expect("fan-out hung");
        assert_eq!(stats.order[0], 0);
        assert_eq!(*stats.order.last().unwrap(), LEAVES + 1);
        assert_eq!(
            stats.max_queue_depth, LEAVES,
            "all leaves must be ready at once after the root"
        );
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }
}

/// The watchdog converts a stuck schedule into a diagnosable error
/// naming every unfinished task, instead of hanging the suite. The
/// stall here is a dependency that takes far longer than the deadline,
/// leaving its dependent pending while an idle worker hits the
/// deadline — the shape a deadlocked exchange would take.
#[test]
fn watchdog_names_unfinished_tasks() {
    let mut graph: TaskGraph<'_, String> = TaskGraph::new();
    let r = ResourceId::named("stalled");
    graph.add_task("stall", &[], &[r], || {
        std::thread::sleep(Duration::from_millis(400));
        Ok(())
    });
    graph.add_task("blocked", &[r], &[], || Ok(()));
    match graph.run(2, Some(Duration::from_millis(50)), None) {
        Err(RunError::Watchdog { unfinished, .. }) => {
            assert!(
                unfinished.contains(&"blocked".to_string()),
                "watchdog must name the pending dependent, got {unfinished:?}"
            );
        }
        other => panic!("expected watchdog error, got {other:?}"),
    }
}

/// A failing task aborts the run with the canonical-earliest error, and
/// tasks downstream of the failure never execute.
#[test]
fn earliest_failure_wins_and_halts_downstream_work() {
    for &threads in &THREADS {
        let ran_downstream = AtomicUsize::new(0);
        let mut graph: TaskGraph<'_, String> = TaskGraph::new();
        let r = ResourceId::named("r");
        graph.add_task("boom", &[], &[r], || Err("exploded".to_string()));
        {
            let ran = &ran_downstream;
            graph.add_task("after", &[r], &[], move || {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        match graph.run(threads, Some(WATCHDOG), None) {
            Err(RunError::Task { id, label, error }) => {
                assert_eq!(id, 0);
                assert_eq!(label, "boom");
                assert_eq!(error, "exploded");
            }
            other => panic!("expected task failure, got {other:?}"),
        }
        assert_eq!(
            ran_downstream.load(Ordering::SeqCst),
            0,
            "downstream of a failure must not run"
        );
    }
}
