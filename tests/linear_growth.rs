//! End-to-end physics validation: the full solver stack (PM long-range +
//! offloaded short-range gravity + KDK stepping) must reproduce linear
//! perturbation growth, `P(k, a) ∝ D²(a)`, for a gravity-only run from
//! the paper's starting epoch.

use crk_hacc::core::{DeviceConfig, SimConfig, Simulation};
use crk_hacc::cosmo::Growth;
use crk_hacc::kernels::Variant;
use crk_hacc::sycl::{GpuArch, GrfMode, Lang};

fn device_cfg() -> DeviceConfig {
    DeviceConfig {
        lang: Lang::Sycl,
        fast_math: None,
        variant: Variant::Select,
        sg_size: Some(32),
        grf: GrfMode::Default,
    }
}

#[test]
fn gravity_only_run_matches_linear_growth() {
    let mut config = SimConfig::paper_test_problem(64); // 2×8³
    config.z_init = 200.0;
    config.z_final = 100.0;
    config.n_steps = 5;
    config.sub_cycles = 1;
    let mut sim = Simulation::new(config.clone(), device_cfg(), GpuArch::polaris());
    sim.set_gravity_only();

    let n_bins = 4;
    let p_start = sim.measure_power(n_bins);
    let a_start = sim.a;
    sim.run();
    let p_end = sim.measure_power(n_bins);

    let growth = Growth::new(config.cosmo);
    let d2 = (growth.d_of_a(sim.a) / growth.d_of_a(a_start)).powi(2);
    assert!(d2 > 2.0, "z=200→100 should roughly double D: D² = {d2}");

    // The lowest-k bin is the cleanest linear mode.
    let b0 = &p_start[0];
    let b1 = &p_end[0];
    assert!(b0.power > 0.0);
    let ratio = b1.power / b0.power;
    assert!(
        (ratio / d2 - 1.0).abs() < 0.35,
        "low-k power grew ×{ratio:.3}, linear theory says ×{d2:.3}"
    );
}

#[test]
fn displacements_grow_with_the_growth_factor() {
    // A cheaper, more robust check: rms displacement from the initial
    // state scales like D(a) − D(a0) in the Zel'dovich regime.
    let mut config = SimConfig::paper_test_problem(64);
    config.z_init = 200.0;
    config.z_final = 120.0;
    config.n_steps = 4;
    config.sub_cycles = 1;
    let mut sim = Simulation::new(config.clone(), device_cfg(), GpuArch::frontier());
    sim.set_gravity_only();
    let initial = sim.pos.clone();
    let a0 = sim.a;

    sim.step();
    sim.step();
    let d_mid = sim.rms_displacement_from(&initial);
    let a_mid = sim.a;
    sim.step();
    sim.step();
    let d_end = sim.rms_displacement_from(&initial);

    let growth = Growth::new(config.cosmo);
    let g = |a: f64| growth.d_of_a(a);
    let predicted = (g(sim.a) - g(a0)) / (g(a_mid) - g(a0));
    let measured = d_end / d_mid;
    assert!(
        (measured / predicted - 1.0).abs() < 0.2,
        "displacement growth {measured:.3} vs Zel'dovich prediction {predicted:.3}"
    );
}
