//! Golden snapshots: two end-to-end runs are pinned bit-for-bit against
//! committed reference files, so *any* unintended change to the physics,
//! the kernel code, the scheduler, or the FP32 evaluation order fails
//! loudly.
//!
//! Pinned quantities are stored as the hex image of their f64 bits
//! (`_bits` keys; compared exactly) alongside a human-readable rendering
//! (`_human` keys; informational only). Because the execution engine
//! commits atomics in a fixed order, the goldens hold at every thread
//! count — these tests run under the default (parallel, auto-width)
//! policy.
//!
//! Regenerating after an *intended* physics change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_snapshot
//! git diff tests/golden/   # review every changed bit on purpose
//! ```

use crk_hacc::core::{DeviceConfig, FullCheckpoint, SimConfig, Simulation};
use crk_hacc::kernels::{run_hydro_step, DeviceParticles, HostParticles, Variant, WorkLists};
use crk_hacc::sycl::{Device, GpuArch, GrfMode, Lang, LaunchConfig, Toolchain};
use crk_hacc::telemetry::Recorder;
use crk_hacc::tree::{InteractionList, RcbTree};
use serde_json::Value;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One pinned record: ordered (key, exact-string) pairs plus the
/// human-readable companions.
struct Golden {
    entries: Vec<(String, String)>,
}

impl Golden {
    fn new() -> Self {
        Golden {
            entries: Vec::new(),
        }
    }

    fn pin_str(&mut self, key: &str, value: impl Into<String>) {
        self.entries.push((key.to_string(), value.into()));
    }

    fn pin_f64(&mut self, key: &str, value: f64) {
        self.pin_str(&format!("{key}_bits"), format!("{:016x}", value.to_bits()));
        self.pin_str(&format!("{key}_human"), format!("{value:.6e}"));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            writeln!(out, "  \"{k}\": \"{v}\"{comma}").unwrap();
        }
        out.push_str("}\n");
        out
    }

    /// Writes the golden file (regen mode) or compares every key of the
    /// committed file against this run. `_human` keys are informational:
    /// mismatches there are reported but only `_bits`/hash keys fail.
    fn check(&self, name: &str) {
        let path = golden_dir().join(name);
        if std::env::var_os("GOLDEN_REGEN").is_some() {
            std::fs::create_dir_all(golden_dir()).unwrap();
            std::fs::write(&path, self.to_json()).unwrap();
            eprintln!("[golden] regenerated {}", path.display());
            return;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run GOLDEN_REGEN=1 cargo test \
                 --release --test golden_snapshot to create it",
                path.display()
            )
        });
        let golden: Value = serde_json::from_str(&text).expect("parse golden file");
        let golden = golden.as_object().expect("golden file is an object");
        assert_eq!(
            golden.len(),
            self.entries.len(),
            "{name}: pinned-key set changed — regenerate the golden file"
        );
        for (key, got) in &self.entries {
            let want = golden
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("{name}: key {key} missing from golden file"))
                .1
                .as_str()
                .expect("golden values are strings");
            assert_eq!(
                got, want,
                "{name}: {key} drifted from the committed golden value \
                 (if this change is intended, regenerate with GOLDEN_REGEN=1)"
            );
        }
    }
}

/// The quickstart configuration (examples/quickstart.rs): 2×8³ particles
/// on simulated Frontier, two long steps. Pins the run summary, global
/// conserved sums, and the FNV-1a hash of the full final checkpoint.
#[test]
fn quickstart_run_matches_golden() {
    let config = SimConfig::smoke();
    let device = DeviceConfig {
        lang: Lang::Sycl,
        fast_math: None,
        variant: Variant::Select,
        sg_size: Some(64),
        grf: GrfMode::Default,
    };
    let mut sim = Simulation::new(config, device, GpuArch::frontier());
    let summary = sim.run();

    let mut g = Golden::new();
    g.pin_str("steps", summary.steps.to_string());
    g.pin_f64("a_final", summary.a_final);
    g.pin_f64("gpu_seconds", summary.gpu_seconds);
    g.pin_f64("total_mass", sim.mass.iter().sum::<f64>());
    g.pin_f64(
        "total_internal_energy",
        sim.u_int
            .iter()
            .zip(&sim.mass)
            .map(|(u, m)| u * m)
            .sum::<f64>(),
    );
    let p = sim.total_momentum();
    g.pin_f64("momentum_x", p[0]);
    g.pin_f64("momentum_y", p[1]);
    g.pin_f64("momentum_z", p[2]);
    let mut fnv = Fnv::new();
    fnv.eat(&FullCheckpoint::capture(&sim).to_bytes());
    g.pin_str("checkpoint_fnv", fnv.hex());
    g.check("quickstart.json");
}

/// A reduced Sedov–Taylor blast (examples/sedov_blast.rs at 8³, 8
/// steps): point energy injection in a cold uniform gas, host leapfrog
/// around the device CRK-SPH kernels. Pins the conserved sums, the
/// elapsed time, and the FNV-1a hash of the final particle state.
#[test]
fn sedov_blast_matches_golden() {
    let n_side = 8usize;
    let box_size = n_side as f64;
    let h0 = 1.3;
    let mut hp = HostParticles::default();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                hp.pos
                    .push([i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5]);
                hp.vel.push([0.0; 3]);
                hp.mass.push(1.0);
                hp.h.push(h0);
                hp.u.push(1e-4);
            }
        }
    }
    let center = [box_size / 2.0; 3];
    let blast = hp
        .pos
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da: f64 = a.iter().zip(&center).map(|(x, c)| (x - c) * (x - c)).sum();
            let db: f64 = b.iter().zip(&center).map(|(x, c)| (x - c) * (x - c)).sum();
            da.partial_cmp(&db).unwrap()
        })
        .unwrap()
        .0;
    hp.u[blast] = 100.0;

    let device = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
    let launch = LaunchConfig::defaults_for(&device.arch).with_sg_size(64);
    let variant = Variant::Select;
    let mut t = 0.0f64;
    let mut final_digest = String::new();
    for step in 0..8 {
        let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(launch.sg_size));
        let cutoff = 2.0 * hp.h.iter().cloned().fold(0.0, f64::max) + 1e-9;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let work = WorkLists::build(&tree, &list, launch.sg_size);
        let ordered = hp.permuted(&tree.order);
        let data = DeviceParticles::upload(&ordered);
        run_hydro_step(
            &device,
            &data,
            &work,
            variant,
            box_size as f32,
            launch,
            &Recorder::new(),
        )
        .expect("fault-free hydro step must succeed");
        let acc = data.download_vec3(&data.acc);
        let du = data.du_dt.to_f32_vec();
        let dt = (data.dt_min.read_f32(0) as f64).min(0.05);
        for (slot, &pi) in tree.order.iter().enumerate() {
            let pi = pi as usize;
            for c in 0..3 {
                hp.vel[pi][c] += acc[slot][c] as f64 * dt;
                hp.pos[pi][c] = (hp.pos[pi][c] + hp.vel[pi][c] * dt).rem_euclid(box_size);
            }
            hp.u[pi] = (hp.u[pi] + du[slot] as f64 * dt).max(1e-6);
        }
        t += dt;
        if step == 7 {
            final_digest = format!("{:016x}", data.state_digest());
        }
    }

    let mut g = Golden::new();
    g.pin_f64("elapsed_time", t);
    g.pin_f64("total_mass", hp.mass.iter().sum::<f64>());
    g.pin_f64(
        "total_internal_energy",
        hp.u.iter().zip(&hp.mass).map(|(u, m)| u * m).sum::<f64>(),
    );
    g.pin_f64(
        "total_kinetic_energy",
        hp.vel
            .iter()
            .zip(&hp.mass)
            .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum::<f64>(),
    );
    g.pin_str("device_state_fnv", final_digest);
    let mut fnv = Fnv::new();
    for i in 0..hp.len() {
        for c in 0..3 {
            fnv.eat(&hp.pos[i][c].to_bits().to_le_bytes());
            fnv.eat(&hp.vel[i][c].to_bits().to_le_bytes());
        }
        fnv.eat(&hp.u[i].to_bits().to_le_bytes());
    }
    g.pin_str("host_state_fnv", fnv.hex());
    g.check("sedov.json");
}
