#![warn(missing_docs)]
//! # crk-hacc
//!
//! A Rust reproduction of the SC'23 paper *"A Performance-Portable SYCL
//! Implementation of CRK-HACC for Exascale"* (Rangel, Frontiere, Pennycook,
//! Ma, Pope, Madananth).
//!
//! This umbrella crate re-exports the workspace members so examples and
//! integration tests can use a single import root:
//!
//! - [`cosmo`] — background cosmology (Friedmann expansion, growth, power spectra)
//! - [`fft`] — self-contained 1D/3D FFTs for the Poisson solver
//! - [`mesh`] — particle-mesh long-range gravity and Zel'dovich initial conditions
//! - [`tree`] — RCB tree, chaining mesh, leaf interaction lists, FOF halo finder
//! - [`sycl`] — the simulated SIMT device, toolchains, and architecture cost models
//! - [`kernels`] — the offloaded CRK-SPH + gravity kernels in all communication variants
//! - [`core`] — the full application driver (time stepper, particle store, timers)
//! - [`comm`] — the simulated MPI layer: typed point-to-point messages over
//!   each system's modeled interconnect, with deterministic delivery order
//! - [`telemetry`] — per-launch kernel telemetry: spans, counters, instruction-class
//!   profiles, and Chrome-trace / JSON-Lines exporters
//! - [`metrics`] — performance portability and code-divergence analysis
//! - [`tune`] — the runtime autotuner's persistent, hostile-input-hardened
//!   tuning cache and deterministic epsilon-greedy selector
//! - [`bench`](mod@bench) — experiment machinery: workloads, sweeps, and
//!   the cross-rank performance health report
//! - [`syclomatic`] — the miniature CUDA→SYCL migration pipeline (§4)
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every reproduced table and figure.

pub use hacc_bench as bench;
pub use hacc_comm as comm;
pub use hacc_cosmo as cosmo;
pub use hacc_fft as fft;
pub use hacc_kernels as kernels;
pub use hacc_mesh as mesh;
pub use hacc_metrics as metrics;
pub use hacc_telemetry as telemetry;
pub use hacc_tree as tree;
pub use hacc_tune as tune;
pub use sycl_sim as sycl;
pub use syclomatic_mini as syclomatic;

pub use hacc_core as core;
