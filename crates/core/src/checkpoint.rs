//! Checkpointing of particle state.
//!
//! The paper's retrospective (§7.2) highlights how extracting the hot
//! kernels into standalone applications *driven by checkpoint files*
//! accelerated optimization work. This module provides the same
//! workflow: a compact binary snapshot of the hydro-relevant particle
//! state that the bench harness can replay into any single kernel
//! without running the full simulation.

use crate::sim::{Simulation, Species};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hacc_kernels::HostParticles;

/// Magic tag of the checkpoint format.
const MAGIC: u32 = 0x4843_4B31; // "HCK1"

/// A particle-state snapshot sufficient to drive the standalone kernels.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Scale factor at capture time.
    pub a: f64,
    /// Periodic box side in grid units.
    pub box_size: f64,
    /// Baryon particle fields.
    pub particles: HostParticles,
}

impl Checkpoint {
    /// Captures the baryon state of a running simulation.
    pub fn capture(sim: &Simulation) -> Self {
        let a2 = sim.a * sim.a;
        let mut hp = HostParticles::default();
        for i in 0..sim.n_particles() {
            if sim.species[i] != Species::Baryon {
                continue;
            }
            hp.pos.push(sim.pos[i]);
            hp.vel
                .push([sim.mom[i][0] / a2, sim.mom[i][1] / a2, sim.mom[i][2] / a2]);
            hp.mass.push(sim.mass[i]);
            hp.h.push(sim.h[i]);
            hp.u.push(sim.u_int[i].max(1e-12));
        }
        Self {
            a: sim.a,
            box_size: sim.config.box_spec.ng as f64,
            particles: hp,
        }
    }

    /// Serializes to a compact binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.particles.len();
        let mut buf = BytesMut::with_capacity(32 + n * 9 * 8);
        buf.put_u32(MAGIC);
        buf.put_u32(n as u32);
        buf.put_f64(self.a);
        buf.put_f64(self.box_size);
        for i in 0..n {
            for c in 0..3 {
                buf.put_f64(self.particles.pos[i][c]);
            }
            for c in 0..3 {
                buf.put_f64(self.particles.vel[i][c]);
            }
            buf.put_f64(self.particles.mass[i]);
            buf.put_f64(self.particles.h[i]);
            buf.put_f64(self.particles.u[i]);
        }
        buf.freeze()
    }

    /// Deserializes a blob produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(mut data: Bytes) -> Result<Self, String> {
        if data.remaining() < 24 {
            return Err("checkpoint truncated (header)".into());
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(format!("bad checkpoint magic {magic:#x}"));
        }
        let n = data.get_u32() as usize;
        let a = data.get_f64();
        let box_size = data.get_f64();
        if data.remaining() < n * 9 * 8 {
            return Err("checkpoint truncated (payload)".into());
        }
        let mut hp = HostParticles::default();
        for _ in 0..n {
            hp.pos
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            hp.vel
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            hp.mass.push(data.get_f64());
            hp.h.push(data.get_f64());
            hp.u.push(data.get_f64());
        }
        hp.validate()?;
        Ok(Self {
            a,
            box_size,
            particles: hp,
        })
    }

    /// Writes to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let data = std::fs::read(path).map_err(|e| e.to_string())?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut hp = HostParticles::default();
        for i in 0..10 {
            hp.pos.push([i as f64, 2.0 * i as f64, 0.5]);
            hp.vel.push([0.1, -0.2, 0.3 * i as f64]);
            hp.mass.push(1.5);
            hp.h.push(1.0);
            hp.u.push(0.01 * i as f64 + 1e-12);
        }
        Checkpoint {
            a: 0.01,
            box_size: 16.0,
            particles: hp,
        }
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        let blob = cp.to_bytes();
        let back = Checkpoint::from_bytes(blob).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = BytesMut::from(&sample().to_bytes()[..]);
        blob[0] = 0;
        assert!(Checkpoint::from_bytes(blob.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let blob = sample().to_bytes();
        let cut = blob.slice(0..blob.len() - 8);
        assert!(Checkpoint::from_bytes(cut).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cp = sample();
        let dir = std::env::temp_dir().join("hacc_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ckpt");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, back);
        std::fs::remove_file(&path).ok();
    }
}
