//! Checkpointing of particle state.
//!
//! The paper's retrospective (§7.2) highlights how extracting the hot
//! kernels into standalone applications *driven by checkpoint files*
//! accelerated optimization work. This module provides the same
//! workflow: a compact binary snapshot of the hydro-relevant particle
//! state that the bench harness can replay into any single kernel
//! without running the full simulation.
//!
//! Two formats live here:
//!
//! * `HCK1` ([`Checkpoint`]) — the baryon-only kernel-replay snapshot
//!   described above.
//! * `HCK2` ([`FullCheckpoint`]) — a bit-exact snapshot of the *entire*
//!   driver state (both species, momenta, scale factor, sub-cycle
//!   state), sufficient to restart a run mid-stream and reproduce it
//!   bit-for-bit. This is the rollback target of the recovery policy
//!   (see [`crate::recovery`]).
//!
//! Both parsers treat their input as hostile: particle counts go
//! through checked arithmetic and an allocation cap before any memory
//! is reserved, so a corrupted or truncated header can never trigger an
//! overflow or an absurd allocation.

use crate::sim::{Simulation, Species};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hacc_kernels::HostParticles;
use std::fmt;

/// Magic tag of the checkpoint format.
const MAGIC: u32 = 0x4843_4B31; // "HCK1"

/// Magic tag of the full-state checkpoint format.
const MAGIC_FULL: u32 = 0x4843_4B32; // "HCK2"

/// Typed failure of a checkpoint parse, load, or restore. Shared by
/// every checkpoint format in the workspace (`HCK1`, `HCK2`, and the
/// multi-rank `HCK3` of [`crate::distckpt`]), so callers can match on
/// the failure class instead of grepping strings.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// The blob ended before the named region was complete.
    Truncated {
        /// Which region was cut short (`"header"`, `"payload"`, …).
        what: &'static str,
    },
    /// The leading magic word did not match the expected format tag.
    BadMagic {
        /// Magic found in the blob.
        found: u32,
        /// Magic the parser expected.
        expected: u32,
    },
    /// The header claims more particles than the allocation cap allows.
    TooLarge {
        /// Header-claimed particle count.
        claimed: usize,
        /// The cap (`MAX_PARTICLES`, 2^27).
        cap: usize,
    },
    /// The payload size computation overflowed `usize`.
    SizeOverflow,
    /// A species tag byte outside the encodable set.
    BadSpecies {
        /// The offending tag byte.
        tag: u8,
    },
    /// Header fields are internally inconsistent (e.g. a rank count of
    /// zero in a multi-rank checkpoint).
    Malformed {
        /// What was inconsistent.
        detail: String,
    },
    /// The decoded particle fields failed semantic validation.
    Invalid {
        /// The validator's description.
        detail: String,
    },
    /// A restore targeted a simulation whose particle count differs
    /// from the snapshot (a snapshot cannot resize a simulation).
    SizeMismatch {
        /// Particles in the checkpoint.
        checkpoint: usize,
        /// Particles in the restore target.
        simulation: usize,
    },
    /// Reading or writing the checkpoint file failed.
    Io {
        /// The OS error, stringified (keeps the enum `Clone`).
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated ({what})")
            }
            CheckpointError::BadMagic { found, expected } => {
                write!(
                    f,
                    "bad checkpoint magic {found:#x} (expected {expected:#x})"
                )
            }
            CheckpointError::TooLarge { claimed, cap } => {
                write!(f, "checkpoint claims {claimed} particles (cap {cap})")
            }
            CheckpointError::SizeOverflow => write!(f, "checkpoint payload size overflows"),
            CheckpointError::BadSpecies { tag } => write!(f, "bad species tag {tag}"),
            CheckpointError::Malformed { detail } => {
                write!(f, "malformed checkpoint: {detail}")
            }
            CheckpointError::Invalid { detail } => {
                write!(f, "checkpoint failed validation: {detail}")
            }
            CheckpointError::SizeMismatch {
                checkpoint,
                simulation,
            } => write!(
                f,
                "checkpoint has {checkpoint} particles but the simulation has {simulation}"
            ),
            CheckpointError::Io { detail } => write!(f, "checkpoint io error: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io {
            detail: e.to_string(),
        }
    }
}

/// Allocation cap: headers claiming more particles than this are
/// rejected before any buffer is reserved (2²⁷ ≈ 134M particles is far
/// beyond anything the simulated driver runs, yet only ~10 GiB — a
/// hostile 32-bit count can claim 4 billion).
pub(crate) const MAX_PARTICLES: usize = 1 << 27;

/// Per-particle payload bytes of the HCK1 format (9 f64 fields).
const HCK1_STRIDE: usize = 9 * 8;

/// Per-particle payload bytes of the HCK2 format (10 f64 fields plus a
/// species byte).
const HCK2_STRIDE: usize = 10 * 8 + 1;

/// Checked `n × stride` for a header-claimed particle count: errors on
/// multiplication overflow or a count beyond [`MAX_PARTICLES`].
pub(crate) fn payload_bytes(n: usize, stride: usize) -> Result<usize, CheckpointError> {
    if n > MAX_PARTICLES {
        return Err(CheckpointError::TooLarge {
            claimed: n,
            cap: MAX_PARTICLES,
        });
    }
    n.checked_mul(stride).ok_or(CheckpointError::SizeOverflow)
}

/// A particle-state snapshot sufficient to drive the standalone kernels.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Scale factor at capture time.
    pub a: f64,
    /// Periodic box side in grid units.
    pub box_size: f64,
    /// Baryon particle fields.
    pub particles: HostParticles,
}

impl Checkpoint {
    /// Captures the baryon state of a running simulation.
    pub fn capture(sim: &Simulation) -> Self {
        let a2 = sim.a * sim.a;
        let mut hp = HostParticles::default();
        for i in 0..sim.n_particles() {
            if sim.species[i] != Species::Baryon {
                continue;
            }
            hp.pos.push(sim.pos[i]);
            hp.vel
                .push([sim.mom[i][0] / a2, sim.mom[i][1] / a2, sim.mom[i][2] / a2]);
            hp.mass.push(sim.mass[i]);
            hp.h.push(sim.h[i]);
            hp.u.push(sim.u_int[i].max(1e-12));
        }
        Self {
            a: sim.a,
            box_size: sim.config.box_spec.ng as f64,
            particles: hp,
        }
    }

    /// Serializes to a compact binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.particles.len();
        let mut buf = BytesMut::with_capacity(32 + n * 9 * 8);
        buf.put_u32(MAGIC);
        buf.put_u32(n as u32);
        buf.put_f64(self.a);
        buf.put_f64(self.box_size);
        for i in 0..n {
            for c in 0..3 {
                buf.put_f64(self.particles.pos[i][c]);
            }
            for c in 0..3 {
                buf.put_f64(self.particles.vel[i][c]);
            }
            buf.put_f64(self.particles.mass[i]);
            buf.put_f64(self.particles.h[i]);
            buf.put_f64(self.particles.u[i]);
        }
        buf.freeze()
    }

    /// Deserializes a blob produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(mut data: Bytes) -> Result<Self, CheckpointError> {
        if data.remaining() < 24 {
            return Err(CheckpointError::Truncated { what: "header" });
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: magic,
                expected: MAGIC,
            });
        }
        let n = data.get_u32() as usize;
        let a = data.get_f64();
        let box_size = data.get_f64();
        if data.remaining() < payload_bytes(n, HCK1_STRIDE)? {
            return Err(CheckpointError::Truncated { what: "payload" });
        }
        let mut hp = HostParticles::default();
        hp.pos.reserve(n);
        hp.vel.reserve(n);
        hp.mass.reserve(n);
        hp.h.reserve(n);
        hp.u.reserve(n);
        for _ in 0..n {
            hp.pos
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            hp.vel
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            hp.mass.push(data.get_f64());
            hp.h.push(data.get_f64());
            hp.u.push(data.get_f64());
        }
        hp.validate()
            .map_err(|detail| CheckpointError::Invalid { detail })?;
        Ok(Self {
            a,
            box_size,
            particles: hp,
        })
    }

    /// Writes to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }
}

/// A bit-exact snapshot of the full driver state (`HCK2`).
///
/// Unlike [`Checkpoint`], which keeps only the baryon fields a
/// standalone kernel needs (and converts momenta to velocities with a
/// lossy divide), this captures every f64 the time stepper owns for
/// *both* species, verbatim. Restoring it and re-running produces a
/// bit-identical trajectory, which makes it the rollback target for
/// checkpoint-based recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct FullCheckpoint {
    /// Scale factor at capture time.
    pub a: f64,
    /// Completed long steps at capture time.
    pub step_count: usize,
    /// Sub-cycle count the next long step will use.
    pub adaptive_sub_cycles: usize,
    /// Comoving positions, both species.
    pub pos: Vec<[f64; 3]>,
    /// Momentum variable `u = a² dx/dt`, both species.
    pub mom: Vec<[f64; 3]>,
    /// Masses.
    pub mass: Vec<f64>,
    /// Specific internal energies.
    pub u_int: Vec<f64>,
    /// SPH smoothing lengths.
    pub h: Vec<f64>,
    /// Stellar mass formed per particle.
    pub star_mass: Vec<f64>,
    /// Species tags.
    pub species: Vec<Species>,
}

impl FullCheckpoint {
    /// Captures the complete mutable state of a running simulation.
    pub fn capture(sim: &Simulation) -> Self {
        Self {
            a: sim.a,
            step_count: sim.step_count,
            adaptive_sub_cycles: sim.adaptive_sub_cycles,
            pos: sim.pos.clone(),
            mom: sim.mom.clone(),
            mass: sim.mass.clone(),
            u_int: sim.u_int.clone(),
            h: sim.h.clone(),
            star_mass: sim.star_mass.clone(),
            species: sim.species.clone(),
        }
    }

    /// Number of particles in the snapshot.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Restores the snapshot into a simulation built from the *same*
    /// configuration. Errors if the particle count differs (a snapshot
    /// cannot resize a simulation).
    pub fn restore_into(&self, sim: &mut Simulation) -> Result<(), CheckpointError> {
        if self.len() != sim.n_particles() {
            return Err(CheckpointError::SizeMismatch {
                checkpoint: self.len(),
                simulation: sim.n_particles(),
            });
        }
        sim.a = self.a;
        sim.step_count = self.step_count;
        sim.adaptive_sub_cycles = self.adaptive_sub_cycles;
        sim.pos.copy_from_slice(&self.pos);
        sim.mom.copy_from_slice(&self.mom);
        sim.mass.copy_from_slice(&self.mass);
        sim.u_int.copy_from_slice(&self.u_int);
        sim.h.copy_from_slice(&self.h);
        sim.star_mass.copy_from_slice(&self.star_mass);
        sim.species.copy_from_slice(&self.species);
        Ok(())
    }

    /// Serializes to a compact binary blob. All floats are stored as
    /// their exact IEEE-754 bits — the round trip is lossless.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let mut buf = BytesMut::with_capacity(40 + n * HCK2_STRIDE);
        buf.put_u32(MAGIC_FULL);
        buf.put_u32(n as u32);
        buf.put_f64(self.a);
        buf.put_u64(self.step_count as u64);
        buf.put_u64(self.adaptive_sub_cycles as u64);
        for i in 0..n {
            for c in 0..3 {
                buf.put_f64(self.pos[i][c]);
            }
            for c in 0..3 {
                buf.put_f64(self.mom[i][c]);
            }
            buf.put_f64(self.mass[i]);
            buf.put_f64(self.u_int[i]);
            buf.put_f64(self.h[i]);
            buf.put_f64(self.star_mass[i]);
            buf.put_u8(match self.species[i] {
                Species::DarkMatter => 0,
                Species::Baryon => 1,
            });
        }
        buf.freeze()
    }

    /// Deserializes a blob produced by [`FullCheckpoint::to_bytes`],
    /// treating the input as untrusted.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, CheckpointError> {
        if data.remaining() < 32 {
            return Err(CheckpointError::Truncated { what: "header" });
        }
        let magic = data.get_u32();
        if magic != MAGIC_FULL {
            return Err(CheckpointError::BadMagic {
                found: magic,
                expected: MAGIC_FULL,
            });
        }
        let n = data.get_u32() as usize;
        let a = data.get_f64();
        let step_count = data.get_u64() as usize;
        let adaptive_sub_cycles = data.get_u64() as usize;
        if data.remaining() < payload_bytes(n, HCK2_STRIDE)? {
            return Err(CheckpointError::Truncated { what: "payload" });
        }
        let mut cp = Self {
            a,
            step_count,
            adaptive_sub_cycles,
            pos: Vec::with_capacity(n),
            mom: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
            u_int: Vec::with_capacity(n),
            h: Vec::with_capacity(n),
            star_mass: Vec::with_capacity(n),
            species: Vec::with_capacity(n),
        };
        for _ in 0..n {
            cp.pos
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            cp.mom
                .push([data.get_f64(), data.get_f64(), data.get_f64()]);
            cp.mass.push(data.get_f64());
            cp.u_int.push(data.get_f64());
            cp.h.push(data.get_f64());
            cp.star_mass.push(data.get_f64());
            cp.species.push(match data.get_u8() {
                0 => Species::DarkMatter,
                1 => Species::Baryon,
                tag => return Err(CheckpointError::BadSpecies { tag }),
            });
        }
        Ok(cp)
    }

    /// Writes to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut hp = HostParticles::default();
        for i in 0..10 {
            hp.pos.push([i as f64, 2.0 * i as f64, 0.5]);
            hp.vel.push([0.1, -0.2, 0.3 * i as f64]);
            hp.mass.push(1.5);
            hp.h.push(1.0);
            hp.u.push(0.01 * i as f64 + 1e-12);
        }
        Checkpoint {
            a: 0.01,
            box_size: 16.0,
            particles: hp,
        }
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        let blob = cp.to_bytes();
        let back = Checkpoint::from_bytes(blob).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut blob = BytesMut::from(&sample().to_bytes()[..]);
        blob[0] = 0;
        assert!(Checkpoint::from_bytes(blob.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let blob = sample().to_bytes();
        let cut = blob.slice(0..blob.len() - 8);
        assert!(Checkpoint::from_bytes(cut).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cp = sample();
        let dir = std::env::temp_dir().join("hacc_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ckpt");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(cp, back);
        std::fs::remove_file(&path).ok();
    }

    fn sample_full() -> FullCheckpoint {
        let n = 12;
        FullCheckpoint {
            a: 0.015,
            step_count: 3,
            adaptive_sub_cycles: 5,
            pos: (0..n).map(|i| [i as f64, 0.25 * i as f64, 7.5]).collect(),
            mom: (0..n).map(|i| [-0.1, 0.2, 1e-3 * i as f64]).collect(),
            mass: (0..n).map(|i| 1.0 + 0.1 * (i % 2) as f64).collect(),
            u_int: (0..n).map(|i| 1e-4 * i as f64).collect(),
            h: vec![0.9; n],
            star_mass: vec![0.0; n],
            species: (0..n)
                .map(|i| {
                    if i < n / 2 {
                        Species::DarkMatter
                    } else {
                        Species::Baryon
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn full_checkpoint_round_trips_bit_exactly() {
        // Include values a lossy encoding would mangle: subnormals,
        // negative zero, and a full-precision irrational.
        let mut cp = sample_full();
        cp.mom[0] = [f64::MIN_POSITIVE / 4.0, -0.0, std::f64::consts::PI];
        cp.u_int[1] = f64::from_bits(0x0000_0000_0000_0001);
        let back = FullCheckpoint::from_bytes(cp.to_bytes()).unwrap();
        assert_eq!(cp.len(), back.len());
        for i in 0..cp.len() {
            for c in 0..3 {
                assert_eq!(cp.pos[i][c].to_bits(), back.pos[i][c].to_bits());
                assert_eq!(cp.mom[i][c].to_bits(), back.mom[i][c].to_bits());
            }
            assert_eq!(cp.u_int[i].to_bits(), back.u_int[i].to_bits());
        }
        assert_eq!(cp, back);
    }

    #[test]
    fn full_checkpoint_rejects_bad_magic_and_species() {
        let mut blob = BytesMut::from(&sample_full().to_bytes()[..]);
        blob[0] = 0x55;
        assert!(FullCheckpoint::from_bytes(blob.freeze()).is_err());
        let mut blob = BytesMut::from(&sample_full().to_bytes()[..]);
        let last = blob.len() - 1; // species byte of the final particle
        blob[last] = 7;
        assert!(FullCheckpoint::from_bytes(blob.freeze()).is_err());
    }

    #[test]
    fn hostile_particle_counts_are_rejected_before_allocating() {
        // A header claiming u32::MAX particles must fail cleanly (no
        // overflow, no multi-gigabyte reserve) in both formats.
        for magic in [MAGIC, MAGIC_FULL] {
            let mut buf = BytesMut::new();
            buf.put_u32(magic);
            buf.put_u32(u32::MAX);
            buf.put_f64(0.01);
            buf.put_u64(0);
            buf.put_u64(0);
            let err = if magic == MAGIC {
                Checkpoint::from_bytes(buf.freeze()).unwrap_err()
            } else {
                FullCheckpoint::from_bytes(buf.freeze()).unwrap_err()
            };
            assert!(
                matches!(
                    err,
                    CheckpointError::TooLarge { claimed, cap }
                        if claimed == u32::MAX as usize && cap == MAX_PARTICLES
                ),
                "unexpected error: {err}"
            );
        }
    }

    mod hostile_blobs {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Random truncations of a valid HCK1 blob never panic.
            #[test]
            fn truncated_hck1_never_panics(frac in 0.0f64..1.0) {
                let blob = sample().to_bytes();
                let cut = (blob.len() as f64 * frac) as usize;
                let _ = Checkpoint::from_bytes(blob.slice(0..cut));
            }

            /// Random truncations of a valid HCK2 blob never panic.
            #[test]
            fn truncated_hck2_never_panics(frac in 0.0f64..1.0) {
                let blob = sample_full().to_bytes();
                let cut = (blob.len() as f64 * frac) as usize;
                let _ = FullCheckpoint::from_bytes(blob.slice(0..cut));
            }

            /// Single-bit flips anywhere in a valid HCK1 blob either
            /// parse (the flip hit a benign payload bit) or error —
            /// never panic, never allocate absurdly.
            #[test]
            fn bit_flipped_hck1_never_panics(byte_frac in 0.0f64..1.0, bit in 0usize..8) {
                let blob = sample().to_bytes();
                let mut raw = BytesMut::from(&blob[..]);
                let idx = ((raw.len() as f64 * byte_frac) as usize).min(raw.len() - 1);
                raw[idx] ^= 1 << bit;
                let _ = Checkpoint::from_bytes(raw.freeze());
            }

            /// Same for HCK2.
            #[test]
            fn bit_flipped_hck2_never_panics(byte_frac in 0.0f64..1.0, bit in 0usize..8) {
                let blob = sample_full().to_bytes();
                let mut raw = BytesMut::from(&blob[..]);
                let idx = ((raw.len() as f64 * byte_frac) as usize).min(raw.len() - 1);
                raw[idx] ^= 1 << bit;
                let _ = FullCheckpoint::from_bytes(raw.freeze());
            }
        }
    }
}
