//! Coordinated multi-rank checkpointing with buddy replication (`HCK3`).
//!
//! The distributed analogue of [`crate::checkpoint`]: a
//! [`MultiRankCheckpoint`] captures *every* rank's particle store plus
//! the decomposition and step metadata at a globally consistent step
//! boundary — the multi-rank engine only checkpoints between steps,
//! when no message is in flight, so the snapshot needs no message-log
//! and a restore is trivially consistent.
//!
//! Production HACC survives node loss by writing checkpoints to the
//! parallel filesystem; the cheaper in-memory scheme modeled here is
//! *buddy replication*: each rank mirrors its snapshot into the memory
//! of one 27-neighborhood partner ([`buddy_of`]), so losing any single
//! rank leaves a complete copy of its state on a survivor. The mirror
//! traffic is charged on the interconnect by the resilient run loop
//! (see [`crate::resilience`]); this module owns the format, the buddy
//! placement rule, and the hostile-input-hardened wire codec.
//!
//! Like `HCK1`/`HCK2`, the parser treats its input as untrusted:
//! counts go through [`crate::checkpoint`]'s checked arithmetic and
//! allocation cap before any buffer is reserved, and every failure is
//! a typed [`CheckpointError`].

use crate::checkpoint::{payload_bytes, CheckpointError};
use crate::rank::RankLayout;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic tag of the multi-rank checkpoint format.
const MAGIC_MULTI: u32 = 0x4843_4B33; // "HCK3"

/// Per-particle payload bytes: id + pos + mom + mass + h + u, all as
/// 8-byte words.
const HCK3_STRIDE: usize = 10 * 8;

/// Fixed header bytes: magic + step + ng + dims + rank count.
const HCK3_HEADER_BYTES: usize = 4 + 8 + 8 + 3 * 8 + 8;

/// Bytes of one rank's section header (its particle count).
const HCK3_RANK_HEADER_BYTES: usize = 8;

/// One rank's complete particle store at a step boundary, id-sorted —
/// the public mirror of the engine's internal per-rank state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankSnapshot {
    /// Global particle ids, ascending.
    pub ids: Vec<u64>,
    /// Positions in grid units.
    pub pos: Vec<[f64; 3]>,
    /// Momenta (comoving).
    pub mom: Vec<[f64; 3]>,
    /// Masses.
    pub mass: Vec<f64>,
    /// SPH smoothing lengths.
    pub h: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
}

impl RankSnapshot {
    /// Number of particles in the snapshot.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the snapshot holds no particles.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Serialized bytes of this rank's section (header + payload) —
    /// also the modeled size of its buddy-mirror transfer.
    pub fn wire_bytes(&self) -> u64 {
        (HCK3_RANK_HEADER_BYTES + self.len() * HCK3_STRIDE) as u64
    }
}

/// The buddy placement rule: a rank mirrors its snapshot to its
/// lowest-numbered 27-neighborhood partner. Deterministic, purely a
/// function of the layout, and never the rank itself — except in the
/// degenerate single-rank layout, where there is no partner (and no
/// rank loss to survive).
pub fn buddy_of(layout: &RankLayout, rank: usize) -> usize {
    layout
        .neighbors(rank)
        .into_iter()
        .find(|&n| n != rank)
        .unwrap_or(rank)
}

/// A globally consistent snapshot of every rank in a multi-rank run
/// (`HCK3`): the step count, the decomposition it was taken under, and
/// one [`RankSnapshot`] per rank.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiRankCheckpoint {
    /// Steps completed when the snapshot was taken.
    pub step: u64,
    /// Periodic box side in grid units.
    pub ng: usize,
    /// Rank grid dimensions of the layout the snapshot was taken under.
    pub dims: [usize; 3],
    /// Per-rank particle stores, indexed by rank.
    pub per_rank: Vec<RankSnapshot>,
}

impl MultiRankCheckpoint {
    /// Number of ranks in the snapshot.
    pub fn ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Total particles across all ranks.
    pub fn n_particles(&self) -> usize {
        self.per_rank.iter().map(RankSnapshot::len).sum()
    }

    /// The layout the snapshot was taken under.
    pub fn layout(&self) -> RankLayout {
        RankLayout::with_dims(self.dims, self.ng)
    }

    /// Buddy assignment per rank under the snapshot's own layout.
    pub fn buddies(&self) -> Vec<usize> {
        let layout = self.layout();
        (0..self.ranks()).map(|r| buddy_of(&layout, r)).collect()
    }

    /// Serialized size in bytes (header plus every rank section).
    pub fn total_bytes(&self) -> u64 {
        HCK3_HEADER_BYTES as u64
            + self
                .per_rank
                .iter()
                .map(RankSnapshot::wire_bytes)
                .sum::<u64>()
    }

    /// Modeled interconnect bytes of the coordinated buddy mirror: each
    /// rank ships its own section to its buddy (nothing moves in a
    /// single-rank layout, where rank and buddy coincide).
    pub fn mirror_bytes(&self) -> u64 {
        let buddies = self.buddies();
        self.per_rank
            .iter()
            .enumerate()
            .filter(|&(r, _)| buddies[r] != r)
            .map(|(_, s)| s.wire_bytes())
            .sum()
    }

    /// Serializes to a compact binary blob. All floats are stored as
    /// their exact IEEE-754 bits — the round trip is lossless.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.total_bytes() as usize);
        buf.put_u32(MAGIC_MULTI);
        buf.put_u64(self.step);
        buf.put_u64(self.ng as u64);
        for d in self.dims {
            buf.put_u64(d as u64);
        }
        buf.put_u64(self.ranks() as u64);
        for snap in &self.per_rank {
            buf.put_u64(snap.len() as u64);
            for k in 0..snap.len() {
                buf.put_u64(snap.ids[k]);
                for c in 0..3 {
                    buf.put_f64(snap.pos[k][c]);
                }
                for c in 0..3 {
                    buf.put_f64(snap.mom[k][c]);
                }
                buf.put_f64(snap.mass[k]);
                buf.put_f64(snap.h[k]);
                buf.put_f64(snap.u[k]);
            }
        }
        buf.freeze()
    }

    /// Deserializes a blob produced by [`MultiRankCheckpoint::to_bytes`],
    /// treating the input as untrusted: counts are capped and
    /// checked-multiplied before any allocation, and the header's rank
    /// grid must be internally consistent.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, CheckpointError> {
        if data.remaining() < HCK3_HEADER_BYTES {
            return Err(CheckpointError::Truncated { what: "header" });
        }
        let magic = data.get_u32();
        if magic != MAGIC_MULTI {
            return Err(CheckpointError::BadMagic {
                found: magic,
                expected: MAGIC_MULTI,
            });
        }
        let step = data.get_u64();
        let ng = data.get_u64() as usize;
        let dims = [
            data.get_u64() as usize,
            data.get_u64() as usize,
            data.get_u64() as usize,
        ];
        let ranks = data.get_u64() as usize;
        if ranks == 0 {
            return Err(CheckpointError::Malformed {
                detail: "rank count is zero".to_string(),
            });
        }
        // Hostile dims can overflow a naive product; fold with checked
        // arithmetic so a corrupt header errors instead of panicking.
        let grid = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .unwrap_or(0);
        if grid != ranks {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "rank grid {}x{}x{} does not hold {ranks} ranks",
                    dims[0], dims[1], dims[2]
                ),
            });
        }
        if ng == 0 || dims.iter().any(|&d| d == 0 || d > ng) {
            return Err(CheckpointError::Malformed {
                detail: format!(
                    "rank grid {}x{}x{} cannot decompose an ng={ng} box",
                    dims[0], dims[1], dims[2]
                ),
            });
        }
        // A hostile rank count is bounded by the same cap as a particle
        // count: each rank section is at least a header.
        payload_bytes(ranks, HCK3_RANK_HEADER_BYTES)?;
        let mut per_rank = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            if data.remaining() < HCK3_RANK_HEADER_BYTES {
                return Err(CheckpointError::Truncated {
                    what: "rank header",
                });
            }
            let n = data.get_u64() as usize;
            if data.remaining() < payload_bytes(n, HCK3_STRIDE)? {
                return Err(CheckpointError::Truncated {
                    what: "rank payload",
                });
            }
            let mut snap = RankSnapshot::default();
            snap.ids.reserve(n);
            snap.pos.reserve(n);
            snap.mom.reserve(n);
            snap.mass.reserve(n);
            snap.h.reserve(n);
            snap.u.reserve(n);
            for _ in 0..n {
                snap.ids.push(data.get_u64());
                snap.pos
                    .push([data.get_f64(), data.get_f64(), data.get_f64()]);
                snap.mom
                    .push([data.get_f64(), data.get_f64(), data.get_f64()]);
                snap.mass.push(data.get_f64());
                snap.h.push(data.get_f64());
                snap.u.push(data.get_f64());
            }
            per_rank.push(snap);
        }
        Ok(Self {
            step,
            ng,
            dims,
            per_rank,
        })
    }

    /// Writes to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rank: u64, n: usize) -> RankSnapshot {
        let mut s = RankSnapshot::default();
        for k in 0..n as u64 {
            let id = rank * 1000 + k;
            s.ids.push(id);
            s.pos.push([id as f64, 0.5 * k as f64, 0.25]);
            s.mom.push([-0.1, 0.2 * k as f64, 1e-3]);
            s.mass.push(1.0 + 0.125 * k as f64);
            s.h.push(1.0);
            s.u.push(1e-4 * k as f64);
        }
        s
    }

    fn sample() -> MultiRankCheckpoint {
        MultiRankCheckpoint {
            step: 7,
            ng: 16,
            dims: [2, 2, 2],
            per_rank: (0..8).map(|r| snap(r, 3 + r as usize)).collect(),
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let mut cp = sample();
        cp.per_rank[0].mom[0] = [f64::MIN_POSITIVE / 4.0, -0.0, std::f64::consts::PI];
        let blob = cp.to_bytes();
        assert_eq!(blob.len() as u64, cp.total_bytes());
        let back = MultiRankCheckpoint::from_bytes(blob).unwrap();
        assert_eq!(cp, back);
        for c in 0..3 {
            assert_eq!(
                cp.per_rank[0].mom[0][c].to_bits(),
                back.per_rank[0].mom[0][c].to_bits()
            );
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let blob = sample().to_bytes();
        let mut raw = BytesMut::from(&blob[..]);
        raw[0] = 0x55;
        assert!(matches!(
            MultiRankCheckpoint::from_bytes(raw.freeze()).unwrap_err(),
            CheckpointError::BadMagic { .. }
        ));
        let cut = blob.slice(0..blob.len() - 8);
        assert!(matches!(
            MultiRankCheckpoint::from_bytes(cut).unwrap_err(),
            CheckpointError::Truncated { .. }
        ));
    }

    #[test]
    fn rejects_inconsistent_rank_grids() {
        let mut cp = sample();
        cp.dims = [2, 2, 3]; // 12 ≠ 8 ranks
        let err = MultiRankCheckpoint::from_bytes(cp.to_bytes()).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocating() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC_MULTI);
        buf.put_u64(0); // step
        buf.put_u64(16); // ng
        for d in [1u64, 1, 1] {
            buf.put_u64(d);
        }
        buf.put_u64(1); // ranks
        buf.put_u64(u64::MAX); // hostile particle count
        let err = MultiRankCheckpoint::from_bytes(buf.freeze()).unwrap_err();
        assert!(matches!(err, CheckpointError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn buddy_rule_is_a_neighbor_and_never_self() {
        for ranks in [2usize, 4, 8, 16] {
            let layout = RankLayout::new(ranks, 32);
            for r in 0..ranks {
                let b = buddy_of(&layout, r);
                assert_ne!(b, r, "{ranks} ranks: rank {r} is its own buddy");
                assert!(
                    layout.neighbors(r).contains(&b),
                    "{ranks} ranks: buddy {b} is not a neighbor of {r}"
                );
            }
        }
        // The degenerate single-rank layout has no partner.
        assert_eq!(buddy_of(&RankLayout::new(1, 32), 0), 0);
    }

    #[test]
    fn mirror_bytes_cover_every_rank_once() {
        let cp = sample();
        let expected: u64 = cp.per_rank.iter().map(RankSnapshot::wire_bytes).sum();
        assert_eq!(cp.mirror_bytes(), expected);
        let single = MultiRankCheckpoint {
            step: 0,
            ng: 16,
            dims: [1, 1, 1],
            per_rank: vec![snap(0, 4)],
        };
        assert_eq!(single.mirror_bytes(), 0, "no partner, nothing moves");
    }
}
