//! Simulation configuration and the paper's problem presets.

use hacc_cosmo::{BoxSpec, CosmoParams};
use hacc_kernels::Variant;
use serde::{Deserialize, Serialize};
use sycl_sim::{GpuArch, GrfMode, Lang};

/// Which GPU build runs the offloaded kernels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Source programming model.
    pub lang: Lang,
    /// Fast-math flag (None = the language's compiler default, §4.4).
    pub fast_math: Option<bool>,
    /// Communication variant for the hot kernels.
    pub variant: Variant,
    /// Sub-group size (None = architecture default: largest supported).
    pub sg_size: Option<usize>,
    /// Register-file mode (§5.2).
    pub grf: GrfMode,
}

impl DeviceConfig {
    /// The paper's optimized SYCL configuration for an architecture:
    /// SYCL defaults, large GRF on Intel, Appendix-A sub-group sizes.
    pub fn sycl_optimized(arch: &GpuArch) -> Self {
        Self {
            lang: Lang::Sycl,
            fast_math: None,
            variant: Variant::Select,
            sg_size: None,
            grf: if arch.has_large_grf {
                GrfMode::Large
            } else {
                GrfMode::Default
            },
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cosmological parameters.
    pub cosmo: CosmoParams,
    /// Box and particle loading (per species).
    pub box_spec: BoxSpec,
    /// Initial redshift (the paper's test runs z = 200 → 50).
    pub z_init: f64,
    /// Final redshift.
    pub z_final: f64,
    /// Number of long (PM) time steps.
    pub n_steps: usize,
    /// Short-range sub-cycles per long step.
    pub sub_cycles: usize,
    /// Force-splitting scale in grid cells.
    pub r_split_cells: f64,
    /// Short-range cutoff in grid cells.
    pub r_cut_cells: f64,
    /// SPH smoothing length in units of the mean inter-particle spacing.
    pub eta_smoothing: f64,
    /// Initial gas specific internal energy (code units; small at z=200).
    pub u_init: f64,
    /// Leaf capacity of the RCB tree = half the sub-group size by default
    /// (None = derive from the launch configuration).
    pub max_leaf: Option<usize>,
    /// Number of ranks the workload is normalized to (the paper's 8 MPI
    /// ranks; execution is single-process — see `rank.rs`).
    pub ranks: usize,
    /// Random seed for the initial conditions.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's test problem (§3.4.2) at a reduction factor: 2×(512/s)³
    /// particles, box scaled to keep the FOM mass resolution, five steps
    /// from z = 200 to z = 50.
    pub fn paper_test_problem(scale: usize) -> Self {
        Self {
            cosmo: CosmoParams::planck2018(),
            box_spec: BoxSpec::paper_problem(scale),
            z_init: 200.0,
            z_final: 50.0,
            n_steps: 5,
            sub_cycles: 2,
            r_split_cells: 1.5,
            r_cut_cells: 5.0,
            eta_smoothing: 1.3,
            u_init: 1e-8,
            max_leaf: None,
            ranks: 8,
            seed: 0xC0FFEE,
        }
    }

    /// A laptop-scale smoke configuration (2×8³ particles, 2 steps).
    pub fn smoke() -> Self {
        let mut c = Self::paper_test_problem(64);
        c.n_steps = 2;
        c.sub_cycles = 1;
        c
    }

    /// Validates cross-field consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.cosmo.validate()?;
        if self.z_final >= self.z_init {
            return Err("z_final must be below z_init".into());
        }
        if self.n_steps == 0 || self.sub_cycles == 0 {
            return Err("need at least one step and one sub-cycle".into());
        }
        if self.r_cut_cells <= self.r_split_cells {
            return Err("short-range cutoff must exceed the splitting scale".into());
        }
        // The SPH kernel support must fit inside the interaction cutoff,
        // or the leaf-pair lists would miss hydro neighbors.
        let spacing_cells = self.box_spec.ng as f64 / self.box_spec.np as f64;
        if 2.0 * self.eta_smoothing * spacing_cells > self.r_cut_cells {
            return Err(format!(
                "kernel support 2η·Δx = {} cells exceeds r_cut = {} cells",
                2.0 * self.eta_smoothing * spacing_cells,
                self.r_cut_cells
            ));
        }
        if self.ranks == 0 {
            return Err("ranks must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::paper_test_problem(32).validate().unwrap();
        SimConfig::smoke().validate().unwrap();
    }

    #[test]
    fn paper_problem_full_scale_matches_section_3_4() {
        let c = SimConfig::paper_test_problem(1);
        assert_eq!(c.box_spec.np, 512);
        assert_eq!(c.n_steps, 5);
        assert_eq!(c.ranks, 8);
        assert_eq!(c.z_init, 200.0);
        assert_eq!(c.z_final, 50.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = SimConfig::smoke();
        c.z_final = 300.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::smoke();
        c.r_cut_cells = 1.0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::smoke();
        c.eta_smoothing = 10.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sycl_optimized_uses_large_grf_on_intel_only() {
        let intel = DeviceConfig::sycl_optimized(&GpuArch::aurora());
        assert_eq!(intel.grf, GrfMode::Large);
        let nv = DeviceConfig::sycl_optimized(&GpuArch::polaris());
        assert_eq!(nv.grf, GrfMode::Default);
    }
}
