//! In-situ analysis (§3.4.4 context: production CRK-HACC interleaves
//! in-situ analyses with the dynamical stepping; the paper disables them
//! while timing the kernels — here they are available for the examples
//! and validation).
//!
//! Provides the standard summary statistics a cosmology run monitors:
//! the halo mass function, density PDF moments, and bulk velocity
//! statistics.

use crate::sim::{Simulation, Species};
use hacc_tree::{fof_halos, Halo};

/// One bin of the halo mass function.
#[derive(Clone, Copy, Debug)]
pub struct MassFunctionBin {
    /// Lower mass edge of the bin.
    pub mass_lo: f64,
    /// Upper mass edge.
    pub mass_hi: f64,
    /// Number of halos in the bin.
    pub count: usize,
}

/// Bins a halo catalog into a logarithmic mass function with `n_bins`
/// bins spanning the catalog's mass range.
pub fn mass_function(halos: &[Halo], n_bins: usize) -> Vec<MassFunctionBin> {
    assert!(n_bins >= 1);
    if halos.is_empty() {
        return Vec::new();
    }
    let lo = halos.iter().map(|h| h.mass).fold(f64::INFINITY, f64::min);
    let hi = halos.iter().map(|h| h.mass).fold(0.0f64, f64::max) * (1.0 + 1e-12);
    let (llo, lhi) = (lo.ln(), hi.ln());
    let width = ((lhi - llo) / n_bins as f64).max(1e-12);
    let mut bins: Vec<MassFunctionBin> = (0..n_bins)
        .map(|b| MassFunctionBin {
            mass_lo: (llo + b as f64 * width).exp(),
            mass_hi: (llo + (b + 1) as f64 * width).exp(),
            count: 0,
        })
        .collect();
    for h in halos {
        let b = (((h.mass.ln() - llo) / width) as usize).min(n_bins - 1);
        bins[b].count += 1;
    }
    bins
}

/// Runs the FOF halo finder on a simulation's current particle state
/// (all species) with a linking length `b_link` in units of the mean
/// inter-particle spacing (b = 0.2 is the standard convention).
pub fn find_halos(sim: &Simulation, b_link: f64, min_members: usize) -> Vec<Halo> {
    let ng = sim.config.box_spec.ng as f64;
    // Mean inter-particle spacing of the combined two-species set.
    let n_total = sim.n_particles() as f64;
    let mean_spacing = ng / n_total.cbrt();
    fof_halos(&sim.pos, &sim.mass, ng, b_link * mean_spacing, min_members)
}

/// Density-contrast PDF moments measured from the PM mesh.
#[derive(Clone, Copy, Debug)]
pub struct DensityMoments {
    /// Mean of δ (≈ 0 by construction).
    pub mean: f64,
    /// Variance of δ (grows as D² in the linear regime).
    pub variance: f64,
    /// Skewness of δ (grows under nonlinear clustering).
    pub skewness: f64,
}

/// Computes δ-field moments for the current particle state.
pub fn density_moments(sim: &mut Simulation) -> DensityMoments {
    let delta = sim.density_contrast_grid();
    let n = delta.len() as f64;
    let mean = delta.iter().sum::<f64>() / n;
    let var = delta.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
    let skew = if var > 0.0 {
        delta.iter().map(|d| (d - mean).powi(3)).sum::<f64>() / n / var.powf(1.5)
    } else {
        0.0
    };
    DensityMoments {
        mean,
        variance: var,
        skewness: skew,
    }
}

/// RMS peculiar velocity per species (grid units per 1/H0).
pub fn rms_velocity(sim: &Simulation, species: Species) -> f64 {
    let a2 = sim.a * sim.a;
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..sim.n_particles() {
        if sim.species[i] == species {
            let v = [sim.mom[i][0] / a2, sim.mom[i][1] / a2, sim.mom[i][2] / a2];
            sum += v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, SimConfig};
    use hacc_kernels::Variant;
    use sycl_sim::{GpuArch, GrfMode, Lang};

    fn sim() -> Simulation {
        Simulation::new(
            SimConfig::smoke(),
            DeviceConfig {
                lang: Lang::Sycl,
                fast_math: None,
                variant: Variant::Select,
                sg_size: Some(32),
                grf: GrfMode::Default,
            },
            GpuArch::polaris(),
        )
    }

    #[test]
    fn mass_function_partitions_catalog() {
        let halos: Vec<Halo> = (1..=20)
            .map(|i| Halo {
                members: vec![0],
                center: [0.0; 3],
                mass: 10f64.powi(i % 5 + 1),
            })
            .collect();
        let bins = mass_function(&halos, 5);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 20);
        for w in bins.windows(2) {
            assert!(
                (w[0].mass_hi / w[1].mass_lo - 1.0).abs() < 1e-9,
                "contiguous bins"
            );
        }
    }

    #[test]
    fn mass_function_of_empty_catalog() {
        assert!(mass_function(&[], 4).is_empty());
    }

    #[test]
    fn density_moments_of_initial_conditions() {
        let mut s = sim();
        let m = density_moments(&mut s);
        // Zel'dovich start: near-Gaussian, small variance, tiny mean.
        assert!(m.mean.abs() < 1e-8, "mean δ = {}", m.mean);
        assert!(m.variance > 0.0 && m.variance < 1.0, "σ² = {}", m.variance);
        assert!(
            m.skewness.abs() < 2.0,
            "early skewness should be mild: {}",
            m.skewness
        );
    }

    #[test]
    fn velocities_exist_for_both_species_at_start() {
        let s = sim();
        assert!(rms_velocity(&s, Species::DarkMatter) > 0.0);
        assert!(rms_velocity(&s, Species::Baryon) > 0.0);
    }

    #[test]
    fn halo_finding_runs_on_simulation_state() {
        // At z = 200 there are no collapsed halos — a short linking length
        // should find nothing above a reasonable membership cut.
        let s = sim();
        let halos = find_halos(&s, 0.2, 8);
        assert!(
            halos.len() < 4,
            "no real halos at z = 200, found {}",
            halos.len()
        );
    }
}
