//! Post-step state validation.
//!
//! After every long step the driver can cheaply audit the invariants
//! the physics guarantees: every field finite, positions inside the
//! periodic box, internal energies non-negative, smoothing lengths
//! inside the adaptive clamp range, and total particle mass conserved
//! *exactly* (the mass vector is never mutated by the stepper, so the
//! deterministic left-to-right sum must reproduce bit-for-bit). A
//! violation is the signature of silent data corruption — an injected
//! bit flip or NaN that slipped past the launch layer — and triggers
//! the checkpoint rollback in [`crate::recovery`].

use crate::sim::Simulation;

/// A failed invariant: which field broke and how.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardViolation {
    /// The state field that failed (`pos`, `mom`, `u_int`, `h`,
    /// `star_mass`, `mass`).
    pub field: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step guard violation in `{}`: {}",
            self.field, self.detail
        )
    }
}

impl std::error::Error for GuardViolation {}

/// Invariant checker capturing the conserved quantities and bounds at
/// construction time.
#[derive(Clone, Debug)]
pub struct StepGuard {
    /// Total particle mass at capture (deterministic sum; conserved
    /// exactly because the stepper never writes the mass vector).
    mass0: f64,
    /// Periodic box side in grid units.
    ng: f64,
    /// Lower bound of the adaptive smoothing-length clamp.
    h_min: f64,
    /// Upper bound of the adaptive smoothing-length clamp.
    h_max: f64,
}

impl StepGuard {
    /// Captures the invariants of a (healthy) simulation.
    pub fn new(sim: &Simulation) -> Self {
        let spacing = sim.config.box_spec.ng as f64 / sim.config.box_spec.np as f64;
        let h0 = sim.config.eta_smoothing * spacing;
        Self {
            mass0: sim.mass.iter().sum(),
            ng: sim.config.box_spec.ng as f64,
            // Mirror of the clamp in the hydro update: initial h0 is
            // also legal because the clamp only applies once a particle
            // has been through a hydro step.
            h_min: (0.5 * h0).min(h0),
            h_max: (sim.config.r_cut_cells / 2.0).max(h0),
        }
    }

    /// Checks every invariant, returning the first violation found.
    pub fn check(&self, sim: &Simulation) -> Result<(), GuardViolation> {
        let fail = |field: &str, detail: String| {
            Err(GuardViolation {
                field: field.to_string(),
                detail,
            })
        };
        for (i, p) in sim.pos.iter().enumerate() {
            for c in 0..3 {
                if !p[c].is_finite() {
                    return fail("pos", format!("pos[{i}][{c}] = {}", p[c]));
                }
                if !(0.0..self.ng).contains(&p[c]) {
                    return fail(
                        "pos",
                        format!("pos[{i}][{c}] = {} outside [0, {})", p[c], self.ng),
                    );
                }
            }
        }
        for (i, m) in sim.mom.iter().enumerate() {
            for c in 0..3 {
                if !m[c].is_finite() {
                    return fail("mom", format!("mom[{i}][{c}] = {}", m[c]));
                }
            }
        }
        for (i, &u) in sim.u_int.iter().enumerate() {
            if !u.is_finite() || u < 0.0 {
                return fail("u_int", format!("u_int[{i}] = {u}"));
            }
        }
        for (i, &h) in sim.h.iter().enumerate() {
            if !h.is_finite() || !(self.h_min..=self.h_max).contains(&h) {
                return fail(
                    "h",
                    format!("h[{i}] = {h} outside [{}, {}]", self.h_min, self.h_max),
                );
            }
        }
        for (i, &s) in sim.star_mass.iter().enumerate() {
            if !s.is_finite() || s < 0.0 {
                return fail("star_mass", format!("star_mass[{i}] = {s}"));
            }
        }
        let mass: f64 = sim.mass.iter().sum();
        if mass.to_bits() != self.mass0.to_bits() {
            return fail(
                "mass",
                format!(
                    "total mass {mass:e} != captured {:e} (must match exactly)",
                    self.mass0
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, SimConfig};
    use hacc_kernels::Variant;
    use sycl_sim::{GpuArch, GrfMode, Lang};

    fn sim() -> Simulation {
        let dc = DeviceConfig {
            lang: Lang::Sycl,
            fast_math: None,
            variant: Variant::Select,
            sg_size: Some(32),
            grf: GrfMode::Default,
        };
        Simulation::new(SimConfig::smoke(), dc, GpuArch::frontier())
    }

    #[test]
    fn fresh_simulation_passes() {
        let s = sim();
        let guard = StepGuard::new(&s);
        guard.check(&s).unwrap();
    }

    #[test]
    fn nan_position_is_caught() {
        let mut s = sim();
        let guard = StepGuard::new(&s);
        s.pos[3][1] = f64::NAN;
        let v = guard.check(&s).unwrap_err();
        assert_eq!(v.field, "pos");
    }

    #[test]
    fn out_of_box_position_is_caught() {
        let mut s = sim();
        let guard = StepGuard::new(&s);
        s.pos[0][0] = s.config.box_spec.ng as f64 + 0.5;
        assert_eq!(guard.check(&s).unwrap_err().field, "pos");
    }

    #[test]
    fn tiny_mass_change_is_caught() {
        // One part in 10⁹ of a single particle — far below any
        // tolerance-based check, but the bit-exact sum comparison
        // sees it.
        let mut s = sim();
        let guard = StepGuard::new(&s);
        s.mass[0] *= 1.0 + 1e-9;
        assert_eq!(guard.check(&s).unwrap_err().field, "mass");
    }

    #[test]
    fn negative_energy_and_bad_h_are_caught() {
        let mut s = sim();
        let guard = StepGuard::new(&s);
        let i = s
            .species
            .iter()
            .position(|&sp| sp == crate::sim::Species::Baryon)
            .unwrap();
        s.u_int[i] = -1e-9;
        assert_eq!(guard.check(&s).unwrap_err().field, "u_int");
        let mut s = sim();
        s.h[i] = f64::INFINITY;
        assert_eq!(guard.check(&s).unwrap_err().field, "h");
    }
}
