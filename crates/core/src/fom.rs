//! The ExaSky Figure-of-Merit (FOM) machinery (paper §3.4.2).
//!
//! The ECP project assessed CRK-HACC with two problem sizes on 8192
//! Frontier nodes: the *default* problem at 2×229³ particles per GCD and
//! the *stretch* problem at 2×305³. The paper's test problem interpolates
//! between them at 2×256³ per GCD. The FOM itself is throughput:
//! particle-steps per second of wall-clock time.

use crate::sim::RunSummary;
use hacc_cosmo::{device_bytes_per_rank, BoxSpec};
use serde::Serialize;

/// One FOM problem configuration.
#[derive(Clone, Debug, Serialize)]
pub struct FomProblem {
    /// Name used by the ExaSky project.
    pub name: &'static str,
    /// Particles per dimension per GCD/rank (one species).
    pub np_per_rank: usize,
    /// Ranks (GCDs) in the full-machine configuration.
    pub ranks: usize,
}

impl FomProblem {
    /// The ECP default FOM problem: 2×229³ particles per GCD.
    pub fn default_problem() -> Self {
        Self {
            name: "default",
            np_per_rank: 229,
            ranks: 8 * 8192,
        }
    }

    /// The ECP stretch FOM problem: 2×305³ per GCD.
    pub fn stretch_problem() -> Self {
        Self {
            name: "stretch",
            np_per_rank: 305,
            ranks: 8 * 8192,
        }
    }

    /// The paper's scaled-down test problem: 2×256³ per GCD on one node
    /// (8 ranks), "in-between the default and stretch FOM problem sizes".
    pub fn paper_test() -> Self {
        Self {
            name: "paper-test",
            np_per_rank: 256,
            ranks: 8,
        }
    }

    /// Total particles (both species) across all ranks.
    pub fn total_particles(&self) -> u64 {
        2 * (self.np_per_rank as u64).pow(3) * self.ranks as u64
    }

    /// Device memory per rank for this configuration, in bytes, using the
    /// same accounting as `hacc_cosmo::device_bytes_per_rank`.
    pub fn bytes_per_rank(&self) -> u64 {
        let np = self.np_per_rank;
        // One rank's slab of the global problem at FOM mass resolution.
        let spec = BoxSpec::new(177.0 * np as f64 / 512.0, np, np);
        device_bytes_per_rank(&spec, 1)
    }
}

/// Computes the FOM (particle-steps per second) from a run summary.
pub fn fom(n_particles: u64, summary: &RunSummary) -> f64 {
    assert!(summary.gpu_seconds > 0.0, "FOM requires nonzero GPU time");
    n_particles as f64 * summary.steps as f64 / summary.gpu_seconds
}

/// Renders the FOM problem table (the §3.4.2 context).
pub fn render_problems() -> String {
    let mut out = String::from(
        "== ExaSky FOM problem configurations (paper §3.4.2) ==\n\
         name        np/rank   ranks     total particles   ~GB/rank\n",
    );
    for p in [
        FomProblem::default_problem(),
        FomProblem::paper_test(),
        FomProblem::stretch_problem(),
    ] {
        out.push_str(&format!(
            "{:<11} {:>7}   {:>6}   {:>15.3e}   {:>8.1}\n",
            p.name,
            p.np_per_rank,
            p.ranks,
            p.total_particles() as f64,
            p.bytes_per_rank() as f64 / 1e9,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_test_sits_between_default_and_stretch() {
        let d = FomProblem::default_problem();
        let t = FomProblem::paper_test();
        let s = FomProblem::stretch_problem();
        assert!(d.np_per_rank < t.np_per_rank && t.np_per_rank < s.np_per_rank);
    }

    #[test]
    fn paper_test_is_about_ten_gb_per_rank() {
        // §3.4.2: "a device memory usage of ~10 GB per MPI rank".
        let gb = FomProblem::paper_test().bytes_per_rank() as f64 / 1e9;
        assert!(gb > 3.0 && gb < 20.0, "{gb:.1} GB/rank");
    }

    #[test]
    fn full_machine_configurations_are_exascale_sized() {
        // 8192 nodes × 8 GCDs × 2×229³ ≈ 1.6e15 particles… per the FOM
        // definition the default problem holds ~1.6 trillion particles.
        let d = FomProblem::default_problem();
        assert!(d.total_particles() > 1e12 as u64);
        let s = FomProblem::stretch_problem();
        assert!(s.total_particles() > d.total_particles());
    }

    #[test]
    fn fom_scales_with_throughput() {
        let summary = |secs: f64| RunSummary {
            a_final: 1.0,
            steps: 5,
            gpu_seconds: secs,
            timers: Vec::new(),
        };
        let fast = fom(1_000_000, &summary(1.0));
        let slow = fom(1_000_000, &summary(2.0));
        assert!((fast / slow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn render_lists_all_problems() {
        let s = render_problems();
        assert!(s.contains("default") && s.contains("stretch") && s.contains("paper-test"));
    }
}
