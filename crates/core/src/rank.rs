//! Rank decomposition (the MPI substitute).
//!
//! CRK-HACC runs one MPI rank per accelerator device and requires a
//! minimum of 8 ranks (§3.4.2); the paper maps 8 ranks onto one node of
//! each system (2 GCDs × 4 MI250X, 2 stacks × 4 PVC, or 2 ranks × 4
//! A100). This module provides the 3D domain decomposition behind the
//! multi-rank execution layer: a regular grid over the periodic box
//! (balanced prime-factor dims, the `MPI_Dims_create` rule), exact
//! plane ownership, 27-neighborhood topology, and conservative
//! rectangular ghost-zone membership sized by the SPH kernel support
//! radius. [`NodeMapping`] documents the §3.4.2 device mapping.

use std::fmt;
use sycl_sim::GpuArch;

/// An architecture id with no §3.4.2 node mapping — returned instead of
/// panicking so new [`GpuArch`] constructors surface as typed errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownArch {
    /// The unmapped architecture id.
    pub id: String,
}

impl fmt::Display for UnknownArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no §3.4.2 node mapping for architecture {}", self.id)
    }
}

impl std::error::Error for UnknownArch {}

/// How a system's node maps MPI ranks to accelerator devices.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMapping {
    /// System name.
    pub system: &'static str,
    /// Ranks used per node (always 8 in the paper).
    pub ranks_per_node: u32,
    /// Physical GPUs used.
    pub gpus_used: u32,
    /// Schedulable devices per GPU (GCDs/stacks).
    pub devices_per_gpu: u32,
    /// Fraction of the node's GPU silicon actually used (Polaris's 2
    /// ranks per A100 share one device: the paper reports ~11% lower
    /// efficiency from this; Aurora idles 2 of 6 GPUs).
    pub ranks_per_device: u32,
}

impl NodeMapping {
    /// The paper's §3.4.2 mapping for an architecture. Exhaustive over
    /// every [`GpuArch`] constructor (including the §7.3 CPU backend);
    /// an id added without a mapping is a typed [`UnknownArch`] error,
    /// not a panic.
    pub fn for_arch(arch: &GpuArch) -> Result<Self, UnknownArch> {
        match arch.id {
            // 8 ranks on 4 MI250X = one per GCD.
            "mi250x" => Ok(Self {
                system: "Frontier",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 2,
                ranks_per_device: 1,
            }),
            // 8 ranks on 4 of 6 PVCs (2 stacks each), 2 GPUs idle.
            "pvc" => Ok(Self {
                system: "Aurora",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 2,
                ranks_per_device: 1,
            }),
            // 8 ranks on 4 A100s: 2 ranks share each GPU.
            "a100" => Ok(Self {
                system: "Polaris",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 1,
                ranks_per_device: 2,
            }),
            // CPU backend (§7.3): 8 ranks over 2 sockets, 4 per socket
            // sharing a socket's cores and memory bandwidth.
            "cpu" => Ok(Self {
                system: "CPU",
                ranks_per_node: 8,
                gpus_used: 2,
                devices_per_gpu: 1,
                ranks_per_device: 4,
            }),
            other => Err(UnknownArch {
                id: other.to_string(),
            }),
        }
    }

    /// Device-sharing slowdown: ranks that share a device each get a
    /// fraction of it. On Polaris this is the paper's "~11% lower
    /// efficiency" configuration cost (sharing is imperfect, not a clean
    /// 2×, because the two ranks' kernels interleave).
    pub fn sharing_penalty(&self) -> f64 {
        if self.ranks_per_device > 1 {
            1.11
        } else {
            1.0
        }
    }
}

/// A 3D regular-grid decomposition of the periodic box into ranks.
///
/// Dims follow the `MPI_Dims_create` rule: the rank count's prime
/// factors, largest first, are assigned to the currently smallest
/// dimension, so 8 → 2×2×2, 4 → 2×2×1, 2 → 2×1×1 and prime counts fall
/// back to slabs. Plane ownership is exact: domain `i` along a
/// dimension owns `[b_i, b_{i+1})`, so a particle sitting exactly on a
/// decomposition plane belongs to exactly one rank (the upper domain;
/// the box-closing plane wraps to domain 0).
#[derive(Clone, Debug)]
pub struct RankLayout {
    /// Number of ranks.
    pub ranks: usize,
    /// Grid cells per dimension (periodic box side).
    pub ng: usize,
    /// Ranks per dimension (`dims[0] × dims[1] × dims[2] == ranks`).
    pub dims: [usize; 3],
    /// Per-dimension decomposition plane positions (`dims[d] + 1`
    /// entries, first 0, last `ng`).
    bounds: [Vec<f64>; 3],
}

impl RankLayout {
    /// Balanced dims for `ranks`: prime factors (largest first) assigned
    /// to the smallest current dimension.
    fn dims_create(ranks: usize) -> [usize; 3] {
        let mut factors = Vec::new();
        let mut n = ranks;
        let mut p = 2;
        while p * p <= n {
            while n.is_multiple_of(p) {
                factors.push(p);
                n /= p;
            }
            p += 1;
        }
        if n > 1 {
            factors.push(n);
        }
        factors.sort_unstable_by(|a, b| b.cmp(a));
        let mut dims = [1usize; 3];
        for f in factors {
            let smallest = (0..3).min_by_key(|&d| (dims[d], d)).unwrap();
            dims[smallest] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        dims
    }

    /// Creates a layout over an `ng`-cell periodic box.
    pub fn new(ranks: usize, ng: usize) -> Self {
        assert!(ranks >= 1 && ng >= ranks, "need at least one cell per rank");
        Self::with_dims(Self::dims_create(ranks), ng)
    }

    /// Creates a layout with explicit per-dimension rank counts.
    pub fn with_dims(dims: [usize; 3], ng: usize) -> Self {
        let ranks = dims[0] * dims[1] * dims[2];
        assert!(ranks >= 1, "empty rank grid");
        assert!(
            dims.iter().all(|&d| d <= ng),
            "more ranks than cells along a dimension"
        );
        let bounds = std::array::from_fn(|d| {
            (0..=dims[d])
                .map(|i| i as f64 * ng as f64 / dims[d] as f64)
                .collect()
        });
        Self {
            ranks,
            ng,
            dims,
            bounds,
        }
    }

    /// Wraps a coordinate into `[0, ng)`, guarding the `rem_euclid`
    /// rounding case where a tiny negative input lands exactly on `ng`.
    fn wrap(&self, x: f64) -> f64 {
        let w = x.rem_euclid(self.ng as f64);
        if w >= self.ng as f64 {
            0.0
        } else {
            w
        }
    }

    /// Domain index along dimension `d` for a wrapped coordinate:
    /// largest `i` with `bounds[d][i] <= x` (exact plane ownership by
    /// comparison against the stored plane positions, not division).
    fn dim_index(&self, d: usize, x: f64) -> usize {
        let b = &self.bounds[d];
        let mut i = self.dims[d] - 1;
        while i > 0 && x < b[i] {
            i -= 1;
        }
        i
    }

    /// Linear rank id of grid coordinates (x-major).
    pub fn rank_at(&self, c: [usize; 3]) -> usize {
        (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]
    }

    /// Grid coordinates of a rank id.
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        [
            rank / (self.dims[1] * self.dims[2]),
            (rank / self.dims[2]) % self.dims[1],
            rank % self.dims[2],
        ]
    }

    /// Which rank owns a position (periodic wrap applied).
    pub fn rank_of(&self, pos: &[f64; 3]) -> usize {
        let c = std::array::from_fn(|d| self.dim_index(d, self.wrap(pos[d])));
        self.rank_at(c)
    }

    /// The half-open domain `[lo, hi)` of a rank in grid units.
    pub fn domain(&self, rank: usize) -> ([f64; 3], [f64; 3]) {
        let c = self.coords(rank);
        (
            std::array::from_fn(|d| self.bounds[d][c[d]]),
            std::array::from_fn(|d| self.bounds[d][c[d] + 1]),
        )
    }

    /// Narrowest domain extent over all ranks and dimensions — the upper
    /// bound on a ghost width serviceable by the 27-neighborhood.
    pub fn min_domain_width(&self) -> f64 {
        (0..3)
            .map(|d| self.ng as f64 / self.dims[d] as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Distinct neighbor ranks of `rank` in the periodic 27-neighborhood
    /// (self excluded, duplicates from wrapped dimensions removed),
    /// ascending.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        let mut out = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let off = [dx, dy, dz];
                    let n = self.rank_at(std::array::from_fn(|d| {
                        (c[d] as i64 + off[d]).rem_euclid(self.dims[d] as i64) as usize
                    }));
                    if n != rank && !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Periodic distance from a wrapped coordinate to the interval
    /// `[lo, hi)` along one dimension (0 inside).
    fn dist_1d(&self, x: f64, lo: f64, hi: f64) -> f64 {
        let ng = self.ng as f64;
        let mut best = f64::INFINITY;
        for shift in [-ng, 0.0, ng] {
            let d = (lo + shift - x).max(x - (hi + shift)).max(0.0);
            best = best.min(d);
        }
        best
    }

    /// Neighbor ranks that need `pos` as a ghost for kernel support
    /// radius `width`: ranks other than the owner whose domain, expanded
    /// by `width` in every dimension (conservative rectangular halo,
    /// periodic), contains the position. Requires
    /// `width <= min_domain_width()` so the 27-neighborhood covers every
    /// consumer.
    pub fn ghost_targets(&self, pos: &[f64; 3], width: f64) -> Vec<usize> {
        debug_assert!(
            width <= self.min_domain_width() + 1e-12,
            "ghost width {width} exceeds the narrowest domain"
        );
        let owner = self.rank_of(pos);
        let w: [f64; 3] = std::array::from_fn(|d| self.wrap(pos[d]));
        self.neighbors(owner)
            .into_iter()
            .filter(|&r| {
                let (lo, hi) = self.domain(r);
                (0..3).all(|d| self.dist_1d(w[d], lo[d], hi[d]) <= width)
            })
            .collect()
    }

    /// Partitions particle indices by owning rank.
    pub fn partition(&self, positions: &[[f64; 3]]) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.ranks];
        for (i, p) in positions.iter().enumerate() {
            out[self.rank_of(p)].push(i as u32);
        }
        out
    }

    /// Load imbalance: max/mean particles per rank.
    pub fn imbalance(&self, positions: &[[f64; 3]]) -> f64 {
        let parts = self.partition(positions);
        let max = parts.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mean = positions.len() as f64 / self.ranks as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mappings() {
        let f = NodeMapping::for_arch(&GpuArch::frontier()).unwrap();
        assert_eq!(f.ranks_per_node, 8);
        assert_eq!(f.ranks_per_device, 1);
        assert_eq!(f.sharing_penalty(), 1.0);
        let p = NodeMapping::for_arch(&GpuArch::polaris()).unwrap();
        assert_eq!(p.ranks_per_device, 2);
        assert!(p.sharing_penalty() > 1.0);
        let a = NodeMapping::for_arch(&GpuArch::aurora()).unwrap();
        assert_eq!(a.gpus_used, 4, "2 of 6 PVCs idle");
    }

    #[test]
    fn every_arch_constructor_has_a_mapping() {
        for arch in GpuArch::all_with_cpu() {
            let mapping = NodeMapping::for_arch(&arch)
                .unwrap_or_else(|e| panic!("arch {} lost its mapping: {e}", arch.id));
            assert_eq!(mapping.ranks_per_node, 8, "{}", arch.id);
        }
    }

    #[test]
    fn unknown_arch_is_a_typed_error() {
        let mut arch = GpuArch::frontier();
        arch.id = "h100";
        let err = NodeMapping::for_arch(&arch).unwrap_err();
        assert_eq!(err.id, "h100");
        assert!(err.to_string().contains("h100"));
    }

    #[test]
    fn dims_balance_like_mpi_dims_create() {
        assert_eq!(RankLayout::new(1, 16).dims, [1, 1, 1]);
        assert_eq!(RankLayout::new(2, 16).dims, [2, 1, 1]);
        assert_eq!(RankLayout::new(4, 16).dims, [2, 2, 1]);
        assert_eq!(RankLayout::new(8, 16).dims, [2, 2, 2]);
        assert_eq!(RankLayout::new(12, 24).dims, [3, 2, 2]);
        assert_eq!(RankLayout::new(7, 16).dims, [7, 1, 1]);
    }

    #[test]
    fn partition_covers_all_particles() {
        let layout = RankLayout::new(8, 64);
        let pos: Vec<[f64; 3]> = (0..1000)
            .map(|i| [(i * 7 % 64) as f64, (i * 13 % 64) as f64, (i % 64) as f64])
            .collect();
        let parts = layout.partition(&pos);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for (r, part) in parts.iter().enumerate() {
            for &i in part {
                assert_eq!(layout.rank_of(&pos[i as usize]), r);
            }
        }
    }

    #[test]
    fn uniform_particles_balance() {
        let layout = RankLayout::new(8, 64);
        let pos: Vec<[f64; 3]> = (0..16 * 16 * 16)
            .map(|i| {
                let (x, y, z) = (i % 16, (i / 16) % 16, i / 256);
                [
                    x as f64 * 4.0 + 0.5,
                    y as f64 * 4.0 + 0.5,
                    z as f64 * 4.0 + 0.5,
                ]
            })
            .collect();
        assert!(layout.imbalance(&pos) < 1.01);
    }

    #[test]
    fn wrapped_positions_get_valid_ranks() {
        let layout = RankLayout::new(4, 16);
        // 4 ranks → 2×2×1; x = -0.5 wraps to 15.5 (upper x half),
        // y = 0 in the lower y half.
        assert_eq!(layout.dims, [2, 2, 1]);
        assert_eq!(layout.rank_of(&[-0.5, 0.0, 0.0]), layout.rank_at([1, 0, 0]));
        assert_eq!(layout.rank_of(&[16.2, 0.0, 0.0]), 0);
        // A tiny negative coordinate must not round onto the closing
        // plane: it wraps to domain-0 ownership.
        let r = layout.rank_of(&[-1e-17, -1e-17, -1e-17]);
        assert_eq!(r, 0);
    }

    #[test]
    fn particle_count_not_divisible_by_ranks() {
        // 1000 particles over 7 ranks (prime → slabs): every particle
        // owned exactly once regardless of divisibility.
        let layout = RankLayout::new(7, 21);
        let pos: Vec<[f64; 3]> = (0..1000)
            .map(|i| {
                [
                    (i as f64 * 0.618) % 21.0,
                    (i as f64 * 0.414) % 21.0,
                    (i as f64 * 0.732) % 21.0,
                ]
            })
            .collect();
        let parts = layout.partition(&pos);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1000);
        assert!(layout.imbalance(&pos) >= 1.0);
    }

    #[test]
    fn empty_ranks_are_legal() {
        let layout = RankLayout::new(8, 16);
        // All particles piled into one corner: 7 ranks own nothing.
        let pos = vec![[0.5, 0.5, 0.5]; 32];
        let parts = layout.partition(&pos);
        assert_eq!(parts[layout.rank_of(&[0.5, 0.5, 0.5])].len(), 32);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 7);
        assert_eq!(layout.imbalance(&pos), 8.0);
    }

    #[test]
    fn plane_particles_owned_by_exactly_one_rank() {
        let layout = RankLayout::new(8, 16);
        // Every decomposition plane is at 0 or 8 in each dimension.
        for &x in &[0.0, 8.0] {
            for &y in &[0.0, 8.0] {
                for &z in &[0.0, 8.0] {
                    let p = [x, y, z];
                    let owner = layout.rank_of(&p);
                    let owners = (0..layout.ranks)
                        .filter(|&r| {
                            let (lo, hi) = layout.domain(r);
                            (0..3).all(|d| p[d] >= lo[d] && p[d] < hi[d])
                        })
                        .collect::<Vec<_>>();
                    assert_eq!(owners, vec![owner], "plane particle {p:?}");
                }
            }
        }
        // The box-closing plane at ng wraps to rank 0's domain.
        assert_eq!(layout.rank_of(&[16.0, 16.0, 16.0]), 0);
    }

    #[test]
    fn neighbors_cover_the_27_neighborhood() {
        let layout = RankLayout::new(8, 16);
        for r in 0..8 {
            // 2×2×2: every other rank is a neighbor.
            let n = layout.neighbors(r);
            assert_eq!(n.len(), 7);
            assert!(!n.contains(&r));
        }
        // Slab layouts deduplicate wrapped dimensions.
        let slab = RankLayout::with_dims([2, 1, 1], 16);
        assert_eq!(slab.neighbors(0), vec![1]);
        assert_eq!(slab.neighbors(1), vec![0]);
    }

    #[test]
    fn ghost_membership_round_trips_under_periodic_wrap() {
        let layout = RankLayout::new(8, 16);
        let width = 1.5;
        // A particle just inside rank 0's corner is a ghost for every
        // rank whose expanded domain reaches it across the wrap.
        let corner = [0.25, 0.25, 0.25];
        let targets = layout.ghost_targets(&corner, width);
        assert_eq!(targets.len(), 7, "corner particle ghosts to all 7");
        // Round trip: for every (particle, target) pair, the target's
        // expanded periodic domain contains the particle, and from the
        // target's perspective the particle is within `width` of its
        // domain — including across the periodic boundary.
        let probe = [15.9, 0.1, 7.9];
        for t in layout.ghost_targets(&probe, width) {
            let (lo, hi) = layout.domain(t);
            for d in 0..3 {
                assert!(
                    layout.dist_1d(probe[d], lo[d], hi[d]) <= width,
                    "ghost target {t} dim {d} too far"
                );
            }
        }
        // An interior particle (≥ width from every face) ghosts nowhere.
        let (lo, hi) = layout.domain(0);
        let center = std::array::from_fn(|d| 0.5 * (lo[d] + hi[d]));
        assert!(layout.ghost_targets(&center, width).is_empty());
    }

    #[test]
    fn domains_tile_the_box() {
        let layout = RankLayout::new(12, 24);
        let vol: f64 = (0..layout.ranks)
            .map(|r| {
                let (lo, hi) = layout.domain(r);
                (0..3).map(|d| hi[d] - lo[d]).product::<f64>()
            })
            .sum();
        assert!((vol - 24.0f64.powi(3)).abs() < 1e-9);
    }
}
