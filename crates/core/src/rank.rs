//! Rank decomposition (the MPI substitute).
//!
//! CRK-HACC runs one MPI rank per accelerator device and requires a
//! minimum of 8 ranks (§3.4.2); the paper maps 8 ranks onto one node of
//! each system (2 GCDs × 4 MI250X, 2 stacks × 4 PVC, or 2 ranks × 4
//! A100). This reproduction is single-process, so the rank layer is a
//! *workload decomposition*: it slabs the box so per-rank problem sizes,
//! memory estimates, and FOM normalizations match the paper's per-rank
//! accounting, and documents the device mapping of §3.4.2.

use sycl_sim::GpuArch;

/// How a system's node maps MPI ranks to accelerator devices.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMapping {
    /// System name.
    pub system: &'static str,
    /// Ranks used per node (always 8 in the paper).
    pub ranks_per_node: u32,
    /// Physical GPUs used.
    pub gpus_used: u32,
    /// Schedulable devices per GPU (GCDs/stacks).
    pub devices_per_gpu: u32,
    /// Fraction of the node's GPU silicon actually used (Polaris's 2
    /// ranks per A100 share one device: the paper reports ~11% lower
    /// efficiency from this; Aurora idles 2 of 6 GPUs).
    pub ranks_per_device: u32,
}

impl NodeMapping {
    /// The paper's §3.4.2 mapping for an architecture.
    pub fn for_arch(arch: &GpuArch) -> Self {
        match arch.id {
            // 8 ranks on 4 MI250X = one per GCD.
            "mi250x" => Self {
                system: "Frontier",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 2,
                ranks_per_device: 1,
            },
            // 8 ranks on 4 of 6 PVCs (2 stacks each), 2 GPUs idle.
            "pvc" => Self {
                system: "Aurora",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 2,
                ranks_per_device: 1,
            },
            // 8 ranks on 4 A100s: 2 ranks share each GPU.
            "a100" => Self {
                system: "Polaris",
                ranks_per_node: 8,
                gpus_used: 4,
                devices_per_gpu: 1,
                ranks_per_device: 2,
            },
            other => panic!("unknown architecture {other}"),
        }
    }

    /// Device-sharing slowdown: ranks that share a device each get a
    /// fraction of it. On Polaris this is the paper's "~11% lower
    /// efficiency" configuration cost (sharing is imperfect, not a clean
    /// 2×, because the two ranks' kernels interleave).
    pub fn sharing_penalty(&self) -> f64 {
        if self.ranks_per_device > 1 {
            1.11
        } else {
            1.0
        }
    }
}

/// A slab decomposition of the periodic box into ranks.
#[derive(Clone, Debug)]
pub struct RankLayout {
    /// Number of ranks.
    pub ranks: usize,
    /// Grid cells per dimension.
    pub ng: usize,
}

impl RankLayout {
    /// Creates a layout (`ranks` must divide `ng` for clean slabs).
    pub fn new(ranks: usize, ng: usize) -> Self {
        assert!(ranks >= 1 && ng >= ranks, "need at least one cell per rank");
        Self { ranks, ng }
    }

    /// Which rank owns a position (slabs along x).
    pub fn rank_of(&self, pos: &[f64; 3]) -> usize {
        let x = pos[0].rem_euclid(self.ng as f64);
        ((x / self.ng as f64 * self.ranks as f64) as usize).min(self.ranks - 1)
    }

    /// Partitions particle indices by rank.
    pub fn partition(&self, positions: &[[f64; 3]]) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.ranks];
        for (i, p) in positions.iter().enumerate() {
            out[self.rank_of(p)].push(i as u32);
        }
        out
    }

    /// Load imbalance: max/mean particles per rank.
    pub fn imbalance(&self, positions: &[[f64; 3]]) -> f64 {
        let parts = self.partition(positions);
        let max = parts.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mean = positions.len() as f64 / self.ranks as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mappings() {
        let f = NodeMapping::for_arch(&GpuArch::frontier());
        assert_eq!(f.ranks_per_node, 8);
        assert_eq!(f.ranks_per_device, 1);
        assert_eq!(f.sharing_penalty(), 1.0);
        let p = NodeMapping::for_arch(&GpuArch::polaris());
        assert_eq!(p.ranks_per_device, 2);
        assert!(p.sharing_penalty() > 1.0);
        let a = NodeMapping::for_arch(&GpuArch::aurora());
        assert_eq!(a.gpus_used, 4, "2 of 6 PVCs idle");
    }

    #[test]
    fn partition_covers_all_particles() {
        let layout = RankLayout::new(8, 64);
        let pos: Vec<[f64; 3]> = (0..1000).map(|i| [(i * 7 % 64) as f64, 1.0, 2.0]).collect();
        let parts = layout.partition(&pos);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for (r, part) in parts.iter().enumerate() {
            for &i in part {
                assert_eq!(layout.rank_of(&pos[i as usize]), r);
            }
        }
    }

    #[test]
    fn uniform_particles_balance() {
        let layout = RankLayout::new(8, 64);
        let pos: Vec<[f64; 3]> = (0..4096)
            .map(|i| {
                [
                    (i % 64) as f64 + 0.5,
                    ((i / 64) % 64) as f64,
                    (i / 4096) as f64,
                ]
            })
            .collect();
        assert!(layout.imbalance(&pos) < 1.01);
    }

    #[test]
    fn wrapped_positions_get_valid_ranks() {
        let layout = RankLayout::new(4, 16);
        assert_eq!(layout.rank_of(&[-0.5, 0.0, 0.0]), 3);
        assert_eq!(layout.rank_of(&[16.2, 0.0, 0.0]), 0);
    }
}
