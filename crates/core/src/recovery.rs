//! Checkpoint-rollback recovery for the simulation driver.
//!
//! The launch layer ([`hacc_kernels::launch_resilient`]) already
//! absorbs *detected* faults — transient launch failures are retried
//! and persistently failing variants are demoted down the fallback
//! chain. What it cannot catch is silent corruption: a flipped bit or
//! NaN written into device output poisons the particle state without
//! any launch reporting failure. This module closes that gap with the
//! classic HPC pattern: audit the state after every long step
//! ([`StepGuard`]), and on a violation (or an unrecoverable launch
//! error) roll back to the last known-good [`FullCheckpoint`], tighten
//! the time stepping, and retry — giving up with a structured error
//! after a bounded number of attempts.

use crate::checkpoint::{CheckpointError, FullCheckpoint};
use crate::guard::StepGuard;
use crate::sim::{RunSummary, Simulation};
use hacc_telemetry::FaultInfo;

/// Rollback/retry policy for the guarded run loop.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Consecutive failed attempts at the same long step before giving
    /// up.
    pub max_attempts: u32,
    /// Multiplier applied to the sub-cycle count on each retry (more
    /// sub-cycles → smaller kicks → a rerun perturbed less by any
    /// surviving corruption; the count is clamped at
    /// [`RecoveryPolicy::max_sub_cycles`]).
    pub sub_cycle_boost: usize,
    /// Upper clamp for the boosted sub-cycle count.
    pub max_sub_cycles: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            sub_cycle_boost: 2,
            max_sub_cycles: 64,
        }
    }
}

/// Structured failure of a guarded run: the step that could not be
/// completed and why.
#[derive(Clone, Debug)]
pub struct RecoveryError {
    /// Long-step index that kept failing.
    pub step: usize,
    /// Attempts spent on that step (== the policy's `max_attempts`).
    pub attempts: u32,
    /// Description of the final failure.
    pub detail: String,
    /// When the failure was the rollback itself (the checkpoint could
    /// not be restored), the typed checkpoint error — `None` for
    /// launch/guard failures that simply exhausted the retry budget.
    pub checkpoint: Option<CheckpointError>,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} failed after {} recovery attempts: {}",
            self.step, self.attempts, self.detail
        )
    }
}

impl std::error::Error for RecoveryError {}

impl Simulation {
    /// Runs all configured steps under guard-and-rollback recovery.
    ///
    /// Each long step is followed by a [`StepGuard`] audit; a launch
    /// error or guard violation rolls the state back to the last good
    /// [`FullCheckpoint`], boosts the sub-cycle count per `policy`, and
    /// retries. Every rollback increments the `rollbacks` telemetry
    /// counter and emits a `fault.rollback` event, so a completed run's
    /// event stream fully accounts for its recovery history. With no
    /// faults injected this takes exactly the same physics path as
    /// [`Simulation::run`].
    pub fn try_run_guarded(
        &mut self,
        policy: &RecoveryPolicy,
    ) -> Result<RunSummary, RecoveryError> {
        let span = self.telemetry.span("run");
        let guard = StepGuard::new(self);
        let mut good = FullCheckpoint::capture(self);
        let mut attempts: u32 = 0;
        while self.step_count < self.config.n_steps {
            let step = self.step_count;
            let outcome = self
                .try_step()
                .map_err(|e| e.to_string())
                .and_then(|()| guard.check(self).map_err(|v| v.to_string()));
            match outcome {
                Ok(()) => {
                    good = FullCheckpoint::capture(self);
                    attempts = 0;
                }
                Err(detail) => {
                    attempts += 1;
                    self.telemetry.counter("rollbacks", 1.0);
                    self.telemetry.fault(
                        "fault.rollback",
                        FaultInfo {
                            kind: "rollback".to_string(),
                            kernel: format!("step {step}"),
                            variant: self.variant.label().to_string(),
                            detail: detail.clone(),
                        },
                        1.0,
                    );
                    if attempts >= policy.max_attempts {
                        return Err(RecoveryError {
                            step,
                            attempts,
                            detail,
                            checkpoint: None,
                        });
                    }
                    good.restore_into(self).map_err(|e| RecoveryError {
                        step,
                        attempts,
                        detail: format!("rollback failed: {e}"),
                        checkpoint: Some(e),
                    })?;
                    // Retry with tighter stepping. The fault injector's
                    // launch ordinals keep advancing across the retry,
                    // so a deterministic injector does not replay the
                    // identical fault schedule.
                    let base = self.adaptive_sub_cycles.max(self.config.sub_cycles);
                    self.adaptive_sub_cycles = base
                        .saturating_mul(policy.sub_cycle_boost.saturating_pow(attempts))
                        .min(policy.max_sub_cycles);
                }
            }
        }
        drop(span);
        Ok(self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, SimConfig};
    use hacc_kernels::Variant;
    use hacc_telemetry::counter_total;
    use sycl_sim::{FaultConfig, GpuArch, GrfMode, Lang};

    fn smoke() -> Simulation {
        let dc = DeviceConfig {
            lang: Lang::Sycl,
            fast_math: None,
            variant: Variant::Select,
            sg_size: Some(32),
            grf: GrfMode::Default,
        };
        Simulation::new(SimConfig::smoke(), dc, GpuArch::frontier())
    }

    #[test]
    fn guarded_run_without_faults_matches_plain_run() {
        let mut plain = smoke();
        plain.set_deterministic();
        let plain_summary = plain.run();

        let mut guarded = smoke();
        guarded.set_deterministic();
        let summary = guarded
            .try_run_guarded(&RecoveryPolicy::default())
            .expect("fault-free guarded run must succeed");
        assert_eq!(summary.steps, plain_summary.steps);
        assert_eq!(summary.a_final, plain_summary.a_final);
        for i in 0..plain.n_particles() {
            for c in 0..3 {
                assert_eq!(plain.pos[i][c].to_bits(), guarded.pos[i][c].to_bits());
                assert_eq!(plain.mom[i][c].to_bits(), guarded.mom[i][c].to_bits());
            }
        }
        let sink = guarded.telemetry.events();
        assert_eq!(counter_total(&sink, "rollbacks"), 0.0);
    }

    #[test]
    fn unrecoverable_failure_is_a_structured_error() {
        let mut sim = smoke();
        sim.set_deterministic();
        // Permanently blocking the whole fallback chain makes every
        // launch fail: no amount of rollback can recover.
        sim.enable_fault_injection(FaultConfig {
            seed: 11,
            persistent_variants: vec![
                "Select".to_string(),
                "Memory, 32-bit".to_string(),
                "Memory, Object".to_string(),
            ],
            ..Default::default()
        });
        let policy = RecoveryPolicy {
            max_attempts: 2,
            ..Default::default()
        };
        let err = sim.try_run_guarded(&policy).unwrap_err();
        assert_eq!(err.step, 0);
        assert_eq!(err.attempts, 2);
        assert!(!err.detail.is_empty());
        let events = sim.telemetry.events();
        assert_eq!(counter_total(&events, "rollbacks"), 2.0);
    }
}
