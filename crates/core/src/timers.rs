//! HACC-style named accumulating timers.
//!
//! CRK-HACC brackets its operations with `MPI_Wtime()` timers (§3.4.4);
//! here each offloaded operation accumulates *simulated device seconds*
//! from the cost model, plus a count of invocations. A separate
//! aggregate timer tracks the total time of all offloaded operations,
//! matching the paper's "all GPU kernels" measurement in Figure 2.

use hacc_telemetry::{Event, EventKind, Sink};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One timer's accumulated state.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct TimerValue {
    /// Accumulated seconds.
    pub seconds: f64,
    /// Number of bracketed invocations.
    pub calls: u64,
}

/// A registry of named accumulating timers (thread-safe).
#[derive(Debug, Default)]
pub struct Timers {
    inner: Mutex<BTreeMap<String, TimerValue>>,
}

impl Timers {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` to timer `name`.
    pub fn add(&self, name: &str, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "bad timer value {seconds}"
        );
        let mut map = self.inner.lock();
        let t = map.entry(name.to_string()).or_default();
        t.seconds += seconds;
        t.calls += 1;
    }

    /// Reads one timer (zero if never touched).
    pub fn get(&self, name: &str) -> TimerValue {
        self.inner.lock().get(name).copied().unwrap_or_default()
    }

    /// Total over all timers.
    pub fn total_seconds(&self) -> f64 {
        self.inner.lock().values().map(|t| t.seconds).sum()
    }

    /// Snapshot of every timer, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, TimerValue)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Resets everything.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// Renders a report table (name, calls, seconds) like HACC's
    /// end-of-run timing summary.
    pub fn render(&self) -> String {
        let mut out = String::from("timer                      calls      seconds\n");
        for (name, v) in self.snapshot() {
            out.push_str(&format!("{name:<24} {:>8} {:>12.6}\n", v.calls, v.seconds));
        }
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.6}\n",
            "TOTAL",
            "",
            self.total_seconds()
        ));
        out
    }
}

/// Telemetry sink that folds typed `Timer` events into a [`Timers`]
/// table — the backward-compatible bridge from the structured event
/// stream to HACC's classic end-of-run summary.
pub struct TimersSink {
    timers: Arc<Timers>,
}

impl TimersSink {
    /// Builds a sink feeding `timers`.
    pub fn new(timers: Arc<Timers>) -> Self {
        Self { timers }
    }
}

impl Sink for TimersSink {
    fn on_event(&self, event: &Event) {
        if event.kind == EventKind::Timer {
            self.timers.add(&event.name, event.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_counts() {
        let t = Timers::new();
        t.add("upGeo", 0.5);
        t.add("upGeo", 0.25);
        t.add("upCor", 1.0);
        assert_eq!(t.get("upGeo").calls, 2);
        assert!((t.get("upGeo").seconds - 0.75).abs() < 1e-12);
        assert!((t.total_seconds() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn untouched_timer_is_zero() {
        let t = Timers::new();
        assert_eq!(t.get("nothing").calls, 0);
        assert_eq!(t.get("nothing").seconds, 0.0);
    }

    #[test]
    fn reset_clears() {
        let t = Timers::new();
        t.add("x", 1.0);
        t.reset();
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn render_contains_entries() {
        let t = Timers::new();
        t.add("upBarAc", 2.0);
        let s = t.render();
        assert!(s.contains("upBarAc"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    #[should_panic(expected = "bad timer value")]
    fn rejects_negative_time() {
        Timers::new().add("x", -1.0);
    }

    #[test]
    fn sink_folds_timer_events_only() {
        let timers = Arc::new(Timers::new());
        let rec = hacc_telemetry::Recorder::new();
        rec.add_sink(Box::new(TimersSink::new(timers.clone())));
        rec.timer("upGeo", 0.5);
        rec.timer("upGeo", 0.25);
        rec.counter("xfer.h2d.bytes", 4096.0); // must not become a timer
        let _span = rec.span("step");
        assert_eq!(timers.get("upGeo").calls, 2);
        assert!((timers.get("upGeo").seconds - 0.75).abs() < 1e-12);
        assert_eq!(timers.snapshot().len(), 1);
    }
}
