#![warn(missing_docs)]
//! # hacc-core
//!
//! The CRK-HACC application driver: configuration and problem presets,
//! the two-species particle state, the KDK sub-cycled time stepper that
//! couples the host-side PM long-range solve with the offloaded
//! short-range gravity and CRK hydro kernels, HACC-style timers fed by
//! the device cost model, checkpoints for standalone-kernel work
//! (paper §7.2), and the rank-decomposition layer standing in for MPI.

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod distckpt;
pub mod fom;
pub mod guard;
pub mod multirank;
pub mod rank;
pub mod recovery;
pub mod resilience;
pub mod sim;
pub mod timers;

pub use analysis::{density_moments, find_halos, mass_function, rms_velocity};
pub use checkpoint::{Checkpoint, CheckpointError, FullCheckpoint};
pub use config::{DeviceConfig, SimConfig};
pub use distckpt::{buddy_of, MultiRankCheckpoint, RankSnapshot};
pub use fom::{fom, FomProblem};
pub use guard::{GuardViolation, StepGuard};
pub use multirank::{MultiRankProblem, MultiRankSim, RankStepStats, StepStats};
pub use rank::{NodeMapping, RankLayout, UnknownArch};
pub use recovery::{RecoveryError, RecoveryPolicy};
pub use resilience::{
    RecoveryEvent, RecoveryMode, ResilienceConfig, ResilienceError, ResilienceReport,
};
pub use sim::{RunSummary, Simulation, Species};
pub use timers::{TimerValue, Timers};

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_kernels::Variant;
    use sycl_sim::{GpuArch, GrfMode, Lang};

    fn device_cfg(variant: Variant) -> DeviceConfig {
        DeviceConfig {
            lang: Lang::Sycl,
            fast_math: None,
            variant,
            sg_size: Some(32),
            grf: GrfMode::Default,
        }
    }

    fn smoke_sim(variant: Variant) -> Simulation {
        Simulation::new(SimConfig::smoke(), device_cfg(variant), GpuArch::frontier())
    }

    #[test]
    fn construction_sets_up_two_species() {
        let sim = smoke_sim(Variant::Select);
        let np3 = sim.config.box_spec.particles_per_species();
        assert_eq!(sim.n_particles(), 2 * np3);
        let n_dm = sim
            .species
            .iter()
            .filter(|&&s| s == Species::DarkMatter)
            .count();
        assert_eq!(n_dm, np3);
        // Baryons are lighter than dark matter.
        let m_dm = sim.mass[0];
        let m_b = sim.mass[np3];
        assert!(m_dm > m_b && m_b > 0.0);
        // Total mass = ng³ (mean density 1 per cell).
        let total: f64 = sim.mass.iter().sum();
        let ng3 = (sim.config.box_spec.ng as f64).powi(3);
        assert!((total / ng3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_step_advances_scale_factor_and_fills_timers() {
        let mut sim = smoke_sim(Variant::Select);
        let a0 = sim.a;
        sim.step();
        assert!(sim.a > a0);
        assert_eq!(sim.step_count, 1);
        for timer in hacc_kernels::HYDRO_TIMERS {
            assert!(sim.timers.get(timer).calls > 0, "timer {timer} never fired");
            assert!(sim.timers.get(timer).seconds > 0.0);
        }
        assert!(sim.timers.get("upGrav").calls > 0);
    }

    #[test]
    fn full_smoke_run_completes() {
        let mut sim = smoke_sim(Variant::Select);
        let summary = sim.run();
        assert_eq!(summary.steps, sim.config.n_steps);
        assert!((summary.a_final - hacc_cosmo::z_to_a(sim.config.z_final)).abs() < 1e-12);
        assert!(summary.gpu_seconds > 0.0);
        // Internal energies stay non-negative; positions stay in the box.
        let ng = sim.config.box_spec.ng as f64;
        for i in 0..sim.n_particles() {
            assert!(sim.u_int[i] >= 0.0);
            for c in 0..3 {
                assert!(sim.pos[i][c] >= 0.0 && sim.pos[i][c] < ng);
            }
        }
    }

    #[test]
    fn momentum_is_approximately_conserved() {
        let mut sim = smoke_sim(Variant::Select);
        sim.step();
        let p = sim.total_momentum();
        // Momentum scale: Σ m |u|.
        let scale: f64 = sim
            .mass
            .iter()
            .zip(&sim.mom)
            .map(|(m, u)| m * (u[0].abs() + u[1].abs() + u[2].abs()))
            .sum();
        for c in 0..3 {
            assert!(
                p[c].abs() < 1e-3 * scale.max(1e-30),
                "net momentum {p:?} vs scale {scale}"
            );
        }
    }

    #[test]
    fn gravity_only_mode_skips_hydro_timers() {
        let mut sim = smoke_sim(Variant::Select);
        sim.set_gravity_only();
        sim.step();
        assert_eq!(sim.timers.get("upGeo").calls, 0);
        assert!(sim.timers.get("upGrav").calls > 0);
    }

    #[test]
    fn particles_move_under_gravity() {
        let mut sim = smoke_sim(Variant::Select);
        let initial = sim.pos.clone();
        sim.set_gravity_only();
        sim.step();
        let rms = sim.rms_displacement_from(&initial);
        assert!(rms > 0.0, "particles must move");
        // At z≈200→170 over one step, displacements stay below a cell.
        assert!(
            rms < 1.0,
            "rms displacement {rms} too large for one early step"
        );
    }

    #[test]
    fn different_variants_produce_similar_trajectories() {
        // The physics must not depend on the communication variant.
        let mut a = smoke_sim(Variant::Select);
        let mut b = smoke_sim(Variant::Broadcast);
        a.step();
        b.step();
        let ng = a.config.box_spec.ng as f64;
        let mut worst = 0.0f64;
        for i in 0..a.n_particles() {
            let d = hacc_tree::min_image(&a.pos[i], &b.pos[i], ng);
            worst = worst.max((d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt());
        }
        assert!(
            worst < 1e-3,
            "variant trajectories diverged by {worst} cells"
        );
    }

    #[test]
    fn subgrid_mode_runs_and_forms_stars() {
        use hacc_kernels::SubgridParams;
        let mut sim = smoke_sim(Variant::Select);
        // Strong cooling + easy star formation so the smoke problem
        // exercises both paths.
        sim.enable_subgrid(SubgridParams {
            lambda0: 10.0,
            rho_star: 0.0,
            u_star: 1.0,
            sfr_efficiency: 0.5,
            ..Default::default()
        });
        // Give the baryons some internal energy to cool away.
        for (i, s) in sim.species.clone().iter().enumerate() {
            if *s == Species::Baryon {
                sim.u_int[i] = 1e-4;
            }
        }
        sim.step();
        assert!(
            sim.timers.get("upSub").calls > 0,
            "sub-grid timer must fire"
        );
        assert!(sim.total_star_mass() > 0.0, "stars should form");
        // Energies never fall below the floor.
        let floor = sim.subgrid.unwrap().u_floor as f64;
        for (i, s) in sim.species.iter().enumerate() {
            if *s == Species::Baryon {
                assert!(sim.u_int[i] >= floor - 1e-12);
            }
        }
    }

    #[test]
    fn subgrid_cooling_forces_more_sub_cycles() {
        use hacc_kernels::SubgridParams;
        // §3.1: sub-grid kernels tighten time-stepping and "lead to many
        // more calls to the adiabatic kernels".
        let mut adiabatic = smoke_sim(Variant::Select);
        adiabatic.step();
        let adiabatic_calls = adiabatic.timers.get("upGeo").calls;

        let mut cooling = smoke_sim(Variant::Select);
        cooling.enable_subgrid(SubgridParams {
            lambda0: 1e4,
            ..Default::default()
        });
        for (i, s) in cooling.species.clone().iter().enumerate() {
            if *s == Species::Baryon {
                cooling.u_int[i] = 1e-4;
            }
        }
        cooling.step(); // measures dt_min, adapts
        assert!(
            cooling.adaptive_sub_cycles > cooling.config.sub_cycles,
            "strong cooling must raise the sub-cycle count: {}",
            cooling.adaptive_sub_cycles
        );
        cooling.step(); // now runs more sub-cycles
        let cooling_calls = cooling.timers.get("upGeo").calls;
        assert!(
            cooling_calls > 2 * adiabatic_calls,
            "expected many more adiabatic kernel calls: {cooling_calls} vs {adiabatic_calls}"
        );
    }

    #[test]
    fn comm_layer_records_exchange_traffic() {
        let mut sim = smoke_sim(Variant::Select);
        sim.enable_comm(8);
        sim.step();
        let stats = sim.comm_stats().unwrap();
        assert!(stats.bytes > 0, "8 ranks must exchange halo traffic");
        assert!(stats.exchanges >= 1);
        let events = sim.telemetry.events();
        let sent = hacc_telemetry::counter_total(&events, "comm.bytes_sent");
        assert_eq!(sent, stats.bytes as f64, "counters reconcile with stats");
        assert!(hacc_telemetry::counter_total(&events, "comm.ghosts") > 0.0);
        // The physics must be untouched by the comm layer.
        let mut plain = smoke_sim(Variant::Select);
        plain.step();
        assert_eq!(plain.pos, sim.pos);
        assert_eq!(plain.mom, sim.mom);
    }

    #[test]
    fn checkpoint_captures_baryons() {
        let mut sim = smoke_sim(Variant::Select);
        sim.step();
        let cp = Checkpoint::capture(&sim);
        let np3 = sim.config.box_spec.particles_per_species();
        assert_eq!(cp.particles.len(), np3);
        cp.particles.validate().unwrap();
        let blob = cp.to_bytes();
        let back = Checkpoint::from_bytes(blob).unwrap();
        assert_eq!(cp, back);
    }
}
