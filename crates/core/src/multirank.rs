//! The distributed multi-rank execution engine.
//!
//! CRK-HACC's node-level structure — 8 ranks per node, each owning a
//! rectangular subdomain plus an *overload* (ghost) zone one kernel
//! support radius deep — reproduced over the in-process transport.
//! Every step runs the production communication schedule:
//!
//! 1. **migrate** — particles that drifted across a domain face are
//!    shipped to their new owner;
//! 2. **post** — each rank posts halo copies of its boundary particles
//!    to every neighbor whose expanded domain reaches them;
//! 3. **compute interior** — particles at least `r_cut` from every
//!    face need no ghosts, so their forces run while the halo
//!    exchange is in flight (this is the comm/compute overlap the
//!    sweep measures);
//! 4. **wait + compute boundary** — the exchange barrier delivers
//!    ghosts and the remaining particles finish against them;
//! 5. **kick/drift + allreduce** — local update, then a deterministic
//!    global reduction for diagnostics.
//!
//! Determinism is bit-exact by construction at *any* rank count and
//! any thread count: rank state is kept sorted by global particle id,
//! ghost inboxes are delivered `(src, seq)`-sorted and re-sorted by
//! id, and every force accumulates in `f64` over neighbors in
//! ascending-id order. A particle's neighbor set within `r_cut` is
//! identical whether its neighbors are owned or ghosts, so the
//! 8-rank run reproduces the single-rank bits exactly — the
//! distributed analogue of the PR 3 parallel-commit replay rule.
//!
//! Wall-clock per rank comes from a mechanistic cost model (pair count
//! × per-pair cost at the architecture's de-rated fp32 peak, plus the
//! interconnect's α–β message costs), so scaling sweeps are both
//! reproducible and architecture-differentiated.

use crate::checkpoint::CheckpointError;
use crate::distckpt::{MultiRankCheckpoint, RankSnapshot};
use crate::rank::{NodeMapping, RankLayout};
use hacc_comm::{
    CommError, ExchangeReport, Interconnect, ParticleBatch, Tag, Transport, TransportStats,
};
use hacc_telemetry::Recorder;
use hacc_tree::min_image;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;
use sycl_sim::{FaultConfig, GpuArch, ResourceId, RunError, TaskGraph};

/// Modeled flops per neighbor-pair interaction (distance, softened
/// inverse-cube, accumulate).
const PAIR_FLOPS: f64 = 38.0;
/// Modeled flops per particle per step outside the pair loop (kick,
/// drift, wrap).
const PARTICLE_FLOPS: f64 = 24.0;
/// Fraction of fp32 peak a memory-bound short-range kernel sustains.
const PAIR_EFFICIENCY: f64 = 0.12;

/// Problem definition for the multi-rank engine.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MultiRankProblem {
    /// Periodic box side in grid units.
    pub ng: usize,
    /// Total particle count across all ranks.
    pub n_particles: usize,
    /// Seed for the deterministic initial conditions.
    pub seed: u64,
    /// Interaction cutoff = ghost-zone depth, in grid units. Must not
    /// exceed the narrowest rank domain (the 27-neighborhood rule).
    pub r_cut: f64,
    /// Step size in internal time units.
    pub dt: f64,
    /// Plummer softening length.
    pub eps: f64,
    /// Cost-model work multiplier: each sweep particle stands in for
    /// this many production particles' worth of pair work. Production
    /// ranks hold millions of particles where compute dominates the
    /// interconnect latency; CI problems hold hundreds, which would be
    /// pure-latency-bound and make every scaling curve degenerate.
    /// Scaling the modeled (not executed) flops restores the paper's
    /// regime without inflating test runtimes. Physics is unaffected.
    pub work_scale: f64,
}

impl MultiRankProblem {
    /// A small pinned problem for tests and the CI sweep.
    pub fn small(n_particles: usize, seed: u64) -> Self {
        Self {
            ng: 16,
            n_particles,
            seed,
            r_cut: 2.0,
            dt: 0.05,
            eps: 0.05,
            work_scale: 16384.0,
        }
    }

    /// Rescales the periodic box (weak-scaling sweeps grow the box
    /// with the rank count to hold density constant).
    pub fn with_ng(mut self, ng: usize) -> Self {
        self.ng = ng;
        self
    }
}

/// Per-rank particle store, always sorted by global id.
#[derive(Clone, Debug, Default)]
struct RankState {
    ids: Vec<u64>,
    pos: Vec<[f64; 3]>,
    mom: Vec<[f64; 3]>,
    mass: Vec<f64>,
    h: Vec<f64>,
    u: Vec<f64>,
}

impl RankState {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn push(&mut self, id: u64, pos: [f64; 3], mom: [f64; 3], mass: f64, h: f64, u: f64) {
        self.ids.push(id);
        self.pos.push(pos);
        self.mom.push(mom);
        self.mass.push(mass);
        self.h.push(h);
        self.u.push(u);
    }

    fn absorb(&mut self, batch: &ParticleBatch) {
        for k in 0..batch.len() {
            self.push(
                batch.ids[k],
                batch.pos[k],
                batch.mom[k],
                batch.mass[k],
                batch.h[k],
                batch.u[k],
            );
        }
    }

    /// Restores ascending-id order after absorbing immigrants.
    fn sort_by_id(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&k| self.ids[k]);
        self.ids = order.iter().map(|&k| self.ids[k]).collect();
        self.pos = order.iter().map(|&k| self.pos[k]).collect();
        self.mom = order.iter().map(|&k| self.mom[k]).collect();
        self.mass = order.iter().map(|&k| self.mass[k]).collect();
        self.h = order.iter().map(|&k| self.h[k]).collect();
        self.u = order.iter().map(|&k| self.u[k]).collect();
    }
}

/// One step's accounting for one rank.
#[derive(Clone, Debug, Serialize)]
pub struct RankStepStats {
    /// Rank id.
    pub rank: usize,
    /// Particles owned after migration.
    pub owned: usize,
    /// Ghost particles received this step.
    pub ghosts: usize,
    /// In-cutoff pairs evaluated in the interior (overlappable) phase.
    pub interior_pairs: u64,
    /// In-cutoff pairs evaluated in the boundary phase.
    pub boundary_pairs: u64,
    /// Modeled seconds of interior compute.
    pub interior_seconds: f64,
    /// Modeled seconds of boundary compute.
    pub boundary_seconds: f64,
    /// Modeled seconds of halo communication incident on this rank.
    pub halo_seconds: f64,
    /// Modeled seconds of migration communication incident on this rank.
    pub migrate_seconds: f64,
    /// Wire bytes this rank sent (halo + migration).
    pub bytes_sent: u64,
    /// Halo seconds hidden behind interior compute.
    pub overlap_seconds: f64,
    /// Modeled step wall-clock for this rank:
    /// `migrate + max(halo, interior) + boundary`.
    pub step_seconds: f64,
    /// Idle seconds this rank's processor spends waiting on other
    /// ranks. Under the barriered schedule this is barrier idle —
    /// node seconds minus this rank's step, the time pinned at the
    /// global join. Under the async schedule no such join exists (the
    /// scheduler feeds an early-finishing rank its next ready task),
    /// so this is the in-step message stall instead: idle before the
    /// migrate absorb plus idle before boundary compute while ghosts
    /// are still in flight.
    pub wait_seconds: f64,
}

/// One step's accounting across all ranks.
#[derive(Clone, Debug, Serialize)]
pub struct StepStats {
    /// Step index (1-based, after the step completed).
    pub step: u64,
    /// Per-rank breakdown.
    pub per_rank: Vec<RankStepStats>,
    /// Modeled node step time: the slowest rank.
    pub node_seconds: f64,
    /// Total wire bytes moved this step.
    pub bytes: u64,
    /// Particles that changed owner this step.
    pub migrated: u64,
    /// Fraction of halo seconds hidden behind interior compute,
    /// aggregated over ranks (0 when no halo traffic).
    pub overlap_fraction: f64,
    /// Total kinetic energy after the step (deterministic rank-order
    /// allreduce; diagnostic, not part of the state digest).
    pub kinetic_energy: f64,
}

/// The distributed engine: `ranks` domains advancing concurrently on
/// the rayon pool, communicating through the transport.
pub struct MultiRankSim {
    /// Domain decomposition.
    pub layout: RankLayout,
    /// Architecture whose device and interconnect are modeled.
    pub arch: GpuArch,
    problem: MultiRankProblem,
    transport: Transport,
    recorder: Option<Recorder>,
    /// The injector configuration, kept so a rebuilt transport (shrink
    /// recovery re-sizes the communicator) re-attaches the same faults.
    fault_config: Option<FaultConfig>,
    states: Vec<RankState>,
    step_count: u64,
    /// When true, [`Self::step`] runs on the task-graph executor
    /// instead of the barriered reference schedule.
    async_step: bool,
    /// Seconds per in-cutoff pair on this architecture.
    pair_seconds: f64,
    /// Seconds per particle per step outside the pair loop.
    particle_seconds: f64,
}

/// splitmix64: the deterministic IC hash.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash stream.
fn unit(seed: u64, id: u64, channel: u64) -> f64 {
    (hash64(seed ^ hash64(id ^ hash64(channel))) >> 11) as f64 / (1u64 << 53) as f64
}

impl MultiRankSim {
    /// Builds the engine: deterministic initial conditions (identical
    /// for every rank count), partitioned over a 3D [`RankLayout`],
    /// with the architecture's interconnect behind the transport.
    pub fn new(ranks: usize, arch: GpuArch, problem: MultiRankProblem) -> Self {
        let layout = RankLayout::new(ranks, problem.ng);
        assert!(
            problem.r_cut <= layout.min_domain_width() + 1e-12,
            "r_cut {} exceeds the narrowest rank domain {} — the 27-neighborhood \
             halo cannot serve it",
            problem.r_cut,
            layout.min_domain_width()
        );
        let mapping = NodeMapping::for_arch(&arch).expect("paper architectures all have mappings");
        let peak = arch.fp32_peak_tflops * 1e12 * PAIR_EFFICIENCY
            / (mapping.sharing_penalty() * problem.work_scale.max(1.0));
        let transport = Transport::new(ranks, Interconnect::for_arch(&arch));

        let mut states: Vec<RankState> = vec![RankState::default(); ranks];
        let ng = problem.ng as f64;
        for id in 0..problem.n_particles as u64 {
            let pos = [
                unit(problem.seed, id, 0) * ng,
                unit(problem.seed, id, 1) * ng,
                unit(problem.seed, id, 2) * ng,
            ];
            let mom = [
                (unit(problem.seed, id, 3) - 0.5) * 0.2,
                (unit(problem.seed, id, 4) - 0.5) * 0.2,
                (unit(problem.seed, id, 5) - 0.5) * 0.2,
            ];
            let mass = 0.5 + unit(problem.seed, id, 6);
            let h = 0.5 * problem.r_cut;
            let u = unit(problem.seed, id, 7) * 1e-3;
            states[layout.rank_of(&pos)].push(id, pos, mom, mass, h, u);
        }
        // Generation order is id order, so each state is already sorted.

        Self {
            layout,
            arch,
            problem,
            transport,
            recorder: None,
            fault_config: None,
            states,
            step_count: 0,
            async_step: std::env::var("HACC_ASYNC")
                .map(|v| v == "1")
                .unwrap_or(false),
            pair_seconds: PAIR_FLOPS / peak,
            particle_seconds: PARTICLE_FLOPS / peak,
        }
    }

    /// Switches between the barriered reference schedule and the
    /// asynchronous task-graph schedule (also selectable at
    /// construction with `HACC_ASYNC=1`). Both schedules produce
    /// bit-identical particle state; only the modeled timeline and
    /// the `task.*` telemetry differ.
    pub fn set_async(&mut self, on: bool) {
        self.async_step = on;
    }

    /// True when steps run on the task-graph executor.
    pub fn is_async(&self) -> bool {
        self.async_step
    }

    /// Routes link faults through a seeded injector.
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        self.fault_config = Some(config.clone());
        self.transport.enable_fault_injection(config);
    }

    /// The injector configuration, if fault injection is enabled.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault_config.as_ref()
    }

    /// The problem definition the engine was built with.
    pub fn problem(&self) -> &MultiRankProblem {
        &self.problem
    }

    /// Emits telemetry into the recorder: per-message comm charges from
    /// the transport, plus one `step` span per step holding a `rank.{r}`
    /// span per rank with the four modeled `phase.*` timers the
    /// analysis plane's critical-path pass consumes.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder.clone());
        self.transport.set_recorder(recorder);
    }

    /// The underlying transport (stats, injector log).
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// The attached recorder, if any.
    pub(crate) fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Cumulative transport statistics.
    pub fn comm_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Total particles across ranks.
    pub fn n_particles(&self) -> usize {
        self.states.iter().map(RankState::len).sum()
    }

    /// Steps completed.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Particles owned by each rank.
    pub fn rank_populations(&self) -> Vec<usize> {
        self.states.iter().map(RankState::len).collect()
    }

    /// FNV-1a digest over the full particle state in ascending-id
    /// order — decomposition-invariant, so any rank count must produce
    /// the same value after the same number of steps.
    pub fn state_digest(&self) -> u64 {
        let mut refs: Vec<(&RankState, usize)> = Vec::new();
        for s in &self.states {
            for k in 0..s.len() {
                refs.push((s, k));
            }
        }
        refs.sort_by_key(|(s, k)| s.ids[*k]);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for b in word.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (s, k) in refs {
            eat(s.ids[k]);
            for c in 0..3 {
                eat(s.pos[k][c].to_bits());
                eat(s.mom[k][c].to_bits());
            }
            eat(s.mass[k].to_bits());
            eat(s.u[k].to_bits());
        }
        hash
    }

    /// Advances one step through the full communication schedule,
    /// dispatching to the barriered reference schedule or the
    /// asynchronous task-graph schedule per [`Self::set_async`].
    pub fn step(&mut self) -> Result<StepStats, CommError> {
        if self.async_step {
            self.step_async()
        } else {
            self.step_barriered()
        }
    }

    /// The barriered reference schedule described in the module docs:
    /// every phase drains at a global exchange barrier.
    fn step_barriered(&mut self) -> Result<StepStats, CommError> {
        let ranks = self.layout.ranks;
        let r_cut = self.problem.r_cut;
        let ng = self.problem.ng as f64;
        // Opened before the exchanges so every link span this step emits
        // nests under it; closed when the method returns.
        let recorder = self.recorder.clone();
        let _step_span = recorder.as_ref().map(|r| r.span("step"));

        // ------ Phase 1: migration. Each rank splits off particles
        // whose drifted position now falls in another domain and posts
        // them (ascending destination) to their new owners.
        let layout = self.layout.clone();
        let transport = &self.transport;
        let old_states = std::mem::take(&mut self.states);
        let mut migrated = 0u64;
        let kept: Vec<(RankState, u64)> = old_states
            .into_par_iter()
            .zip(0..ranks)
            .map(|(state, rank)| {
                let mut keep = RankState::default();
                let mut outgoing: BTreeMap<usize, ParticleBatch> = BTreeMap::new();
                let mut moved = 0u64;
                for k in 0..state.len() {
                    let owner = layout.rank_of(&state.pos[k]);
                    if owner == rank {
                        keep.push(
                            state.ids[k],
                            state.pos[k],
                            state.mom[k],
                            state.mass[k],
                            state.h[k],
                            state.u[k],
                        );
                    } else {
                        moved += 1;
                        outgoing.entry(owner).or_default().push(
                            state.ids[k],
                            state.pos[k],
                            state.mom[k],
                            state.mass[k],
                            state.h[k],
                            state.u[k],
                        );
                    }
                }
                for (dst, batch) in outgoing {
                    transport.send(rank, dst, Tag::Migrate, batch);
                }
                (keep, moved)
            })
            .collect();
        let migrate_report = self.transport.exchange()?;
        let mut states: Vec<RankState> = kept
            .into_iter()
            .map(|(keep, moved)| {
                migrated += moved;
                keep
            })
            .collect();
        states
            .par_iter_mut()
            .zip(0..ranks)
            .for_each(|(state, rank)| {
                let mut touched = false;
                for msg in transport.take_inbox(rank) {
                    state.absorb(&msg.batch);
                    touched = true;
                }
                if touched {
                    state.sort_by_id();
                }
            });

        // ------ Phase 2: post halos, then compute interior forces
        // while the exchange is notionally in flight. A particle is
        // interior when every split dimension keeps it ≥ r_cut from
        // both domain faces; its whole interaction ball is then owned.
        let accel: Vec<(Vec<[f64; 3]>, Vec<bool>, u64)> = states
            .par_iter()
            .zip(0..ranks)
            .map(|(state, rank)| {
                let mut outgoing: BTreeMap<usize, ParticleBatch> = BTreeMap::new();
                for k in 0..state.len() {
                    for dst in layout.ghost_targets(&state.pos[k], r_cut) {
                        outgoing.entry(dst).or_default().push(
                            state.ids[k],
                            state.pos[k],
                            state.mom[k],
                            state.mass[k],
                            state.h[k],
                            state.u[k],
                        );
                    }
                }
                for (dst, batch) in outgoing {
                    transport.send(rank, dst, Tag::Halo, batch);
                }

                let (lo, hi) = layout.domain(rank);
                let interior: Vec<bool> = (0..state.len())
                    .map(|k| {
                        (0..3).all(|d| {
                            layout.dims[d] == 1
                                || (state.pos[k][d] - lo[d] >= r_cut
                                    && hi[d] - state.pos[k][d] >= r_cut)
                        })
                    })
                    .collect();

                let mut acc = vec![[0.0f64; 3]; state.len()];
                let mut pairs = 0u64;
                for k in 0..state.len() {
                    if interior[k] {
                        pairs += accumulate(
                            &mut acc[k],
                            state.ids[k],
                            &state.pos[k],
                            state.ids.iter().copied(),
                            &state.pos,
                            &state.mass,
                            ng,
                            r_cut,
                            self.problem.eps,
                        );
                    }
                }
                (acc, interior, pairs)
            })
            .collect();
        let halo_report = self.transport.exchange()?;

        // ------ Phase 3: deliver ghosts, finish boundary particles
        // against owned + ghost neighbors (merged ascending-id, the
        // canonical order), then kick and drift everything.
        let dt = self.problem.dt;
        let eps = self.problem.eps;
        let results: Vec<(RankState, u64, u64, usize)> = states
            .into_par_iter()
            .zip(accel)
            .zip(0..ranks)
            .map(|((mut state, (mut acc, interior, interior_pairs)), rank)| {
                let mut ghosts = RankState::default();
                for msg in transport.take_inbox(rank) {
                    ghosts.absorb(&msg.batch);
                }
                ghosts.sort_by_id();

                // Merged candidate list: ids and positions of owned +
                // ghost neighbors, ascending id (owned and ghost sets
                // are disjoint by construction).
                let n_own = state.len();
                let mut cand_ids: Vec<u64> = Vec::with_capacity(n_own + ghosts.len());
                let mut cand_pos: Vec<[f64; 3]> = Vec::with_capacity(n_own + ghosts.len());
                let mut cand_mass: Vec<f64> = Vec::with_capacity(n_own + ghosts.len());
                let mut i = 0;
                let mut j = 0;
                while i < n_own || j < ghosts.len() {
                    let take_own = j >= ghosts.len() || (i < n_own && state.ids[i] < ghosts.ids[j]);
                    if take_own {
                        cand_ids.push(state.ids[i]);
                        cand_pos.push(state.pos[i]);
                        cand_mass.push(state.mass[i]);
                        i += 1;
                    } else {
                        cand_ids.push(ghosts.ids[j]);
                        cand_pos.push(ghosts.pos[j]);
                        cand_mass.push(ghosts.mass[j]);
                        j += 1;
                    }
                }

                let mut boundary_pairs = 0u64;
                for k in 0..state.len() {
                    if !interior[k] {
                        boundary_pairs += accumulate(
                            &mut acc[k],
                            state.ids[k],
                            &state.pos[k],
                            cand_ids.iter().copied(),
                            &cand_pos,
                            &cand_mass,
                            ng,
                            r_cut,
                            eps,
                        );
                    }
                }

                for k in 0..state.len() {
                    for c in 0..3 {
                        state.mom[k][c] += state.mass[k] * acc[k][c] * dt;
                        let mut x = state.pos[k][c] + state.mom[k][c] / state.mass[k] * dt;
                        x = x.rem_euclid(ng);
                        if x >= ng {
                            x = 0.0;
                        }
                        state.pos[k][c] = x;
                    }
                }
                let n_ghosts = ghosts.len();
                (state, interior_pairs, boundary_pairs, n_ghosts)
            })
            .collect();

        // ------ Phase 4: deterministic diagnostics allreduce and the
        // per-rank cost model.
        let mut per_rank = Vec::with_capacity(ranks);
        let mut ke_parts = Vec::with_capacity(ranks);
        let mut new_states = Vec::with_capacity(ranks);
        for (rank, (state, interior_pairs, boundary_pairs, n_ghosts)) in
            results.into_iter().enumerate()
        {
            let mut ke = 0.0f64;
            for k in 0..state.len() {
                let m = state.mass[k];
                let p2: f64 = state.mom[k].iter().map(|p| p * p).sum();
                ke += 0.5 * p2 / m;
            }
            ke_parts.push(ke);

            let interior_seconds = interior_pairs as f64 * self.pair_seconds
                + state.len() as f64 * self.particle_seconds;
            let boundary_seconds = boundary_pairs as f64 * self.pair_seconds;
            let halo_seconds = halo_report.rank_seconds(rank);
            let migrate_seconds = migrate_report.rank_seconds(rank);
            let overlap_seconds = halo_seconds.min(interior_seconds);
            per_rank.push(RankStepStats {
                rank,
                owned: state.len(),
                ghosts: n_ghosts,
                interior_pairs,
                boundary_pairs,
                interior_seconds,
                boundary_seconds,
                halo_seconds,
                migrate_seconds,
                bytes_sent: halo_report.rank_bytes_sent(rank)
                    + migrate_report.rank_bytes_sent(rank),
                overlap_seconds,
                step_seconds: migrate_seconds
                    + halo_seconds.max(interior_seconds)
                    + boundary_seconds,
                wait_seconds: 0.0,
            });
            new_states.push(state);
        }
        self.states = new_states;
        Ok(self.emit_step_stats(
            recorder.as_ref(),
            per_rank,
            migrated,
            migrate_report.bytes + halo_report.bytes,
            ke_parts,
            true,
        ))
    }

    /// The asynchronous task-graph schedule: the same physics as the
    /// barriered path, but per-rank migrate flushes, absorbs, halo
    /// posts, interior compute, and boundary compute are task nodes
    /// scheduled as their dependencies resolve — a rank whose
    /// 27-neighborhood has flushed starts its boundary compute while
    /// other ranks are still exchanging, and no global join exists
    /// anywhere in the step.
    ///
    /// Bit-identical to the barriered reference by construction:
    /// [`Transport::flush_source`] assigns the same per-source
    /// `(src, seq)` stream the exchange barrier would, tagged inbox
    /// takes sort canonically, and every force accumulation keeps its
    /// ascending-id order (the distributed analogue of the deferred-
    /// atomic replay rule — interleavings change nothing).
    fn step_async(&mut self) -> Result<StepStats, CommError> {
        let ranks = self.layout.ranks;
        let r_cut = self.problem.r_cut;
        let ng = self.problem.ng as f64;
        let dt = self.problem.dt;
        let eps = self.problem.eps;
        let recorder = self.recorder.clone();
        let _step_span = recorder.as_ref().map(|r| r.span("step"));

        let layout = self.layout.clone();
        let transport = &self.transport;
        let states: Vec<Mutex<RankState>> = std::mem::take(&mut self.states)
            .into_iter()
            .map(Mutex::new)
            .collect();
        // Per-rank task outputs; each slot is written by exactly one
        // task, the locks never contend.
        let mig_out: Vec<Mutex<Option<(ExchangeReport, u64)>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();
        let halo_out: Vec<Mutex<Option<ExchangeReport>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();
        let int_out: Vec<Mutex<Option<(Vec<[f64; 3]>, Vec<bool>, u64)>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();
        let bnd_out: Vec<Mutex<Option<(u64, u64, usize)>>> =
            (0..ranks).map(|_| Mutex::new(None)).collect();

        let mut graph: TaskGraph<'_, CommError> = TaskGraph::new();
        let state_res: Vec<ResourceId> = (0..ranks)
            .map(|r| ResourceId::indexed("rank.state", r))
            .collect();
        let acc_res: Vec<ResourceId> = (0..ranks)
            .map(|r| ResourceId::indexed("rank.acc", r))
            .collect();

        // mig.r — split off emigrants, post them ascending-destination,
        // flush this source's wire. Writes state.r.
        let mut mig_ids = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let (states, mig_out, layout) = (&states, &mig_out, &layout);
            mig_ids.push(graph.add_task(
                format!("mig.{rank}"),
                &[],
                &[state_res[rank]],
                move || {
                    let mut state = states[rank].lock().unwrap();
                    let mut keep = RankState::default();
                    let mut outgoing: BTreeMap<usize, ParticleBatch> = BTreeMap::new();
                    let mut moved = 0u64;
                    for k in 0..state.len() {
                        let owner = layout.rank_of(&state.pos[k]);
                        if owner == rank {
                            keep.push(
                                state.ids[k],
                                state.pos[k],
                                state.mom[k],
                                state.mass[k],
                                state.h[k],
                                state.u[k],
                            );
                        } else {
                            moved += 1;
                            outgoing.entry(owner).or_default().push(
                                state.ids[k],
                                state.pos[k],
                                state.mom[k],
                                state.mass[k],
                                state.h[k],
                                state.u[k],
                            );
                        }
                    }
                    *state = keep;
                    drop(state);
                    for (dst, batch) in outgoing {
                        transport.send(rank, dst, Tag::Migrate, batch);
                    }
                    let report = transport.flush_source(rank)?;
                    *mig_out[rank].lock().unwrap() = Some((report, moved));
                    Ok(())
                },
            ));
        }

        // abs.r — absorb immigrants once every source has flushed.
        // Message arrival is a hazard the resource sets cannot see, so
        // the edges are explicit (migration may cross any face, so any
        // source is a potential sender). Writes state.r.
        for rank in 0..ranks {
            let states = &states;
            let id = graph.add_task(format!("abs.{rank}"), &[], &[state_res[rank]], move || {
                let msgs = transport.take_inbox_tagged(rank, Tag::Migrate);
                if !msgs.is_empty() {
                    let mut state = states[rank].lock().unwrap();
                    for msg in &msgs {
                        state.absorb(&msg.batch);
                    }
                    state.sort_by_id();
                }
                Ok(())
            });
            for &m in &mig_ids {
                graph
                    .add_dep(id, m)
                    .expect("migrate flushes precede absorbs in canonical order");
            }
        }

        // post.r — post halo ghosts ascending-destination and flush
        // this source's wire. Reads state.r.
        let mut post_ids = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let (states, halo_out, layout) = (&states, &halo_out, &layout);
            post_ids.push(graph.add_task(
                format!("post.{rank}"),
                &[state_res[rank]],
                &[],
                move || {
                    let state = states[rank].lock().unwrap();
                    let mut outgoing: BTreeMap<usize, ParticleBatch> = BTreeMap::new();
                    for k in 0..state.len() {
                        for dst in layout.ghost_targets(&state.pos[k], r_cut) {
                            outgoing.entry(dst).or_default().push(
                                state.ids[k],
                                state.pos[k],
                                state.mom[k],
                                state.mass[k],
                                state.h[k],
                                state.u[k],
                            );
                        }
                    }
                    drop(state);
                    for (dst, batch) in outgoing {
                        transport.send(rank, dst, Tag::Halo, batch);
                    }
                    let report = transport.flush_source(rank)?;
                    *halo_out[rank].lock().unwrap() = Some(report);
                    Ok(())
                },
            ));
        }

        // int.r — interior forces (whole interaction ball owned, no
        // ghosts needed), overlapping the halo wire. Reads state.r,
        // writes acc.r.
        for rank in 0..ranks {
            let (states, int_out, layout) = (&states, &int_out, &layout);
            graph.add_task(
                format!("int.{rank}"),
                &[state_res[rank]],
                &[acc_res[rank]],
                move || {
                    let state = states[rank].lock().unwrap();
                    let (lo, hi) = layout.domain(rank);
                    let interior: Vec<bool> = (0..state.len())
                        .map(|k| {
                            (0..3).all(|d| {
                                layout.dims[d] == 1
                                    || (state.pos[k][d] - lo[d] >= r_cut
                                        && hi[d] - state.pos[k][d] >= r_cut)
                            })
                        })
                        .collect();
                    let mut acc = vec![[0.0f64; 3]; state.len()];
                    let mut pairs = 0u64;
                    for k in 0..state.len() {
                        if interior[k] {
                            pairs += accumulate(
                                &mut acc[k],
                                state.ids[k],
                                &state.pos[k],
                                state.ids.iter().copied(),
                                &state.pos,
                                &state.mass,
                                ng,
                                r_cut,
                                eps,
                            );
                        }
                    }
                    *int_out[rank].lock().unwrap() = Some((acc, interior, pairs));
                    Ok(())
                },
            );
        }

        // bnd.r — once the 27-neighborhood has flushed its halos, take
        // the ghosts, finish boundary forces against the merged
        // ascending-id candidate list, then kick and drift. Reads
        // acc.r, writes state.r and acc.r (the WAR edges on post.r and
        // int.r come from the state.r read set).
        for rank in 0..ranks {
            let (states, int_out, bnd_out) = (&states, &int_out, &bnd_out);
            let id = graph.add_task(
                format!("bnd.{rank}"),
                &[acc_res[rank]],
                &[state_res[rank], acc_res[rank]],
                move || {
                    let mut ghosts = RankState::default();
                    for msg in transport.take_inbox_tagged(rank, Tag::Halo) {
                        ghosts.absorb(&msg.batch);
                    }
                    ghosts.sort_by_id();

                    let mut state = states[rank].lock().unwrap();
                    let (mut acc, interior, interior_pairs) = int_out[rank]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("int.r precedes bnd.r");
                    let n_own = state.len();
                    let mut cand_ids: Vec<u64> = Vec::with_capacity(n_own + ghosts.len());
                    let mut cand_pos: Vec<[f64; 3]> = Vec::with_capacity(n_own + ghosts.len());
                    let mut cand_mass: Vec<f64> = Vec::with_capacity(n_own + ghosts.len());
                    let mut i = 0;
                    let mut j = 0;
                    while i < n_own || j < ghosts.len() {
                        let take_own =
                            j >= ghosts.len() || (i < n_own && state.ids[i] < ghosts.ids[j]);
                        if take_own {
                            cand_ids.push(state.ids[i]);
                            cand_pos.push(state.pos[i]);
                            cand_mass.push(state.mass[i]);
                            i += 1;
                        } else {
                            cand_ids.push(ghosts.ids[j]);
                            cand_pos.push(ghosts.pos[j]);
                            cand_mass.push(ghosts.mass[j]);
                            j += 1;
                        }
                    }

                    let mut boundary_pairs = 0u64;
                    for k in 0..state.len() {
                        if !interior[k] {
                            boundary_pairs += accumulate(
                                &mut acc[k],
                                state.ids[k],
                                &state.pos[k],
                                cand_ids.iter().copied(),
                                &cand_pos,
                                &cand_mass,
                                ng,
                                r_cut,
                                eps,
                            );
                        }
                    }
                    for k in 0..state.len() {
                        for c in 0..3 {
                            state.mom[k][c] += state.mass[k] * acc[k][c] * dt;
                            let mut x = state.pos[k][c] + state.mom[k][c] / state.mass[k] * dt;
                            x = x.rem_euclid(ng);
                            if x >= ng {
                                x = 0.0;
                            }
                            state.pos[k][c] = x;
                        }
                    }
                    *bnd_out[rank].lock().unwrap() =
                        Some((interior_pairs, boundary_pairs, ghosts.len()));
                    Ok(())
                },
            );
            for &s in &layout.neighbors(rank) {
                graph
                    .add_dep(id, post_ids[s])
                    .expect("halo posts precede boundary compute in canonical order");
            }
        }

        if let Err(e) = graph.run(0, None, recorder.as_ref()) {
            return Err(match e {
                RunError::Task { error, .. } => error,
                RunError::Watchdog { .. } => unreachable!("step graph runs without a watchdog"),
            });
        }

        self.states = states
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        let mut mig_rep = Vec::with_capacity(ranks);
        let mut migrated = 0u64;
        for slot in mig_out {
            let (rep, moved) = slot.into_inner().unwrap().expect("mig.r ran");
            migrated += moved;
            mig_rep.push(rep);
        }
        let halo_rep: Vec<ExchangeReport> = halo_out
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("post.r ran"))
            .collect();

        // Modeled async timeline. Each source's flush costs its own
        // wire seconds; a message is available once its sender's flush
        // completes. So a rank may absorb at
        //   absorb_start_r = max(own flush, slowest migrate sender),
        // its halo flush completes at absorb_start_r + halo flush, and
        // its ghosts are ready once every halo sender's flush is done —
        // maxes over the neighborhood instead of the barriered model's
        // sums over every incident link, which is exactly the wait the
        // task graph removes from the critical path.
        let mig_done: Vec<f64> = mig_rep.iter().map(|r| r.seconds).collect();
        let absorb_start: Vec<f64> = (0..ranks)
            .map(|r| {
                let mut t = mig_done[r];
                for (s, rep) in mig_rep.iter().enumerate() {
                    if s != r && rep.links.iter().any(|l| l.dst == r) {
                        t = t.max(mig_done[s]);
                    }
                }
                t
            })
            .collect();
        let post_done: Vec<f64> = (0..ranks)
            .map(|r| absorb_start[r] + halo_rep[r].seconds)
            .collect();
        let ghost_ready: Vec<f64> = (0..ranks)
            .map(|r| {
                // Own post gates the boundary write too (the WAR edge).
                let mut t = post_done[r];
                for (s, rep) in halo_rep.iter().enumerate() {
                    if s != r && rep.links.iter().any(|l| l.dst == r) {
                        t = t.max(post_done[s]);
                    }
                }
                t
            })
            .collect();

        let mut per_rank = Vec::with_capacity(ranks);
        let mut ke_parts = Vec::with_capacity(ranks);
        let mut bytes = 0u64;
        for (rank, slot) in bnd_out.into_iter().enumerate() {
            let (interior_pairs, boundary_pairs, n_ghosts) =
                slot.into_inner().unwrap().expect("bnd.r ran");
            let state = &self.states[rank];
            let mut ke = 0.0f64;
            for k in 0..state.len() {
                let m = state.mass[k];
                let p2: f64 = state.mom[k].iter().map(|p| p * p).sum();
                ke += 0.5 * p2 / m;
            }
            ke_parts.push(ke);

            let interior_seconds = interior_pairs as f64 * self.pair_seconds
                + state.len() as f64 * self.particle_seconds;
            let boundary_seconds = boundary_pairs as f64 * self.pair_seconds;
            // The ghost-wait window after absorb; the part interior
            // compute does not cover is the exposed exchange.
            let halo_window = (ghost_ready[rank] - absorb_start[rank]).max(0.0);
            // In-step stalls attributable to *other* ranks: idle
            // waiting on slower migrate senders, plus idle before
            // boundary compute while neighbors' ghosts are still in
            // flight beyond this rank's own busy timeline (own wire
            // exposure is exchange, not wait — matching the barriered
            // attribution). The end-of-step tail is not wait here —
            // the scheduler feeds the rank its next ready task.
            let ghosts_from_others = halo_rep
                .iter()
                .enumerate()
                .filter(|(s, rep)| *s != rank && rep.links.iter().any(|l| l.dst == rank))
                .map(|(s, _)| post_done[s])
                .fold(0.0, f64::max);
            let own_busy_until = (absorb_start[rank] + interior_seconds).max(post_done[rank]);
            let wait_seconds = (absorb_start[rank] - mig_done[rank])
                + (ghosts_from_others - own_busy_until).max(0.0);
            let sent = mig_rep[rank].bytes + halo_rep[rank].bytes;
            bytes += sent;
            per_rank.push(RankStepStats {
                rank,
                owned: state.len(),
                ghosts: n_ghosts,
                interior_pairs,
                boundary_pairs,
                interior_seconds,
                boundary_seconds,
                halo_seconds: halo_window,
                migrate_seconds: absorb_start[rank],
                bytes_sent: sent,
                overlap_seconds: halo_window.min(interior_seconds),
                step_seconds: absorb_start[rank]
                    + halo_window.max(interior_seconds)
                    + boundary_seconds,
                wait_seconds,
            });
        }
        Ok(self.emit_step_stats(
            recorder.as_ref(),
            per_rank,
            migrated,
            bytes,
            ke_parts,
            false,
        ))
    }

    /// Shared step epilogue: deterministic diagnostics allreduce,
    /// node-time and wait attribution, and the per-rank telemetry
    /// spans the analysis plane's critical-path pass consumes.
    fn emit_step_stats(
        &mut self,
        recorder: Option<&Recorder>,
        mut per_rank: Vec<RankStepStats>,
        migrated: u64,
        bytes: u64,
        ke_parts: Vec<f64>,
        barrier_wait: bool,
    ) -> StepStats {
        let kinetic_energy = self.transport.allreduce_sum(&ke_parts);
        self.step_count += 1;
        let node_seconds = per_rank.iter().map(|r| r.step_seconds).fold(0.0, f64::max);
        if barrier_wait {
            // The barriered schedule pins every rank at the global
            // join; the async path passes its in-step stalls instead.
            for r in &mut per_rank {
                r.wait_seconds = (node_seconds - r.step_seconds).max(0.0);
            }
        }
        let halo_total: f64 = per_rank.iter().map(|r| r.halo_seconds).sum();
        let overlap_total: f64 = per_rank.iter().map(|r| r.overlap_seconds).sum();
        let overlap_fraction = if halo_total > 0.0 {
            overlap_total / halo_total
        } else {
            0.0
        };
        if let Some(rec) = recorder {
            // One span per rank under the step span, carrying the four
            // modeled phase timers. Values are pure cost-model output,
            // so the timer stream stays bit-reproducible across runs.
            for r in &per_rank {
                let _rank_span = rec.span(&format!("rank.{}", r.rank));
                rec.timer("phase.migrate", r.migrate_seconds);
                rec.timer("phase.interior", r.interior_seconds);
                rec.timer("phase.halo", r.halo_seconds);
                rec.timer("phase.boundary", r.boundary_seconds);
            }
            rec.counter("multirank.overlap_fraction", overlap_fraction);
            rec.counter("multirank.migrated", migrated as f64);
        }
        StepStats {
            step: self.step_count,
            node_seconds,
            bytes,
            migrated,
            overlap_fraction,
            kinetic_energy,
            per_rank,
        }
    }

    /// Advances `steps` steps, returning each step's accounting.
    pub fn run(&mut self, steps: u64) -> Result<Vec<StepStats>, CommError> {
        (0..steps).map(|_| self.step()).collect()
    }

    /// Captures a coordinated [`MultiRankCheckpoint`] of every rank at
    /// the current step boundary. Legal only between steps, when no
    /// message is in flight — which is the only time the caller can
    /// hold `&self`.
    pub fn checkpoint(&self) -> MultiRankCheckpoint {
        MultiRankCheckpoint {
            step: self.step_count,
            ng: self.problem.ng,
            dims: self.layout.dims,
            per_rank: self
                .states
                .iter()
                .map(|s| RankSnapshot {
                    ids: s.ids.clone(),
                    pos: s.pos.clone(),
                    mom: s.mom.clone(),
                    mass: s.mass.clone(),
                    h: s.h.clone(),
                    u: s.u.clone(),
                })
                .collect(),
        }
    }

    /// Restores every rank from a checkpoint taken under the *same*
    /// decomposition (respawn recovery: the communicator keeps its
    /// size). Queued messages from the abandoned timeline are purged.
    pub fn restore(&mut self, ckpt: &MultiRankCheckpoint) -> Result<(), CheckpointError> {
        if ckpt.ranks() != self.layout.ranks || ckpt.dims != self.layout.dims {
            return Err(CheckpointError::SizeMismatch {
                checkpoint: ckpt.ranks(),
                simulation: self.layout.ranks,
            });
        }
        if ckpt.ng != self.problem.ng {
            return Err(CheckpointError::Invalid {
                detail: format!(
                    "checkpoint box ng={} does not match the engine's ng={}",
                    ckpt.ng, self.problem.ng
                ),
            });
        }
        self.states = ckpt.per_rank.iter().map(rank_state_from).collect();
        self.step_count = ckpt.step;
        self.transport.purge();
        Ok(())
    }

    /// Rebuilds the engine with `ranks` ranks and restores the particle
    /// state from a checkpoint taken under *any* decomposition of the
    /// same box, re-partitioning every particle by position (shrink
    /// recovery: survivors absorb a lost rank's domain). The transport
    /// is rebuilt for the new communicator size with the same
    /// interconnect, fault configuration, and recorder.
    pub fn restore_resized(
        &mut self,
        ranks: usize,
        ckpt: &MultiRankCheckpoint,
    ) -> Result<(), CheckpointError> {
        if ckpt.ng != self.problem.ng {
            return Err(CheckpointError::Invalid {
                detail: format!(
                    "checkpoint box ng={} does not match the engine's ng={}",
                    ckpt.ng, self.problem.ng
                ),
            });
        }
        let layout = RankLayout::new(ranks, self.problem.ng);
        if self.problem.r_cut > layout.min_domain_width() + 1e-12 {
            return Err(CheckpointError::Invalid {
                detail: format!(
                    "r_cut {} exceeds the narrowest domain {} of a {ranks}-rank layout",
                    self.problem.r_cut,
                    layout.min_domain_width()
                ),
            });
        }
        let mut transport = Transport::new(ranks, self.transport.fabric().clone());
        if let Some(config) = self.fault_config.clone() {
            transport.enable_fault_injection(config);
        }
        if let Some(recorder) = self.recorder.clone() {
            transport.set_recorder(recorder);
        }
        let mut states: Vec<RankState> = vec![RankState::default(); ranks];
        for snap in &ckpt.per_rank {
            for k in 0..snap.len() {
                states[layout.rank_of(&snap.pos[k])].push(
                    snap.ids[k],
                    snap.pos[k],
                    snap.mom[k],
                    snap.mass[k],
                    snap.h[k],
                    snap.u[k],
                );
            }
        }
        for state in &mut states {
            state.sort_by_id();
        }
        self.layout = layout;
        self.transport = transport;
        self.states = states;
        self.step_count = ckpt.step;
        Ok(())
    }
}

/// Rebuilds the engine's internal store from a public snapshot.
fn rank_state_from(snap: &RankSnapshot) -> RankState {
    RankState {
        ids: snap.ids.clone(),
        pos: snap.pos.clone(),
        mom: snap.mom.clone(),
        mass: snap.mass.clone(),
        h: snap.h.clone(),
        u: snap.u.clone(),
    }
}

/// Accumulates softened-gravity acceleration on one particle over a
/// candidate list in its given (ascending-id) order; returns the
/// number of in-cutoff pairs. `f64` throughout — the order and width
/// are the determinism contract.
#[allow(clippy::too_many_arguments)]
fn accumulate(
    acc: &mut [f64; 3],
    own_id: u64,
    own_pos: &[f64; 3],
    ids: impl Iterator<Item = u64>,
    pos: &[[f64; 3]],
    mass: &[f64],
    ng: f64,
    r_cut: f64,
    eps: f64,
) -> u64 {
    let r_cut2 = r_cut * r_cut;
    let mut pairs = 0;
    for (j, id) in ids.enumerate() {
        if id == own_id {
            continue;
        }
        let d = min_image(own_pos, &pos[j], ng);
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        if r2 < r_cut2 {
            pairs += 1;
            let w = mass[j] / (r2 + eps * eps).powf(1.5);
            for c in 0..3 {
                acc[c] += w * d[c];
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> MultiRankProblem {
        MultiRankProblem::small(256, 42)
    }

    #[test]
    fn particles_conserved_across_migration() {
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        assert_eq!(sim.n_particles(), 256);
        let stats = sim.run(4).unwrap();
        assert_eq!(sim.n_particles(), 256);
        // With a 0.05 dt something should eventually cross a face.
        let moved: u64 = stats.iter().map(|s| s.migrated).sum();
        assert!(moved > 0, "no particle ever migrated in 4 steps");
    }

    #[test]
    fn any_rank_count_reproduces_single_rank_bits() {
        let digest_of = |ranks: usize| {
            let mut sim = MultiRankSim::new(ranks, GpuArch::aurora(), problem());
            sim.run(3).unwrap();
            sim.state_digest()
        };
        let single = digest_of(1);
        for ranks in [2, 4, 8] {
            assert_eq!(
                digest_of(ranks),
                single,
                "{ranks}-rank run diverged from the single-rank bits"
            );
        }
    }

    #[test]
    fn overlap_and_traffic_are_reported() {
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        let stats = sim.step().unwrap();
        assert_eq!(stats.per_rank.len(), 8);
        assert!(stats.bytes > 0, "8 ranks must exchange halos");
        assert!(stats.node_seconds > 0.0);
        assert!((0.0..=1.0).contains(&stats.overlap_fraction));
        let ghosts: usize = stats.per_rank.iter().map(|r| r.ghosts).sum();
        assert!(ghosts > 0, "ghost zones must populate");
        assert_eq!(sim.comm_stats().exchanges, 2, "migrate + halo barriers");
    }

    #[test]
    fn single_rank_has_no_traffic() {
        let mut sim = MultiRankSim::new(1, GpuArch::polaris(), problem());
        let stats = sim.step().unwrap();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.overlap_fraction, 0.0);
        assert_eq!(stats.per_rank[0].ghosts, 0);
        assert!(stats.per_rank[0].step_seconds > 0.0);
    }

    #[test]
    fn phase_telemetry_feeds_the_critical_path_pass() {
        let mut sim = MultiRankSim::new(4, GpuArch::aurora(), problem());
        let rec = Recorder::new();
        sim.set_recorder(rec.clone());
        let stats = sim.run(2).unwrap();

        let paths = hacc_telemetry::analysis::critical_paths(&rec.events());
        assert_eq!(paths.len(), 2, "one critical path per step");
        for (path, step) in paths.iter().zip(&stats) {
            assert_eq!(path.per_rank.len(), 4);
            assert!(
                (path.node_seconds - step.node_seconds).abs() < 1e-12,
                "span-tree node time must match the engine's accounting"
            );
            for r in &path.per_rank {
                let total = r.frac_compute_interior
                    + r.frac_compute_boundary
                    + r.frac_exchange
                    + r.frac_wait;
                assert!((total - 1.0).abs() < 1e-9, "fractions partition node time");
            }
            assert_eq!(path.critical_rank, {
                let mut best = 0;
                for r in &step.per_rank {
                    if r.step_seconds > step.per_rank[best].step_seconds {
                        best = r.rank;
                    }
                }
                best
            });
        }
    }

    #[test]
    fn phase_timer_stream_is_bit_reproducible() {
        let run = || {
            let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
            let rec = Recorder::new();
            sim.set_recorder(rec.clone());
            sim.run(2).unwrap();
            let mut timers: Vec<(String, u64)> = rec
                .events()
                .iter()
                .filter(|e| e.name.starts_with("phase."))
                .map(|e| (e.name.clone(), e.value.to_bits()))
                .collect();
            timers.sort();
            timers
        };
        assert_eq!(run(), run(), "modeled phase timers must not wobble");
    }

    #[test]
    fn async_schedule_matches_barriered_bits() {
        for ranks in [1, 2, 8] {
            let mut reference = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
            reference.run(3).unwrap();
            let mut tasked = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
            tasked.set_async(true);
            assert!(tasked.is_async());
            tasked.run(3).unwrap();
            assert_eq!(
                tasked.state_digest(),
                reference.state_digest(),
                "{ranks}-rank async run diverged from the barriered bits"
            );
            assert_eq!(tasked.step_count(), 3);
        }
    }

    #[test]
    fn async_schedule_exports_task_telemetry() {
        let mut sim = MultiRankSim::new(4, GpuArch::aurora(), problem());
        sim.set_async(true);
        let rec = Recorder::new();
        sim.set_recorder(rec.clone());
        let stats = sim.step().unwrap();
        let events = rec.events();
        // 5 task kinds × 4 ranks, one graph per step.
        assert_eq!(
            hacc_telemetry::counter_total(&events, "task.nodes"),
            20.0,
            "mig/abs/post/int/bnd per rank"
        );
        assert!(hacc_telemetry::counter_total(&events, "task.edges") > 0.0);
        assert_eq!(
            hacc_telemetry::counter_total(&events, "task.executed"),
            20.0
        );
        // The critical-path pass still reproduces the engine's modeled
        // node time from the emitted phase timers.
        let paths = hacc_telemetry::analysis::critical_paths(&events);
        assert_eq!(paths.len(), 1);
        assert!((paths[0].node_seconds - stats.node_seconds).abs() < 1e-12);
        // Per-source flushes replace the two global barriers.
        assert_eq!(
            sim.comm_stats().exchanges,
            8,
            "one flush per rank per phase"
        );
    }

    #[test]
    fn async_wait_share_is_below_the_barriered_share() {
        let run = |async_on: bool| {
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.set_async(async_on);
            let stats = sim.run(3).unwrap();
            let wait: f64 = stats
                .iter()
                .flat_map(|s| s.per_rank.iter().map(|r| r.wait_seconds))
                .sum();
            let node: f64 = stats.iter().map(|s| s.node_seconds * 8.0).sum();
            wait / node
        };
        let (barriered, tasked) = (run(false), run(true));
        assert!(
            tasked < barriered,
            "async wait share {tasked} must undercut barriered {barriered}"
        );
    }

    #[test]
    fn link_faults_retry_and_still_match_bits() {
        let clean = {
            let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
            sim.run(2).unwrap();
            sim.state_digest()
        };
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        sim.enable_fault_injection(FaultConfig {
            seed: 5,
            transient_rate: 0.02,
            ..FaultConfig::default()
        });
        sim.run(2).unwrap();
        assert!(
            sim.transport().injector().unwrap().injected() > 0,
            "2% over hundreds of messages must inject"
        );
        assert_eq!(sim.state_digest(), clean, "retries must not change physics");
    }
}
