//! Rank-loss recovery for the distributed engine.
//!
//! [`MultiRankSim::run_resilient`] wraps the step loop of
//! [`crate::multirank`] in the coordinated-checkpoint / rollback
//! protocol real MPI applications run at scale:
//!
//! 1. At every `checkpoint_interval` step boundary (and at the start),
//!    take a coordinated [`MultiRankCheckpoint`] and mirror each rank's
//!    section to its buddy ([`crate::distckpt::buddy_of`]), charging
//!    the mirror traffic on the interconnect.
//! 2. Before each step, consult the injector's rank-loss schedule
//!    ([`sycl_sim::FaultConfig::rank_loss`]) and mark any scheduled
//!    victims dead on the transport.
//! 3. A step that fails with [`CommError::RankDead`] — a survivor's
//!    receive from the dead peer can never complete — triggers
//!    recovery: purge the in-flight timeline, roll every rank back to
//!    the last coordinated checkpoint, and either
//!    * **shrink** — re-factorize the layout over the survivors and
//!      re-partition all particles (the dead rank's state comes from
//!      its buddy's mirror) — or
//!    * **respawn** — revive the lost rank slot and restore the full
//!      layout from the mirror —
//!
//!    then replay the rolled-back steps.
//!
//! Both modes are deterministic and physics-preserving: the particle
//! state is restored bit-exactly and the engine's step physics is
//! decomposition-invariant, so a recovered run's final
//! [`MultiRankSim::state_digest`] is bit-identical to a fault-free
//! run's — the acceptance gate the resilience tests and the CI smoke
//! job enforce.

use crate::distckpt::{buddy_of, MultiRankCheckpoint};
use crate::multirank::{MultiRankSim, StepStats};
use hacc_comm::CommError;
use hacc_telemetry::FaultInfo;
use serde::Serialize;
use std::collections::HashSet;
use std::fmt;

/// How the communicator is rebuilt after a rank loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RecoveryMode {
    /// Survivors absorb the lost rank's domain: the layout is
    /// re-factorized over `ranks - lost` ranks and every particle is
    /// re-partitioned by position. Models running on after node loss
    /// without a replacement allocation.
    Shrink,
    /// The lost rank's slot is revived and restored from its buddy's
    /// mirror: the layout is unchanged. Models pulling a spare node
    /// into the job.
    Respawn,
}

impl RecoveryMode {
    /// Stable label for reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryMode::Shrink => "shrink",
            RecoveryMode::Respawn => "respawn",
        }
    }
}

/// Policy for the resilient run loop.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Steps between coordinated checkpoints (clamped to ≥ 1). Smaller
    /// intervals cost more mirror traffic but bound the rollback.
    pub checkpoint_interval: u64,
    /// How to rebuild the communicator after a loss.
    pub mode: RecoveryMode,
    /// Recoveries tolerated before the run gives up (a guard against a
    /// schedule that kills ranks faster than replay can catch up).
    pub max_recoveries: u32,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 4,
            mode: RecoveryMode::Respawn,
            max_recoveries: 8,
        }
    }
}

/// One completed recovery.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryEvent {
    /// Ranks that were dead when recovery ran.
    pub lost_ranks: Vec<usize>,
    /// Step index (0-based) whose exchange detected the loss.
    pub detected_step: u64,
    /// Step the run rolled back to.
    pub checkpoint_step: u64,
    /// Mode used.
    pub mode: RecoveryMode,
    /// Completed steps discarded by the rollback (the failed step was
    /// never completed and is not counted).
    pub rollback_steps: u64,
    /// Ranks in the communicator after recovery.
    pub ranks_after: usize,
    /// Modeled mean-time-to-repair: the buddy-restore transfer plus
    /// the node seconds spent replaying up to the point of failure.
    pub mttr_seconds: f64,
}

/// Outcome of a resilient run.
#[derive(Clone, Debug, Serialize)]
pub struct ResilienceReport {
    /// The surviving timeline: one entry per step of the final run,
    /// replays overwriting the timelines they rolled back.
    pub steps: Vec<StepStats>,
    /// Coordinated checkpoints taken (including re-checkpoints during
    /// replay).
    pub checkpoints: u64,
    /// Total buddy-mirror wire bytes.
    pub checkpoint_bytes: u64,
    /// Total modeled seconds of mirror traffic.
    pub checkpoint_seconds: f64,
    /// Completed steps discarded across all rollbacks.
    pub rollback_steps: u64,
    /// Every recovery, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Ranks in the communicator when the run finished.
    pub final_ranks: usize,
}

impl ResilienceReport {
    /// Total modeled node seconds of the surviving timeline.
    pub fn node_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.node_seconds).sum()
    }

    /// Total modeled MTTR across recoveries.
    pub fn mttr_seconds(&self) -> f64 {
        self.recoveries.iter().map(|r| r.mttr_seconds).sum()
    }
}

/// A resilient run that could not be completed.
#[derive(Clone, Debug)]
pub struct ResilienceError {
    /// Step index (0-based) that could not be completed.
    pub step: u64,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resilient run failed at step {}: {}",
            self.step, self.detail
        )
    }
}

impl std::error::Error for ResilienceError {}

impl MultiRankSim {
    /// Runs `steps` steps under coordinated checkpointing and rank-loss
    /// recovery. See the module docs for the protocol; with no rank
    /// losses scheduled this takes exactly the same physics path as
    /// [`MultiRankSim::run`], plus the checkpoint mirror charges.
    pub fn run_resilient(
        &mut self,
        steps: u64,
        config: &ResilienceConfig,
    ) -> Result<ResilienceReport, ResilienceError> {
        let interval = config.checkpoint_interval.max(1);
        let start = self.step_count();
        let end = start + steps;
        let schedule: Vec<(usize, u64)> = self
            .fault_config()
            .map(|c| c.rank_loss.iter().map(|l| (l.rank, l.step)).collect())
            .unwrap_or_default();
        let mut applied: HashSet<(usize, u64)> = HashSet::new();
        let mut ckpt = self.take_checkpoint();
        let mut report = ResilienceReport {
            steps: Vec::with_capacity(steps as usize),
            checkpoints: 1,
            checkpoint_bytes: ckpt.mirror_bytes(),
            checkpoint_seconds: self.charge_checkpoint(&ckpt),
            rollback_steps: 0,
            recoveries: Vec::new(),
            final_ranks: self.layout.ranks,
        };
        // Recoveries still replaying: their MTTR accumulates node
        // seconds until the run regains the step that failed.
        let mut replaying: Vec<(usize, u64)> = Vec::new();

        while self.step_count() < end {
            let step = self.step_count();
            if step > ckpt.step && (step - start).is_multiple_of(interval) {
                ckpt = self.take_checkpoint();
                report.checkpoints += 1;
                report.checkpoint_bytes += ckpt.mirror_bytes();
                report.checkpoint_seconds += self.charge_checkpoint(&ckpt);
            }
            for &(rank, loss_step) in &schedule {
                if loss_step == step
                    && rank < self.layout.ranks
                    && !applied.contains(&(rank, loss_step))
                {
                    applied.insert((rank, loss_step));
                    self.transport().mark_dead(rank, loss_step);
                    if let Some(injector) = self.transport().injector() {
                        injector.inject_rank_loss(rank, loss_step);
                    }
                }
            }
            match self.step() {
                Ok(stats) => {
                    for &(idx, until) in &replaying {
                        report.recoveries[idx].mttr_seconds += stats.node_seconds;
                        let _ = until;
                    }
                    let done = self.step_count();
                    replaying.retain(|&(idx, until)| {
                        if done > until {
                            self.emit_mttr(&report.recoveries[idx]);
                            false
                        } else {
                            true
                        }
                    });
                    report.steps.push(stats);
                }
                Err(CommError::RankDead { .. }) => {
                    if report.recoveries.len() as u32 >= config.max_recoveries {
                        return Err(ResilienceError {
                            step,
                            detail: format!(
                                "recovery budget of {} exhausted",
                                config.max_recoveries
                            ),
                        });
                    }
                    let event = self
                        .recover(&ckpt, step, config.mode)
                        .map_err(|detail| ResilienceError { step, detail })?;
                    report.rollback_steps += event.rollback_steps;
                    report.steps.truncate((ckpt.step - start) as usize);
                    replaying.push((report.recoveries.len(), step));
                    report.recoveries.push(event);
                    if config.mode == RecoveryMode::Shrink {
                        // The old schedule's rank indices no longer
                        // name the same domains; checkpoints must also
                        // be retaken under the new layout.
                        ckpt = self.take_checkpoint();
                        report.checkpoints += 1;
                        report.checkpoint_bytes += ckpt.mirror_bytes();
                        report.checkpoint_seconds += self.charge_checkpoint(&ckpt);
                    }
                }
                Err(other) => {
                    return Err(ResilienceError {
                        step,
                        detail: other.to_string(),
                    })
                }
            }
        }
        for (idx, _) in replaying {
            self.emit_mttr(&report.recoveries[idx]);
        }
        report.final_ranks = self.layout.ranks;
        Ok(report)
    }

    /// Captures a coordinated checkpoint and emits its telemetry.
    fn take_checkpoint(&self) -> MultiRankCheckpoint {
        self.checkpoint()
    }

    /// Charges the buddy-mirror traffic of one coordinated checkpoint
    /// on the interconnect; returns the modeled seconds.
    fn charge_checkpoint(&self, ckpt: &MultiRankCheckpoint) -> f64 {
        let layout = ckpt.layout();
        let fabric = self.transport().fabric();
        let mut seconds = 0.0;
        for (rank, snap) in ckpt.per_rank.iter().enumerate() {
            let buddy = buddy_of(&layout, rank);
            if buddy != rank {
                seconds += fabric.cost(rank, buddy, snap.wire_bytes());
            }
        }
        if let Some(rec) = self.recorder() {
            rec.counter("checkpoint.bytes", ckpt.mirror_bytes() as f64);
            rec.timer("checkpoint.mirror", seconds);
        }
        seconds
    }

    /// Rolls back to `ckpt` and rebuilds the communicator per `mode`.
    fn recover(
        &mut self,
        ckpt: &MultiRankCheckpoint,
        detected_step: u64,
        mode: RecoveryMode,
    ) -> Result<RecoveryEvent, String> {
        let lost = self.transport().dead_ranks();
        if lost.is_empty() {
            return Err("RankDead surfaced with no rank marked dead".to_string());
        }
        if lost.len() >= self.layout.ranks {
            return Err("every rank is dead; nothing can recover".to_string());
        }
        // The buddy-restore transfer: each lost rank's mirrored section
        // travels from its buddy back into the rebuilt communicator.
        let layout = ckpt.layout();
        let fabric = self.transport().fabric();
        let mut restore_seconds = 0.0;
        for &rank in &lost {
            let buddy = buddy_of(&layout, rank);
            if buddy != rank {
                restore_seconds += fabric.cost(buddy, rank, ckpt.per_rank[rank].wire_bytes());
            }
        }
        let ranks_after = match mode {
            RecoveryMode::Shrink => {
                let survivors = self.layout.ranks - lost.len();
                self.restore_resized(survivors, ckpt)
                    .map_err(|e| format!("shrink restore failed: {e}"))?;
                survivors
            }
            RecoveryMode::Respawn => {
                self.restore(ckpt)
                    .map_err(|e| format!("respawn restore failed: {e}"))?;
                for &rank in &lost {
                    self.transport().revive(rank);
                }
                self.layout.ranks
            }
        };
        let rollback_steps = detected_step - ckpt.step;
        if let Some(rec) = self.recorder() {
            rec.counter("recovery.rank_loss", lost.len() as f64);
            rec.counter("recovery.rollback_steps", rollback_steps as f64);
            rec.timer("recovery.restore", restore_seconds);
            rec.fault(
                "fault.recovery",
                FaultInfo {
                    kind: "recovery".to_string(),
                    kernel: format!("step {detected_step}"),
                    variant: mode.label().to_string(),
                    detail: format!(
                        "lost ranks {lost:?}; rolled back to step {} ({mode:?} → {ranks_after} ranks)",
                        ckpt.step
                    ),
                },
                1.0,
            );
        }
        Ok(RecoveryEvent {
            lost_ranks: lost,
            detected_step,
            checkpoint_step: ckpt.step,
            mode,
            rollback_steps,
            ranks_after,
            mttr_seconds: restore_seconds,
        })
    }

    /// Emits the final MTTR of a recovery once its replay catches up.
    fn emit_mttr(&self, event: &RecoveryEvent) {
        if let Some(rec) = self.recorder() {
            rec.timer("recovery.mttr", event.mttr_seconds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multirank::MultiRankProblem;
    use hacc_telemetry::{counter_total, Recorder};
    use sycl_sim::{FaultConfig, GpuArch, RankLoss};

    fn problem() -> MultiRankProblem {
        MultiRankProblem::small(256, 42)
    }

    fn fault_free_digest(ranks: usize, steps: u64) -> u64 {
        let mut sim = MultiRankSim::new(ranks, GpuArch::frontier(), problem());
        sim.run(steps).unwrap();
        sim.state_digest()
    }

    #[test]
    fn loss_free_resilient_run_matches_plain_run_bits() {
        let plain = fault_free_digest(4, 4);
        let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
        let report = sim
            .run_resilient(4, &ResilienceConfig::default())
            .expect("loss-free run must complete");
        assert_eq!(sim.state_digest(), plain);
        assert_eq!(report.steps.len(), 4);
        assert!(report.checkpoints >= 1);
        assert!(report.checkpoint_bytes > 0, "4 ranks mirror real bytes");
        assert!(report.recoveries.is_empty());
        assert_eq!(report.rollback_steps, 0);
    }

    #[test]
    fn respawn_recovery_reproduces_fault_free_bits() {
        let clean = fault_free_digest(4, 5);
        let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
        sim.enable_fault_injection(FaultConfig {
            seed: 9,
            rank_loss: vec![RankLoss { rank: 2, step: 3 }],
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: 2,
            mode: RecoveryMode::Respawn,
            ..ResilienceConfig::default()
        };
        let report = sim.run_resilient(5, &config).expect("must recover");
        assert_eq!(sim.state_digest(), clean, "recovered bits must match");
        assert_eq!(report.recoveries.len(), 1);
        let r = &report.recoveries[0];
        assert_eq!(r.lost_ranks, vec![2]);
        assert_eq!(r.detected_step, 3);
        assert_eq!(r.checkpoint_step, 2);
        assert_eq!(r.rollback_steps, 1);
        assert_eq!(r.ranks_after, 4);
        assert!(r.mttr_seconds > 0.0);
        assert_eq!(report.final_ranks, 4);
        assert_eq!(report.steps.len(), 5, "the surviving timeline is complete");
    }

    #[test]
    fn shrink_recovery_reproduces_fault_free_bits_on_fewer_ranks() {
        let clean = fault_free_digest(8, 5);
        let mut sim = MultiRankSim::new(8, GpuArch::frontier(), problem());
        sim.enable_fault_injection(FaultConfig {
            seed: 9,
            rank_loss: vec![RankLoss { rank: 5, step: 2 }],
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: 2,
            mode: RecoveryMode::Shrink,
            ..ResilienceConfig::default()
        };
        let report = sim.run_resilient(5, &config).expect("must recover");
        assert_eq!(report.final_ranks, 7, "one rank was absorbed");
        assert_eq!(sim.layout.ranks, 7);
        assert_eq!(
            sim.state_digest(),
            clean,
            "physics is decomposition-invariant, so the shrunk run matches"
        );
        assert_eq!(sim.n_particles(), 256, "no particle was lost");
    }

    #[test]
    fn recovery_telemetry_accounts_for_the_protocol() {
        let mut sim = MultiRankSim::new(4, GpuArch::frontier(), problem());
        let rec = Recorder::new();
        sim.set_recorder(rec.clone());
        sim.enable_fault_injection(FaultConfig {
            seed: 1,
            rank_loss: vec![RankLoss { rank: 1, step: 2 }],
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: 2,
            mode: RecoveryMode::Respawn,
            ..ResilienceConfig::default()
        };
        let report = sim.run_resilient(4, &config).expect("must recover");
        let events = rec.events();
        assert_eq!(counter_total(&events, "recovery.rank_loss"), 1.0);
        assert_eq!(
            counter_total(&events, "recovery.rollback_steps"),
            report.rollback_steps as f64
        );
        assert!(
            counter_total(&events, "checkpoint.bytes") >= report.checkpoint_bytes as f64 - 0.5,
            "mirror bytes are counted"
        );
        assert!(
            hacc_telemetry::fault_total(&events, "fault.rank_dead") > 0.0,
            "the detection event is on the fault stream"
        );
        assert!(
            hacc_telemetry::fault_total(&events, "fault.recovery") > 0.0,
            "the recovery itself is on the fault stream"
        );
    }

    #[test]
    fn losing_the_only_other_rank_at_every_step_exhausts_the_budget() {
        let mut sim = MultiRankSim::new(2, GpuArch::frontier(), problem());
        // Respawned ranks get killed again by later schedule entries.
        let losses: Vec<RankLoss> = (0..64).map(|s| RankLoss { rank: 1, step: s }).collect();
        sim.enable_fault_injection(FaultConfig {
            seed: 1,
            rank_loss: losses,
            ..FaultConfig::default()
        });
        let config = ResilienceConfig {
            checkpoint_interval: 1,
            mode: RecoveryMode::Respawn,
            max_recoveries: 3,
        };
        let err = sim.run_resilient(8, &config).unwrap_err();
        assert!(err.detail.contains("budget"), "{err}");
    }
}
