//! The CRK-HACC application driver.
//!
//! Owns the authoritative f64 particle state (two species: dark matter
//! and baryons), the long-range PM solver, and the time stepper; offloads
//! the short-range gravity and CRK hydro kernels to the simulated device
//! each sub-cycle, accumulating cost-model seconds into HACC-style
//! timers.
//!
//! ## Units and stepping
//!
//! Positions are comoving grid cells; time is `1/H0`; the momentum
//! variable is `u = a² dx/dt`, which turns the comoving equation of
//! motion into the friction-free pair
//!
//! ```text
//!   du/dt = (3/2) Ωₘ F_grid / a        dx/dt = u / a²
//! ```
//!
//! so kicks use `∫da/(a²E)` and drifts `∫da/(a³E)` — the classic
//! kick/drift integrals (see `hacc_cosmo::Friedmann`). The hydro force
//! and `du_int/dt` are applied with proper-time weights; comoving hydro
//! a-factor corrections are neglected (documented in DESIGN.md — they do
//! not affect the performance characteristics of the kernels).

use crate::config::{DeviceConfig, SimConfig};
use crate::rank::RankLayout;
use crate::timers::{Timers, TimersSink};
use hacc_comm::{Interconnect, ParticleBatch, Tag, Transport};
use hacc_cosmo::{z_to_a, Friedmann, LinearPower};
use hacc_kernels::{
    launch_resilient, run_gravity_with_policy, run_hydro_step_planned, run_hydro_step_with_policy,
    DeviceParticles, GravityParams, HostParticles, LaunchPolicy, Subgrid, SubgridParams,
    TunedSelector, Variant, WorkLists, WorkSet, GRAVITY_TIMER,
};
use hacc_mesh::{zeldovich_ics, ForceSplit, PmSolver, PolyShortRange};
use hacc_telemetry::Recorder;
use hacc_tree::{InteractionList, RcbTree};
use std::sync::{Arc, Mutex};
use sycl_sim::{
    Device, FaultConfig, FaultInjector, GrfMode, LaunchConfig, LaunchError, ResourceId, RunError,
    TaskGraph, Toolchain,
};

/// Particle species tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Species {
    /// Collision-less dark matter (gravity only).
    DarkMatter,
    /// Baryonic gas (gravity + CRK hydro).
    Baryon,
}

/// The running simulation.
pub struct Simulation {
    /// Configuration.
    pub config: SimConfig,
    /// Device build.
    pub device: Device,
    /// Launch configuration derived from the device config.
    pub launch: LaunchConfig,
    /// Retry/fallback policy applied to every kernel launch.
    pub launch_policy: LaunchPolicy,
    /// Kernel communication variant.
    pub variant: Variant,
    /// Comoving positions (grid units), both species.
    pub pos: Vec<[f64; 3]>,
    /// Momentum variable `u = a² dx/dt` (grid units per 1/H0).
    pub mom: Vec<[f64; 3]>,
    /// Masses (code units: total mass = ng³, so mean density is 1/cell).
    pub mass: Vec<f64>,
    /// Specific internal energies (baryons; zero for dark matter).
    pub u_int: Vec<f64>,
    /// SPH smoothing lengths (grid units; baryons).
    pub h: Vec<f64>,
    /// Species tags (dark matter first, then baryons).
    pub species: Vec<Species>,
    /// Current scale factor.
    pub a: f64,
    /// Completed long steps.
    pub step_count: usize,
    /// Whether hydro kernels run (false = gravity-only mode).
    pub enable_hydro: bool,
    /// Sub-grid physics (radiative cooling + star formation), when
    /// enabled — the beyond-adiabatic mode of §3.1.
    pub subgrid: Option<SubgridParams>,
    /// Stellar mass formed per particle (sub-grid bookkeeping).
    pub star_mass: Vec<f64>,
    /// Sub-cycles the *next* long step will use: the sub-grid cooling
    /// criterion tightens `dt_min`, which "lead\\[s\\] to many more calls to
    /// the adiabatic kernels" (§3.1) — modeled by adapting this count
    /// from the device-measured time step.
    pub adaptive_sub_cycles: usize,
    /// Accumulated simulated-device timers — fed by a [`TimersSink`]
    /// subscribed to `telemetry`, kept for the classic HACC summary.
    pub timers: Arc<Timers>,
    /// Structured telemetry stream: spans, counters, per-launch kernel
    /// profiles, and the typed timer events behind `timers`.
    pub telemetry: Recorder,
    pm: PmSolver,
    poly: PolyShortRange,
    friedmann: Friedmann,
    grav_prefactor: f64,
    comm: Option<CommLayer>,
    /// When true, each step runs the host PM solve and the first
    /// sub-cycle's gravity offload as a task graph instead of
    /// back-to-back (see [`Simulation::set_async`]).
    async_step: bool,
    /// Runtime autotuner (see [`Simulation::set_tuning`] and the
    /// `HACC_TUNE` environment default). Mutex-wrapped because the
    /// hydro/gravity offloads take `&self` while selection and
    /// observation mutate the tuner state.
    tuning: Option<Mutex<TunedSelector>>,
}

/// Borrowed view of the fields the gravity offload reads, so the async
/// step can launch it from a task while a disjoint `&mut` borrow
/// drives the PM solver on another worker.
struct GravityCtx<'a> {
    device: &'a Device,
    config: &'a SimConfig,
    launch: LaunchConfig,
    launch_policy: &'a LaunchPolicy,
    variant: Variant,
    poly: &'a PolyShortRange,
    telemetry: &'a Recorder,
    grav_prefactor: f64,
    pos: &'a [[f64; 3]],
    mass: &'a [f64],
    tuning: Option<&'a Mutex<TunedSelector>>,
}

/// Short-range gravity offload against a borrowed [`GravityCtx`] —
/// the body of [`Simulation::device_gravity`], callable from a task
/// while the PM solver runs on another worker.
fn device_gravity_with(ctx: &GravityCtx<'_>, idx: &[usize]) -> Result<Vec<[f64; 3]>, LaunchError> {
    let pos: Vec<[f64; 3]> = idx.iter().map(|&i| ctx.pos[i]).collect();
    Simulation::check_offload_positions(&pos)?;
    // Tuned override: the validated cached winner for the gravity
    // timer, when a tuner is attached (read-only peek — gravity does
    // not explore; the cache is filled by the hydro path and the
    // offline autotune sweep).
    let (variant, launch) = match ctx.tuning {
        Some(t) => t
            .lock()
            .unwrap()
            .peek(GRAVITY_TIMER)
            .map(|(v, c)| (v, c.apply_to(ctx.launch)))
            .unwrap_or((ctx.variant, ctx.launch)),
        None => (ctx.variant, ctx.launch),
    };
    let max_leaf = ctx
        .config
        .max_leaf
        .unwrap_or(variant.preferred_leaf_capacity(launch.sg_size));
    let tree = RcbTree::build(&pos, max_leaf);
    let box_size = ctx.config.box_spec.ng as f64;
    let list = InteractionList::build(&tree, box_size, ctx.config.r_cut_cells);
    let work = WorkLists::build(&tree, &list, launch.sg_size);
    let hp = HostParticles {
        pos,
        vel: vec![[0.0; 3]; idx.len()],
        mass: idx
            .iter()
            .map(|&i| ctx.mass[i] * ctx.grav_prefactor)
            .collect(),
        h: vec![1.0; idx.len()],
        u: vec![0.0; idx.len()],
    }
    .permuted(&tree.order);
    let _span = ctx.telemetry.span("gravity");
    let charge = |direction: &str, bytes: usize| {
        let secs = bytes as f64 / (ctx.device.arch.host_link_gbps * 1e9);
        ctx.telemetry
            .counter(&format!("xfer.{direction}.bytes"), bytes as f64);
        ctx.telemetry.timer("upXfer", secs);
    };
    // Upload: pos(3) + mass per particle; download: acc(3).
    charge("h2d", idx.len() * 4 * 4);
    let data = DeviceParticles::upload(&hp);
    let params = GravityParams {
        poly: std::array::from_fn(|i| ctx.poly.coeffs[i] as f32),
        r_cut2: (ctx.config.r_cut_cells * ctx.config.r_cut_cells) as f32,
        soft2: 1e-4,
    };
    let report = run_gravity_with_policy(
        ctx.device,
        &data,
        &work,
        variant,
        box_size as f32,
        params,
        launch,
        ctx.telemetry,
        ctx.launch_policy,
    )?;
    if let Some(t) = ctx.tuning {
        t.lock().unwrap().observe_step(
            ctx.device,
            std::slice::from_ref(&report),
            Some(ctx.telemetry),
        );
    }
    charge("d2h", idx.len() * 3 * 4);
    // Scatter leaf-ordered results back to subset order.
    let acc = data.download_vec3(&data.acc_grav);
    let mut out = vec![[0.0f64; 3]; idx.len()];
    for (slot, &pi) in tree.order.iter().enumerate() {
        out[pi as usize] = [
            acc[slot][0] as f64,
            acc[slot][1] as f64,
            acc[slot][2] as f64,
        ];
    }
    Ok(out)
}

/// The optional rank-decomposition comm layer: when enabled, every
/// step drives the production migration + halo-refresh traffic through
/// an in-process [`Transport`] so exchange volume, per-link spans, and
/// `comm.*` counters land in telemetry. The global particle state
/// stays authoritative (decomposition-transparent physics); the fully
/// distributed bit-exact engine is [`crate::MultiRankSim`].
struct CommLayer {
    layout: RankLayout,
    transport: Transport,
    /// Owner of each particle after the previous step, for migration
    /// detection.
    owner: Vec<usize>,
    /// Ghost-zone depth in grid units.
    ghost_width: f64,
}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Final scale factor.
    pub a_final: f64,
    /// Long steps taken.
    pub steps: usize,
    /// Total simulated device seconds (all offloaded kernels).
    pub gpu_seconds: f64,
    /// Per-timer (name, seconds, calls).
    pub timers: Vec<(String, f64, u64)>,
}

impl Simulation {
    /// Builds the simulation: Zel'dovich ICs for both species, PM solver,
    /// short-range polynomial, device.
    pub fn new(config: SimConfig, device_cfg: DeviceConfig, arch: sycl_sim::GpuArch) -> Self {
        config.validate().expect("invalid simulation configuration");
        let toolchain = {
            let mut tc = Toolchain::new(device_cfg.lang);
            if let Some(fm) = device_cfg.fast_math {
                tc.fast_math = fm;
            }
            if device_cfg.variant.needs_visa() {
                tc.enable_visa = true;
            }
            tc
        };
        let device = Device::new(arch.clone(), toolchain)
            .expect("toolchain does not support the chosen architecture");
        let sg_size = device_cfg
            .sg_size
            .unwrap_or_else(|| *arch.sg_sizes.last().expect("arch without sg sizes"));
        let launch = LaunchConfig {
            sg_size,
            wg_size: 128.max(sg_size),
            grf: device_cfg.grf,
            exec: sycl_sim::ExecutionPolicy::default(),
            meter: sycl_sim::MeterPolicy::from_env(),
            bounds: sycl_sim::LaunchBounds::Default,
        };

        // Initial conditions: one Gaussian realization displaces both
        // species (baryons trace dark matter at z_init, as in adiabatic
        // CRK-HACC runs), with a half-cell offset between the lattices.
        let power = LinearPower::new(config.cosmo);
        let ics = zeldovich_ics(&config.box_spec, &power, config.z_init, config.seed);
        let a0 = ics.a_init;
        let np3 = config.box_spec.particles_per_species();
        let ng = config.box_spec.ng as f64;
        let fb = config.cosmo.omega_b / config.cosmo.omega_m;
        let m_total = ng * ng * ng;
        let m_dm = (1.0 - fb) * m_total / np3 as f64;
        let m_b = fb * m_total / np3 as f64;

        let mut pos = Vec::with_capacity(2 * np3);
        let mut mom = Vec::with_capacity(2 * np3);
        let mut mass = Vec::with_capacity(2 * np3);
        let mut u_int = Vec::with_capacity(2 * np3);
        let mut h = Vec::with_capacity(2 * np3);
        let mut species = Vec::with_capacity(2 * np3);
        let spacing = ng / config.box_spec.np as f64;
        let h0 = config.eta_smoothing * spacing;
        for (p, v) in ics.positions.iter().zip(&ics.velocities) {
            pos.push(*p);
            mom.push([v[0] * a0 * a0, v[1] * a0 * a0, v[2] * a0 * a0]);
            mass.push(m_dm);
            u_int.push(0.0);
            h.push(h0);
            species.push(Species::DarkMatter);
        }
        for (p, v) in ics.positions.iter().zip(&ics.velocities) {
            // Baryon lattice offset by half an inter-particle spacing.
            let q = [
                (p[0] + 0.5 * spacing).rem_euclid(ng),
                (p[1] + 0.5 * spacing).rem_euclid(ng),
                (p[2] + 0.5 * spacing).rem_euclid(ng),
            ];
            pos.push(q);
            mom.push([v[0] * a0 * a0, v[1] * a0 * a0, v[2] * a0 * a0]);
            mass.push(m_b);
            u_int.push(config.u_init);
            h.push(h0);
            species.push(Species::Baryon);
        }

        let split = ForceSplit::new(config.r_split_cells, config.r_cut_cells);
        let pm = PmSolver::new(config.box_spec.ng, Some(split));
        let poly = PolyShortRange::fit(split, 5);
        let friedmann = Friedmann::new(config.cosmo);
        // Mean density in code units is exactly 1 per cell; the pairwise
        // force normalization is 1/(4πρ̄) (see hacc_mesh::pm tests).
        let grav_prefactor = 1.0 / (4.0 * std::f64::consts::PI);

        let sub_cycles = config.sub_cycles;
        let timers = Arc::new(Timers::new());
        let telemetry = Recorder::new();
        telemetry.add_sink(Box::new(TimersSink::new(timers.clone())));

        // Opt-in runtime autotuning: HACC_TUNE=1 loads the default
        // tune-cache.json, any other non-zero value is a cache path.
        // HACC_TUNE_EPSILON overrides the exploration rate.
        let tuning = match std::env::var("HACC_TUNE") {
            Ok(v) if !v.is_empty() && v != "0" => {
                let path = if v == "1" {
                    std::path::PathBuf::from(hacc_tune::CACHE_FILE)
                } else {
                    std::path::PathBuf::from(v)
                };
                let epsilon = std::env::var("HACC_TUNE_EPSILON")
                    .ok()
                    .and_then(|e| e.parse::<f64>().ok())
                    .unwrap_or(0.05);
                let n = 2 * config.box_spec.particles_per_species();
                let (sel, err) = TunedSelector::from_cache_file(
                    &arch,
                    n,
                    &path,
                    epsilon,
                    device.toolchain.enable_visa,
                );
                if err.is_some() {
                    // A missing/stale/hostile cache is not fatal — the
                    // tuner starts cold — but it must be observable.
                    telemetry.counter("tune.cache_rejected", 1.0);
                }
                Some(Mutex::new(sel))
            }
            _ => None,
        };
        let mut sim = Self {
            config,
            device,
            launch,
            launch_policy: LaunchPolicy::default(),
            variant: device_cfg.variant,
            pos,
            mom,
            mass,
            u_int,
            h,
            species,
            a: a0,
            step_count: 0,
            enable_hydro: true,
            subgrid: None,
            star_mass: vec![0.0; 2 * np3],
            adaptive_sub_cycles: 0, // set below from config
            timers,
            telemetry,
            pm,
            poly,
            friedmann,
            grav_prefactor,
            comm: None,
            async_step: std::env::var("HACC_ASYNC")
                .map(|v| v == "1")
                .unwrap_or(false),
            tuning,
        };
        sim.adaptive_sub_cycles = sub_cycles;
        sim
    }

    /// Total particle count (both species).
    pub fn n_particles(&self) -> usize {
        self.pos.len()
    }

    /// Indices of baryon particles.
    fn baryon_indices(&self) -> Vec<usize> {
        (0..self.n_particles())
            .filter(|&i| self.species[i] == Species::Baryon)
            .collect()
    }

    /// Current redshift.
    pub fn redshift(&self) -> f64 {
        1.0 / self.a - 1.0
    }

    fn gravity_coupling(&self) -> f64 {
        1.5 * self.config.cosmo.omega_m
    }

    /// Long-range PM accelerations for all particles (grid units, without
    /// the 3/2 Ωₘ coupling).
    fn pm_forces(&mut self) -> Vec<[f64; 3]> {
        let mut out = Vec::new();
        self.pm.accelerations(&self.pos, &self.mass, &mut out);
        out
    }

    /// Charges host↔device transfer time for `bytes` moved over the
    /// architecture's host link (the data movement CRK-HACC performs
    /// around each offloaded sequence). `direction` is `"h2d"`
    /// (upload) or `"d2h"` (download); the byte count is also recorded
    /// as a telemetry counter (`xfer.h2d.bytes` / `xfer.d2h.bytes`), so
    /// the `upXfer` timer is explainable from the event stream.
    fn charge_transfer(&self, direction: &str, bytes: usize) {
        let secs = bytes as f64 / (self.device.arch.host_link_gbps * 1e9);
        self.telemetry
            .counter(&format!("xfer.{direction}.bytes"), bytes as f64);
        self.telemetry.timer("upXfer", secs);
    }

    /// Rejects non-finite positions before they reach the tree build —
    /// silent corruption from an earlier launch in the same step must
    /// surface as a recoverable error, not a panic inside RCB.
    fn check_offload_positions(pos: &[[f64; 3]]) -> Result<(), LaunchError> {
        if pos.iter().any(|p| p.iter().any(|c| !c.is_finite())) {
            return Err(LaunchError::Config {
                message: "non-finite particle positions (corrupted state)".to_string(),
            });
        }
        Ok(())
    }

    /// Runs the offloaded short-range gravity for a particle subset,
    /// returning accelerations in the subset's order.
    fn device_gravity(&self, idx: &[usize]) -> Result<Vec<[f64; 3]>, LaunchError> {
        device_gravity_with(&self.gravity_ctx(), idx)
    }

    /// Packs the borrowed view [`device_gravity_with`] needs, leaving
    /// `pm` and `mom` free for a disjoint `&mut` borrow.
    fn gravity_ctx(&self) -> GravityCtx<'_> {
        GravityCtx {
            device: &self.device,
            config: &self.config,
            launch: self.launch,
            launch_policy: &self.launch_policy,
            variant: self.variant,
            poly: &self.poly,
            telemetry: &self.telemetry,
            grav_prefactor: self.grav_prefactor,
            pos: &self.pos,
            mass: &self.mass,
            tuning: self.tuning.as_ref(),
        }
    }

    /// Runs the host PM solve and the first sub-cycle's gravity offload
    /// as a two-node task graph ([`Simulation::set_async`]): the solver
    /// writes only its own grids and force output, the offload reads
    /// only positions and masses, so the graph has no edge between them
    /// and the scheduler overlaps the host FFT work with the device
    /// kernels — bit-identical to running them back-to-back.
    #[allow(clippy::type_complexity)]
    fn pm_overlap_gravity(
        &mut self,
        idx: &[usize],
    ) -> Result<(Vec<[f64; 3]>, Vec<[f64; 3]>), LaunchError> {
        let Self {
            pm,
            pos,
            mass,
            device,
            config,
            launch,
            launch_policy,
            variant,
            poly,
            telemetry,
            grav_prefactor,
            tuning,
            ..
        } = &mut *self;
        let (pos, mass): (&[[f64; 3]], &[f64]) = (pos, mass);
        let telemetry: &Recorder = telemetry;
        let ctx = GravityCtx {
            device,
            config,
            launch: *launch,
            launch_policy,
            variant: *variant,
            poly,
            telemetry,
            grav_prefactor: *grav_prefactor,
            pos,
            mass,
            tuning: tuning.as_ref(),
        };
        let pm_out = Mutex::new(Vec::new());
        let g_out = Mutex::new(None);
        let mut graph: TaskGraph<'_, LaunchError> = TaskGraph::new();
        {
            let (pm_out, g_out) = (&pm_out, &g_out);
            graph.add_task(
                "host.pm",
                &[ResourceId::named("sim.particles")],
                &[ResourceId::named("sim.pm_force")],
                move || {
                    let mut out = Vec::new();
                    pm.accelerations(pos, mass, &mut out);
                    *pm_out.lock().unwrap() = out;
                    Ok(())
                },
            );
            graph.add_task(
                "device.gravity",
                &[ResourceId::named("sim.particles")],
                &[ResourceId::named("sim.grav_acc")],
                move || {
                    *g_out.lock().unwrap() = Some(device_gravity_with(&ctx, idx)?);
                    Ok(())
                },
            );
        }
        if let Err(e) = graph.run(0, None, Some(telemetry)) {
            return Err(match e {
                RunError::Task { error, .. } => error,
                RunError::Watchdog { .. } => unreachable!("step graph runs without a watchdog"),
            });
        }
        let pm_force = pm_out.into_inner().unwrap();
        let g0 = g_out.into_inner().unwrap().expect("gravity task executed");
        Ok((pm_force, g0))
    }

    /// Runs the offloaded CRK hydro kernels (plus the sub-grid kernel
    /// when enabled) for the baryons. Returns (acc, du_dt including
    /// cooling, new smoothing lengths, star-formation rate, device
    /// dt_min) in baryon-subset order, and records the timers.
    #[allow(clippy::type_complexity)]
    fn device_hydro(
        &self,
        idx: &[usize],
    ) -> Result<(Vec<[f64; 3]>, Vec<f64>, Vec<f64>, Vec<f64>, f64), LaunchError> {
        let pos: Vec<[f64; 3]> = idx.iter().map(|&i| self.pos[i]).collect();
        Self::check_offload_positions(&pos)?;
        let max_leaf = self
            .config
            .max_leaf
            .unwrap_or(self.variant.preferred_leaf_capacity(self.launch.sg_size));
        let tree = RcbTree::build(&pos, max_leaf);
        let box_size = self.config.box_spec.ng as f64;
        let list = InteractionList::build(&tree, box_size, self.config.r_cut_cells);
        let a2 = self.a * self.a;
        let hp = HostParticles {
            pos,
            vel: idx
                .iter()
                .map(|&i| {
                    [
                        self.mom[i][0] / a2,
                        self.mom[i][1] / a2,
                        self.mom[i][2] / a2,
                    ]
                })
                .collect(),
            mass: idx.iter().map(|&i| self.mass[i]).collect(),
            h: idx.iter().map(|&i| self.h[i]).collect(),
            u: idx.iter().map(|&i| self.u_int[i].max(1e-12)).collect(),
        }
        .permuted(&tree.order);
        let _span = self.telemetry.span("hydro");
        // Upload: pos(3)+vel(3)+mass+h+u.
        self.charge_transfer("h2d", idx.len() * 9 * 4);
        let data = DeviceParticles::upload(&hp);
        if let Some(tuning) = &self.tuning {
            // Tuned path: per-timer plan from the cache (with epsilon
            // exploration), work lists for every planned sub-group
            // size, and measured estimates fed back into the cache.
            let mut sel = tuning.lock().unwrap();
            let plan = sel.plan(self.variant, self.launch, Some(&self.telemetry));
            let works = WorkSet::build(&tree, &list, plan.sg_sizes());
            let reports = run_hydro_step_planned(
                &self.device,
                &data,
                &works,
                &plan,
                box_size as f32,
                &self.telemetry,
                &self.launch_policy,
            )?;
            sel.observe_step(&self.device, &reports, Some(&self.telemetry));
        } else {
            let work = WorkLists::build(&tree, &list, self.launch.sg_size);
            run_hydro_step_with_policy(
                &self.device,
                &data,
                &work,
                self.variant,
                box_size as f32,
                self.launch,
                &self.telemetry,
                &self.launch_policy,
            )?;
        }

        // Sub-grid pass (lane-parallel; adds its cooling rate and
        // tightens the shared dt_min).
        let mut cool = vec![0.0f32; idx.len()];
        let mut sf = vec![0.0f32; idx.len()];
        if let Some(params) = self.subgrid {
            let _span = self.telemetry.span("upSub");
            let kernel = Subgrid::new(data.clone(), params);
            let report = launch_resilient(
                &self.device,
                &kernel,
                kernel.n_instances(self.launch.sg_size),
                self.launch,
                &self.launch_policy,
                &self.telemetry,
                self.variant.label(),
            )?;
            let mut profile = self.device.profile(&report);
            profile.timer = "upSub".to_string();
            profile.variant = self.variant.label().to_string();
            let est_seconds = profile.est_seconds;
            self.telemetry.kernel(profile);
            self.telemetry.timer("upSub", est_seconds);
            cool = kernel.cool_rate.to_f32_vec();
            sf = kernel.sf_rate.to_f32_vec();
        }

        // Download: acc(3)+du+vol, plus the two sub-grid rate fields
        // (always budgeted, matching CRK-HACC's fixed transfer layout).
        self.charge_transfer("d2h", idx.len() * (5 + 2) * 4);
        let acc = data.download_vec3(&data.acc);
        let vol = data.volume.to_f32_vec();
        let du = data.du_dt.to_f32_vec();
        let dt_min = data.dt_min.read_f32(0) as f64;
        let mut acc_out = vec![[0.0f64; 3]; idx.len()];
        let mut du_out = vec![0.0f64; idx.len()];
        let mut h_out = vec![0.0f64; idx.len()];
        let mut sf_out = vec![0.0f64; idx.len()];
        let spacing = self.config.box_spec.ng as f64 / self.config.box_spec.np as f64;
        let h0 = self.config.eta_smoothing * spacing;
        for (slot, &pi) in tree.order.iter().enumerate() {
            let pi = pi as usize;
            acc_out[pi] = [
                acc[slot][0] as f64,
                acc[slot][1] as f64,
                acc[slot][2] as f64,
            ];
            du_out[pi] = du[slot] as f64 + cool[slot] as f64;
            sf_out[pi] = sf[slot] as f64;
            // Adaptive smoothing: h = η V^{1/3}, clamped to keep the
            // kernel support inside the interaction cutoff.
            let v = (vol[slot] as f64).max(1e-30);
            let target = self.config.eta_smoothing * v.cbrt();
            h_out[pi] = target.clamp(0.5 * h0, self.config.r_cut_cells / 2.0);
        }
        Ok((acc_out, du_out, h_out, sf_out, dt_min))
    }

    /// Advances one long (PM) step with short-range sub-cycles,
    /// panicking on an unrecoverable launch failure. Fault-free runs
    /// never hit that path; fault-injecting callers should use
    /// [`Simulation::try_step`] (or the guarded run loop in
    /// [`crate::recovery`]) instead.
    pub fn step(&mut self) {
        self.try_step()
            .expect("kernel launch failed beyond the retry/fallback budget");
    }

    /// Advances one long (PM) step with short-range sub-cycles.
    ///
    /// Launch failures that survive the retry/fallback policy surface
    /// as the [`LaunchError`] of the offending kernel; the state is
    /// left partially advanced and should be restored from a
    /// checkpoint before retrying.
    pub fn try_step(&mut self) -> Result<(), LaunchError> {
        let _span = self.telemetry.span("step");
        let schedule = self.friedmann.step_schedule(
            z_to_a(self.config.z_init),
            z_to_a(self.config.z_final),
            self.config.n_steps,
        );
        let a0 = schedule[self.step_count];
        let a1 = schedule[self.step_count + 1];
        let coupling = self.gravity_coupling();

        // Half long-range kick. The async step also launches the first
        // sub-cycle's gravity offload here, overlapped with the PM
        // solve — gravity reads only positions and masses, which the
        // PM kick does not touch, so the result is bit-identical.
        let kick_long = self.friedmann.kick_factor(a0, a1);
        let all: Vec<usize> = (0..self.n_particles()).collect();
        let (pm_force, mut g_first) = if self.async_step {
            let (pm_force, g0) = self.pm_overlap_gravity(&all)?;
            (pm_force, Some(g0))
        } else {
            (self.pm_forces(), None)
        };
        for (m, f) in self.mom.iter_mut().zip(&pm_force) {
            for c in 0..3 {
                m[c] += 0.5 * coupling * f[c] * kick_long;
            }
        }

        // Short-range sub-cycles, uniform in a. With sub-grid physics
        // enabled the count adapts to the cooling-tightened dt_min.
        let nc = self.adaptive_sub_cycles.max(self.config.sub_cycles);
        let mut dt_min_seen = f64::MAX;
        let baryons = self.baryon_indices();
        for s in 0..nc {
            let as0 = a0 + (a1 - a0) * s as f64 / nc as f64;
            let as1 = a0 + (a1 - a0) * (s + 1) as f64 / nc as f64;
            self.a = as0;
            let kick = self.friedmann.kick_factor(as0, as1);
            let drift = self.friedmann.drift_factor(as0, as1);
            let dt_proper = self.friedmann.time_between(as0, as1);

            // Short-range gravity on every particle (the async step
            // already computed sub-cycle 0 overlapped with the PM solve).
            let g_sr = match g_first.take() {
                Some(g) => g,
                None => self.device_gravity(&all)?,
            };
            for (i, g) in g_sr.iter().enumerate() {
                for c in 0..3 {
                    self.mom[i][c] += coupling * g[c] * kick;
                }
            }

            // CRK hydro (+ sub-grid) on the baryons.
            if self.enable_hydro && !baryons.is_empty() {
                let (acc, du, h_new, sf, dt_min) = self.device_hydro(&baryons)?;
                dt_min_seen = dt_min_seen.min(dt_min);
                let a2 = self.a * self.a;
                let u_floor = self.subgrid.map(|p| p.u_floor as f64).unwrap_or(0.0);
                for (k, &i) in baryons.iter().enumerate() {
                    for c in 0..3 {
                        // du/dt = a²·(dv/dt): proper-time hydro kick.
                        self.mom[i][c] += a2 * acc[k][c] * dt_proper;
                    }
                    self.u_int[i] = (self.u_int[i] + du[k] * dt_proper).max(u_floor);
                    self.h[i] = h_new[k];
                    // Star formation converts gas into collision-less
                    // stellar mass (tracked; total mass conserved).
                    let formed = (sf[k] * dt_proper).min(self.mass[i] * 0.9 - self.star_mass[i]);
                    if formed > 0.0 {
                        self.star_mass[i] += formed;
                    }
                }
            }

            // Drift.
            let ng = self.config.box_spec.ng as f64;
            for (p, m) in self.pos.iter_mut().zip(&self.mom) {
                for c in 0..3 {
                    p[c] = (p[c] + m[c] * drift).rem_euclid(ng);
                }
            }
            self.a = as1;
        }

        // Adapt the next step's sub-cycle count to the device-measured
        // time step (the §3.1 mechanism: sub-grid criteria force more
        // adiabatic kernel calls per span of cosmological time).
        if self.subgrid.is_some() && dt_min_seen.is_finite() {
            let dt_sub = self.friedmann.time_between(a0, a1) / nc as f64;
            let needed = (dt_sub / dt_min_seen.max(1e-30)).ceil() as usize;
            self.adaptive_sub_cycles =
                needed.clamp(self.config.sub_cycles, 32.max(self.config.sub_cycles));
        }

        // Second half long-range kick at the new positions.
        let pm_force = self.pm_forces();
        for (m, f) in self.mom.iter_mut().zip(&pm_force) {
            for c in 0..3 {
                m[c] += 0.5 * coupling * f[c] * kick_long;
            }
        }
        self.a = a1;
        self.step_count += 1;
        self.comm_refresh();
        Ok(())
    }

    /// Runs all configured steps and summarizes.
    pub fn run(&mut self) -> RunSummary {
        let span = self.telemetry.span("run");
        while self.step_count < self.config.n_steps {
            self.step();
        }
        drop(span);
        self.summary()
    }

    /// Builds a summary without advancing.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            a_final: self.a,
            steps: self.step_count,
            gpu_seconds: self.timers.total_seconds(),
            timers: self
                .timers
                .snapshot()
                .into_iter()
                .map(|(n, v)| (n, v.seconds, v.calls))
                .collect(),
        }
    }

    /// Total momentum (conservation diagnostic).
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for (m, mom) in self.mass.iter().zip(&self.mom) {
            for c in 0..3 {
                p[c] += m * mom[c];
            }
        }
        p
    }

    /// RMS displacement of all particles from a reference position set.
    pub fn rms_displacement_from(&self, reference: &[[f64; 3]]) -> f64 {
        assert_eq!(reference.len(), self.n_particles());
        let ng = self.config.box_spec.ng as f64;
        let mut sum = 0.0;
        for (p, q) in self.pos.iter().zip(reference) {
            let d = hacc_tree::min_image(q, p, ng);
            sum += d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        }
        (sum / self.n_particles() as f64).sqrt()
    }

    /// The density-contrast grid of the current particle state (both
    /// species, CIC-deposited).
    pub fn density_contrast_grid(&mut self) -> Vec<f64> {
        self.pm.density_contrast(&self.pos, &self.mass).to_vec()
    }

    /// Measures the density power spectrum of the current particle
    /// distribution (all species) in (Mpc/h)³ vs k in h/Mpc.
    pub fn measure_power(&mut self, n_bins: usize) -> Vec<hacc_mesh::SpectrumBin> {
        let dims = self.pm.dims();
        let delta = self.pm.density_contrast(&self.pos, &self.mass).to_vec();
        hacc_mesh::measure_power(dims, &delta, self.config.box_spec.box_mpc_h, n_bins)
    }

    /// Forces gravity-only mode (dark-matter tests).
    pub fn set_gravity_only(&mut self) {
        self.enable_hydro = false;
    }

    /// Forces single-threaded kernel launches (the serial reference path).
    /// The parallel scheduler is bit-identical to it, so this is a speed
    /// knob and an equivalence-testing baseline, not a determinism one —
    /// every execution policy yields the same trajectory for a seed.
    pub fn set_deterministic(&mut self) {
        self.launch.exec = sycl_sim::ExecutionPolicy::Serial;
    }

    /// Sets the host-side execution policy for every subsequent kernel
    /// launch (serial reference path, or work-group fan-out across a
    /// bounded thread pool with deterministic atomic commit).
    pub fn set_execution_policy(&mut self, exec: sycl_sim::ExecutionPolicy) {
        self.launch.exec = exec;
    }

    /// The execution policy in use.
    pub fn execution_policy(&self) -> sycl_sim::ExecutionPolicy {
        self.launch.exec
    }

    /// Sets the metering policy for every subsequent kernel launch: the
    /// fully-metered reference interpreter, deterministic sampling with
    /// extrapolated stats, or the unmetered fast path. All three produce
    /// bit-identical trajectories; only instruction telemetry (and
    /// speed) differs. Overrides the `HACC_METER` environment default.
    pub fn set_meter_policy(&mut self, meter: sycl_sim::MeterPolicy) {
        self.launch.meter = meter;
    }

    /// The metering policy in use.
    pub fn meter_policy(&self) -> sycl_sim::MeterPolicy {
        self.launch.meter
    }

    /// Opts into the asynchronous task-graph step: the host PM solve
    /// and the first sub-cycle's gravity offload run as a two-node
    /// dependency graph instead of back-to-back. Both tasks read only
    /// positions and masses and write disjoint outputs, so the overlap
    /// is bit-identical to the barriered reference path. Overrides the
    /// `HACC_ASYNC` environment default.
    pub fn set_async(&mut self, on: bool) {
        self.async_step = on;
    }

    /// Whether the asynchronous task-graph step is enabled.
    pub fn is_async(&self) -> bool {
        self.async_step
    }

    /// Attaches a runtime autotuner: kernel launches use cached winners
    /// (with the selector's exploration rate) instead of the fixed
    /// (variant, launch) pair, and feed measured estimates back.
    /// Overrides the `HACC_TUNE` environment default.
    pub fn set_tuning(&mut self, selector: TunedSelector) {
        self.tuning = Some(Mutex::new(selector));
    }

    /// Detaches the autotuner, returning it (with its updated cache)
    /// for persistence.
    pub fn take_tuning(&mut self) -> Option<TunedSelector> {
        self.tuning
            .take()
            .map(|m| m.into_inner().expect("tuner lock poisoned"))
    }

    /// Whether a runtime autotuner is attached.
    pub fn tuning_enabled(&self) -> bool {
        self.tuning.is_some()
    }

    /// Writes the attached tuner's cache to `path` (no-op when no tuner
    /// is attached).
    pub fn save_tuning(&self, path: &std::path::Path) -> Result<(), hacc_tune::TuneError> {
        match &self.tuning {
            Some(t) => t.lock().expect("tuner lock poisoned").save(path),
            None => Ok(()),
        }
    }

    /// FNV-1a digest of the full mutable particle state plus the scale
    /// factor — the bit-identity witness the equivalence tests compare
    /// across execution policies, meter policies, and async/barriered
    /// step modes.
    pub fn state_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            for b in bits.to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for v in self.pos.iter().chain(&self.mom) {
            for c in v {
                eat(c.to_bits());
            }
        }
        for s in [&self.u_int, &self.h, &self.mass, &self.star_mass] {
            for c in s.iter() {
                eat(c.to_bits());
            }
        }
        eat(self.a.to_bits());
        hash
    }

    /// Enables the sub-grid physics (radiative cooling + star formation)
    /// — CRK-HACC's beyond-adiabatic mode (§3.1).
    pub fn enable_subgrid(&mut self, params: SubgridParams) {
        self.subgrid = Some(params);
    }

    /// Attaches a deterministic fault injector to the device: every
    /// subsequent kernel launch consults it for transient failures,
    /// persistent per-variant failures, silent output corruption, and
    /// device loss. With all rates zero and no blocked variants this
    /// changes nothing — launches, results, and telemetry stay
    /// bit-identical to an injector-free run.
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        self.device.fault = Some(Arc::new(FaultInjector::new(config)));
    }

    /// The attached fault injector, if any (for reconciling its fault
    /// log against telemetry counters).
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.device.fault.as_ref()
    }

    /// Enables the rank-decomposition comm layer: partitions the box
    /// over a 3D [`RankLayout`] and, from the next step on, drives the
    /// production migration + halo-refresh traffic through an
    /// in-process transport costed on this architecture's interconnect.
    /// Telemetry gains `comm.bytes_sent`/`comm.bytes_recv` counters,
    /// per-link spans, and `comm.link` timers; physics is unchanged
    /// (the decomposition is transparent to the global state).
    pub fn enable_comm(&mut self, ranks: usize) {
        let layout = RankLayout::new(ranks, self.config.box_spec.ng);
        let ghost_width = self.config.r_cut_cells.min(layout.min_domain_width());
        let mut transport = Transport::new(ranks, Interconnect::for_arch(&self.device.arch));
        transport.set_recorder(self.telemetry.clone());
        let owner = self.pos.iter().map(|p| layout.rank_of(p)).collect();
        self.comm = Some(CommLayer {
            layout,
            transport,
            owner,
            ghost_width,
        });
    }

    /// Cumulative comm-layer transport statistics, when enabled.
    pub fn comm_stats(&self) -> Option<hacc_comm::TransportStats> {
        self.comm.as_ref().map(|c| c.transport.stats())
    }

    /// Drives one step's rank traffic: particles that crossed a domain
    /// face migrate to their new owner, then every boundary particle is
    /// posted as a halo refresh to the neighbors whose ghost zone holds
    /// it. Runs after the drift so ownership reflects the new
    /// positions.
    fn comm_refresh(&mut self) {
        let Some(comm) = self.comm.as_mut() else {
            return;
        };
        let _span = self.telemetry.span("comm.refresh");
        let mut migrate: std::collections::BTreeMap<(usize, usize), ParticleBatch> =
            std::collections::BTreeMap::new();
        let mut halo: std::collections::BTreeMap<(usize, usize), ParticleBatch> =
            std::collections::BTreeMap::new();
        let mut ghosts = 0u64;
        for i in 0..self.pos.len() {
            let new_owner = comm.layout.rank_of(&self.pos[i]);
            let old_owner = comm.owner[i];
            if new_owner != old_owner {
                migrate.entry((old_owner, new_owner)).or_default().push(
                    i as u64,
                    self.pos[i],
                    self.mom[i],
                    self.mass[i],
                    self.h[i],
                    self.u_int[i],
                );
                comm.owner[i] = new_owner;
            }
            for dst in comm.layout.ghost_targets(&self.pos[i], comm.ghost_width) {
                ghosts += 1;
                halo.entry((new_owner, dst)).or_default().push(
                    i as u64,
                    self.pos[i],
                    self.mom[i],
                    self.mass[i],
                    self.h[i],
                    self.u_int[i],
                );
            }
        }
        for ((src, dst), batch) in migrate {
            comm.transport.send(src, dst, Tag::Migrate, batch);
        }
        for ((src, dst), batch) in halo {
            comm.transport.send(src, dst, Tag::Halo, batch);
        }
        self.telemetry.counter("comm.ghosts", ghosts as f64);
        comm.transport
            .exchange()
            .expect("the comm layer runs without link-fault injection");
        // The global state is authoritative; inboxes only feed the
        // exchange-volume accounting, so drain them.
        for rank in 0..comm.layout.ranks {
            comm.transport.take_inbox(rank);
        }
    }

    /// Total stellar mass formed so far.
    pub fn total_star_mass(&self) -> f64 {
        self.star_mass.iter().sum()
    }

    /// The GRF mode in use.
    pub fn grf(&self) -> GrfMode {
        self.launch.grf
    }
}
