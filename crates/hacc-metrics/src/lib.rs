#![warn(missing_docs)]
//! # hacc-metrics
//!
//! Performance-portability and productivity analysis, reimplementing the
//! papers' metrics (the P3HPC analysis library + Code Base Investigator
//! substitutes):
//!
//! * [`pp`] — the Pennycook performance-portability metric (Eq. 1),
//!   application efficiency, cascade series (Figure 12),
//! * [`divergence`] — code divergence as mean pairwise Jaccard distance
//!   over per-platform source-line sets (Eqs. 2–3) and code convergence
//!   (Figure 13),
//! * [`cbi`] — a mini Code Base Investigator that measures SLOC and
//!   extracts brace-balanced regions from this repository's real sources,
//! * [`inventory`] — the mapping from repository units to the paper's
//!   configuration sets (Table 2, Figure 13),
//! * [`render`] — text rendering of the paper's chart types.

pub mod cbi;
pub mod divergence;
pub mod inventory;
pub mod pp;
pub mod render;

pub use divergence::{code_convergence, code_divergence, jaccard_distance, SourceSet};
pub use inventory::{
    find_workspace_root, BodyLang, ConfigKind, Mechanism, Platform, RepoInventory, ALL_PLATFORMS,
};
pub use pp::{app_efficiency, performance_portability, AppRecord, Efficiency};
pub use render::{cascade_plot, grouped_bars, navigation_chart};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// PP is bounded by the minimum and maximum efficiency.
        #[test]
        fn pp_bounds(effs in prop::collection::vec(0.01f64..1.0, 1..6)) {
            let opts: Vec<Option<f64>> = effs.iter().copied().map(Some).collect();
            let pp = performance_portability(&opts);
            let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = effs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(pp >= min - 1e-12 && pp <= max + 1e-12);
        }

        /// PP is ≤ the arithmetic mean (harmonic–arithmetic inequality).
        #[test]
        fn pp_below_arithmetic_mean(effs in prop::collection::vec(0.01f64..1.0, 2..6)) {
            let opts: Vec<Option<f64>> = effs.iter().copied().map(Some).collect();
            let pp = performance_portability(&opts);
            let mean = effs.iter().sum::<f64>() / effs.len() as f64;
            prop_assert!(pp <= mean + 1e-12);
        }

        /// Jaccard distance is a metric: bounded, symmetric, zero on
        /// identical sets, triangle inequality.
        #[test]
        fn jaccard_metric_axioms(
            a in prop::collection::btree_set((0u32..4, 0u32..40), 0..60),
            b in prop::collection::btree_set((0u32..4, 0u32..40), 0..60),
            c in prop::collection::btree_set((0u32..4, 0u32..40), 0..60),
        ) {
            let dab = jaccard_distance(&a, &b);
            let dba = jaccard_distance(&b, &a);
            let dac = jaccard_distance(&a, &c);
            let dcb = jaccard_distance(&c, &b);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert!((dab - dba).abs() < 1e-15);
            prop_assert_eq!(jaccard_distance(&a, &a.clone()), 0.0);
            prop_assert!(dab <= dac + dcb + 1e-12);
        }

        /// Divergence of identical platforms is zero; adding a disjoint
        /// platform strictly increases it.
        #[test]
        fn divergence_monotone(lines in 1u32..100) {
            let shared = divergence::source_set_from_units(&[(0, lines)]);
            let disjoint = divergence::source_set_from_units(&[(1, lines)]);
            let same = code_divergence(&[shared.clone(), shared.clone()]);
            prop_assert_eq!(same, 0.0);
            let mixed = code_divergence(&[shared.clone(), shared, disjoint]);
            prop_assert!(mixed > 0.0);
        }
    }
}
