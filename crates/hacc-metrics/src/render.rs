//! Text rendering of the paper's chart types: grouped bar charts
//! (Figures 2, 9–11), cascade plots (Figure 12), and navigation charts
//! (Figure 13). The bench harness prints these so every figure can be
//! regenerated from the terminal.

use crate::pp::AppRecord;

/// Renders a horizontal bar of width proportional to `value/max`.
fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = if max > 0.0 {
        (value / max).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let n = (frac * width as f64).round() as usize;
    let mut s = String::new();
    for _ in 0..n {
        s.push('█');
    }
    for _ in n..width {
        s.push(' ');
    }
    s
}

/// A grouped bar chart: rows are groups (e.g. kernels), each with one
/// value per series (e.g. variant). Values are rendered relative to the
/// row maximum when `normalize_rows`, else to the global maximum.
pub fn grouped_bars(
    title: &str,
    series: &[String],
    groups: &[(String, Vec<f64>)],
    normalize_rows: bool,
) -> String {
    let mut out = format!("== {title} ==\n");
    let global_max = groups
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max);
    for (group, values) in groups {
        assert_eq!(values.len(), series.len(), "series length mismatch");
        let row_max = values.iter().copied().fold(0.0f64, f64::max);
        let max = if normalize_rows { row_max } else { global_max };
        out.push_str(&format!("{group}\n"));
        for (name, v) in series.iter().zip(values) {
            out.push_str(&format!("  {name:<18} |{}| {v:.4}\n", bar(*v, max, 40)));
        }
    }
    out
}

/// Renders a Figure-12-style cascade plot: one line per application with
/// the sorted efficiency series and final PP.
pub fn cascade_plot(title: &str, records: &[AppRecord]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str("application                    eff@1   eff@2   eff@3      PP\n");
    let mut sorted: Vec<&AppRecord> = records.iter().collect();
    sorted.sort_by(|a, b| b.pp().partial_cmp(&a.pp()).unwrap());
    for rec in sorted {
        let cascade = rec.cascade();
        let mut cols = String::new();
        for k in 0..3 {
            if let Some((_, e, _)) = cascade.get(k) {
                cols.push_str(&format!("{e:>8.3}"));
            } else {
                cols.push_str("        ");
            }
        }
        out.push_str(&format!("{:<28} {cols}{:>8.3}\n", rec.name, rec.pp()));
    }
    out
}

/// Renders a Figure-13-style navigation chart: PP vs code convergence
/// as a scatter table plus a coarse ASCII plane.
pub fn navigation_chart(title: &str, points: &[(String, f64, f64)]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str("configuration                convergence       PP\n");
    for (name, conv, pp) in points {
        out.push_str(&format!("{name:<28} {conv:>10.3} {pp:>9.3}\n"));
    }
    // 11×21 ASCII plane: rows = PP 1.0 → 0.0, cols = convergence 0 → 1.
    out.push_str("\n  PP↑ vs convergence→\n");
    let mut grid = vec![vec![' '; 21]; 11];
    for (i, (_, conv, pp)) in points.iter().enumerate() {
        let col = (conv.clamp(0.0, 1.0) * 20.0).round() as usize;
        let row = ((1.0 - pp.clamp(0.0, 1.0)) * 10.0).round() as usize;
        let label = char::from_digit((i as u32 + 1) % 36, 36).unwrap_or('*');
        grid[row][col] = label;
    }
    for (r, row) in grid.iter().enumerate() {
        let ylab = 1.0 - r as f64 / 10.0;
        out.push_str(&format!("{ylab:>4.1} |"));
        for &c in row {
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("      0.0       0.5       1.0\n");
    for (i, (name, _, _)) in points.iter().enumerate() {
        let label = char::from_digit((i as u32 + 1) % 36, 36).unwrap_or('*');
        out.push_str(&format!("  {label} = {name}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_bars_render_all_rows() {
        let s = grouped_bars(
            "Fig X",
            &["Select".into(), "Memory".into()],
            &[
                ("upGeo".into(), vec![1.0, 0.5]),
                ("upCor".into(), vec![0.2, 0.8]),
            ],
            true,
        );
        assert!(s.contains("upGeo") && s.contains("upCor"));
        assert!(s.contains("Select") && s.contains("Memory"));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn cascade_sorts_by_pp() {
        let recs = vec![
            AppRecord {
                name: "low".into(),
                platforms: vec!["a".into(), "b".into()],
                efficiencies: vec![Some(0.3), Some(0.3)],
            },
            AppRecord {
                name: "high".into(),
                platforms: vec!["a".into(), "b".into()],
                efficiencies: vec![Some(0.9), Some(0.9)],
            },
        ];
        let s = cascade_plot("Fig 12", &recs);
        let hi = s.find("high").unwrap();
        let lo = s.find("low").unwrap();
        assert!(hi < lo, "higher PP should print first");
    }

    #[test]
    fn navigation_chart_places_points() {
        let s = navigation_chart("Fig 13", &[("x".into(), 1.0, 1.0), ("y".into(), 0.0, 0.0)]);
        assert!(s.contains("1 = x"));
        assert!(s.contains("2 = y"));
    }

    #[test]
    fn bars_clamp() {
        assert_eq!(bar(2.0, 1.0, 10).chars().filter(|&c| c == '█').count(), 10);
        assert_eq!(bar(0.0, 1.0, 10).trim(), "");
    }
}
