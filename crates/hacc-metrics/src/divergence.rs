//! Code divergence (paper §3.3, Eqs. 2–3).
//!
//! ```text
//!   CD(a, p, H) = (|H| choose 2)⁻¹ Σ_{i<j} d_ij        (average pairwise)
//!   d_ij = 1 − |c_i ∩ c_j| / |c_i ∪ c_j|               (Jaccard distance)
//! ```
//!
//! where `c_i` is the set of source lines used to build for platform `i`.
//! Code convergence (Figure 13's x-axis) is `1 − CD`.

use std::collections::BTreeSet;

/// A platform's source set: identifiers of the lines compiled for it.
/// Lines are identified as (unit id, line index) pairs encoded by the
/// caller; any stable encoding works for the set algebra.
pub type SourceSet = BTreeSet<(u32, u32)>;

/// Jaccard distance between two source sets. Two empty sets are
/// identical (distance 0).
pub fn jaccard_distance(a: &SourceSet, b: &SourceSet) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Code divergence: mean pairwise Jaccard distance over all platform
/// pairs. A single platform has divergence 0 by convention.
pub fn code_divergence(sets: &[SourceSet]) -> f64 {
    let n = sets.len();
    assert!(n >= 1, "divergence needs at least one platform");
    if n == 1 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += jaccard_distance(&sets[i], &sets[j]);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Code convergence `1 − CD` (Figure 13's x-axis).
pub fn code_convergence(sets: &[SourceSet]) -> f64 {
    1.0 - code_divergence(sets)
}

/// Builds a source set from unit sizes: `units` lists `(unit_id,
/// line_count)` for every unit compiled into the platform's build.
pub fn source_set_from_units(units: &[(u32, u32)]) -> SourceSet {
    let mut s = SourceSet::new();
    for &(id, lines) in units {
        for l in 0..lines {
            s.insert((id, l));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u32, u32)]) -> SourceSet {
        source_set_from_units(pairs)
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = set(&[(0, 100), (1, 50)]);
        assert_eq!(jaccard_distance(&a, &a.clone()), 0.0);
    }

    #[test]
    fn disjoint_sets_have_distance_one() {
        let a = set(&[(0, 10)]);
        let b = set(&[(1, 10)]);
        assert_eq!(jaccard_distance(&a, &b), 1.0);
    }

    #[test]
    fn half_overlap() {
        // a = 100 shared lines; b = same 100 plus 100 more: d = 1 − 100/200.
        let a = set(&[(0, 100)]);
        let b = set(&[(0, 100), (1, 100)]);
        assert!((jaccard_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn divergence_averages_pairs() {
        let shared = set(&[(0, 90)]);
        let mut with_special = shared.clone();
        for l in 0..10 {
            with_special.insert((1, l));
        }
        // Three platforms: two identical, one with 10 extra lines.
        let sets = vec![shared.clone(), shared.clone(), with_special];
        let d01 = 0.0;
        let d02 = 1.0 - 90.0 / 100.0;
        let cd = code_divergence(&sets);
        assert!((cd - (d01 + d02 + d02) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_platform_has_zero_divergence() {
        assert_eq!(code_divergence(&[set(&[(0, 10)])]), 0.0);
    }

    #[test]
    fn convergence_is_one_minus_divergence() {
        let sets = vec![set(&[(0, 10)]), set(&[(1, 10)])];
        assert_eq!(code_convergence(&sets), 0.0);
        let sets = vec![set(&[(0, 10)]), set(&[(0, 10)])];
        assert_eq!(code_convergence(&sets), 1.0);
    }

    #[test]
    fn metric_axioms_hold() {
        // Symmetry and triangle inequality on a few concrete sets.
        let a = set(&[(0, 30), (1, 5)]);
        let b = set(&[(0, 30), (2, 10)]);
        let c = set(&[(0, 15), (3, 20)]);
        assert_eq!(jaccard_distance(&a, &b), jaccard_distance(&b, &a));
        assert!(
            jaccard_distance(&a, &c) <= jaccard_distance(&a, &b) + jaccard_distance(&b, &c) + 1e-12
        );
        assert_eq!(jaccard_distance(&a, &a.clone()), 0.0);
    }
}
