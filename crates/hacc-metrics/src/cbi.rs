//! A miniature Code Base Investigator: measures source lines of code
//! from the actual files of this repository and extracts named regions
//! (functions, impl blocks, match arms) so per-platform source sets can
//! be built from *measured* line counts rather than copied numbers
//! (Table 2, Figure 13).

use std::path::Path;

/// Counts source lines of code in Rust text: non-blank lines that are
/// not pure comments (`//`, `///`, `//!`) and not inside block comments.
/// Matches the paper's SLOC convention ("excluding whitespace and
/// comments").
pub fn count_sloc(text: &str) -> u32 {
    let mut in_block_comment = false;
    let mut sloc = 0u32;
    for line in text.lines() {
        let t = line.trim();
        if in_block_comment {
            if let Some(end) = t.find("*/") {
                in_block_comment = false;
                let rest = t[end + 2..].trim();
                if !rest.is_empty() && !rest.starts_with("//") {
                    sloc += 1;
                }
            }
            continue;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if t.starts_with("/*") {
            match t.find("*/") {
                None => in_block_comment = true,
                Some(end) => {
                    let rest = t[end + 2..].trim();
                    if !rest.is_empty() && !rest.starts_with("//") {
                        sloc += 1;
                    }
                }
            }
            continue;
        }
        sloc += 1;
    }
    sloc
}

/// Extracts a brace-balanced region starting at the first line matching
/// `anchor` (e.g. `"fn visa_butterfly"`). Returns the region text, or
/// `None` when the anchor is absent.
///
/// This is how the mini-CBI attributes specialized code (the vISA path,
/// the broadcast restructure) to its configuration set without marker
/// comments in the sources.
pub fn extract_region(text: &str, anchor: &str) -> Option<String> {
    let start_byte = text.find(anchor)?;
    // Back up to the start of the anchor's line so signatures count.
    let region_start = text[..start_byte].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let mut depth = 0i64;
    let mut seen_open = false;
    let mut in_str = false;
    let mut in_char = false;
    let mut in_line_comment = false;
    let mut prev = '\0';
    for (off, ch) in text[region_start..].char_indices() {
        if in_line_comment {
            if ch == '\n' {
                in_line_comment = false;
            }
            prev = ch;
            continue;
        }
        if in_str {
            if ch == '"' && prev != '\\' {
                in_str = false;
            }
            prev = if prev == '\\' && ch == '\\' { '\0' } else { ch };
            continue;
        }
        if in_char {
            if ch == '\'' && prev != '\\' {
                in_char = false;
            }
            prev = ch;
            continue;
        }
        match ch {
            '/' if prev == '/' => in_line_comment = true,
            '"' => in_str = true,
            // A lone quote after a non-identifier char starts a char
            // literal (lifetimes like 'a are followed by ident chars and
            // no closing quote before a brace, so they are left alone —
            // good enough for this crate's sources, which the tests pin).
            '{' => {
                depth += 1;
                seen_open = true;
            }
            '}' => {
                depth -= 1;
                if seen_open && depth == 0 {
                    return Some(text[region_start..region_start + off + 1].to_string());
                }
            }
            _ => {}
        }
        prev = ch;
    }
    None
}

/// SLOC of a named region in a file on disk.
pub fn region_sloc(path: &Path, anchor: &str) -> Result<u32, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let region = extract_region(&text, anchor)
        .ok_or_else(|| format!("anchor {anchor:?} not found in {}", path.display()))?;
    Ok(count_sloc(&region))
}

/// SLOC of a whole file on disk.
pub fn file_sloc(path: &Path) -> Result<u32, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(count_sloc(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sloc_skips_blanks_and_comments() {
        let text = r#"
// a comment
fn foo() {
    let x = 1; // trailing comment counts the line

    /* block
       comment */
    x + 1
}
/// doc comment
"#;
        assert_eq!(count_sloc(text), 4); // fn, let, x+1, }
    }

    #[test]
    fn block_comment_with_trailing_code_counts() {
        let text = "a();\n/* c */ b();\n";
        assert_eq!(count_sloc(text), 2);
    }

    #[test]
    fn extracts_balanced_function() {
        let text = r#"
fn other() { 1 }

fn target(x: i32) -> i32 {
    if x > 0 {
        x
    } else {
        -x
    }
}

fn after() {}
"#;
        let region = extract_region(text, "fn target").unwrap();
        assert!(region.starts_with("fn target"));
        assert!(region.ends_with('}'));
        assert!(region.contains("else"));
        assert!(!region.contains("after"));
        assert_eq!(count_sloc(&region), 7);
    }

    #[test]
    fn braces_in_strings_and_comments_are_ignored() {
        let text = r#"
fn tricky() {
    let s = "not a brace: { {";
    // also not: }
    s.len()
}
"#;
        let region = extract_region(text, "fn tricky").unwrap();
        assert!(region.trim_end().ends_with('}'));
        assert!(region.contains("s.len()"));
    }

    #[test]
    fn missing_anchor_is_none() {
        assert!(extract_region("fn a() {}", "fn missing").is_none());
    }

    #[test]
    fn measures_own_sources() {
        // The mini-CBI must be able to measure this very repository.
        let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/pp.rs");
        let sloc = file_sloc(&here).unwrap();
        assert!(sloc > 50, "pp.rs should have substantial SLOC, got {sloc}");
        let region = region_sloc(&here, "pub fn performance_portability").unwrap();
        assert!((10..30).contains(&region), "function region SLOC {region}");
    }
}
