//! The repository inventory: maps this reproduction's *actual source
//! files and regions* to the paper's configuration sets, so Table 2 and
//! Figure 13 are computed from measured lines of code.
//!
//! Categories mirror the paper's Table 2:
//!
//! * specialized communication regions (Select / Memory / Broadcast /
//!   vISA) are extracted from the simulator and kernel sources by the
//!   mini-CBI ([`crate::cbi`]);
//! * the kernel body is shared Rust here, but a CUDA and a SYCL build of
//!   CRK-HACC maintain *separate copies* of the kernel sources (the
//!   SYCLomatic migration produces a parallel body, §4) — so when a
//!   configuration uses different languages on different platforms, the
//!   kernel-body unit is tagged per language, reproducing the divergence
//!   the paper measures for the Unified configuration;
//! * host-side code (driver, cosmology, mesh, tree) is shared by every
//!   build (the paper's "All" row);
//! * the FOF/DBSCAN halo finder is compiled but unused in adiabatic mode
//!   (the paper's "Unused" row) and excluded from divergence.

use crate::cbi::{extract_region, file_sloc};
use crate::divergence::SourceSet;
use std::path::{Path, PathBuf};

/// The three platforms of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Aurora (Intel Data Center GPU Max 1550).
    Aurora,
    /// Polaris (NVIDIA A100).
    Polaris,
    /// Frontier (AMD MI250X).
    Frontier,
}

/// All platforms in paper order.
pub const ALL_PLATFORMS: [Platform; 3] = [Platform::Aurora, Platform::Polaris, Platform::Frontier];

/// Source languages, for kernel-body tagging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BodyLang {
    /// CUDA kernel sources.
    Cuda,
    /// HIP build (shares the CUDA kernel body through macro wrappers).
    CudaHip,
    /// SYCL kernel sources (the migrated copy).
    Sycl,
}

/// Communication mechanisms a configuration can select per platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// `select_from_group` shuffles.
    Select,
    /// Local-memory exchange (either granularity).
    Memory,
    /// Restructured broadcast kernels.
    Broadcast,
    /// Inline vISA butterfly.
    Visa,
}

/// The configurations plotted in Figures 12–13.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// CUDA on NVIDIA + HIP wrapper on AMD (no Aurora support).
    CudaHip,
    /// Single-source SYCL with one mechanism everywhere.
    SyclUniform(Mechanism),
    /// SYCL: Select on Polaris/Frontier, local memory on Aurora.
    SyclSelectPlusMemory,
    /// SYCL: Select on Polaris/Frontier, inline vISA on Aurora.
    SyclSelectPlusVisa,
    /// Inline vISA only (no NVIDIA/AMD support).
    VisaOnly,
    /// CUDA/HIP on Polaris/Frontier + SYCL on Aurora.
    Unified,
}

impl ConfigKind {
    /// Display name matching the paper's figure labels.
    pub fn label(&self) -> String {
        match self {
            ConfigKind::CudaHip => "CUDA/HIP".into(),
            ConfigKind::SyclUniform(m) => format!("SYCL ({})", mechanism_label(*m)),
            ConfigKind::SyclSelectPlusMemory => "SYCL (Select + Memory)".into(),
            ConfigKind::SyclSelectPlusVisa => "SYCL (Select + vISA)".into(),
            ConfigKind::VisaOnly => "vISA".into(),
            ConfigKind::Unified => "Unified".into(),
        }
    }

    /// The (language, mechanism) used on a platform, or `None` when the
    /// configuration does not support it.
    pub fn build_for(&self, p: Platform) -> Option<(BodyLang, Mechanism)> {
        match self {
            ConfigKind::CudaHip => match p {
                Platform::Aurora => None,
                Platform::Polaris => Some((BodyLang::Cuda, Mechanism::Select)),
                Platform::Frontier => Some((BodyLang::CudaHip, Mechanism::Select)),
            },
            ConfigKind::SyclUniform(m) => Some((BodyLang::Sycl, *m)),
            ConfigKind::SyclSelectPlusMemory => Some((
                BodyLang::Sycl,
                if p == Platform::Aurora {
                    Mechanism::Memory
                } else {
                    Mechanism::Select
                },
            )),
            ConfigKind::SyclSelectPlusVisa => Some((
                BodyLang::Sycl,
                if p == Platform::Aurora {
                    Mechanism::Visa
                } else {
                    Mechanism::Select
                },
            )),
            ConfigKind::VisaOnly => {
                if p == Platform::Aurora {
                    Some((BodyLang::Sycl, Mechanism::Visa))
                } else {
                    None
                }
            }
            ConfigKind::Unified => match p {
                Platform::Aurora => Some((BodyLang::Sycl, Mechanism::Select)),
                Platform::Polaris => Some((BodyLang::Cuda, Mechanism::Select)),
                Platform::Frontier => Some((BodyLang::CudaHip, Mechanism::Select)),
            },
        }
    }
}

fn mechanism_label(m: Mechanism) -> &'static str {
    match m {
        Mechanism::Select => "Select",
        Mechanism::Memory => "Memory",
        Mechanism::Broadcast => "Broadcast",
        Mechanism::Visa => "vISA",
    }
}

/// Measured line counts for every inventory unit.
#[derive(Clone, Debug)]
pub struct RepoInventory {
    /// SLOC per category.
    pub visa: u32,
    /// Local-memory exchange regions.
    pub memory: u32,
    /// Select/shuffle regions.
    pub select: u32,
    /// Broadcast restructure (kernel path + chunk work lists).
    pub broadcast: u32,
    /// The kernel body (per-language copies share this count).
    pub kernel_body: u32,
    /// CUDA-only glue.
    pub cuda_glue: u32,
    /// HIP-only glue.
    pub hip_glue: u32,
    /// SYCL-only glue.
    pub sycl_glue: u32,
    /// Host code shared by every build.
    pub host_common: u32,
    /// Compiled-but-unused features (FOF/DBSCAN, inactive in adiabatic
    /// mode).
    pub unused: u32,
}

fn region_sloc_of(text: &str, anchors: &[&str]) -> Result<u32, String> {
    let mut total = 0;
    for a in anchors {
        let region = extract_region(text, a).ok_or_else(|| format!("anchor {a:?} missing"))?;
        total += crate::cbi::count_sloc(&region);
    }
    Ok(total)
}

impl RepoInventory {
    /// Measures the repository rooted at `root` (the workspace root).
    pub fn measure(root: &Path) -> Result<Self, String> {
        let p = |rel: &str| -> PathBuf { root.join(rel) };
        let read = |rel: &str| -> Result<String, String> {
            std::fs::read_to_string(p(rel)).map_err(|e| format!("{rel}: {e}"))
        };

        let subgroup = read("crates/sycl-sim/src/subgroup.rs")?;
        let pairkernel = read("crates/hacc-kernels/src/pairkernel.rs")?;
        let worklist = read("crates/hacc-kernels/src/worklist.rs")?;
        let halfwarp = read("crates/hacc-kernels/src/halfwarp.rs")?;
        let toolchain = read("crates/sycl-sim/src/toolchain.rs")?;

        let visa = region_sloc_of(&subgroup, &["pub fn visa_butterfly"])?;
        let memory = region_sloc_of(
            &subgroup,
            &["pub fn local_exchange<", "pub fn local_exchange_object"],
        )?;
        let select = region_sloc_of(
            &subgroup,
            &["pub fn select_from_group", "pub fn shuffle_xor"],
        )?;
        let broadcast = region_sloc_of(&pairkernel, &["fn run_broadcast"])?
            + region_sloc_of(&worklist, &["pub fn build_chunks"])?
            + region_sloc_of(&halfwarp, &["pub fn broadcast_loop", "pub fn chunk_slots"])?;

        let kernel_files = [
            "crates/hacc-kernels/src/geometry.rs",
            "crates/hacc-kernels/src/corrections.rs",
            "crates/hacc-kernels/src/extras.rs",
            "crates/hacc-kernels/src/acceleration.rs",
            "crates/hacc-kernels/src/energy.rs",
            "crates/hacc-kernels/src/gravity.rs",
            "crates/hacc-kernels/src/physics.rs",
            "crates/hacc-kernels/src/sphkernel.rs",
            "crates/hacc-kernels/src/finalize.rs",
            "crates/hacc-kernels/src/particles.rs",
            "crates/hacc-kernels/src/launch.rs",
            "crates/hacc-kernels/src/variant.rs",
        ];
        let mut kernel_body = 0;
        for f in kernel_files {
            kernel_body += file_sloc(&p(f))?;
        }
        // Files that also hold specialized regions contribute their
        // remainder to the shared kernel body.
        kernel_body += file_sloc(&p("crates/hacc-kernels/src/pairkernel.rs"))?
            - region_sloc_of(&pairkernel, &["fn run_broadcast"])?;
        kernel_body += file_sloc(&p("crates/hacc-kernels/src/halfwarp.rs"))?
            - region_sloc_of(&halfwarp, &["pub fn broadcast_loop", "pub fn chunk_slots"])?;
        kernel_body += file_sloc(&p("crates/hacc-kernels/src/worklist.rs"))?
            - region_sloc_of(&worklist, &["pub fn build_chunks"])?;

        let cuda_glue = region_sloc_of(&toolchain, &["pub fn cuda()", "pub fn cuda_fast_math()"])?;
        let hip_glue = region_sloc_of(&toolchain, &["pub fn hip()", "pub fn hip_fast_math()"])?;
        let sycl_glue = region_sloc_of(&toolchain, &["pub fn sycl()", "pub fn sycl_visa()"])?;

        let host_files = [
            "crates/core/src/sim.rs",
            "crates/core/src/config.rs",
            "crates/core/src/timers.rs",
            "crates/core/src/checkpoint.rs",
            "crates/core/src/rank.rs",
            "crates/hacc-mesh/src/cic.rs",
            "crates/hacc-mesh/src/poisson.rs",
            "crates/hacc-mesh/src/split.rs",
            "crates/hacc-mesh/src/pm.rs",
            "crates/hacc-mesh/src/zeldovich.rs",
            "crates/hacc-mesh/src/spectrum.rs",
            "crates/hacc-cosmo/src/friedmann.rs",
            "crates/hacc-cosmo/src/growth.rs",
            "crates/hacc-cosmo/src/power.rs",
            "crates/hacc-cosmo/src/params.rs",
            "crates/hacc-cosmo/src/units.rs",
            "crates/hacc-fft/src/fft1d.rs",
            "crates/hacc-fft/src/fft3d.rs",
            "crates/hacc-fft/src/complex.rs",
            "crates/hacc-tree/src/rcb.rs",
            "crates/hacc-tree/src/chaining.rs",
            "crates/hacc-tree/src/interaction.rs",
            "crates/hacc-tree/src/aabb.rs",
        ];
        let mut host_common = 0;
        for f in host_files {
            host_common += file_sloc(&p(f))?;
        }

        // The AGN-feedback substrate (FOF/DBSCAN) is compiled but never
        // executed in adiabatic mode — the paper's "Unused" row.
        let unused = file_sloc(&p("crates/hacc-tree/src/fof.rs"))?;

        Ok(Self {
            visa,
            memory,
            select,
            broadcast,
            kernel_body,
            cuda_glue,
            hip_glue,
            sycl_glue,
            host_common,
            unused,
        })
    }

    /// Total SLOC across all categories (the Table 2 "Total" row; the
    /// kernel body is counted once).
    pub fn total(&self) -> u32 {
        self.visa
            + self.memory
            + self.select
            + self.broadcast
            + self.kernel_body
            + self.cuda_glue
            + self.hip_glue
            + self.sycl_glue
            + self.host_common
            + self.unused
    }

    /// Table 2 rows: (label, SLOC, % of total).
    pub fn table2(&self) -> Vec<(String, u32, f64)> {
        let total = self.total() as f64;
        let rows = [
            ("vISA", self.visa),
            ("Broadcast", self.broadcast),
            (
                "SYCL (-Broadcast)",
                self.memory + self.select + self.sycl_glue,
            ),
            ("SYCL", self.kernel_body),
            ("HIP", self.hip_glue),
            ("CUDA", self.cuda_glue),
            ("All", self.host_common),
            ("Unused", self.unused),
        ];
        let mut out: Vec<(String, u32, f64)> = rows
            .iter()
            .map(|(l, v)| (l.to_string(), *v, *v as f64 / total * 100.0))
            .collect();
        out.push(("Total".to_string(), self.total(), 100.0));
        out
    }

    /// Builds the source set for one configuration on one platform
    /// (`None` when unsupported). Unused lines are excluded, matching
    /// the paper's convention.
    pub fn source_set(&self, config: ConfigKind, platform: Platform) -> Option<SourceSet> {
        let (lang, mech) = config.build_for(platform)?;
        let mut set = SourceSet::new();
        let mut add = |unit: u32, lines: u32| {
            for l in 0..lines {
                set.insert((unit, l));
            }
        };
        // Unit ids: 0 host, 1 CUDA kernel body (shared by the HIP build
        // through the macro wrapper — the paper's "HIP and CUDA" set),
        // 3 SYCL kernel body (the SYCLomatic-migrated copy), 4 select,
        // 5 memory, 6 broadcast, 7 visa, 8 cuda glue, 9 hip glue,
        // 10 sycl glue.
        add(0, self.host_common);
        let body_unit = match lang {
            BodyLang::Cuda | BodyLang::CudaHip => 1,
            BodyLang::Sycl => 3,
        };
        add(body_unit, self.kernel_body);
        if lang == BodyLang::CudaHip {
            add(9, self.hip_glue);
            add(8, self.cuda_glue);
        }
        if lang == BodyLang::Cuda {
            add(8, self.cuda_glue);
        }
        if lang == BodyLang::Sycl {
            add(10, self.sycl_glue);
        }
        match mech {
            Mechanism::Select => add(4, self.select),
            Mechanism::Memory => add(5, self.memory),
            Mechanism::Broadcast => add(6, self.broadcast),
            Mechanism::Visa => add(7, self.visa),
        }
        Some(set)
    }

    /// Code convergence (1 − divergence) of a configuration over the
    /// supported platforms.
    pub fn convergence(&self, config: ConfigKind) -> f64 {
        let sets: Vec<SourceSet> = ALL_PLATFORMS
            .iter()
            .filter_map(|&p| self.source_set(config, p))
            .collect();
        if sets.is_empty() {
            return 0.0;
        }
        crate::divergence::code_convergence(&sets)
    }
}

/// Locates the workspace root from a crate's manifest dir (walks up
/// until `Cargo.toml` with `[workspace]` is found).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inventory() -> RepoInventory {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        RepoInventory::measure(&root).unwrap()
    }

    #[test]
    fn measures_nonzero_categories() {
        let inv = inventory();
        assert!(inv.visa > 5, "visa region measured: {}", inv.visa);
        assert!(inv.memory > 10);
        assert!(inv.select > 10);
        assert!(inv.broadcast > 30);
        assert!(inv.kernel_body > 500);
        assert!(inv.host_common > 1000);
        assert!(inv.unused > 100);
        assert!(inv.cuda_glue > 2 && inv.hip_glue > 2 && inv.sycl_glue > 2);
    }

    #[test]
    fn visa_region_is_small_like_the_paper() {
        // Paper Table 2: 226 SLOC of vISA out of 85k — a fraction of a
        // percent. Ours must likewise be a tiny fraction of the total.
        let inv = inventory();
        let frac = inv.visa as f64 / inv.total() as f64;
        assert!(frac < 0.01, "vISA fraction {frac}");
    }

    #[test]
    fn specialized_sycl_configs_have_high_convergence() {
        // Figure 13: the specialized SYCL variants sit at convergence ≈ 1.
        let inv = inventory();
        for config in [
            ConfigKind::SyclSelectPlusMemory,
            ConfigKind::SyclSelectPlusVisa,
        ] {
            let c = inv.convergence(config);
            assert!(c > 0.97, "{config:?} convergence {c}");
        }
        // Uniform single-source SYCL is exactly 1.
        let c = inv.convergence(ConfigKind::SyclUniform(Mechanism::Select));
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unified_config_diverges_most() {
        // Figure 13: Unified (CUDA/HIP + SYCL) has visibly lower
        // convergence because the kernel body exists per language.
        let inv = inventory();
        let unified = inv.convergence(ConfigKind::Unified);
        let specialized = inv.convergence(ConfigKind::SyclSelectPlusVisa);
        assert!(
            unified < specialized - 0.05,
            "unified {unified} vs {specialized}"
        );
        assert!(unified > 0.5, "still mostly shared host code: {unified}");
    }

    #[test]
    fn source_sets_respect_platform_support() {
        let inv = inventory();
        assert!(inv
            .source_set(ConfigKind::CudaHip, Platform::Aurora)
            .is_none());
        assert!(inv
            .source_set(ConfigKind::VisaOnly, Platform::Polaris)
            .is_none());
        assert!(inv
            .source_set(ConfigKind::Unified, Platform::Aurora)
            .is_some());
    }

    #[test]
    fn table2_rows_sum_to_total() {
        let inv = inventory();
        let rows = inv.table2();
        let total = rows.last().unwrap().1;
        let sum: u32 = rows[..rows.len() - 1].iter().map(|r| r.1).sum();
        assert_eq!(sum, total);
    }
}
