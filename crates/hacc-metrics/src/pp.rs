//! The performance-portability metric (paper §3.2, Eq. 1).
//!
//! ```text
//!   PP(a, p, H) = |H| / Σ_{i∈H} 1/e_i(a, p)     if e_i ≠ 0 for all i
//!               = 0                              otherwise
//! ```
//!
//! the harmonic mean of an application's efficiency over the platform
//! set, zero when any platform is unsupported.

use serde::Serialize;

/// Efficiency of one application on one platform: `None`/0 means the
/// application does not run there.
pub type Efficiency = Option<f64>;

/// Computes PP over a platform set. Every entry must lie in `[0, 1]`
/// when present.
pub fn performance_portability(efficiencies: &[Efficiency]) -> f64 {
    assert!(!efficiencies.is_empty(), "PP needs at least one platform");
    let mut sum_inv = 0.0;
    for e in efficiencies {
        match e {
            Some(v) if *v > 0.0 => {
                assert!(*v <= 1.0 + 1e-9, "efficiency {v} exceeds 1");
                sum_inv += 1.0 / v;
            }
            _ => return 0.0,
        }
    }
    efficiencies.len() as f64 / sum_inv
}

/// Application efficiency: `best_time / time` (both positive).
pub fn app_efficiency(time: f64, best_time: f64) -> f64 {
    assert!(time > 0.0 && best_time > 0.0, "times must be positive");
    (best_time / time).min(1.0)
}

/// One application's record across the platform set, for cascade plots.
#[derive(Clone, Debug, Serialize)]
pub struct AppRecord {
    /// Application / configuration name.
    pub name: String,
    /// Platform names, aligned with `efficiencies`.
    pub platforms: Vec<String>,
    /// Efficiency per platform.
    pub efficiencies: Vec<Efficiency>,
}

impl AppRecord {
    /// PP over all platforms.
    pub fn pp(&self) -> f64 {
        performance_portability(&self.efficiencies)
    }

    /// The cascade series: efficiencies sorted descending (unsupported
    /// platforms at the end as zero), plus the running harmonic mean —
    /// the "cascade" of Sewall et al. that Figure 12 plots.
    pub fn cascade(&self) -> Vec<(usize, f64, f64)> {
        let mut effs: Vec<f64> = self.efficiencies.iter().map(|e| e.unwrap_or(0.0)).collect();
        effs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut out = Vec::new();
        let mut sum_inv = 0.0;
        let mut dead = false;
        for (k, e) in effs.iter().enumerate() {
            if *e > 0.0 && !dead {
                sum_inv += 1.0 / e;
            } else {
                dead = true;
            }
            let hm = if dead { 0.0 } else { (k + 1) as f64 / sum_inv };
            out.push((k + 1, *e, hm));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_efficiencies_give_that_value() {
        let pp = performance_portability(&[Some(0.8), Some(0.8), Some(0.8)]);
        assert!((pp - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unsupported_platform_zeroes_pp() {
        assert_eq!(performance_portability(&[Some(1.0), None, Some(0.9)]), 0.0);
        assert_eq!(performance_portability(&[Some(1.0), Some(0.0)]), 0.0);
    }

    #[test]
    fn harmonic_mean_is_below_arithmetic() {
        let effs = [Some(0.9), Some(0.5), Some(0.7)];
        let pp = performance_portability(&effs);
        let arith = (0.9 + 0.5 + 0.7) / 3.0;
        assert!(pp < arith);
        assert!(pp > 0.5, "harmonic mean is above the minimum");
    }

    #[test]
    fn known_value() {
        // 2/(1/0.5 + 1/1.0) = 2/3.
        let pp = performance_portability(&[Some(0.5), Some(1.0)]);
        assert!((pp - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn app_efficiency_caps_at_one() {
        assert_eq!(app_efficiency(2.0, 1.0), 0.5);
        assert_eq!(app_efficiency(1.0, 2.0), 1.0);
    }

    #[test]
    fn cascade_runs_descending_with_harmonic_tail() {
        let rec = AppRecord {
            name: "x".into(),
            platforms: vec!["a".into(), "b".into(), "c".into()],
            efficiencies: vec![Some(0.5), Some(1.0), Some(0.25)],
        };
        let c = rec.cascade();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].1, 1.0);
        assert_eq!(c[1].1, 0.5);
        assert_eq!(c[2].1, 0.25);
        // Final harmonic mean equals PP.
        assert!((c[2].2 - rec.pp()).abs() < 1e-12);
        // Running harmonic means decrease.
        assert!(c[0].2 >= c[1].2 && c[1].2 >= c[2].2);
    }

    #[test]
    fn cascade_with_unsupported_platform_ends_at_zero() {
        let rec = AppRecord {
            name: "cuda".into(),
            platforms: vec!["polaris".into(), "aurora".into()],
            efficiencies: vec![Some(0.9), None],
        };
        let c = rec.cascade();
        assert_eq!(c[1].1, 0.0);
        assert_eq!(c[1].2, 0.0);
        assert_eq!(rec.pp(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one platform")]
    fn empty_platform_set_panics() {
        performance_portability(&[]);
    }
}
