//! Property-based tests of the particle-mesh solver stack: linearity of
//! the Poisson operator, translation equivariance of CIC+solve, and
//! statistical isotropy of measured spectra.

use hacc_fft::Dims;
use hacc_mesh::{cic, measure_power, PoissonConfig, PoissonSolver};
use proptest::prelude::*;

fn solver(n: usize) -> PoissonSolver {
    PoissonSolver::new(
        Dims::cube(n),
        PoissonConfig {
            deconvolve_cic: false,
            split: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Poisson solve is linear: φ(a·s₁ + b·s₂) = a·φ(s₁) + b·φ(s₂).
    #[test]
    fn poisson_is_linear(
        seed in 0u64..1000,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let n = 8;
        let dims = Dims::cube(n);
        let s = solver(n);
        let mut src1 = vec![0.0; dims.len()];
        let mut src2 = vec![0.0; dims.len()];
        for f in 0..dims.len() {
            src1[f] = (((f as u64).wrapping_mul(seed + 7) % 17) as f64) - 8.0;
            src2[f] = (((f as u64).wrapping_mul(seed + 13) % 11) as f64) - 5.0;
        }
        // Remove means so the zero-mode removal does not differ.
        let m1 = src1.iter().sum::<f64>() / dims.len() as f64;
        let m2 = src2.iter().sum::<f64>() / dims.len() as f64;
        for f in 0..dims.len() {
            src1[f] -= m1;
            src2[f] -= m2;
        }
        let combo: Vec<f64> =
            src1.iter().zip(&src2).map(|(x, y)| a * x + b * y).collect();
        let p1 = s.potential(&src1);
        let p2 = s.potential(&src2);
        let pc = s.potential(&combo);
        let scale = pc.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
        for f in 0..dims.len() {
            prop_assert!((pc[f] - (a * p1[f] + b * p2[f])).abs() < 1e-9 * scale);
        }
    }

    /// Shifting every particle by a whole-cell offset shifts the deposited
    /// grid by the same offset (translation equivariance of CIC).
    #[test]
    fn cic_translation_equivariance(
        pts in prop::collection::vec((0.0f64..8.0, 0.0f64..8.0, 0.0f64..8.0), 1..30),
        shift in 1usize..7,
    ) {
        let dims = Dims::cube(8);
        let pos: Vec<[f64; 3]> = pts.iter().map(|&(x, y, z)| [x, y, z]).collect();
        let shifted: Vec<[f64; 3]> = pos
            .iter()
            .map(|p| [(p[0] + shift as f64).rem_euclid(8.0), p[1], p[2]])
            .collect();
        let masses = vec![1.0; pos.len()];
        let mut g1 = vec![0.0; dims.len()];
        let mut g2 = vec![0.0; dims.len()];
        cic::deposit(dims, &pos, &masses, &mut g1);
        cic::deposit(dims, &shifted, &masses, &mut g2);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    let a = g1[dims.idx(i, j, k)];
                    let b = g2[dims.idx((i + shift) % 8, j, k)];
                    prop_assert!((a - b).abs() < 1e-9, "cell ({i},{j},{k})");
                }
            }
        }
    }

    /// Measured power is non-negative and the estimator is linear in the
    /// squared field amplitude.
    #[test]
    fn spectrum_scales_quadratically(amp in 0.1f64..4.0) {
        let dims = Dims::cube(16);
        let base: Vec<f64> = (0..dims.len())
            .map(|f| ((f * 2654435761usize) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mean = base.iter().sum::<f64>() / base.len() as f64;
        let d1: Vec<f64> = base.iter().map(|v| v - mean).collect();
        let d2: Vec<f64> = d1.iter().map(|v| amp * v).collect();
        let p1 = measure_power(dims, &d1, 32.0, 6);
        let p2 = measure_power(dims, &d2, 32.0, 6);
        for (b1, b2) in p1.iter().zip(&p2) {
            prop_assert!(b1.power >= 0.0);
            prop_assert!(
                (b2.power - amp * amp * b1.power).abs() < 1e-9 * (1.0 + b2.power),
                "P must scale as amp²"
            );
        }
    }
}
