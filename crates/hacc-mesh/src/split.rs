//! HACC-style gravitational force splitting.
//!
//! The total `1/r²` force is split into a long-range part handled by the
//! particle-mesh Poisson solver and a short-range part evaluated by direct
//! particle–particle interaction on the device:
//!
//! ```text
//!   F_total = F_LR (mesh, filtered by S(k) = e^{-k²r_s²/2})
//!           + F_SR (pairwise, erfc-screened Newtonian)
//! ```
//!
//! The GPU kernels do not evaluate the `erfc` directly; as in CRK-HACC,
//! the smooth long-range complement is pre-fit by a degree-5 polynomial in
//! `r²` (the `HACC_CUDA_POLY_ORDER=5` appendix flag), and the kernels
//! compute `1/r³ − poly(r²)` per pair.

use crate::math::{erf, erfc, solve_dense};
use std::f64::consts::PI;

/// Gaussian force-splitting parameters.
///
/// Lengths are in the same (arbitrary, usually grid-cell) units as the
/// pair distances fed to the evaluation methods.
#[derive(Clone, Copy, Debug)]
pub struct ForceSplit {
    /// Gaussian smoothing scale `r_s` of the density filter.
    pub r_s: f64,
    /// Short-range interaction cutoff; beyond this the pairwise force is
    /// treated as zero (the mesh carries everything).
    pub r_cut: f64,
}

impl ForceSplit {
    /// Creates a split. HACC production runs use `r_cut/r_s ≈ 3–4`, beyond
    /// which the residual short-range force is below float precision.
    pub fn new(r_s: f64, r_cut: f64) -> Self {
        assert!(r_s > 0.0 && r_cut > r_s, "need 0 < r_s < r_cut");
        Self { r_s, r_cut }
    }

    /// k-space filter applied to the density before the Poisson solve:
    /// `S(k) = exp(−k² r_s² / 2)` (a real-space Gaussian of width `r_s`).
    #[inline]
    pub fn filter_k(&self, k: f64) -> f64 {
        (-0.5 * k * k * self.r_s * self.r_s).exp()
    }

    /// Full Newtonian force-over-distance for a unit-mass pair: `1/r³`.
    #[inline]
    pub fn newtonian_over_r(&self, r: f64) -> f64 {
        1.0 / (r * r * r)
    }

    /// Exact short-range force-over-distance `F_SR(r)/r` (erfc-screened).
    ///
    /// Derived from the point-mass long-range potential
    /// `φ_LR = −erf(r/(√2 r_s))/r` of the Gaussian-filtered density.
    pub fn short_over_r(&self, r: f64) -> f64 {
        assert!(r > 0.0);
        let s = std::f64::consts::SQRT_2 * self.r_s;
        let u = r / s;
        erfc(u) / (r * r * r) + (2.0 / (s * PI.sqrt())) * (-u * u).exp() / (r * r)
    }

    /// Exact long-range force-over-distance `F_LR(r)/r` — the smooth part
    /// the polynomial approximates. Finite as `r → 0`.
    ///
    /// The two closed-form terms cancel catastrophically for `r ≪ r_s`
    /// (each diverges as `1/r²` while the difference stays O(1)), so small
    /// radii use the Taylor series of the difference instead.
    pub fn long_over_r(&self, r: f64) -> f64 {
        let s = std::f64::consts::SQRT_2 * self.r_s;
        let u = r / s;
        if u < 0.25 {
            // (2/(√π s³)) [2/3 − (2/5)u² + (1/7)u⁴ − (1/27)u⁶ + …]
            let u2 = u * u;
            return 2.0 / (PI.sqrt() * s * s * s)
                * (2.0 / 3.0
                    + u2 * (-2.0 / 5.0 + u2 * (1.0 / 7.0 + u2 * (-1.0 / 27.0 + u2 / 132.0))));
        }
        erf(u) / (r * r * r) - (2.0 / (s * PI.sqrt())) * (-u * u).exp() / (r * r)
    }
}

/// Degree-`order` polynomial in `r²` approximating the long-range
/// force-over-distance, as baked into the GPU gravity kernels.
#[derive(Clone, Debug)]
pub struct PolyShortRange {
    /// Polynomial coefficients, lowest order first: `Σ c_j (r²)^j`.
    pub coeffs: Vec<f64>,
    /// The split this polynomial was fit for.
    pub split: ForceSplit,
}

impl PolyShortRange {
    /// Fits the degree-`order` polynomial by least squares on a dense grid
    /// of radii in `(0, r_cut]`. `order = 5` matches CRK-HACC's
    /// `HACC_CUDA_POLY_ORDER=5`.
    pub fn fit(split: ForceSplit, order: usize) -> Self {
        assert!(
            (1..=7).contains(&order),
            "polynomial order out of supported range"
        );
        let n_samples = 256;
        let n = order + 1;
        // Normal equations A c = b with A_{jk} = Σ x^{j+k}, b_j = Σ x^j y,
        // where x = r² scaled to [0, 1] for conditioning.
        let r_cut2 = split.r_cut * split.r_cut;
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n_samples {
            // Chebyshev-distributed samples in x = r²/r_cut² concentrate
            // points near the domain endpoints, where a least-squares
            // polynomial fit otherwise develops its largest errors.
            let x = 0.5 * (1.0 - (PI * (i as f64 + 0.5) / n_samples as f64).cos());
            let r = (x * r_cut2).sqrt().max(1e-6 * split.r_cut);
            let y = split.long_over_r(r);
            // Weight by 1/y so the fit minimizes *relative* error — the
            // force law spans an order of magnitude over the fit domain and
            // the kernels need uniform relative accuracy.
            let w = 1.0 / (y * y);
            let mut xp = vec![1.0; 2 * n];
            for j in 1..2 * n {
                xp[j] = xp[j - 1] * x;
            }
            for j in 0..n {
                for k in 0..n {
                    a[j * n + k] += w * xp[j + k];
                }
                b[j] += w * xp[j] * y;
            }
        }
        let c_scaled = solve_dense(&mut a, &mut b);
        // Undo the x = r²/r_cut² scaling: c_j = c_scaled_j / r_cut^{2j}.
        let coeffs = c_scaled
            .into_iter()
            .enumerate()
            .map(|(j, c)| c / r_cut2.powi(j as i32))
            .collect();
        Self { coeffs, split }
    }

    /// Evaluates the polynomial `Σ c_j (r²)^j` (the long-range model).
    #[inline]
    pub fn poly(&self, r2: f64) -> f64 {
        // Horner in r².
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * r2 + c;
        }
        acc
    }

    /// The pairwise short-range force-over-distance the GPU kernel computes:
    /// `1/r³ − poly(r²)` inside the cutoff, zero outside.
    ///
    /// Matches the single-precision device implementation in
    /// `hacc-kernels::gravity` (this is the f64 reference).
    #[inline]
    pub fn force_over_r(&self, r2: f64) -> f64 {
        let r_cut2 = self.split.r_cut * self.split.r_cut;
        if r2 >= r_cut2 || r2 <= 0.0 {
            return 0.0;
        }
        let r = r2.sqrt();
        1.0 / (r2 * r) - self.poly(r2)
    }

    /// Maximum relative error of the fit against the exact long-range form,
    /// sampled densely over `(0.05 r_cut, r_cut)`.
    pub fn fit_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..512 {
            let r = self.split.r_cut * (0.05 + 0.95 * i as f64 / 511.0);
            let exact = self.split.long_over_r(r);
            let approx = self.poly(r * r);
            worst = worst.max((approx - exact).abs() / exact.abs().max(1e-30));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split() -> ForceSplit {
        ForceSplit::new(1.0, 3.5)
    }

    #[test]
    fn short_plus_long_equals_newtonian() {
        let s = split();
        for r in [0.1, 0.5, 1.0, 2.0, 3.4] {
            let total = s.short_over_r(r) + s.long_over_r(r);
            let newton = s.newtonian_over_r(r);
            assert!(
                (total - newton).abs() < 1e-10 * newton,
                "r = {r}: {total} vs {newton}"
            );
        }
    }

    #[test]
    fn long_range_is_finite_and_smooth_at_origin() {
        let s = split();
        let at0 = s.long_over_r(0.0);
        let near0 = s.long_over_r(1e-4);
        assert!(at0.is_finite() && at0 > 0.0);
        assert!((near0 - at0).abs() < 1e-6 * at0);
    }

    #[test]
    fn short_range_decays_fast() {
        let s = split();
        // At r = 3.5 r_s the screened force is tiny vs Newtonian.
        let ratio = s.short_over_r(3.5) / s.newtonian_over_r(3.5);
        assert!(ratio < 0.05, "screening ratio {ratio}");
        // At small r it approaches full Newtonian.
        let ratio0 = s.short_over_r(0.05) / s.newtonian_over_r(0.05);
        assert!((ratio0 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn filter_is_gaussian() {
        let s = split();
        assert!((s.filter_k(0.0) - 1.0).abs() < 1e-15);
        let k = 1.3;
        assert!((s.filter_k(k) - (-0.5f64 * k * k).exp()).abs() < 1e-12);
    }

    #[test]
    fn degree5_fit_is_accurate() {
        let p = PolyShortRange::fit(split(), 5);
        let err = p.fit_error();
        assert!(err < 3e-3, "degree-5 fit error {err}");
    }

    #[test]
    fn higher_order_fits_better() {
        let e3 = PolyShortRange::fit(split(), 3).fit_error();
        let e5 = PolyShortRange::fit(split(), 5).fit_error();
        assert!(e5 < e3, "order 5 ({e5}) should beat order 3 ({e3})");
    }

    #[test]
    fn kernel_force_matches_exact_short_range() {
        let s = split();
        let p = PolyShortRange::fit(s, 5);
        for r in [0.3, 0.9, 1.7, 2.8] {
            let got = p.force_over_r(r * r);
            let want = s.short_over_r(r);
            assert!(
                (got - want).abs() < 3e-3 * want.abs().max(s.long_over_r(r)),
                "r = {r}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn force_is_zero_beyond_cutoff() {
        let p = PolyShortRange::fit(split(), 5);
        assert_eq!(p.force_over_r(3.6 * 3.6), 0.0);
        assert_eq!(p.force_over_r(100.0), 0.0);
    }
}
