//! The assembled particle-mesh (PM) long-range gravity solver:
//! deposit → density contrast → filtered Poisson solve → spectral forces →
//! interpolation back to particles.
//!
//! Everything works in grid units; the returned accelerations are
//! `−∇φ_grid` where `∇²φ_grid = δ` (density contrast). The application
//! driver multiplies by the physical coupling `3/2 · Ωₘ / a` appropriate to
//! comoving coordinates.

use crate::cic;
use crate::poisson::{PoissonConfig, PoissonSolver};
use crate::split::ForceSplit;
use hacc_fft::Dims;

/// A reusable PM solver for a fixed grid.
pub struct PmSolver {
    solver: PoissonSolver,
    dims: Dims,
    /// Scratch density grid, reused across steps to avoid reallocation.
    density: Vec<f64>,
}

impl PmSolver {
    /// Builds a PM solver. `split` should be the same [`ForceSplit`] used by
    /// the short-range kernels so the two halves sum to the full force.
    pub fn new(ng: usize, split: Option<ForceSplit>) -> Self {
        let dims = Dims::cube(ng);
        let solver = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: true,
                split,
            },
        );
        Self {
            solver,
            dims,
            density: vec![0.0; dims.len()],
        }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Deposits the particles and returns the density-contrast grid
    /// `δ = ρ/ρ̄ − 1` (masses in units where the box mean density is the
    /// mass-weighted average).
    pub fn density_contrast(&mut self, positions: &[[f64; 3]], masses: &[f64]) -> &[f64] {
        cic::deposit(self.dims, positions, masses, &mut self.density);
        let total: f64 = masses.iter().sum();
        let mean = total / self.dims.len() as f64;
        assert!(
            mean > 0.0,
            "cannot form density contrast with zero total mass"
        );
        for v in &mut self.density {
            *v = *v / mean - 1.0;
        }
        &self.density
    }

    /// Computes grid-unit long-range accelerations at the particle
    /// positions. Output has one `[ax, ay, az]` entry per particle.
    pub fn accelerations(
        &mut self,
        positions: &[[f64; 3]],
        masses: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) {
        self.density_contrast(positions, masses);
        let force = self.solver.force(&self.density);
        out.clear();
        out.resize(positions.len(), [0.0; 3]);
        cic::interpolate_vec3(self.dims, [&force[0], &force[1], &force[2]], positions, out);
    }

    /// Potential energy diagnostic: `½ Σ m δφ` over the grid (grid units).
    pub fn potential_energy(&mut self, positions: &[[f64; 3]], masses: &[f64]) -> f64 {
        self.density_contrast(positions, masses);
        let phi = self.solver.potential(&self.density);
        0.5 * self
            .density
            .iter()
            .zip(&phi)
            .map(|(d, p)| d * p)
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform lattice of particles must feel (nearly) zero mesh force.
    #[test]
    fn uniform_lattice_has_no_force() {
        let ng = 16;
        let mut pm = PmSolver::new(ng, None);
        let mut pos = Vec::new();
        for i in 0..ng {
            for j in 0..ng {
                for k in 0..ng {
                    pos.push([i as f64, j as f64, k as f64]);
                }
            }
        }
        let masses = vec![1.0; pos.len()];
        let mut acc = Vec::new();
        pm.accelerations(&pos, &masses, &mut acc);
        for a in &acc {
            for c in 0..3 {
                assert!(
                    a[c].abs() < 1e-9,
                    "lattice force should vanish, got {}",
                    a[c]
                );
            }
        }
    }

    /// Two particles attract each other along the separation axis, with
    /// antisymmetric forces (momentum conservation at the mesh level).
    ///
    /// The split filter must be active: an *unfiltered* deconvolved point
    /// source rings at the grid scale (which is exactly why HACC always
    /// runs the mesh with the long-range filter).
    #[test]
    fn pair_attraction_is_antisymmetric() {
        let ng = 32;
        let mut pm = PmSolver::new(ng, Some(ForceSplit::new(2.0, 7.0)));
        let pos = vec![[10.0, 16.0, 16.0], [22.0, 16.0, 16.0]];
        let masses = vec![1.0, 1.0];
        let mut acc = Vec::new();
        pm.accelerations(&pos, &masses, &mut acc);
        // Particle 0 is pulled toward +x, particle 1 toward −x.
        assert!(acc[0][0] > 0.0, "ax0 = {}", acc[0][0]);
        assert!(acc[1][0] < 0.0, "ax1 = {}", acc[1][0]);
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-9 * acc[0][0].abs());
        // Transverse components vanish by symmetry.
        for c in 1..3 {
            assert!(acc[0][c].abs() < 1e-6 * acc[0][0].abs());
        }
    }

    /// The filtered mesh force between two particles matches the analytic
    /// long-range force law: `F/r = m/(4πρ̄) · long_over_r(r)`, where
    /// `ρ̄` is the mean deposited mass per cell (the `1/ρ̄` comes from the
    /// density-contrast normalization of the source).
    #[test]
    fn pair_force_magnitude_matches_analytic_long_range() {
        let ng = 64;
        let split = ForceSplit::new(2.0, 8.0);
        let mut pm = PmSolver::new(ng, Some(split));
        let masses = vec![1.0, 1.0];
        let rho_bar = 2.0 / (ng * ng * ng) as f64;
        for r in [6.0, 10.0, 16.0] {
            let x0 = 32.0 - r / 2.0;
            let pos = vec![[x0, 32.0, 32.0], [x0 + r, 32.0, 32.0]];
            let mut acc = Vec::new();
            pm.accelerations(&pos, &masses, &mut acc);
            let expect = split.long_over_r(r) * r / (4.0 * std::f64::consts::PI * rho_bar);
            let got = acc[0][0];
            assert!(
                (got / expect - 1.0).abs() < 0.1,
                "r = {r}: mesh force {got:.4} vs analytic {expect:.4}"
            );
        }
    }

    /// With the splitting filter active the mesh force at short range is
    /// strongly suppressed relative to the unsplit mesh force.
    #[test]
    fn split_suppresses_short_range_mesh_force() {
        let ng = 32;
        let split = ForceSplit::new(2.0, 7.0);
        let mut plain = PmSolver::new(ng, None);
        let mut filt = PmSolver::new(ng, Some(split));
        let pos = vec![[14.0, 16.0, 16.0], [17.0, 16.0, 16.0]]; // r = 3 < r_s·1.5
        let masses = vec![1.0, 1.0];
        let (mut a1, mut a2) = (Vec::new(), Vec::new());
        plain.accelerations(&pos, &masses, &mut a1);
        filt.accelerations(&pos, &masses, &mut a2);
        assert!(
            a2[0][0].abs() < 0.8 * a1[0][0].abs(),
            "filtered short-range mesh force should be suppressed: {} vs {}",
            a2[0][0],
            a1[0][0]
        );
    }

    #[test]
    fn potential_energy_is_negative_for_clustered_mass() {
        let ng = 16;
        let mut pm = PmSolver::new(ng, None);
        let pos = vec![[8.0, 8.0, 8.0], [8.5, 8.0, 8.0]];
        let masses = vec![1.0, 1.0];
        let u = pm.potential_energy(&pos, &masses);
        assert!(u < 0.0, "clustered configuration must be bound: U = {u}");
    }
}
