#![warn(missing_docs)]
//! # hacc-mesh
//!
//! Particle-mesh machinery for the long-range gravity solve of the
//! CRK-HACC reproduction:
//!
//! * [`cic`] — cloud-in-cell deposit and interpolation (adjoint pair),
//! * [`poisson`] — spectral Poisson solver with CIC deconvolution and the
//!   force-splitting filter,
//! * [`split`] — HACC-style Gaussian force splitting, including the
//!   degree-5 polynomial fit baked into the GPU short-range kernels,
//! * [`zeldovich`] — Gaussian random fields and Zel'dovich initial
//!   conditions,
//! * [`lpt2`] — second-order Lagrangian perturbation theory displacements,
//! * [`spectrum`] — binned power-spectrum estimation,
//! * [`pm`] — the assembled PM solver used by the application driver.

pub mod cic;
pub mod lpt2;
pub mod math;
pub mod pm;
pub mod poisson;
pub mod spectrum;
pub mod split;
pub mod zeldovich;

pub use lpt2::{d2_of_d1, lpt2_displacements, Lpt2Displacements};
pub use pm::PmSolver;
pub use poisson::{PoissonConfig, PoissonSolver};
pub use spectrum::{measure_power, SpectrumBin};
pub use split::{ForceSplit, PolyShortRange};
pub use zeldovich::{zeldovich_ics, GaussianField, InitialConditions};

#[cfg(test)]
mod proptests {
    use super::*;
    use hacc_fft::Dims;
    use proptest::prelude::*;

    proptest! {
        /// CIC deposit conserves total mass for arbitrary particle sets.
        #[test]
        fn cic_mass_conservation(
            pts in prop::collection::vec(
                (0.0f64..8.0, 0.0f64..8.0, 0.0f64..8.0, 0.1f64..10.0), 1..40)
        ) {
            let dims = Dims::cube(8);
            let pos: Vec<[f64; 3]> = pts.iter().map(|&(x, y, z, _)| [x, y, z]).collect();
            let m: Vec<f64> = pts.iter().map(|&(_, _, _, m)| m).collect();
            let mut grid = vec![0.0; dims.len()];
            cic::deposit(dims, &pos, &m, &mut grid);
            let total: f64 = grid.iter().sum();
            let want: f64 = m.iter().sum();
            prop_assert!((total - want).abs() < 1e-9 * want);
            prop_assert!(grid.iter().all(|&v| v >= -1e-15));
        }

        /// Short + long force split reconstructs Newtonian at any radius.
        #[test]
        fn split_reconstruction(r in 0.05f64..5.0, rs in 0.5f64..2.0) {
            let s = ForceSplit::new(rs, 4.0 * rs);
            let total = s.short_over_r(r) + s.long_over_r(r);
            let newton = s.newtonian_over_r(r);
            prop_assert!((total - newton).abs() < 1e-7 * newton);
        }

        /// The degree-5 kernel polynomial stays within tolerance of the
        /// exact screened force over the fit domain.
        #[test]
        fn poly_fit_quality(rs in 0.8f64..1.6) {
            let s = ForceSplit::new(rs, 3.5 * rs);
            let p = PolyShortRange::fit(s, 5);
            prop_assert!(p.fit_error() < 5e-3);
        }
    }
}
