//! Zel'dovich initial conditions.
//!
//! Generates a Gaussian random density field with a prescribed linear power
//! spectrum, derives the first-order Lagrangian displacement field
//! `ψ̂ = (i k / k²) δ̂`, and places particles displaced from a uniform
//! lattice with consistent growing-mode peculiar velocities:
//!
//! ```text
//!   x(q) = q + D(z) ψ(q)
//!   dx/dt = f(a) E(a) D(z) ψ(q)        (comoving, in units of H0 = 1)
//! ```

use hacc_cosmo::{z_to_a, BoxSpec, LinearPower};
use hacc_fft::{complex::ZERO, freq_index, Complex, Dims, Direction, Fft3d};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A realization of a Gaussian density field on a periodic grid.
pub struct GaussianField {
    /// Grid dimensions.
    pub dims: Dims,
    /// Box side in Mpc/h.
    pub box_size: f64,
    /// Real-space density contrast δ.
    pub delta: Vec<f64>,
    /// Spectral density contrast δ̂ (kept for displacement derivation).
    spectrum: Vec<Complex>,
}

impl GaussianField {
    /// Draws a realization with target power `power_fn(k)` (`k` in h/Mpc,
    /// `P` in (Mpc/h)³), deterministic in `seed`.
    ///
    /// White noise is drawn in real space so the spectrum is automatically
    /// Hermitian and the field exactly real.
    pub fn generate<F: Fn(f64) -> f64>(dims: Dims, box_size: f64, power_fn: F, seed: u64) -> Self {
        assert!(box_size > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dims.len();
        // Box-Muller unit normals.
        let mut white = vec![0.0f64; n];
        for chunk in white.chunks_mut(2) {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            chunk[0] = r * (2.0 * PI * u2).cos();
            if chunk.len() > 1 {
                chunk[1] = r * (2.0 * PI * u2).sin();
            }
        }
        let fft = Fft3d::new(dims);
        let mut spec = fft.forward_real(&white);

        // Scale each mode: ⟨|ŵ|²⟩ = N, want ⟨|δ̂|²⟩ = P(k) N²/V.
        let volume = box_size.powi(3);
        let kf = 2.0 * PI / box_size;
        for f in 0..n {
            let (i, j, l) = dims.coords(f);
            let kx = kf * freq_index(i, dims.nx) as f64;
            let ky = kf * freq_index(j, dims.ny) as f64;
            let kz = kf * freq_index(l, dims.nz) as f64;
            let k = (kx * kx + ky * ky + kz * kz).sqrt();
            if k == 0.0 {
                spec[f] = ZERO; // zero-mean field
                continue;
            }
            let amp = (power_fn(k) * n as f64 / volume).sqrt();
            spec[f] = spec[f].scale(amp);
        }
        let delta = fft.inverse_to_real(&spec);
        Self {
            dims,
            box_size,
            delta,
            spectrum: spec,
        }
    }

    /// First-order Lagrangian displacement field `ψ = ∇ ∇⁻² δ` (so that
    /// `∇·ψ = −δ`... sign convention: `ψ̂ = i k δ̂ / k²` gives `∇·ψ = −δ`),
    /// one grid per component, in Mpc/h.
    pub fn displacement(&self) -> [Vec<f64>; 3] {
        let fft = Fft3d::new(self.dims);
        let kf = 2.0 * PI / self.box_size;
        let d = self.dims;
        std::array::from_fn(|axis| {
            let mut comp = self.spectrum.clone();
            for f in 0..d.len() {
                let (i, j, l) = d.coords(f);
                let kx = kf * freq_index(i, d.nx) as f64;
                let ky = kf * freq_index(j, d.ny) as f64;
                let kz = kf * freq_index(l, d.nz) as f64;
                let k2 = kx * kx + ky * ky + kz * kz;
                if k2 == 0.0 {
                    comp[f] = ZERO;
                    continue;
                }
                let kc = [kx, ky, kz][axis];
                // ψ̂ = i k δ̂ / k².
                comp[f] = comp[f].mul_i().scale(kc / k2);
            }
            let mut grid = comp;
            fft.process(&mut grid, Direction::Inverse);
            grid.into_iter().map(|z| z.re).collect()
        })
    }
}

/// Particle initial conditions: comoving positions (grid units, periodic in
/// `[0, ng)`) and comoving velocities `dx/dt` (grid units per `1/H0`).
pub struct InitialConditions {
    /// Particle positions in grid units.
    pub positions: Vec<[f64; 3]>,
    /// Particle velocities `dx/dt` in grid units per 1/H0.
    pub velocities: Vec<[f64; 3]>,
    /// Scale factor of the realization.
    pub a_init: f64,
    /// RMS displacement in units of the inter-particle spacing (diagnostic;
    /// should be ≪ 1 for a valid Zel'dovich start).
    pub rms_displacement: f64,
}

/// Generates Zel'dovich initial conditions for one particle species on a
/// uniform lattice of `spec.np³` particles at redshift `z_init`.
pub fn zeldovich_ics(
    spec: &BoxSpec,
    power: &LinearPower,
    z_init: f64,
    seed: u64,
) -> InitialConditions {
    ics_with_order(spec, power, z_init, seed, 1)
}

/// Generates 2LPT initial conditions (second-order displacements reduce
/// the Zel'dovich transients that otherwise decay only as 1/a).
pub fn lpt2_ics(spec: &BoxSpec, power: &LinearPower, z_init: f64, seed: u64) -> InitialConditions {
    ics_with_order(spec, power, z_init, seed, 2)
}

/// Shared IC generator at Lagrangian order 1 or 2.
fn ics_with_order(
    spec: &BoxSpec,
    power: &LinearPower,
    z_init: f64,
    seed: u64,
    order: u8,
) -> InitialConditions {
    let dims = Dims::cube(spec.ng);
    let a = z_to_a(z_init);
    let growth = power.growth();
    let d_init = growth.d_of_z(z_init);
    let f_growth = growth.growth_rate(a);
    let e_of_a = growth.friedmann().e_of_a(a);

    // Field at z = 0 scaled by the growth factor when displacing.
    let field = GaussianField::generate(dims, spec.box_mpc_h, |k| power.power_z0(k), seed);
    let (psi, psi2) = if order >= 2 {
        let lpt = crate::lpt2::lpt2_displacements(&field);
        (lpt.psi1, Some(lpt.psi2))
    } else {
        (field.displacement(), None)
    };
    let d2 = crate::lpt2::d2_of_d1(d_init);

    let cell = spec.cell_size();
    let np = spec.np;
    let grid_per_particle = spec.ng as f64 / np as f64;
    let mut positions = Vec::with_capacity(np * np * np);
    let mut velocities = Vec::with_capacity(np * np * np);
    let mut sum_d2 = 0.0;

    for i in 0..np {
        for j in 0..np {
            for k in 0..np {
                // Lattice site in grid units, sampled at cell centers of the
                // particle lattice.
                let q = [
                    (i as f64 + 0.5) * grid_per_particle,
                    (j as f64 + 0.5) * grid_per_particle,
                    (k as f64 + 0.5) * grid_per_particle,
                ];
                // CIC-free nearest sampling of ψ at the lattice site is
                // adequate when ng == np (site centers coincide with cells).
                let gi = (q[0] as usize).min(dims.nx - 1);
                let gj = (q[1] as usize).min(dims.ny - 1);
                let gk = (q[2] as usize).min(dims.nz - 1);
                let idx = dims.idx(gi, gj, gk);
                let disp_mpc = [psi[0][idx], psi[1][idx], psi[2][idx]];
                let mut x = [0.0f64; 3];
                let mut v = [0.0f64; 3];
                let mut disp2 = 0.0;
                for c in 0..3 {
                    let mut dx_mpc = d_init * disp_mpc[c];
                    let mut v_mpc = f_growth * e_of_a * d_init * disp_mpc[c];
                    if let Some(p2) = &psi2 {
                        // x += D₂ ψ⁽²⁾; v gains the second-order growing
                        // mode with f₂ ≈ 2f₁ (ΛCDM approximation).
                        dx_mpc += d2 * p2[c][idx];
                        v_mpc += 2.0 * f_growth * e_of_a * d2 * p2[c][idx];
                    }
                    let dx_grid = dx_mpc / cell;
                    disp2 += dx_mpc * dx_mpc;
                    let ng = [dims.nx, dims.ny, dims.nz][c] as f64;
                    x[c] = (q[c] + dx_grid).rem_euclid(ng);
                    // Growing mode: dx/dt = f E(a) D ψ (comoving, H0 = 1).
                    v[c] = v_mpc / cell;
                }
                sum_d2 += disp2;
                positions.push(x);
                velocities.push(v);
            }
        }
    }
    let n = positions.len() as f64;
    let rms = (sum_d2 / n).sqrt() / spec.particle_spacing();
    InitialConditions {
        positions,
        velocities,
        a_init: a,
        rms_displacement: rms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::measure_power;
    use hacc_cosmo::CosmoParams;

    #[test]
    fn field_is_zero_mean() {
        let dims = Dims::cube(16);
        let f = GaussianField::generate(dims, 100.0, |k| 1e3 * (-k).exp(), 7);
        let mean: f64 = f.delta.iter().sum::<f64>() / dims.len() as f64;
        assert!(mean.abs() < 1e-10, "mean = {mean}");
    }

    #[test]
    fn field_is_deterministic_in_seed() {
        let dims = Dims::cube(8);
        let a = GaussianField::generate(dims, 50.0, |_| 10.0, 42);
        let b = GaussianField::generate(dims, 50.0, |_| 10.0, 42);
        let c = GaussianField::generate(dims, 50.0, |_| 10.0, 43);
        assert_eq!(a.delta, b.delta);
        assert!(a.delta != c.delta);
    }

    #[test]
    fn measured_spectrum_recovers_input_power() {
        // White spectrum P(k) = P0: every bin should measure ≈ P0.
        let dims = Dims::cube(32);
        let box_size = 128.0;
        let p0 = 500.0;
        let f = GaussianField::generate(dims, box_size, |_| p0, 11);
        let bins = measure_power(dims, &f.delta, box_size, 8);
        for b in bins.iter().filter(|b| b.modes > 100) {
            let ratio = b.power / p0;
            assert!(
                ratio > 0.7 && ratio < 1.3,
                "bin k = {}: ratio = {ratio} ({} modes)",
                b.k,
                b.modes
            );
        }
    }

    #[test]
    fn displacement_divergence_matches_minus_delta() {
        // ∇·ψ = −δ, checked with central differences. The field must be
        // band-limited well below the Nyquist frequency for the O(h²)
        // stencil to resolve it: kh ≤ 0.6 keeps the truncation error ≲ 6%.
        let dims = Dims::cube(16);
        let box_size = 32.0;
        let f = GaussianField::generate(
            dims,
            box_size,
            |k| 100.0 * (-(k / 0.25) * (k / 0.25)).exp(),
            3,
        );
        let psi = f.displacement();
        let h = box_size / 16.0;
        let mut worst = 0.0f64;
        let mut scale = 0.0f64;
        for ff in 0..dims.len() {
            let (i, j, k) = dims.coords(ff);
            let ip = dims.idx((i + 1) % 16, j, k);
            let im = dims.idx((i + 15) % 16, j, k);
            let jp = dims.idx(i, (j + 1) % 16, k);
            let jm = dims.idx(i, (j + 15) % 16, k);
            let kp = dims.idx(i, j, (k + 1) % 16);
            let km = dims.idx(i, j, (k + 15) % 16);
            let div = (psi[0][ip] - psi[0][im] + psi[1][jp] - psi[1][jm] + psi[2][kp] - psi[2][km])
                / (2.0 * h);
            worst = worst.max((div + f.delta[ff]).abs());
            scale = scale.max(f.delta[ff].abs());
        }
        // Central differences on a smooth (low-k) field: few-% accuracy.
        assert!(
            worst < 0.15 * scale,
            "max |∇·ψ + δ| = {worst}, scale = {scale}"
        );
    }

    #[test]
    fn ics_have_small_displacements_at_high_z() {
        let params = CosmoParams::planck2018();
        let power = LinearPower::new(params);
        let spec = BoxSpec::paper_problem(32); // 16³ particles
        let ics = zeldovich_ics(&spec, &power, 200.0, 1);
        assert_eq!(ics.positions.len(), 16 * 16 * 16);
        assert!(
            ics.rms_displacement < 0.3,
            "z=200 Zel'dovich displacements should be small: {}",
            ics.rms_displacement
        );
        for p in &ics.positions {
            for c in 0..3 {
                assert!(p[c] >= 0.0 && p[c] < spec.ng as f64);
            }
        }
    }

    #[test]
    fn lpt2_ics_are_a_small_correction_at_high_redshift() {
        // At z = 200 the second-order term is ~D₁ ≈ 0.005 of the first
        // order: 2LPT and Zel'dovich starts nearly coincide, and the 2LPT
        // correction is nonzero but tiny.
        let params = CosmoParams::planck2018();
        let power = LinearPower::new(params);
        let spec = BoxSpec::paper_problem(32); // 16³
        let z1 = zeldovich_ics(&spec, &power, 200.0, 3);
        let z2 = lpt2_ics(&spec, &power, 200.0, 3);
        let mut max_diff = 0.0f64;
        let mut any_diff = false;
        for (a, b) in z1.positions.iter().zip(&z2.positions) {
            for c in 0..3 {
                let mut d = (a[c] - b[c]).abs();
                if d > 8.0 {
                    d = 16.0 - d; // periodic wrap
                }
                if d > 0.0 {
                    any_diff = true;
                }
                max_diff = max_diff.max(d);
            }
        }
        assert!(any_diff, "2LPT must actually move particles");
        assert!(
            max_diff < 0.05 * z1.rms_displacement.max(1e-3) * spec.particle_spacing() + 1e-2,
            "second order must be a small correction: {max_diff}"
        );
    }

    #[test]
    fn velocities_follow_displacements() {
        // Growing mode: v ∝ displacement from the lattice (same direction).
        let params = CosmoParams::planck2018();
        let power = LinearPower::new(params);
        let spec = BoxSpec::paper_problem(64); // 8³ particles
        let ics = zeldovich_ics(&spec, &power, 100.0, 5);
        let gpp = spec.ng as f64 / spec.np as f64;
        let mut checked = 0;
        for (n, (p, v)) in ics.positions.iter().zip(&ics.velocities).enumerate() {
            let k = n % spec.np;
            let j = (n / spec.np) % spec.np;
            let i = n / (spec.np * spec.np);
            let q = [
                (i as f64 + 0.5) * gpp,
                (j as f64 + 0.5) * gpp,
                (k as f64 + 0.5) * gpp,
            ];
            for c in 0..3 {
                let mut dx = p[c] - q[c];
                let ng = spec.ng as f64;
                if dx > ng / 2.0 {
                    dx -= ng;
                }
                if dx < -ng / 2.0 {
                    dx += ng;
                }
                if dx.abs() > 1e-6 {
                    assert!(
                        (v[c] / dx) > 0.0,
                        "velocity must align with displacement (particle {n}, axis {c})"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "expected many non-trivial displacements");
    }
}
