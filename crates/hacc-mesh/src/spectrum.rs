//! Measurement of the matter power spectrum from a gridded density field.
//!
//! Used to validate initial conditions against the input linear spectrum and
//! by analysis examples. The estimator is the standard binned periodogram
//! `P(k) = ⟨|δ̂_k|²⟩ V / N²` with spherical k-bins.

use hacc_fft::{freq_index, Dims, Fft3d};
use std::f64::consts::PI;

/// One spherical bin of the measured spectrum.
#[derive(Clone, Copy, Debug)]
pub struct SpectrumBin {
    /// Mean wavenumber of the modes in the bin (h/Mpc).
    pub k: f64,
    /// Estimated power (Mpc/h)³.
    pub power: f64,
    /// Number of modes averaged.
    pub modes: usize,
}

/// Measures `P(k)` of a real density-contrast grid `δ` in a periodic box of
/// side `box_size` (Mpc/h), with `n_bins` linear bins up to the Nyquist
/// frequency.
pub fn measure_power(dims: Dims, delta: &[f64], box_size: f64, n_bins: usize) -> Vec<SpectrumBin> {
    assert_eq!(delta.len(), dims.len(), "grid size mismatch");
    assert!(box_size > 0.0 && n_bins >= 1);
    let fft = Fft3d::new(dims);
    let spec = fft.forward_real(delta);

    let volume = box_size * box_size * box_size;
    let n_total = dims.len() as f64;
    let kf = 2.0 * PI / box_size; // fundamental mode
    let k_nyq = kf * (dims.nx.min(dims.ny).min(dims.nz) / 2) as f64;
    let dk = k_nyq / n_bins as f64;

    let mut k_sum = vec![0.0; n_bins];
    let mut p_sum = vec![0.0; n_bins];
    let mut counts = vec![0usize; n_bins];

    for f in 0..dims.len() {
        let (i, j, l) = dims.coords(f);
        let kx = kf * freq_index(i, dims.nx) as f64;
        let ky = kf * freq_index(j, dims.ny) as f64;
        let kz = kf * freq_index(l, dims.nz) as f64;
        let kmag = (kx * kx + ky * ky + kz * kz).sqrt();
        if kmag <= 0.0 || kmag >= k_nyq {
            continue;
        }
        let bin = ((kmag / dk) as usize).min(n_bins - 1);
        k_sum[bin] += kmag;
        p_sum[bin] += spec[f].norm_sqr() * volume / (n_total * n_total);
        counts[bin] += 1;
    }

    (0..n_bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| SpectrumBin {
            k: k_sum[b] / counts[b] as f64,
            power: p_sum[b] / counts[b] as f64,
            modes: counts[b],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mode_power_is_localized() {
        let dims = Dims::cube(32);
        let box_size = 64.0;
        let kf = 2.0 * PI / box_size;
        let m = 4usize;
        let amp = 0.01;
        let mut delta = vec![0.0; dims.len()];
        for f in 0..dims.len() {
            let (i, _, _) = dims.coords(f);
            delta[f] = amp * (kf * m as f64 * i as f64 * box_size / 32.0).cos();
        }
        let bins = measure_power(dims, &delta, box_size, 16);
        // All power should sit in the bin containing k = m·kf.
        let k_target = kf * m as f64;
        let total: f64 = bins.iter().map(|b| b.power * b.modes as f64).sum();
        let (near, _far): (Vec<&SpectrumBin>, Vec<&SpectrumBin>) =
            bins.iter().partition(|b| (b.k - k_target).abs() < kf);
        let near_power: f64 = near.iter().map(|b| b.power * b.modes as f64).sum();
        assert!(
            near_power > 0.99 * total,
            "power should be localized at k = {k_target}"
        );
    }

    #[test]
    fn zero_field_has_zero_power() {
        let dims = Dims::cube(16);
        let delta = vec![0.0; dims.len()];
        for b in measure_power(dims, &delta, 100.0, 8) {
            assert_eq!(b.power, 0.0);
        }
    }

    #[test]
    fn bins_are_ordered_and_counted() {
        let dims = Dims::cube(16);
        let delta: Vec<f64> = (0..dims.len())
            .map(|f| ((f * 97) % 13) as f64 - 6.0)
            .collect();
        let bins = measure_power(dims, &delta, 50.0, 8);
        assert!(!bins.is_empty());
        for w in bins.windows(2) {
            assert!(w[1].k > w[0].k);
        }
        let total_modes: usize = bins.iter().map(|b| b.modes).sum();
        assert!(total_modes > dims.len() / 2, "most modes should be binned");
    }
}
