//! Special functions not provided by `std`, needed by the force-splitting
//! machinery.

/// Complementary error function, via the Cody-style rational/asymptotic
/// blend of Numerical Recipes' `erfc` (max relative error ≈ 1.2e-7, ample
/// for a force law that is later refit by a polynomial).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev expansion coefficients (Numerical Recipes, 3rd ed.).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 − erfc(x)`.
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Solves the dense linear system `A x = b` in place by Gaussian elimination
/// with partial pivoting. `a` is row-major `n × n`. Panics on a singular
/// matrix. Used by the small least-squares fits of the short-range force
/// polynomial; the systems are ≤ 8 × 8.
pub fn solve_dense(a: &mut [f64], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        assert!(
            a[piv * n + col].abs() > 1e-14,
            "singular system in solve_dense"
        );
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        // Eliminate below.
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in (r + 1)..n {
            s -= a[r * n + c] * x[c];
        }
        x[r] = s / a[r * n + r];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (3.0, 2.209e-5),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!((got - want).abs() < 2e-6, "erfc({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-2.0, -0.7, 0.3, 1.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_limits() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(5.0) - 1.0).abs() < 1e-10);
        assert!((erf(-5.0) + 1.0).abs() < 1e-10);
    }

    #[test]
    fn dense_solver_roundtrip() {
        // A known 3x3 system.
        let mut a = vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_dense(&mut a, &mut b);
        let want = [2.0, 3.0, -1.0];
        for (g, w) in x.iter().zip(want) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn dense_solver_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        solve_dense(&mut a, &mut b);
    }
}
