//! Spectral Poisson solver for the long-range gravitational force.
//!
//! Solves `∇²φ = s` on a periodic grid using the FFT, with optional
//! CIC-window deconvolution (compensating both deposit and interpolation)
//! and the Gaussian force-splitting filter from [`crate::split`]. Forces
//! are obtained by spectral differentiation, `F̂ = −i k φ̂`.
//!
//! All wavenumbers are in grid units (`k = 2π m / n` per axis); physical
//! scaling is applied by the caller.

use crate::split::ForceSplit;
use hacc_fft::{freq_index, Complex, Dims, Direction, Fft3d};
use rayon::prelude::*;
use std::f64::consts::PI;

/// Window/filter configuration for the solve.
#[derive(Clone, Copy, Debug)]
pub struct PoissonConfig {
    /// Deconvolve the CIC assignment window (applied twice: deposit and
    /// interpolation).
    pub deconvolve_cic: bool,
    /// Long-range Gaussian filter; `None` solves the unsplit equation.
    pub split: Option<ForceSplit>,
}

impl Default for PoissonConfig {
    fn default() -> Self {
        Self {
            deconvolve_cic: true,
            split: None,
        }
    }
}

/// A reusable spectral Poisson solver for a fixed grid size.
pub struct PoissonSolver {
    dims: Dims,
    fft: Fft3d,
    config: PoissonConfig,
    /// Per-axis tables of `k` (grid units) and CIC window `sinc²(k/2)`.
    k_tab: [Vec<f64>; 3],
    w_tab: [Vec<f64>; 3],
}

impl PoissonSolver {
    /// Builds a solver for a cubic or rectangular periodic grid.
    pub fn new(dims: Dims, config: PoissonConfig) -> Self {
        let fft = Fft3d::new(dims);
        let make = |n: usize| -> (Vec<f64>, Vec<f64>) {
            let mut ks = Vec::with_capacity(n);
            let mut ws = Vec::with_capacity(n);
            for m in 0..n {
                let k = 2.0 * PI * freq_index(m, n) as f64 / n as f64;
                ks.push(k);
                // CIC window along one axis: sinc²(k/2) in grid units.
                let half = 0.5 * k;
                let s = if half.abs() < 1e-12 {
                    1.0
                } else {
                    half.sin() / half
                };
                ws.push(s * s);
            }
            (ks, ws)
        };
        let (kx, wx) = make(dims.nx);
        let (ky, wy) = make(dims.ny);
        let (kz, wz) = make(dims.nz);
        Self {
            dims,
            fft,
            config,
            k_tab: [kx, ky, kz],
            w_tab: [wx, wy, wz],
        }
    }

    /// The grid dimensions.
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Transforms the source, applies the Green's function and filters, and
    /// returns the spectral-space potential `φ̂`.
    ///
    /// The Green's-function sweep parallelizes over `i`-planes (each
    /// spectral element is written exactly once, so the result is
    /// trivially independent of thread count).
    fn solve_spectrum(&self, source: &[f64]) -> Vec<Complex> {
        assert_eq!(source.len(), self.dims.len(), "source grid size mismatch");
        let mut spec = self.fft.forward_real(source);
        let d = self.dims;
        spec.par_chunks_mut(d.ny * d.nz)
            .zip(0..d.nx)
            .for_each(|(plane, i)| {
                let kx = self.k_tab[0][i];
                for j in 0..d.ny {
                    let ky = self.k_tab[1][j];
                    for k in 0..d.nz {
                        let kz = self.k_tab[2][k];
                        let idx = j * d.nz + k;
                        let k2 = kx * kx + ky * ky + kz * kz;
                        if k2 == 0.0 {
                            // Zero mode: mean source has no potential (Jeans swindle).
                            plane[idx] = hacc_fft::complex::ZERO;
                            continue;
                        }
                        let mut green = -1.0 / k2;
                        if self.config.deconvolve_cic {
                            let w = self.w_tab[0][i] * self.w_tab[1][j] * self.w_tab[2][k];
                            // Window applied in deposit *and* interpolation.
                            green /= w * w;
                        }
                        if let Some(split) = self.config.split {
                            green *= split.filter_k(k2.sqrt());
                        }
                        plane[idx] = plane[idx].scale(green);
                    }
                }
            });
        spec
    }

    /// Solves `∇²φ = source` and returns the real-space potential.
    pub fn potential(&self, source: &[f64]) -> Vec<f64> {
        let spec = self.solve_spectrum(source);
        self.fft.inverse_to_real(&spec)
    }

    /// Solves for the force field `F = −∇φ`, returning the three component
    /// grids. Uses spectral differentiation (`F̂_c = −i k_c φ̂`).
    pub fn force(&self, source: &[f64]) -> [Vec<f64>; 3] {
        let spec = self.solve_spectrum(source);
        let d = self.dims;
        let mut out: [Vec<f64>; 3] = std::array::from_fn(|_| Vec::new());
        for (axis, out_c) in out.iter_mut().enumerate() {
            let mut comp = spec.clone();
            // Spectral differentiation per i-plane (write-once per element,
            // so parallelism cannot change any bit).
            comp.par_chunks_mut(d.ny * d.nz)
                .zip(0..d.nx)
                .for_each(|(plane, i)| {
                    for j in 0..d.ny {
                        for k in 0..d.nz {
                            let kc = match axis {
                                0 => self.k_tab[0][i],
                                1 => self.k_tab[1][j],
                                _ => self.k_tab[2][k],
                            };
                            let idx = j * d.nz + k;
                            // F̂ = −i k φ̂.
                            plane[idx] = plane[idx].mul_neg_i().scale(kc);
                        }
                    }
                });
            let mut grid = comp;
            self.fft.process(&mut grid, Direction::Inverse);
            *out_c = grid.into_iter().map(|z| z.re).collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_wave_source(dims: Dims, m: [i64; 3]) -> (Vec<f64>, f64) {
        // source(x) = cos(k·x) with k = 2π m / n; ∇²φ = source ⇒
        // φ = −cos(k·x)/|k|².
        let mut src = vec![0.0; dims.len()];
        let k = [
            2.0 * PI * m[0] as f64 / dims.nx as f64,
            2.0 * PI * m[1] as f64 / dims.ny as f64,
            2.0 * PI * m[2] as f64 / dims.nz as f64,
        ];
        let k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
        for f in 0..dims.len() {
            let (i, j, l) = dims.coords(f);
            src[f] = (k[0] * i as f64 + k[1] * j as f64 + k[2] * l as f64).cos();
        }
        (src, k2)
    }

    #[test]
    fn plane_wave_potential_is_analytic() {
        let dims = Dims::cube(16);
        let solver = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: false,
                split: None,
            },
        );
        let (src, k2) = plane_wave_source(dims, [2, 0, 1]);
        let phi = solver.potential(&src);
        for f in 0..dims.len() {
            let want = -src[f] / k2;
            assert!(
                (phi[f] - want).abs() < 1e-10,
                "cell {f}: {} vs {want}",
                phi[f]
            );
        }
    }

    #[test]
    fn force_is_negative_gradient() {
        let dims = Dims::cube(16);
        let solver = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: false,
                split: None,
            },
        );
        let (src, k2) = plane_wave_source(dims, [0, 3, 0]);
        let force = solver.force(&src);
        let ky = 2.0 * PI * 3.0 / 16.0;
        for f in 0..dims.len() {
            let (_, j, _) = dims.coords(f);
            // φ = −cos(ky·y)/k², F_y = −∂φ/∂y = −sin(ky·y)·ky/k².
            let want = -(ky * j as f64).sin() * ky / k2;
            assert!((force[1][f] - want).abs() < 1e-10);
            assert!(force[0][f].abs() < 1e-10 && force[2][f].abs() < 1e-10);
        }
    }

    #[test]
    fn zero_mode_is_removed() {
        let dims = Dims::cube(8);
        let solver = PoissonSolver::new(dims, PoissonConfig::default());
        let src = vec![5.0; dims.len()]; // pure DC source
        let phi = solver.potential(&src);
        for v in phi {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn splitting_filter_suppresses_small_scales() {
        let dims = Dims::cube(16);
        let unsplit = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: false,
                split: None,
            },
        );
        let split = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: false,
                split: Some(ForceSplit::new(1.2, 4.0)),
            },
        );
        // High-frequency mode: strongly suppressed. Low-frequency: barely.
        let (hi, _) = plane_wave_source(dims, [6, 0, 0]);
        let (lo, _) = plane_wave_source(dims, [1, 0, 0]);
        let amp = |phi: &[f64]| phi.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let hi_ratio = amp(&split.potential(&hi)) / amp(&unsplit.potential(&hi));
        let lo_ratio = amp(&split.potential(&lo)) / amp(&unsplit.potential(&lo));
        assert!(hi_ratio < 0.05, "high-k ratio {hi_ratio}");
        assert!(lo_ratio > 0.8, "low-k ratio {lo_ratio}");
    }

    #[test]
    fn cic_deconvolution_boosts_high_k() {
        let dims = Dims::cube(16);
        let plain = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: false,
                split: None,
            },
        );
        let decon = PoissonSolver::new(
            dims,
            PoissonConfig {
                deconvolve_cic: true,
                split: None,
            },
        );
        let (src, _) = plane_wave_source(dims, [5, 0, 0]);
        let amp = |phi: &[f64]| phi.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(amp(&decon.potential(&src)) > amp(&plain.potential(&src)) * 1.05);
    }
}
