//! Cloud-in-cell (CIC) mass deposit and force interpolation on a periodic
//! grid — the particle↔mesh transfer operators of HACC's long-range solver.

use hacc_fft::Dims;
use rayon::prelude::*;

/// Periodic wrap of a (possibly negative) cell index.
#[inline]
fn wrap(i: i64, n: usize) -> usize {
    let n = n as i64;
    (((i % n) + n) % n) as usize
}

/// The 8 cells and weights touched by a particle at grid-unit position
/// `(x, y, z)` (positions are in units of cells, periodic in `[0, n)`).
#[inline]
fn cic_stencil(dims: Dims, x: f64, y: f64, z: f64) -> [(usize, f64); 8] {
    let (i0, fx) = split(x);
    let (j0, fy) = split(y);
    let (k0, fz) = split(z);
    let i1 = wrap(i0 + 1, dims.nx);
    let j1 = wrap(j0 + 1, dims.ny);
    let k1 = wrap(k0 + 1, dims.nz);
    let i0 = wrap(i0, dims.nx);
    let j0 = wrap(j0, dims.ny);
    let k0 = wrap(k0, dims.nz);
    let (gx, gy, gz) = (1.0 - fx, 1.0 - fy, 1.0 - fz);
    [
        (dims.idx(i0, j0, k0), gx * gy * gz),
        (dims.idx(i1, j0, k0), fx * gy * gz),
        (dims.idx(i0, j1, k0), gx * fy * gz),
        (dims.idx(i1, j1, k0), fx * fy * gz),
        (dims.idx(i0, j0, k1), gx * gy * fz),
        (dims.idx(i1, j0, k1), fx * gy * fz),
        (dims.idx(i0, j1, k1), gx * fy * fz),
        (dims.idx(i1, j1, k1), fx * fy * fz),
    ]
}

#[inline]
fn split(x: f64) -> (i64, f64) {
    let f = x.floor();
    (f as i64, x - f)
}

/// Deposits particle masses onto the grid with CIC weights.
///
/// `positions` are in grid units (cells); the grid is cleared first.
/// Two-pass deterministic parallel deposit: the stencil computation
/// (cells + mass-premultiplied weights, `m * w` — the exact product the
/// serial loop forms) fans out across threads, then a serial scatter in
/// particle order accumulates them. Because the scatter replays the same
/// f64 additions in the same order as a fully serial deposit, the grid is
/// bitwise reproducible at any thread count.
pub fn deposit(dims: Dims, positions: &[[f64; 3]], masses: &[f64], grid: &mut [f64]) {
    assert_eq!(grid.len(), dims.len(), "grid size mismatch");
    assert_eq!(
        positions.len(),
        masses.len(),
        "positions/masses length mismatch"
    );
    grid.fill(0.0);
    let stencils: Vec<[(usize, f64); 8]> = positions
        .par_iter()
        .zip(masses.par_iter())
        .map(|(p, &m)| {
            let mut st = cic_stencil(dims, p[0], p[1], p[2]);
            for e in &mut st {
                e.1 *= m;
            }
            st
        })
        .collect();
    for st in &stencils {
        for &(idx, mw) in st {
            grid[idx] += mw;
        }
    }
}

/// Interpolates a grid-sampled scalar field to particle positions with the
/// same CIC weights used for deposit (ensuring no self-force at the mesh
/// level).
pub fn interpolate(dims: Dims, grid: &[f64], positions: &[[f64; 3]], out: &mut [f64]) {
    assert_eq!(grid.len(), dims.len());
    assert_eq!(positions.len(), out.len());
    positions
        .par_iter()
        .zip(out.par_iter_mut())
        .for_each(|(p, o)| {
            let mut acc = 0.0;
            for (idx, w) in cic_stencil(dims, p[0], p[1], p[2]) {
                acc += grid[idx] * w;
            }
            *o = acc;
        });
}

/// Interpolates a 3-component field (e.g. the mesh force) to particles.
pub fn interpolate_vec3(
    dims: Dims,
    fields: [&[f64]; 3],
    positions: &[[f64; 3]],
    out: &mut [[f64; 3]],
) {
    for f in fields {
        assert_eq!(f.len(), dims.len());
    }
    assert_eq!(positions.len(), out.len());
    positions
        .par_iter()
        .zip(out.par_iter_mut())
        .for_each(|(p, o)| {
            let mut acc = [0.0f64; 3];
            for (idx, w) in cic_stencil(dims, p[0], p[1], p[2]) {
                for c in 0..3 {
                    acc[c] += fields[c][idx] * w;
                }
            }
            *o = acc;
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_conserves_mass() {
        let dims = Dims::cube(8);
        let pos = vec![[0.3, 7.9, 4.5], [2.0, 2.0, 2.0], [6.7, 0.1, 3.3]];
        let m = vec![1.5, 2.0, 0.25];
        let mut grid = vec![0.0; dims.len()];
        deposit(dims, &pos, &m, &mut grid);
        let total: f64 = grid.iter().sum();
        let want: f64 = m.iter().sum();
        assert!((total - want).abs() < 1e-12);
    }

    #[test]
    fn particle_at_cell_center_hits_single_cell() {
        let dims = Dims::cube(4);
        let mut grid = vec![0.0; dims.len()];
        deposit(dims, &[[1.0, 2.0, 3.0]], &[1.0], &mut grid);
        assert!((grid[dims.idx(1, 2, 3)] - 1.0).abs() < 1e-15);
        assert!(grid.iter().filter(|&&v| v != 0.0).count() == 1);
    }

    #[test]
    fn deposit_wraps_periodically() {
        let dims = Dims::cube(4);
        let mut grid = vec![0.0; dims.len()];
        // At x = 3.5, half the mass wraps to cell 0.
        deposit(dims, &[[3.5, 0.0, 0.0]], &[2.0], &mut grid);
        assert!((grid[dims.idx(3, 0, 0)] - 1.0).abs() < 1e-12);
        assert!((grid[dims.idx(0, 0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_of_constant_field_is_exact() {
        let dims = Dims::cube(6);
        let grid = vec![3.25; dims.len()];
        let pos = vec![[0.1, 4.7, 2.9], [5.99, 0.01, 3.0]];
        let mut out = vec![0.0; 2];
        interpolate(dims, &grid, &pos, &mut out);
        for v in out {
            assert!((v - 3.25).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_of_linear_field_is_exact_between_nodes() {
        // CIC is trilinear, so a field linear in x is reproduced exactly
        // away from the periodic seam.
        let dims = Dims::cube(8);
        let mut grid = vec![0.0; dims.len()];
        for f in 0..dims.len() {
            let (i, _, _) = dims.coords(f);
            grid[f] = 2.0 * i as f64 + 1.0;
        }
        let pos = vec![[2.25, 3.0, 3.0], [5.75, 1.0, 6.0]];
        let mut out = vec![0.0; 2];
        interpolate(dims, &grid, &pos, &mut out);
        assert!((out[0] - (2.0 * 2.25 + 1.0)).abs() < 1e-12);
        assert!((out[1] - (2.0 * 5.75 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn deposit_interpolate_adjoint_identity() {
        // <deposit(p, m), g> == <m, interpolate(g, p)> — CIC deposit and
        // interpolation are adjoint operators.
        let dims = Dims::cube(5);
        let pos = vec![[0.4, 1.9, 4.4], [3.2, 3.2, 0.6]];
        let mass = vec![1.0, 2.5];
        let mut grid = vec![0.0; dims.len()];
        deposit(dims, &pos, &mass, &mut grid);
        let g: Vec<f64> = (0..dims.len())
            .map(|f| ((f * 31 % 17) as f64) - 8.0)
            .collect();
        let lhs: f64 = grid.iter().zip(&g).map(|(a, b)| a * b).sum();
        let mut interp = vec![0.0; 2];
        interpolate(dims, &g, &pos, &mut interp);
        let rhs: f64 = mass.iter().zip(&interp).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10);
    }
}
