//! Second-order Lagrangian perturbation theory (2LPT) initial conditions.
//!
//! Zel'dovich (1LPT) starts carry transients that decay only as 1/a;
//! production N-body initial-condition generators (including those used
//! for HACC runs) add the second-order displacement
//!
//! ```text
//!   ∇²φ⁽²⁾ = − Σ_{i<j} [ φ⁽¹⁾,ii φ⁽¹⁾,jj − (φ⁽¹⁾,ij)² ]
//!   x = q + D₁ ∇φ⁽¹⁾ + D₂ ∇φ⁽²⁾,      D₂ ≈ −(3/7) D₁²
//! ```
//!
//! where `φ⁽¹⁾` is the first-order displacement potential
//! (`∇²φ⁽¹⁾ = −δ`). All derivatives are evaluated spectrally.

use crate::zeldovich::GaussianField;
use hacc_fft::{complex::ZERO, freq_index, Complex, Dims, Direction, Fft3d};
use std::f64::consts::PI;

/// Wavenumber of axis component `c` at grid index, in physical units.
fn k_of(dims: Dims, box_size: f64, idx: (usize, usize, usize), c: usize) -> f64 {
    let kf = 2.0 * PI / box_size;
    match c {
        0 => kf * freq_index(idx.0, dims.nx) as f64,
        1 => kf * freq_index(idx.1, dims.ny) as f64,
        _ => kf * freq_index(idx.2, dims.nz) as f64,
    }
}

/// Computes the spectral second derivative `φ,cd` of a potential whose
/// Laplacian is `src_spec` (i.e. `φ̂ = −ŝ/k²`), returned in real space.
fn potential_second_derivative(
    dims: Dims,
    box_size: f64,
    src_spec: &[Complex],
    c: usize,
    d: usize,
) -> Vec<f64> {
    let fft = Fft3d::new(dims);
    let mut spec = vec![ZERO; dims.len()];
    for f in 0..dims.len() {
        let idx = dims.coords(f);
        let kc = k_of(dims, box_size, idx, c);
        let kd = k_of(dims, box_size, idx, d);
        let k2 = (0..3)
            .map(|a| {
                let k = k_of(dims, box_size, idx, a);
                k * k
            })
            .sum::<f64>();
        if k2 == 0.0 {
            continue;
        }
        // φ̂ = −ŝ/k²; (φ,cd)^ = −k_c k_d φ̂ = k_c k_d ŝ / k².
        spec[f] = src_spec[f].scale(kc * kd / k2);
    }
    fft.inverse_to_real(&spec)
}

/// The 2LPT displacement fields: first- and second-order components per
/// axis, in the same length units as the box.
pub struct Lpt2Displacements {
    /// First-order (Zel'dovich) displacement ψ⁽¹⁾.
    pub psi1: [Vec<f64>; 3],
    /// Second-order displacement ψ⁽²⁾ (to be scaled by `−3/7 D₁²`).
    pub psi2: [Vec<f64>; 3],
}

/// Derives both displacement orders from a density realization.
pub fn lpt2_displacements(field: &GaussianField) -> Lpt2Displacements {
    let dims = field.dims;
    let box_size = field.box_size;
    let fft = Fft3d::new(dims);
    let delta_spec = fft.forward_real(&field.delta);

    // First order from the existing machinery.
    let psi1 = field.displacement();

    // Second-order source: Σ_{i<j} [φ,ii φ,jj − (φ,ij)²] with ∇²φ = −δ,
    // so the potential's Laplacian source is −δ.
    let neg_delta: Vec<Complex> = delta_spec.iter().map(|z| z.scale(-1.0)).collect();
    let dxx = potential_second_derivative(dims, box_size, &neg_delta, 0, 0);
    let dyy = potential_second_derivative(dims, box_size, &neg_delta, 1, 1);
    let dzz = potential_second_derivative(dims, box_size, &neg_delta, 2, 2);
    let dxy = potential_second_derivative(dims, box_size, &neg_delta, 0, 1);
    let dxz = potential_second_derivative(dims, box_size, &neg_delta, 0, 2);
    let dyz = potential_second_derivative(dims, box_size, &neg_delta, 1, 2);
    let mut src2 = vec![0.0; dims.len()];
    for f in 0..dims.len() {
        src2[f] = dxx[f] * dyy[f] + dxx[f] * dzz[f] + dyy[f] * dzz[f]
            - dxy[f] * dxy[f]
            - dxz[f] * dxz[f]
            - dyz[f] * dyz[f];
    }
    // ψ⁽²⁾ = ∇∇⁻² src2: same gradient-of-inverse-Laplacian as 1LPT.
    let src2_spec = fft.forward_real(&src2);
    let psi2 = std::array::from_fn(|axis| {
        let mut comp = src2_spec.clone();
        for f in 0..dims.len() {
            let idx = dims.coords(f);
            let kc = k_of(dims, box_size, idx, axis);
            let k2 = (0..3)
                .map(|a| {
                    let k = k_of(dims, box_size, idx, a);
                    k * k
                })
                .sum::<f64>();
            if k2 == 0.0 {
                comp[f] = ZERO;
                continue;
            }
            comp[f] = comp[f].mul_i().scale(kc / k2);
        }
        let mut grid = comp;
        fft.process(&mut grid, Direction::Inverse);
        grid.into_iter().map(|z| z.re).collect()
    });
    Lpt2Displacements { psi1, psi2 }
}

/// The standard ΛCDM approximation `D₂ ≈ −(3/7) D₁² Ωₘ(a)^{−1/143}`; the
/// tiny Ω correction is dropped (sub-percent at the starting epochs used
/// here).
pub fn d2_of_d1(d1: f64) -> f64 {
    -3.0 / 7.0 * d1 * d1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> GaussianField {
        GaussianField::generate(
            Dims::cube(16),
            32.0,
            |k| 50.0 * (-(k / 0.3) * (k / 0.3)).exp(),
            9,
        )
    }

    #[test]
    fn first_order_matches_zeldovich_machinery() {
        let f = field();
        let lpt = lpt2_displacements(&f);
        let direct = f.displacement();
        for c in 0..3 {
            for (a, b) in lpt.psi1[c].iter().zip(&direct[c]) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn second_order_is_quadratically_small() {
        // For a linear-amplitude field, |ψ²| ≪ |ψ¹| and the ratio scales
        // with the field amplitude.
        let f = field();
        let lpt = lpt2_displacements(&f);
        let rms = |v: &Vec<f64>| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        let r1 = rms(&lpt.psi1[0]);
        let r2 = rms(&lpt.psi2[0]);
        assert!(r1 > 0.0 && r2 > 0.0);
        assert!(r2 < r1, "second order must be subdominant: {r2} vs {r1}");
    }

    #[test]
    fn second_order_scales_quadratically_with_amplitude() {
        let f1 = GaussianField::generate(
            Dims::cube(16),
            32.0,
            |k| 10.0 * (-(k / 0.3) * (k / 0.3)).exp(),
            4,
        );
        let f2 = GaussianField::generate(
            Dims::cube(16),
            32.0,
            |k| 40.0 * (-(k / 0.3) * (k / 0.3)).exp(), // 4× power = 2× amplitude
            4,
        );
        let l1 = lpt2_displacements(&f1);
        let l2 = lpt2_displacements(&f2);
        let rms = |v: &Vec<f64>| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        let ratio1 = rms(&l2.psi1[0]) / rms(&l1.psi1[0]);
        let ratio2 = rms(&l2.psi2[0]) / rms(&l1.psi2[0]);
        assert!(
            (ratio1 - 2.0).abs() < 1e-6,
            "first order is linear: {ratio1}"
        );
        assert!(
            (ratio2 - 4.0).abs() < 1e-6,
            "second order is quadratic: {ratio2}"
        );
    }

    #[test]
    fn second_order_field_is_curl_free() {
        // ψ² = ∇(…) must have vanishing curl (checked spectrally through
        // central differences on the smooth field).
        let f = field();
        let lpt = lpt2_displacements(&f);
        let dims = Dims::cube(16);
        let h = 32.0 / 16.0;
        let n = 16usize;
        let mut worst = 0.0f64;
        let mut scale = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    // curl_z = ∂ψy/∂x − ∂ψx/∂y.
                    let ip = dims.idx((i + 1) % n, j, k);
                    let im = dims.idx((i + n - 1) % n, j, k);
                    let jp = dims.idx(i, (j + 1) % n, k);
                    let jm = dims.idx(i, (j + n - 1) % n, k);
                    let curl_z =
                        (lpt.psi2[1][ip] - lpt.psi2[1][im] - (lpt.psi2[0][jp] - lpt.psi2[0][jm]))
                            / (2.0 * h);
                    worst = worst.max(curl_z.abs());
                    let grad = (lpt.psi2[0][ip] - lpt.psi2[0][im]).abs() / (2.0 * h);
                    scale = scale.max(grad);
                }
            }
        }
        // ψ² is a product of first-order fields, so its spectrum reaches
        // 2× the input band; the O(h²) stencil therefore carries a few
        // percent of truncation error even though the construction is
        // exactly curl-free in spectral space.
        assert!(
            worst < 0.1 * scale.max(1e-12),
            "curl {worst} should vanish against gradient scale {scale}"
        );
    }

    #[test]
    fn d2_coefficient() {
        assert!((d2_of_d1(1.0) + 3.0 / 7.0).abs() < 1e-15);
        assert!((d2_of_d1(0.5) + 3.0 / 28.0).abs() < 1e-15);
    }
}
