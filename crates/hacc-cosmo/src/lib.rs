#![warn(missing_docs)]
//! # hacc-cosmo
//!
//! Background cosmology for the CRK-HACC reproduction: parameter sets,
//! Friedmann expansion and the kick/drift integrals used by the symplectic
//! stepper, the linear growth factor, the Eisenstein–Hu linear matter power
//! spectrum (for Zel'dovich initial conditions), and the HACC unit system.

pub mod friedmann;
pub mod growth;
pub mod params;
pub mod power;
pub mod quad;
pub mod units;

pub use friedmann::Friedmann;
pub use growth::Growth;
pub use params::{a_to_z, z_to_a, CosmoParams};
pub use power::LinearPower;
pub use units::{device_bytes_per_rank, BoxSpec, G_MPC_KMS, RHO_CRIT};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// E(a) is positive and monotone decreasing in a for standard params.
        #[test]
        fn expansion_rate_decreases(a in 0.01f64..1.0) {
            let f = Friedmann::new(CosmoParams::planck2018());
            prop_assert!(f.e_of_a(a) > 0.0);
            prop_assert!(f.e_of_a(a) >= f.e_of_a((a + 0.001).min(1.0)) - 1e-12);
        }

        /// Drift and kick integrals are non-negative and additive.
        #[test]
        fn integrals_additive(a1 in 0.01f64..0.5, da in 0.01f64..0.4, split in 0.1f64..0.9) {
            let f = Friedmann::new(CosmoParams::planck2018());
            let a2 = a1 + da;
            let am = a1 + split * da;
            let whole = f.drift_factor(a1, a2);
            let parts = f.drift_factor(a1, am) + f.drift_factor(am, a2);
            prop_assert!(whole >= 0.0);
            prop_assert!((whole - parts).abs() < 1e-8 * whole.max(1.0));
        }

        /// The growth factor lies in (0, 1] for a ≤ 1 and is monotone.
        #[test]
        fn growth_bounds(a in 0.02f64..1.0) {
            let g = Growth::new(CosmoParams::planck2018());
            let d = g.d_of_a(a);
            prop_assert!(d > 0.0 && d <= 1.0 + 1e-12);
            prop_assert!(g.d_of_a((a + 0.01).min(1.0)) + 1e-12 >= d);
        }

        /// Transfer function is bounded in (0, 1] for all k.
        #[test]
        fn transfer_bounds(logk in -4.0f64..2.0) {
            let p = LinearPower::new(CosmoParams::planck2018());
            let t = p.transfer(10f64.powf(logk));
            prop_assert!(t > 0.0 && t <= 1.0 + 1e-6);
        }
    }
}
