//! Cosmological parameter sets.

use serde::{Deserialize, Serialize};

/// Flat ΛCDM (+ optional radiation) background parameters.
///
/// Units follow the HACC convention: lengths in comoving Mpc/h, masses in
/// Msun/h, and the Hubble parameter expressed through the dimensionless `h`
/// (`H0 = 100 h km/s/Mpc`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CosmoParams {
    /// Total matter density fraction today (CDM + baryons), Ωₘ.
    pub omega_m: f64,
    /// Baryon density fraction today, Ω_b.
    pub omega_b: f64,
    /// Dark-energy density fraction today, Ω_Λ.
    pub omega_l: f64,
    /// Radiation density fraction today, Ω_r (usually negligible but kept
    /// for early-universe accuracy; the test problem starts at z = 200).
    pub omega_r: f64,
    /// Dimensionless Hubble parameter h.
    pub h: f64,
    /// Scalar spectral index n_s of the primordial power spectrum.
    pub n_s: f64,
    /// σ₈ normalization of the linear matter power spectrum at z = 0.
    pub sigma8: f64,
    /// CMB temperature in units of 2.7 K (Eisenstein–Hu Θ₂.₇).
    pub theta_cmb: f64,
}

impl CosmoParams {
    /// The parameters used by HACC's ECP/ExaSky FOM configurations
    /// (Planck-2018-like flat ΛCDM).
    pub fn planck2018() -> Self {
        Self {
            omega_m: 0.31,
            omega_b: 0.049,
            omega_l: 0.69,
            omega_r: 8.6e-5,
            h: 0.6766,
            n_s: 0.9665,
            sigma8: 0.8102,
            theta_cmb: 2.7255 / 2.7,
        }
    }

    /// An Einstein–de Sitter universe (Ωₘ = 1), handy for analytic checks:
    /// the growth factor is exactly `D(a) = a`.
    pub fn einstein_de_sitter() -> Self {
        Self {
            omega_m: 1.0,
            omega_b: 0.05,
            omega_l: 0.0,
            omega_r: 0.0,
            h: 0.7,
            n_s: 1.0,
            sigma8: 0.8,
            theta_cmb: 1.0,
        }
    }

    /// Curvature fraction Ω_k = 1 − Ωₘ − Ω_Λ − Ω_r.
    #[inline]
    pub fn omega_k(&self) -> f64 {
        1.0 - self.omega_m - self.omega_l - self.omega_r
    }

    /// CDM-only density fraction Ω_c = Ωₘ − Ω_b.
    #[inline]
    pub fn omega_c(&self) -> f64 {
        self.omega_m - self.omega_b
    }

    /// Sanity-checks the parameter set, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.omega_m > 0.0) {
            return Err(format!("omega_m must be positive, got {}", self.omega_m));
        }
        if self.omega_b < 0.0 || self.omega_b > self.omega_m {
            return Err(format!(
                "omega_b must lie in [0, omega_m], got {} (omega_m = {})",
                self.omega_b, self.omega_m
            ));
        }
        if self.omega_l < 0.0 || self.omega_r < 0.0 {
            return Err("density fractions must be non-negative".into());
        }
        if !(self.h > 0.2 && self.h < 1.5) {
            return Err(format!(
                "h = {} is outside the plausible range (0.2, 1.5)",
                self.h
            ));
        }
        if !(self.sigma8 > 0.0) {
            return Err("sigma8 must be positive".into());
        }
        Ok(())
    }
}

impl Default for CosmoParams {
    fn default() -> Self {
        Self::planck2018()
    }
}

/// Converts redshift to scale factor, `a = 1/(1+z)`.
#[inline]
pub fn z_to_a(z: f64) -> f64 {
    1.0 / (1.0 + z)
}

/// Converts scale factor to redshift, `z = 1/a − 1`.
#[inline]
pub fn a_to_z(a: f64) -> f64 {
    1.0 / a - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planck_parameters_are_flat_and_valid() {
        let p = CosmoParams::planck2018();
        p.validate().unwrap();
        assert!(p.omega_k().abs() < 1e-3);
    }

    #[test]
    fn eds_parameters_are_valid() {
        CosmoParams::einstein_de_sitter().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = CosmoParams::planck2018();
        p.omega_b = 0.5; // > omega_m
        assert!(p.validate().is_err());
        p = CosmoParams::planck2018();
        p.h = 3.0;
        assert!(p.validate().is_err());
        p = CosmoParams::planck2018();
        p.omega_m = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn redshift_scale_factor_round_trip() {
        for z in [0.0, 0.5, 1.0, 50.0, 200.0] {
            assert!((a_to_z(z_to_a(z)) - z).abs() < 1e-12);
        }
    }
}
