//! Linear growth of matter perturbations.
//!
//! For a universe containing only matter and a cosmological constant the
//! growing mode has the closed-form quadrature solution
//!
//! ```text
//!   D(a) ∝ E(a) ∫₀ᵃ da' / (a' E(a'))³
//! ```
//!
//! which this module evaluates numerically and normalizes to `D(1) = 1`.
//! Radiation is ignored in the growth calculation (the standard
//! approximation for setting initial conditions of matter-only N-body runs;
//! at `z = 200` the radiation correction to D is sub-percent).

use crate::friedmann::Friedmann;
use crate::params::CosmoParams;
use crate::quad::simpson_adaptive;

/// Linear growth-factor calculator.
#[derive(Clone, Copy, Debug)]
pub struct Growth {
    fr: Friedmann,
    /// Unnormalized D at a = 1, cached so `d_of_a` is a single quadrature.
    d1: f64,
}

impl Growth {
    /// Builds the growth model for a parameter set.
    pub fn new(params: CosmoParams) -> Self {
        let fr = Friedmann::new(params);
        let mut g = Self { fr, d1: 1.0 };
        g.d1 = g.d_unnormalized(1.0);
        g
    }

    /// The expansion model used internally.
    #[inline]
    pub fn friedmann(&self) -> &Friedmann {
        &self.fr
    }

    fn growth_e(&self, a: f64) -> f64 {
        // E(a) without radiation, for the quadrature growth solution.
        let p = self.fr.params();
        let inv_a = 1.0 / a;
        (p.omega_m * inv_a * inv_a * inv_a + p.omega_k() * inv_a * inv_a + p.omega_l).sqrt()
    }

    fn d_unnormalized(&self, a: f64) -> f64 {
        // The integrand diverges as a'^-3 E^-3 → a'^{3/2}·const near 0 for
        // matter domination, so it is integrable; start from a tiny floor.
        let lo = 1e-8;
        let integral = simpson_adaptive(
            |x| {
                let xe = x * self.growth_e(x);
                1.0 / (xe * xe * xe)
            },
            lo,
            a,
            1e-10,
        );
        self.growth_e(a) * integral
    }

    /// Growth factor normalized so that `D(1) = 1`.
    pub fn d_of_a(&self, a: f64) -> f64 {
        assert!(a > 0.0, "scale factor must be positive");
        self.d_unnormalized(a) / self.d1
    }

    /// Growth factor at redshift `z`.
    pub fn d_of_z(&self, z: f64) -> f64 {
        self.d_of_a(1.0 / (1.0 + z))
    }

    /// Logarithmic growth rate `f = d ln D / d ln a`, computed by central
    /// differencing of the quadrature solution.
    pub fn growth_rate(&self, a: f64) -> f64 {
        assert!(a > 0.0);
        let h = 1e-4 * a;
        let dp = self.d_unnormalized(a + h);
        let dm = self.d_unnormalized(a - h);
        let d0 = self.d_unnormalized(a);
        a * (dp - dm) / (2.0 * h) / d0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eds_growth_is_linear_in_a() {
        let g = Growth::new(CosmoParams::einstein_de_sitter());
        for a in [0.01, 0.1, 0.5, 1.0] {
            assert!(
                (g.d_of_a(a) - a).abs() < 1e-4 * a,
                "D({a}) = {} should equal a in EdS",
                g.d_of_a(a)
            );
        }
    }

    #[test]
    fn eds_growth_rate_is_unity() {
        let g = Growth::new(CosmoParams::einstein_de_sitter());
        for a in [0.05, 0.3, 1.0] {
            assert!(
                (g.growth_rate(a) - 1.0).abs() < 1e-4,
                "f({a}) = {}",
                g.growth_rate(a)
            );
        }
    }

    #[test]
    fn lcdm_growth_is_suppressed_at_late_times() {
        // In ΛCDM growth is slower than EdS at low redshift: D(a) < a for a<1
        // normalized at 1... actually D(a)/a increases toward the past, so
        // D(0.5) > 0.5 when normalized to D(1)=1.
        let g = Growth::new(CosmoParams::planck2018());
        assert!((g.d_of_a(1.0) - 1.0).abs() < 1e-12);
        let d_half = g.d_of_a(0.5);
        assert!(d_half > 0.5 && d_half < 0.7, "D(0.5) = {d_half}");
    }

    #[test]
    fn growth_is_monotone_increasing() {
        let g = Growth::new(CosmoParams::planck2018());
        let mut prev = 0.0;
        for i in 1..=20 {
            let a = i as f64 / 20.0;
            let d = g.d_of_a(a);
            assert!(d > prev, "D must increase with a");
            prev = d;
        }
    }

    #[test]
    fn growth_rate_matches_omega_m_power_approximation() {
        // f(a) ≈ Ωm(a)^0.55 is accurate to ~1% for ΛCDM.
        let g = Growth::new(CosmoParams::planck2018());
        for a in [0.3, 0.6, 1.0] {
            let f = g.growth_rate(a);
            let p = g.friedmann().params();
            let inv_a3 = 1.0 / (a * a * a);
            let e2 = p.omega_m * inv_a3 + p.omega_l;
            let approx = (p.omega_m * inv_a3 / e2).powf(0.55);
            assert!((f - approx).abs() < 0.02, "a={a}: f={f} vs approx={approx}");
        }
    }

    #[test]
    fn high_redshift_growth_matches_matter_domination() {
        // At z=200 ΛCDM is effectively EdS: D ∝ a to high accuracy.
        let g = Growth::new(CosmoParams::planck2018());
        let r = g.d_of_a(1.0 / 201.0) / g.d_of_a(1.0 / 101.0);
        let expect = 101.0 / 201.0;
        assert!((r / expect - 1.0).abs() < 5e-3, "ratio {r} vs {expect}");
    }
}
