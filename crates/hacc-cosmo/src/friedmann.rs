//! Friedmann background expansion and the time-step integrals used by the
//! symplectic kick–drift–kick stepper.
//!
//! HACC integrates particle trajectories in comoving coordinates with the
//! scale factor `a` as the time variable. The drift and kick updates then
//! need the integrals
//!
//! ```text
//!   drift(a₁→a₂) = ∫ da / (a³ E(a))          (position update weight)
//!   kick (a₁→a₂) = ∫ da / (a² E(a))          (velocity update weight)
//! ```
//!
//! in units of `1/H0`, where `E(a) = H(a)/H0`.

use crate::params::CosmoParams;
use crate::quad::simpson_adaptive;

/// Background expansion model for a parameter set.
#[derive(Clone, Copy, Debug)]
pub struct Friedmann {
    params: CosmoParams,
}

impl Friedmann {
    /// Builds the expansion model, validating the parameters.
    pub fn new(params: CosmoParams) -> Self {
        params.validate().expect("invalid cosmological parameters");
        Self { params }
    }

    /// The underlying parameter set.
    #[inline]
    pub fn params(&self) -> &CosmoParams {
        &self.params
    }

    /// Dimensionless Hubble rate `E(a) = H(a)/H0`.
    #[inline]
    pub fn e_of_a(&self, a: f64) -> f64 {
        self.e2_of_a(a).sqrt()
    }

    /// `E²(a) = Ωᵣ a⁻⁴ + Ωₘ a⁻³ + Ω_k a⁻² + Ω_Λ`.
    #[inline]
    pub fn e2_of_a(&self, a: f64) -> f64 {
        debug_assert!(a > 0.0, "scale factor must be positive");
        let p = &self.params;
        let inv_a = 1.0 / a;
        let inv_a2 = inv_a * inv_a;
        p.omega_r * inv_a2 * inv_a2 + p.omega_m * inv_a2 * inv_a + p.omega_k() * inv_a2 + p.omega_l
    }

    /// Matter density fraction at scale factor `a`:
    /// `Ωₘ(a) = Ωₘ a⁻³ / E²(a)`.
    #[inline]
    pub fn omega_m_of_a(&self, a: f64) -> f64 {
        self.params.omega_m / (a * a * a * self.e2_of_a(a))
    }

    /// Drift integral `∫_{a₁}^{a₂} da / (a³ E(a))` in units of `1/H0`.
    ///
    /// Weights the comoving position update `x += v · drift`.
    pub fn drift_factor(&self, a1: f64, a2: f64) -> f64 {
        assert!(a1 > 0.0 && a2 >= a1, "drift requires 0 < a1 <= a2");
        simpson_adaptive(|a| 1.0 / (a * a * a * self.e_of_a(a)), a1, a2, 1e-10)
    }

    /// Kick integral `∫_{a₁}^{a₂} da / (a² E(a))` in units of `1/H0`.
    ///
    /// Weights the velocity update `v += g · kick`.
    pub fn kick_factor(&self, a1: f64, a2: f64) -> f64 {
        assert!(a1 > 0.0 && a2 >= a1, "kick requires 0 < a1 <= a2");
        simpson_adaptive(|a| 1.0 / (a * a * self.e_of_a(a)), a1, a2, 1e-10)
    }

    /// Proper cosmic time between scale factors, `∫ da / (a E(a))`, in `1/H0`.
    pub fn time_between(&self, a1: f64, a2: f64) -> f64 {
        assert!(a1 > 0.0 && a2 >= a1);
        simpson_adaptive(|a| 1.0 / (a * self.e_of_a(a)), a1, a2, 1e-10)
    }

    /// A monotone schedule of `n` scale-factor steps from `a_initial` to
    /// `a_final`, uniform in `a` (HACC's default time-stepping variable).
    pub fn step_schedule(&self, a_initial: f64, a_final: f64, n: usize) -> Vec<f64> {
        assert!(a_initial > 0.0 && a_final > a_initial && n >= 1);
        let da = (a_final - a_initial) / n as f64;
        (0..=n).map(|i| a_initial + i as f64 * da).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::z_to_a;

    #[test]
    fn e_of_a_is_one_today() {
        // Flat model: E(1) = sqrt(Ωr + Ωm + Ωk + ΩΛ) = 1 by construction.
        let f = Friedmann::new(CosmoParams::planck2018());
        assert!((f.e_of_a(1.0) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn eds_expansion_is_analytic() {
        // EdS: E(a) = a^{-3/2}; drift = ∫ a^{-3/2} da = 2(√a₂ − √a₁)... check:
        // ∫ da / (a³ · a^{-3/2}) = ∫ a^{-3/2} da = −2 a^{-1/2} |.
        let f = Friedmann::new(CosmoParams::einstein_de_sitter());
        let (a1, a2) = (0.25, 1.0);
        let drift = f.drift_factor(a1, a2);
        let expect = 2.0 * (1.0 / a1.sqrt() - 1.0 / a2.sqrt());
        assert!((drift - expect).abs() < 1e-9, "drift {drift} vs {expect}");
        // kick: ∫ da / (a² a^{-3/2}) = ∫ a^{-1/2} da = 2(√a₂ − √a₁).
        let kick = f.kick_factor(a1, a2);
        let expect = 2.0 * (a2.sqrt() - a1.sqrt());
        assert!((kick - expect).abs() < 1e-9, "kick {kick} vs {expect}");
    }

    #[test]
    fn matter_dominates_at_high_redshift() {
        let f = Friedmann::new(CosmoParams::planck2018());
        // Radiation still holds a ~5% share at z = 200 (Ωr(1+z)/Ωm ≈ 0.056),
        // so matter dominates but does not saturate.
        let om = f.omega_m_of_a(z_to_a(200.0));
        assert!(om > 0.90 && om <= 1.0, "Ωm(z=200) = {om}");
    }

    #[test]
    fn integrals_are_additive() {
        let f = Friedmann::new(CosmoParams::planck2018());
        let whole = f.kick_factor(0.1, 0.9);
        let split = f.kick_factor(0.1, 0.37) + f.kick_factor(0.37, 0.9);
        assert!((whole - split).abs() < 1e-9);
    }

    #[test]
    fn step_schedule_covers_range() {
        let f = Friedmann::new(CosmoParams::planck2018());
        let s = f.step_schedule(z_to_a(200.0), z_to_a(50.0), 5);
        assert_eq!(s.len(), 6);
        assert!((s[0] - z_to_a(200.0)).abs() < 1e-15);
        assert!((s[5] - z_to_a(50.0)).abs() < 1e-15);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn eds_age_of_universe() {
        // EdS: t(a=1) = 2/3 in 1/H0 units.
        let f = Friedmann::new(CosmoParams::einstein_de_sitter());
        let t = f.time_between(1e-6, 1.0);
        assert!((t - 2.0 / 3.0).abs() < 1e-3, "t = {t}");
    }
}
