//! Linear matter power spectrum.
//!
//! Uses the Eisenstein & Hu (1998) "no-wiggle" fitting form for the transfer
//! function (the standard choice for N-body initial conditions when baryon
//! acoustic oscillations need not be resolved), with the amplitude fixed by
//! the σ₈ normalization at z = 0 and redshift scaling via the linear growth
//! factor.

use crate::growth::Growth;
use crate::params::CosmoParams;
use crate::quad::simpson_log;
use std::f64::consts::{E, PI};

/// Linear matter power spectrum `P(k, z)` with `k` in h/Mpc and `P` in
/// (Mpc/h)³.
#[derive(Clone, Copy, Debug)]
pub struct LinearPower {
    params: CosmoParams,
    growth: Growth,
    /// Sound-horizon-like scale `s` of the no-wiggle fit, in Mpc.
    s: f64,
    /// Shape suppression parameter α_Γ.
    alpha_gamma: f64,
    /// Amplitude A such that `P(k, 0) = A kⁿ T²(k)` satisfies σ₈.
    amplitude: f64,
}

impl LinearPower {
    /// Builds and normalizes the power spectrum for a parameter set.
    pub fn new(params: CosmoParams) -> Self {
        params.validate().expect("invalid cosmological parameters");
        let om_h2 = params.omega_m * params.h * params.h;
        let ob_h2 = params.omega_b * params.h * params.h;
        let fb = params.omega_b / params.omega_m;

        // Eisenstein & Hu (1998), Eqs. 26, 30-31 (no-wiggle form).
        let s = 44.5 * (9.83 / om_h2).ln() / (1.0 + 10.0 * ob_h2.powf(0.75)).sqrt();
        let alpha_gamma =
            1.0 - 0.328 * (431.0 * om_h2).ln() * fb + 0.38 * (22.3 * om_h2).ln() * fb * fb;

        let mut lp = Self {
            params,
            growth: Growth::new(params),
            s,
            alpha_gamma,
            amplitude: 1.0,
        };
        // Normalize so sigma_r(8 Mpc/h, z=0) = sigma8.
        let sig = lp.sigma_r(8.0);
        let target = params.sigma8;
        lp.amplitude = (target / sig) * (target / sig);
        lp
    }

    /// The growth model used for redshift scaling.
    #[inline]
    pub fn growth(&self) -> &Growth {
        &self.growth
    }

    /// No-wiggle transfer function `T(k)`, `k` in h/Mpc, normalized to
    /// `T → 1` as `k → 0`.
    pub fn transfer(&self, k: f64) -> f64 {
        assert!(k > 0.0, "wavenumber must be positive");
        let p = &self.params;
        let om_h2 = p.omega_m * p.h * p.h;
        // k in 1/Mpc for the (0.43 k s) term of the effective shape.
        let k_mpc = k * p.h;
        let gamma_eff = p.omega_m
            * p.h
            * (self.alpha_gamma
                + (1.0 - self.alpha_gamma) / (1.0 + (0.43 * k_mpc * self.s).powi(4)));
        let _ = om_h2;
        let q = k * p.theta_cmb * p.theta_cmb / gamma_eff;
        let l = (2.0 * E + 1.8 * q).ln();
        let c = 14.2 + 731.0 / (1.0 + 62.5 * q);
        l / (l + c * q * q)
    }

    /// Dimensionful linear power `P(k, z=0)` in (Mpc/h)³.
    pub fn power_z0(&self, k: f64) -> f64 {
        let t = self.transfer(k);
        self.amplitude * k.powf(self.params.n_s) * t * t
    }

    /// Linear power at redshift `z`: `P(k, z) = D²(z) P(k, 0)`.
    pub fn power(&self, k: f64, z: f64) -> f64 {
        let d = self.growth.d_of_z(z);
        d * d * self.power_z0(k)
    }

    /// Dimensionless power `Δ²(k, z) = k³ P(k, z) / 2π²`.
    pub fn delta2(&self, k: f64, z: f64) -> f64 {
        k * k * k * self.power(k, z) / (2.0 * PI * PI)
    }

    /// RMS linear mass fluctuation in a top-hat sphere of radius `r` Mpc/h
    /// at z = 0 (so `sigma_r(8.0) == sigma8` after normalization).
    pub fn sigma_r(&self, r: f64) -> f64 {
        assert!(r > 0.0, "smoothing radius must be positive");
        let integrand = |k: f64| {
            let x = k * r;
            let w = tophat_window(x);
            self.power_z0(k) * w * w * k * k
        };
        let var = simpson_log(integrand, 1e-5, 1e3, 2048) / (2.0 * PI * PI);
        var.sqrt()
    }
}

/// Fourier transform of a real-space top-hat sphere,
/// `W(x) = 3 (sin x − x cos x)/x³`, with the small-x Taylor limit.
#[inline]
pub fn tophat_window(x: f64) -> f64 {
    if x < 1e-3 {
        1.0 - x * x / 10.0
    } else {
        3.0 * (x.sin() - x * x.cos()) / (x * x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_tends_to_unity_at_large_scales() {
        let p = LinearPower::new(CosmoParams::planck2018());
        assert!((p.transfer(1e-5) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn transfer_is_monotone_decreasing() {
        let p = LinearPower::new(CosmoParams::planck2018());
        let mut prev = f64::INFINITY;
        for i in 0..50 {
            let k = 10f64.powf(-4.0 + 6.0 * i as f64 / 49.0);
            let t = p.transfer(k);
            assert!(t < prev && t > 0.0);
            prev = t;
        }
    }

    #[test]
    fn sigma8_normalization_holds() {
        let params = CosmoParams::planck2018();
        let p = LinearPower::new(params);
        assert!((p.sigma_r(8.0) - params.sigma8).abs() < 1e-6);
    }

    #[test]
    fn sigma_decreases_with_radius() {
        let p = LinearPower::new(CosmoParams::planck2018());
        assert!(p.sigma_r(4.0) > p.sigma_r(8.0));
        assert!(p.sigma_r(8.0) > p.sigma_r(16.0));
    }

    #[test]
    fn power_scales_with_growth_squared() {
        let p = LinearPower::new(CosmoParams::planck2018());
        let k = 0.1;
        let z = 50.0;
        let d = p.growth().d_of_z(z);
        assert!((p.power(k, z) - d * d * p.power_z0(k)).abs() < 1e-12 * p.power_z0(k));
        assert!(p.power(k, z) < p.power(k, 0.0));
    }

    #[test]
    fn power_spectrum_peak_is_at_matter_radiation_scale() {
        // The BAO-free P(k) should peak around k ~ 0.01-0.03 h/Mpc.
        let p = LinearPower::new(CosmoParams::planck2018());
        let mut best_k = 0.0;
        let mut best = 0.0;
        for i in 0..400 {
            let k = 10f64.powf(-4.0 + 4.0 * i as f64 / 399.0);
            let v = p.power_z0(k);
            if v > best {
                best = v;
                best_k = k;
            }
        }
        assert!(best_k > 0.005 && best_k < 0.05, "peak at k = {best_k}");
    }

    #[test]
    fn tophat_window_limits() {
        assert!((tophat_window(1e-6) - 1.0).abs() < 1e-9);
        // First zero of W(x) is at x ≈ 4.493.
        assert!(tophat_window(4.0) > 0.0);
        assert!(tophat_window(5.0) < 0.0);
    }
}
