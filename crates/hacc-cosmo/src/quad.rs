//! Small numerical-integration helpers shared by the cosmology modules.
//!
//! These are deliberately simple (composite Simpson and an adaptive variant);
//! every integrand in this crate is smooth on the integration domain.

/// Composite Simpson's rule with `n` panels (`n` is rounded up to even).
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(b >= a, "integration bounds must be ordered");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// Adaptive Simpson integration to a relative tolerance.
pub fn simpson_adaptive<F: Fn(f64) -> f64 + Copy>(f: F, a: f64, b: f64, rel_tol: f64) -> f64 {
    fn recurse<F: Fn(f64) -> f64 + Copy>(
        f: F,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
        let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
                + recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
        }
    }
    if a == b {
        return 0.0;
    }
    let m = 0.5 * (a + b);
    let (fa, fm, fb) = (f(a), f(m), f(b));
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    let tol = rel_tol * whole.abs().max(1e-300);
    recurse(f, a, b, fa, fm, fb, whole, tol, 40)
}

/// Integrates `f` over `[a, b]` in log-space, i.e. `∫ f(x) dx` evaluated as
/// `∫ f(e^u) e^u du`. Appropriate for power-spectrum integrals spanning many
/// decades in `k`. Requires `0 < a < b`.
pub fn simpson_log<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(a > 0.0 && b > a, "log-space integration requires 0 < a < b");
    simpson(
        |u| {
            let x = u.exp();
            f(x) * x
        },
        a.ln(),
        b.ln(),
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn simpson_polynomial_is_exact() {
        // Simpson is exact for cubics.
        let got = simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 2);
        let expect = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((got - (expect(3.0) - expect(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn simpson_sine() {
        let got = simpson(f64::sin, 0.0, PI, 200);
        assert!((got - 2.0).abs() < 1e-8);
    }

    #[test]
    fn adaptive_matches_closed_form() {
        let got = simpson_adaptive(|x| (-x).exp(), 0.0, 10.0, 1e-10);
        assert!((got - (1.0 - (-10.0f64).exp())).abs() < 1e-8);
    }

    #[test]
    fn log_space_power_law() {
        // ∫ x^-2 dx from 1 to 100 = 1 - 1/100.
        let got = simpson_log(|x| x.powi(-2), 1.0, 100.0, 400);
        assert!((got - 0.99).abs() < 1e-8);
    }

    #[test]
    fn zero_width_interval() {
        assert_eq!(simpson(|x| x, 2.0, 2.0, 10), 0.0);
        assert_eq!(simpson_adaptive(|x| x, 2.0, 2.0, 1e-9), 0.0);
    }
}
