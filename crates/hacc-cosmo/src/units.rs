//! The HACC unit system and derived simulation constants.
//!
//! HACC works in comoving coordinates with lengths in Mpc/h and masses in
//! Msun/h. Internally the code normalizes positions to grid units; this
//! module holds the conversion factors and the derived quantities
//! (particle mass, Hubble scaling) that the solvers need.

use crate::params::CosmoParams;
use serde::{Deserialize, Serialize};

/// Critical density of the universe today in h² Msun / Mpc³
/// (`ρ_c = 3 H₀² / 8πG = 2.77536627e11 h² Msun/Mpc³`).
pub const RHO_CRIT: f64 = 2.77536627e11;

/// Newton's constant in (Mpc/h)·(km/s)²/(Msun/h) — used when converting
/// potential energies into peculiar-velocity kicks.
pub const G_MPC_KMS: f64 = 4.30091e-9;

/// Simulation box description: physical size and particle loading.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoxSpec {
    /// Comoving box side in Mpc/h.
    pub box_mpc_h: f64,
    /// Number of particles per dimension for one species (total per species
    /// is `np³`).
    pub np: usize,
    /// Poisson-solver grid points per dimension.
    pub ng: usize,
}

impl BoxSpec {
    /// Creates a box spec, validating basic consistency.
    pub fn new(box_mpc_h: f64, np: usize, ng: usize) -> Self {
        assert!(box_mpc_h > 0.0, "box size must be positive");
        assert!(
            np >= 1 && ng >= 2,
            "need at least one particle and two grid points"
        );
        Self { box_mpc_h, np, ng }
    }

    /// The paper's scaled-down test problem: `2 × 512³` particles in a
    /// 177 Mpc/h box (§3.4.2), shrunk by `scale` per dimension while keeping
    /// the same mass resolution (box shrinks with particle count).
    ///
    /// `scale = 1` reproduces the paper configuration; the default test and
    /// bench configurations use `scale = 8` or `16` (64³ or 32³ particles).
    pub fn paper_problem(scale: usize) -> Self {
        assert!(scale >= 1 && 512 % scale == 0, "scale must divide 512");
        let np = 512 / scale;
        Self::new(177.0 / scale as f64, np, np)
    }

    /// Total particle count for one species.
    #[inline]
    pub fn particles_per_species(&self) -> usize {
        self.np * self.np * self.np
    }

    /// Comoving inter-particle spacing in Mpc/h.
    #[inline]
    pub fn particle_spacing(&self) -> f64 {
        self.box_mpc_h / self.np as f64
    }

    /// Grid cell size in Mpc/h.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.box_mpc_h / self.ng as f64
    }

    /// Mass of one (total-matter) tracer particle in Msun/h, from the mean
    /// matter density: `m_p = ρ_c Ωₘ (L/np)³`.
    pub fn particle_mass(&self, params: &CosmoParams) -> f64 {
        let d = self.particle_spacing();
        RHO_CRIT * params.omega_m * d * d * d
    }

    /// Dark-matter and baryon particle masses for a two-species run with
    /// equal particle numbers: masses are split by Ω_c : Ω_b.
    pub fn species_masses(&self, params: &CosmoParams) -> (f64, f64) {
        let total = self.particle_mass(params);
        let fb = params.omega_b / params.omega_m;
        (total * (1.0 - fb), total * fb)
    }
}

/// Approximate device memory footprint (bytes per MPI rank) of a CRK-HACC
/// problem: used to check that a configuration matches the paper's
/// "~10 GB per rank" working set (§3.4.2).
///
/// Accounts for two species with positions, velocities, masses, and the
/// hydro state carried by baryons, in FP32 as on the GPU, plus a factor for
/// interaction buffers.
pub fn device_bytes_per_rank(spec: &BoxSpec, ranks: usize) -> u64 {
    assert!(ranks >= 1);
    let per_species = spec.particles_per_species() as u64;
    // DM: pos(3) + vel(3) + mass + phi + id(2) + tags/padding ≈ 12 floats.
    let dm = per_species * 12 * 4;
    // Baryons additionally carry the full CRK hydro state: density,
    // volume, energy, pressure, smoothing length, sound speed, CRK
    // coefficients A + B(3), moment scratch (10), state gradients (12),
    // predictor copies of the dynamic fields, sub-grid fields ≈ 60 floats.
    let baryon = per_species * 60 * 4;
    // Interaction buffers (leaf lists, tile work lists, neighbor scratch,
    // communication staging) roughly double the resident footprint in
    // production CRK-HACC configurations.
    (dm + baryon) * 2 / ranks as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_problem_mass_resolution_is_scale_invariant() {
        let p = CosmoParams::planck2018();
        let full = BoxSpec::paper_problem(1);
        let small = BoxSpec::paper_problem(8);
        let mf = full.particle_mass(&p);
        let ms = small.particle_mass(&p);
        assert!((mf / ms - 1.0).abs() < 1e-12, "mass resolution must match");
    }

    #[test]
    fn paper_problem_matches_paper_numbers() {
        let full = BoxSpec::paper_problem(1);
        assert_eq!(full.np, 512);
        assert!((full.box_mpc_h - 177.0).abs() < 1e-12);
        // §3.4.2: ~10 GB per rank on 8 ranks for 2x512³ particles.
        let bytes = device_bytes_per_rank(&full, 8);
        let gb = bytes as f64 / 1e9;
        assert!(
            gb > 3.0 && gb < 20.0,
            "paper problem is ~10 GB/rank, got {gb:.1}"
        );
    }

    #[test]
    fn species_masses_sum_to_total() {
        let p = CosmoParams::planck2018();
        let b = BoxSpec::paper_problem(16);
        let (dm, ba) = b.species_masses(&p);
        assert!(dm > ba, "dark matter outweighs baryons");
        assert!((dm + ba - b.particle_mass(&p)).abs() < 1e-6 * b.particle_mass(&p));
    }

    #[test]
    fn particle_mass_is_realistic() {
        // Production CRK-HACC mass resolution is ~1e9 Msun/h per particle
        // at the paper's FOM settings (177/512 Mpc/h spacing).
        let p = CosmoParams::planck2018();
        let m = BoxSpec::paper_problem(1).particle_mass(&p);
        assert!(m > 1e9 && m < 1e10, "m_p = {m:.3e}");
    }

    #[test]
    #[should_panic(expected = "box size must be positive")]
    fn rejects_non_positive_box() {
        BoxSpec::new(0.0, 8, 8);
    }
}
