//! Interconnect cost model.
//!
//! Mirrors each system's network the way `sycl-sim/cost.rs` mirrors its
//! GPUs: every message is charged a first-byte latency plus a
//! bytes-over-bandwidth serialization term, on one of two channels —
//! the intra-node device link (Xe Link, NVLink, Infinity Fabric) when
//! both ranks share a node, or the inter-node fabric (Slingshot)
//! otherwise. The §3.4.2 mapping puts 8 ranks on every node, so with
//! ≤ 8 ranks all traffic rides the node link and the fabric numbers
//! only matter for the projected multi-node sweeps.

use serde::Serialize;
use sycl_sim::GpuArch;

/// One channel of the interconnect: a name plus the classic
/// latency/bandwidth (α–β) pair.
#[derive(Clone, Debug, Serialize)]
pub struct Link {
    /// Marketing name of the link ("Xe Link", "Slingshot 11", …).
    pub name: String,
    /// Sustained point-to-point bandwidth in GB/s.
    pub gbps: f64,
    /// First-byte latency in microseconds.
    pub latency_us: f64,
}

impl Link {
    /// The first-byte latency (α) term in seconds.
    pub fn alpha_seconds(&self) -> f64 {
        self.latency_us * 1e-6
    }

    /// The serialization (n·β) term in seconds for `bytes`.
    pub fn beta_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.gbps * 1e9)
    }

    /// Seconds to move `bytes` over this link: α + n·β.
    pub fn cost(&self, bytes: u64) -> f64 {
        self.alpha_seconds() + self.beta_seconds(bytes)
    }

    /// Fraction of the wire time spent actually streaming bytes —
    /// `n·β / (α + n·β)`. Near 1 the link runs at its advertised
    /// bandwidth; near 0 the message is latency-bound.
    pub fn utilization(&self, bytes: u64) -> f64 {
        let total = self.cost(bytes);
        if total > 0.0 {
            self.beta_seconds(bytes) / total
        } else {
            0.0
        }
    }
}

/// The two-level interconnect of one system, built from its
/// [`GpuArch`] record.
#[derive(Clone, Debug, Serialize)]
pub struct Interconnect {
    /// Architecture id this model was built from.
    pub arch: String,
    /// Intra-node device-to-device link.
    pub node_link: Link,
    /// Inter-node fabric.
    pub fabric: Link,
    /// Ranks per node (8 in the paper's §3.4.2 mapping); decides which
    /// channel a rank pair uses.
    pub ranks_per_node: usize,
}

impl Interconnect {
    /// Builds the cost model for an architecture with the paper's
    /// 8-ranks-per-node mapping.
    pub fn for_arch(arch: &GpuArch) -> Self {
        Self::with_ranks_per_node(arch, 8)
    }

    /// Builds the cost model with an explicit node width.
    pub fn with_ranks_per_node(arch: &GpuArch, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node >= 1, "a node holds at least one rank");
        Self {
            arch: arch.id.to_string(),
            node_link: Link {
                name: arch.node_link_name.to_string(),
                gbps: arch.node_link_gbps,
                latency_us: arch.node_link_latency_us,
            },
            fabric: Link {
                name: arch.fabric_name.to_string(),
                gbps: arch.fabric_gbps,
                latency_us: arch.fabric_latency_us,
            },
            ranks_per_node,
        }
    }

    /// True when both ranks live on the same node.
    pub fn same_node(&self, src: usize, dst: usize) -> bool {
        src / self.ranks_per_node == dst / self.ranks_per_node
    }

    /// The channel a message between two ranks rides.
    pub fn link(&self, src: usize, dst: usize) -> &Link {
        if self.same_node(src, dst) {
            &self.node_link
        } else {
            &self.fabric
        }
    }

    /// Seconds to deliver `bytes` from `src` to `dst`.
    pub fn cost(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        self.link(src, dst).cost(bytes)
    }

    /// Seconds for a tree allreduce of `bytes` per rank across `ranks`:
    /// `ceil(log2(ranks))` rounds, each a worst-channel hop.
    pub fn allreduce_cost(&self, ranks: usize, bytes: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let rounds = (ranks as f64).log2().ceil();
        let worst = if ranks > self.ranks_per_node {
            &self.fabric
        } else {
            &self.node_link
        };
        rounds * worst.cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let ic = Interconnect::for_arch(&GpuArch::frontier());
        let tiny = ic.cost(0, 1, 8);
        let big = ic.cost(0, 1, 64 << 20);
        assert!(tiny < 2.0 * ic.node_link.latency_us * 1e-6);
        // 64 MiB at 50 GB/s ≈ 1.3 ms — bandwidth term dominates.
        assert!(big > 100.0 * tiny);
    }

    #[test]
    fn node_link_vs_fabric_selection() {
        let ic = Interconnect::for_arch(&GpuArch::aurora());
        assert!(ic.same_node(0, 7));
        assert!(!ic.same_node(7, 8));
        assert_eq!(ic.link(0, 7).name, "Xe Link");
        assert_eq!(ic.link(7, 8).name, "Slingshot 11");
        // Intra-node Xe Link beats Slingshot for the same payload.
        assert!(ic.cost(0, 7, 1 << 20) > 0.0);
        assert!(ic.cost(0, 7, 1 << 20) < ic.cost(0, 8, 1 << 20) + 1e-12);
    }

    #[test]
    fn alpha_beta_split_reassembles_the_cost() {
        let ic = Interconnect::for_arch(&GpuArch::frontier());
        let link = ic.link(0, 1);
        let bytes = 1u64 << 16;
        let whole = link.cost(bytes);
        assert!((link.alpha_seconds() + link.beta_seconds(bytes) - whole).abs() < 1e-18);
        // Tiny messages are latency-bound, huge ones bandwidth-bound.
        assert!(link.utilization(8) < 0.1);
        assert!(link.utilization(256 << 20) > 0.9);
        assert_eq!(link.utilization(0), 0.0);
    }

    #[test]
    fn allreduce_scales_with_rounds() {
        let ic = Interconnect::for_arch(&GpuArch::polaris());
        assert_eq!(ic.allreduce_cost(1, 64), 0.0);
        let two = ic.allreduce_cost(2, 64);
        let eight = ic.allreduce_cost(8, 64);
        assert!((eight - 3.0 * two).abs() < 1e-12);
    }
}
