//! In-process message passing for the multi-rank execution layer.
//!
//! CRK-HACC is an MPI application — 8 ranks per node, particle
//! overload (ghost) zones refreshed every step, migration as particles
//! drift across domain faces, and global reductions for diagnostics.
//! This crate is the workspace's MPI substitute: [`Transport`] carries
//! typed [`ParticleBatch`] messages between ranks running concurrently
//! on the rayon pool, costs every transfer on an [`Interconnect`] model
//! built from each system's published link numbers (the way
//! `sycl-sim`'s cost model mirrors its GPUs), injects link faults
//! through the same seeded machinery as kernel launches, and delivers
//! with a determinism discipline — `(src, seq)`-sorted inboxes, serial
//! barrier-time fault ordinals — that keeps distributed runs
//! bit-identical at any thread count.

#![warn(missing_docs)]

mod fabric;
mod transport;

pub use fabric::{Interconnect, Link};
pub use transport::{
    CommError, ExchangeReport, LinkTraffic, Message, ParticleBatch, RetryPolicy, Tag, Transport,
    TransportStats, MESSAGE_HEADER_BYTES, PARTICLE_WIRE_BYTES,
};
