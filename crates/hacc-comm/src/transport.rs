//! Typed point-to-point transport with deterministic delivery.
//!
//! The in-process stand-in for MPI: ranks running concurrently on the
//! rayon pool post [`ParticleBatch`] messages into per-source outboxes
//! (each rank writes only its own, so posting is contention-free and
//! each source's message order is its own sequential program order).
//! A single caller then drives [`Transport::exchange`] at the step
//! barrier: messages are costed on the [`Interconnect`], passed through
//! the fault injector link by link, and delivered to per-destination
//! inboxes sorted by `(source, sequence)`. Because the exchange walks
//! sources in ascending order on one thread, the fault-injector ordinal
//! sequence — and hence the whole fault schedule and every delivery
//! order — is identical at any thread count. That is the message-
//! ordering determinism rule: *rank code may post concurrently, but
//! ordinals and deliveries are only ever claimed at the serial barrier,
//! in `(src, seq)` order.*

use crate::fabric::Interconnect;
use hacc_telemetry::{EventKind, FaultInfo, Recorder};
use parking_lot::Mutex;
use std::fmt;
use sycl_sim::{FaultConfig, FaultInjector, LaunchError};

/// What a message carries, selecting its fault-injection channel and
/// telemetry labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tag {
    /// Ghost-zone refresh: copies of boundary particles.
    Halo,
    /// Ownership transfer: particles that drifted across a domain face.
    Migrate,
}

impl Tag {
    /// Stable label, used as the injector kernel name and in telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Tag::Halo => "comm.halo",
            Tag::Migrate => "comm.migrate",
        }
    }
}

/// A structure-of-arrays batch of particles on the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticleBatch {
    /// Global particle ids.
    pub ids: Vec<u64>,
    /// Positions in grid units.
    pub pos: Vec<[f64; 3]>,
    /// Momenta (comoving).
    pub mom: Vec<[f64; 3]>,
    /// Masses.
    pub mass: Vec<f64>,
    /// SPH smoothing lengths.
    pub h: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
}

/// Wire size of one particle: id + pos + mom + mass + h + u.
pub const PARTICLE_WIRE_BYTES: u64 = 8 + 24 + 24 + 8 + 8 + 8;

/// Fixed per-message envelope (src, dst, tag, seq, count).
pub const MESSAGE_HEADER_BYTES: u64 = 32;

impl ParticleBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of particles in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the batch carries no particles.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one particle.
    pub fn push(&mut self, id: u64, pos: [f64; 3], mom: [f64; 3], mass: f64, h: f64, u: f64) {
        self.ids.push(id);
        self.pos.push(pos);
        self.mom.push(mom);
        self.mass.push(mass);
        self.h.push(h);
        self.u.push(u);
    }

    /// Serialized size on the wire, header included.
    pub fn wire_bytes(&self) -> u64 {
        MESSAGE_HEADER_BYTES + self.len() as u64 * PARTICLE_WIRE_BYTES
    }
}

/// One delivered message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message class.
    pub tag: Tag,
    /// Per-source sequence number (program order at the sender).
    pub seq: u64,
    /// Payload.
    pub batch: ParticleBatch,
}

/// A link failure that survived the retry budget.
#[derive(Clone, Debug)]
pub struct CommError {
    /// Sending rank of the failed message.
    pub src: usize,
    /// Receiving rank of the failed message.
    pub dst: usize,
    /// Message class that failed.
    pub tag: Tag,
    /// Attempts made (1 initial + retries).
    pub attempts: u32,
    /// The final injector verdict.
    pub last: LaunchError,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "link {}->{} failed after {} attempts ({}): {}",
            self.src,
            self.dst,
            self.attempts,
            self.tag.label(),
            self.last
        )
    }
}

impl std::error::Error for CommError {}

/// Bounded-retry policy for transient link faults, mirroring the launch
/// layer's `LaunchPolicy`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Exponential backoff base in seconds (charged to `comm.retry`).
    pub backoff_base_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_s: 1e-6,
        }
    }
}

/// Traffic over one directed link during an exchange.
#[derive(Clone, Debug)]
pub struct LinkTraffic {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    /// Modeled seconds on the link.
    pub seconds: f64,
    /// Transient retries absorbed.
    pub retries: u64,
}

/// Summary of one [`Transport::exchange`] barrier.
#[derive(Clone, Debug, Default)]
pub struct ExchangeReport {
    /// Per-directed-link traffic, ascending `(src, dst)`.
    pub links: Vec<LinkTraffic>,
    /// Total messages delivered.
    pub messages: u64,
    /// Total wire bytes.
    pub bytes: u64,
    /// Sum of per-message link seconds.
    pub seconds: f64,
    /// Total transient retries.
    pub retries: u64,
}

impl ExchangeReport {
    /// Modeled comm seconds incident on one rank (messages it sent or
    /// received — both ends are busy for the transfer).
    pub fn rank_seconds(&self, rank: usize) -> f64 {
        self.links
            .iter()
            .filter(|l| l.src == rank || l.dst == rank)
            .map(|l| l.seconds)
            .sum()
    }

    /// Wire bytes sent by one rank.
    pub fn rank_bytes_sent(&self, rank: usize) -> u64 {
        self.links
            .iter()
            .filter(|l| l.src == rank)
            .map(|l| l.bytes)
            .sum()
    }
}

/// Cumulative transport statistics since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransportStats {
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    /// Modeled link seconds.
    pub seconds: f64,
    /// Transient retries absorbed.
    pub retries: u64,
    /// Exchange barriers driven.
    pub exchanges: u64,
}

/// The in-process point-to-point transport for one set of ranks.
pub struct Transport {
    ranks: usize,
    fabric: Interconnect,
    outboxes: Vec<Mutex<Vec<(usize, Tag, ParticleBatch)>>>,
    inboxes: Vec<Mutex<Vec<Message>>>,
    seqs: Vec<Mutex<u64>>,
    injector: Option<FaultInjector>,
    recorder: Option<Recorder>,
    retry: RetryPolicy,
    stats: Mutex<TransportStats>,
}

impl fmt::Debug for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transport")
            .field("ranks", &self.ranks)
            .field("fabric", &self.fabric.arch)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl Transport {
    /// Creates a transport for `ranks` ranks over the given interconnect.
    pub fn new(ranks: usize, fabric: Interconnect) -> Self {
        assert!(ranks >= 1, "a communicator needs at least one rank");
        Self {
            ranks,
            fabric,
            outboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            inboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            seqs: (0..ranks).map(|_| Mutex::new(0)).collect(),
            injector: None,
            recorder: None,
            retry: RetryPolicy::default(),
            stats: Mutex::new(TransportStats::default()),
        }
    }

    /// Number of ranks in the communicator.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The interconnect cost model in use.
    pub fn fabric(&self) -> &Interconnect {
        &self.fabric
    }

    /// Routes link faults through a seeded injector (`comm.halo` /
    /// `comm.migrate` channels).
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        self.injector = Some(FaultInjector::new(config));
    }

    /// The attached fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Emits comm telemetry (bytes counters, per-link spans, retry
    /// events) into the given recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Overrides the transient-fault retry budget.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> TransportStats {
        *self.stats.lock()
    }

    /// Posts a message. Safe to call concurrently from distinct source
    /// ranks; each source's messages keep its program order. Delivery
    /// happens at the next [`Transport::exchange`].
    pub fn send(&self, src: usize, dst: usize, tag: Tag, batch: ParticleBatch) {
        assert!(src < self.ranks && dst < self.ranks, "rank out of range");
        assert_ne!(src, dst, "self-sends are a decomposition bug");
        self.outboxes[src].lock().push((dst, tag, batch));
    }

    /// Drives every posted message to its inbox: the step barrier.
    ///
    /// Must be called from one thread with no concurrent [`Self::send`]s
    /// in flight. Sources are drained in ascending rank order, so fault
    /// ordinals, telemetry, and delivery order are all independent of
    /// how the posting ranks were scheduled.
    pub fn exchange(&self) -> Result<ExchangeReport, CommError> {
        let _span = self.recorder.as_ref().map(|r| r.span("comm.exchange"));
        let mut report = ExchangeReport::default();
        for src in 0..self.ranks {
            let posted = std::mem::take(&mut *self.outboxes[src].lock());
            if posted.is_empty() {
                continue;
            }
            let mut seq = self.seqs[src].lock();
            for (dst, tag, batch) in posted {
                let retries = self.clear_link(src, dst, tag)?;
                let bytes = batch.wire_bytes();
                let seconds = self.fabric.cost(src, dst, bytes);
                self.charge(src, dst, bytes, seconds);
                match report
                    .links
                    .iter_mut()
                    .find(|l| l.src == src && l.dst == dst)
                {
                    Some(l) => {
                        l.messages += 1;
                        l.bytes += bytes;
                        l.seconds += seconds;
                        l.retries += retries;
                    }
                    None => report.links.push(LinkTraffic {
                        src,
                        dst,
                        messages: 1,
                        bytes,
                        seconds,
                        retries,
                    }),
                }
                report.messages += 1;
                report.bytes += bytes;
                report.seconds += seconds;
                report.retries += retries;
                self.inboxes[dst].lock().push(Message {
                    src,
                    dst,
                    tag,
                    seq: *seq,
                    batch,
                });
                *seq += 1;
            }
        }
        report.links.sort_by_key(|l| (l.src, l.dst));
        let mut stats = self.stats.lock();
        stats.messages += report.messages;
        stats.bytes += report.bytes;
        stats.seconds += report.seconds;
        stats.retries += report.retries;
        stats.exchanges += 1;
        Ok(report)
    }

    /// Runs one message through the fault injector with bounded retry;
    /// returns the number of transient retries absorbed.
    fn clear_link(&self, src: usize, dst: usize, tag: Tag) -> Result<u64, CommError> {
        let Some(injector) = self.injector.as_ref() else {
            return Ok(0);
        };
        let kernel = tag.label();
        let mut attempts = 0u32;
        loop {
            let ordinal = injector.next_ordinal(kernel);
            attempts += 1;
            match injector.launch_fault(kernel, ordinal) {
                None => return Ok(u64::from(attempts - 1)),
                Some(err) if err.is_retryable() && attempts <= self.retry.max_retries => {
                    let backoff =
                        self.retry.backoff_base_s * f64::from(1u32 << (attempts - 1).min(16));
                    if let Some(rec) = self.recorder.as_ref() {
                        rec.timer("comm.retry", backoff);
                        rec.counter("comm.retries", 1.0);
                        rec.fault(
                            "fault.retry",
                            FaultInfo {
                                kind: "retry".to_string(),
                                kernel: kernel.to_string(),
                                variant: String::new(),
                                detail: format!("link {src}->{dst} attempt {attempts}"),
                            },
                            1.0,
                        );
                    }
                }
                Some(err) => {
                    return Err(CommError {
                        src,
                        dst,
                        tag,
                        attempts,
                        last: err,
                    })
                }
            }
        }
    }

    /// Charges one delivered message to telemetry, decomposed against
    /// the α–β model: the latency and serialization terms separately,
    /// plus the bandwidth-utilization fraction `n·β / (α + n·β)` so the
    /// analysis plane can tell latency-bound links from saturated ones.
    fn charge(&self, src: usize, dst: usize, bytes: u64, seconds: f64) {
        if let Some(rec) = self.recorder.as_ref() {
            let link = self.fabric.link(src, dst);
            // One batched span per message: the transport is the
            // highest-frequency emitter in the plane, and the batch
            // path keeps its cost to one lock per delivery.
            rec.span_batch(
                &format!("link.{src}->{dst}"),
                &[
                    (EventKind::Counter, "comm.bytes_sent", bytes as f64),
                    (EventKind::Counter, "comm.bytes_recv", bytes as f64),
                    (
                        EventKind::Counter,
                        "comm.link.alpha_s",
                        link.alpha_seconds(),
                    ),
                    (
                        EventKind::Counter,
                        "comm.link.beta_s",
                        link.beta_seconds(bytes),
                    ),
                    (
                        EventKind::Counter,
                        "comm.link.utilization",
                        link.utilization(bytes),
                    ),
                    (EventKind::Timer, "comm.link", seconds),
                ],
            );
        }
    }

    /// Drains a rank's inbox, sorted by `(src, seq)` — the only order
    /// rank code is allowed to observe.
    pub fn take_inbox(&self, rank: usize) -> Vec<Message> {
        let mut msgs = std::mem::take(&mut *self.inboxes[rank].lock());
        msgs.sort_by_key(|m| (m.src, m.seq));
        msgs
    }

    /// Global reduction: sums one contribution per rank in ascending
    /// rank order (the deterministic reduction order every backend must
    /// reproduce) and charges the tree-allreduce cost.
    pub fn allreduce_sum(&self, per_rank: &[f64]) -> f64 {
        assert_eq!(per_rank.len(), self.ranks, "one contribution per rank");
        let seconds = self.fabric.allreduce_cost(self.ranks, 8);
        if let Some(rec) = self.recorder.as_ref() {
            rec.timer("comm.allreduce", seconds);
        }
        let mut stats = self.stats.lock();
        stats.seconds += seconds;
        drop(stats);
        per_rank.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::GpuArch;

    fn transport(ranks: usize) -> Transport {
        Transport::new(ranks, Interconnect::for_arch(&GpuArch::frontier()))
    }

    fn batch(n: usize) -> ParticleBatch {
        let mut b = ParticleBatch::new();
        for i in 0..n {
            b.push(i as u64, [0.0; 3], [0.0; 3], 1.0, 0.1, 0.0);
        }
        b
    }

    #[test]
    fn delivery_is_src_seq_sorted() {
        let t = transport(4);
        t.send(2, 0, Tag::Halo, batch(1));
        t.send(1, 0, Tag::Halo, batch(2));
        t.send(1, 0, Tag::Migrate, batch(3));
        let report = t.exchange().unwrap();
        assert_eq!(report.messages, 3);
        let inbox = t.take_inbox(0);
        let order: Vec<(usize, u64, usize)> = inbox
            .iter()
            .map(|m| (m.src, m.seq, m.batch.len()))
            .collect();
        assert_eq!(order, vec![(1, 0, 2), (1, 1, 3), (2, 0, 1)]);
        assert!(t.take_inbox(0).is_empty(), "inbox drained");
    }

    #[test]
    fn wire_bytes_and_costs_accumulate() {
        let t = transport(2);
        t.send(0, 1, Tag::Halo, batch(10));
        let report = t.exchange().unwrap();
        assert_eq!(
            report.bytes,
            MESSAGE_HEADER_BYTES + 10 * PARTICLE_WIRE_BYTES
        );
        assert!(report.seconds > 0.0);
        assert_eq!(report.rank_bytes_sent(0), report.bytes);
        assert_eq!(report.rank_bytes_sent(1), 0);
        assert!(report.rank_seconds(0) > 0.0);
        assert_eq!(t.stats().exchanges, 1);
    }

    #[test]
    fn transient_link_faults_retry_to_success() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 11,
            transient_rate: 0.4,
            ..FaultConfig::default()
        });
        // At a 40% rate the default 3-retry budget would plausibly
        // exhaust within 50 sends; a deeper budget makes exhaustion
        // astronomically unlikely so every exchange must succeed.
        t.set_retry_policy(RetryPolicy {
            max_retries: 12,
            backoff_base_s: 1e-6,
        });
        let mut retries = 0;
        for _ in 0..50 {
            t.send(0, 1, Tag::Halo, batch(1));
            let report = t.exchange().unwrap();
            retries += report.retries;
            assert_eq!(t.take_inbox(1).len(), 1);
        }
        assert!(
            retries > 0,
            "a 40% rate over 50 sends must trip at least once"
        );
        assert_eq!(t.stats().retries, retries);
    }

    #[test]
    fn device_loss_surfaces_as_comm_error() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 3,
            device_loss_rate: 1.0,
            ..FaultConfig::default()
        });
        t.send(0, 1, Tag::Migrate, batch(1));
        let err = t.exchange().unwrap_err();
        assert_eq!((err.src, err.dst), (0, 1));
        assert_eq!(err.attempts, 1);
        assert!(err.to_string().contains("comm.migrate"));
    }

    #[test]
    fn allreduce_sums_in_rank_order() {
        let t = transport(4);
        assert_eq!(t.allreduce_sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let mut t = transport(2);
            t.enable_fault_injection(FaultConfig {
                seed: 99,
                transient_rate: 0.3,
                ..FaultConfig::default()
            });
            let mut retries = Vec::new();
            for _ in 0..20 {
                t.send(0, 1, Tag::Halo, batch(2));
                retries.push(t.exchange().unwrap().retries);
            }
            retries
        };
        assert_eq!(run(), run());
    }
}
