//! Typed point-to-point transport with deterministic delivery.
//!
//! The in-process stand-in for MPI: ranks running concurrently on the
//! rayon pool post [`ParticleBatch`] messages into per-source outboxes
//! (each rank writes only its own, so posting is contention-free and
//! each source's message order is its own sequential program order).
//! A single caller then drives [`Transport::exchange`] at the step
//! barrier: messages are costed on the [`Interconnect`], passed through
//! the fault injector link by link, and delivered to per-destination
//! inboxes sorted by `(source, sequence)`. Because the exchange walks
//! sources in ascending order on one thread, the fault-injector ordinal
//! sequence — and hence the whole fault schedule and every delivery
//! order — is identical at any thread count. That is the message-
//! ordering determinism rule: *rank code may post concurrently, but
//! ordinals and deliveries are only ever claimed at the serial barrier,
//! in `(src, seq)` order.*

use crate::fabric::Interconnect;
use hacc_telemetry::{EventKind, FaultInfo, Recorder};
use parking_lot::Mutex;
use std::fmt;
use sycl_sim::{FaultConfig, FaultInjector, LaunchError};

/// What a message carries, selecting its fault-injection channel and
/// telemetry labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tag {
    /// Ghost-zone refresh: copies of boundary particles.
    Halo,
    /// Ownership transfer: particles that drifted across a domain face.
    Migrate,
}

impl Tag {
    /// Stable label, used as the injector kernel name and in telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Tag::Halo => "comm.halo",
            Tag::Migrate => "comm.migrate",
        }
    }
}

/// A structure-of-arrays batch of particles on the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticleBatch {
    /// Global particle ids.
    pub ids: Vec<u64>,
    /// Positions in grid units.
    pub pos: Vec<[f64; 3]>,
    /// Momenta (comoving).
    pub mom: Vec<[f64; 3]>,
    /// Masses.
    pub mass: Vec<f64>,
    /// SPH smoothing lengths.
    pub h: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
}

/// Wire size of one particle: id + pos + mom + mass + h + u.
pub const PARTICLE_WIRE_BYTES: u64 = 8 + 24 + 24 + 8 + 8 + 8;

/// Fixed per-message envelope (src, dst, tag, seq, count).
pub const MESSAGE_HEADER_BYTES: u64 = 32;

impl ParticleBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of particles in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the batch carries no particles.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one particle.
    pub fn push(&mut self, id: u64, pos: [f64; 3], mom: [f64; 3], mass: f64, h: f64, u: f64) {
        self.ids.push(id);
        self.pos.push(pos);
        self.mom.push(mom);
        self.mass.push(mass);
        self.h.push(h);
        self.u.push(u);
    }

    /// Serialized size on the wire, header included.
    pub fn wire_bytes(&self) -> u64 {
        MESSAGE_HEADER_BYTES + self.len() as u64 * PARTICLE_WIRE_BYTES
    }
}

/// One delivered message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message class.
    pub tag: Tag,
    /// Per-source sequence number (program order at the sender).
    pub seq: u64,
    /// Payload.
    pub batch: ParticleBatch,
}

/// Typed failure of an exchange barrier.
#[derive(Clone, Debug)]
pub enum CommError {
    /// A link failure that survived the retry budget: the injector
    /// returned a non-retryable verdict, or the retries ran out before
    /// the deadline did.
    LinkFailed {
        /// Sending rank of the failed message.
        src: usize,
        /// Receiving rank of the failed message.
        dst: usize,
        /// Message class that failed.
        tag: Tag,
        /// Attempts made (1 initial + retries).
        attempts: u32,
        /// The final injector verdict.
        last: LaunchError,
    },
    /// The retry backoff on one link exhausted the exchange deadline
    /// before the message cleared — the distributed stand-in for a
    /// barrier that would otherwise block forever.
    Timeout {
        /// Sending rank of the stuck message.
        src: usize,
        /// Receiving rank of the stuck message.
        dst: usize,
        /// Message class that was stuck.
        tag: Tag,
        /// The deadline that expired, in modeled seconds.
        deadline_s: f64,
        /// Modeled seconds of backoff accumulated when it expired.
        waited_s: f64,
    },
    /// A peer rank is dead: a message addressed to it can never be
    /// delivered, no matter the retry budget. Carries the step at which
    /// the rank was marked dead so recovery knows how far to roll back.
    RankDead {
        /// The dead rank.
        rank: usize,
        /// Step boundary at which it died.
        step: u64,
    },
}

impl CommError {
    /// The `(src, dst)` pair of a link-scoped error, when one exists.
    pub fn link(&self) -> Option<(usize, usize)> {
        match self {
            CommError::LinkFailed { src, dst, .. } | CommError::Timeout { src, dst, .. } => {
                Some((*src, *dst))
            }
            CommError::RankDead { .. } => None,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::LinkFailed {
                src,
                dst,
                tag,
                attempts,
                last,
            } => write!(
                f,
                "link {src}->{dst} failed after {attempts} attempts ({}): {last}",
                tag.label()
            ),
            CommError::Timeout {
                src,
                dst,
                tag,
                deadline_s,
                waited_s,
            } => write!(
                f,
                "link {src}->{dst} ({}) timed out: waited {waited_s:.3e}s of the \
                 {deadline_s:.3e}s exchange deadline",
                tag.label()
            ),
            CommError::RankDead { rank, step } => {
                write!(f, "rank {rank} is dead (lost at step {step})")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Bounded-retry policy for transient link faults, mirroring the launch
/// layer's `LaunchPolicy`, plus the exchange deadline that converts a
/// would-be-infinite barrier wait into a typed timeout.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// Exponential backoff base in seconds (charged to `comm.retry`).
    pub backoff_base_s: f64,
    /// Modeled seconds of accumulated backoff on one message before the
    /// exchange gives up with [`CommError::Timeout`]. The default is
    /// generous relative to the µs-scale backoff base, so fault-free
    /// and lightly-faulted runs never see it — it exists to bound the
    /// barrier, not to race healthy retries.
    pub deadline_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_s: 1e-6,
            deadline_s: 1.0,
        }
    }
}

/// Traffic over one directed link during an exchange.
#[derive(Clone, Debug)]
pub struct LinkTraffic {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    /// Modeled seconds on the link.
    pub seconds: f64,
    /// Transient retries absorbed.
    pub retries: u64,
}

/// Summary of one [`Transport::exchange`] barrier.
#[derive(Clone, Debug, Default)]
pub struct ExchangeReport {
    /// Per-directed-link traffic, ascending `(src, dst)`.
    pub links: Vec<LinkTraffic>,
    /// Total messages delivered.
    pub messages: u64,
    /// Total wire bytes.
    pub bytes: u64,
    /// Sum of per-message link seconds.
    pub seconds: f64,
    /// Total transient retries.
    pub retries: u64,
}

impl ExchangeReport {
    /// Modeled comm seconds incident on one rank (messages it sent or
    /// received — both ends are busy for the transfer).
    pub fn rank_seconds(&self, rank: usize) -> f64 {
        self.links
            .iter()
            .filter(|l| l.src == rank || l.dst == rank)
            .map(|l| l.seconds)
            .sum()
    }

    /// Wire bytes sent by one rank.
    pub fn rank_bytes_sent(&self, rank: usize) -> u64 {
        self.links
            .iter()
            .filter(|l| l.src == rank)
            .map(|l| l.bytes)
            .sum()
    }
}

/// Cumulative transport statistics since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransportStats {
    /// Messages delivered.
    pub messages: u64,
    /// Wire bytes delivered.
    pub bytes: u64,
    /// Modeled link seconds.
    pub seconds: f64,
    /// Transient retries absorbed.
    pub retries: u64,
    /// Exchange barriers driven.
    pub exchanges: u64,
}

/// The in-process point-to-point transport for one set of ranks.
pub struct Transport {
    ranks: usize,
    fabric: Interconnect,
    outboxes: Vec<Mutex<Vec<(usize, Tag, ParticleBatch)>>>,
    inboxes: Vec<Mutex<Vec<Message>>>,
    seqs: Vec<Mutex<u64>>,
    injector: Option<FaultInjector>,
    recorder: Option<Recorder>,
    retry: RetryPolicy,
    stats: Mutex<TransportStats>,
    /// Per-rank death step: `Some(step)` once a rank has been lost.
    dead: Mutex<Vec<Option<u64>>>,
    /// Adversarial delivery-order injection (test surface): when set,
    /// each delivery lands at a seed-derived position in its inbox
    /// instead of at the tail, modeling messages arriving in
    /// non-`(src, seq)` order. Consumers must still observe canonical
    /// order — [`Transport::take_inbox`] re-sorts — so physics must be
    /// invariant to this knob.
    reorder_seed: Mutex<Option<u64>>,
}

/// splitmix64, for the reorder-injection placement hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl fmt::Debug for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transport")
            .field("ranks", &self.ranks)
            .field("fabric", &self.fabric.arch)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl Transport {
    /// Creates a transport for `ranks` ranks over the given interconnect.
    pub fn new(ranks: usize, fabric: Interconnect) -> Self {
        assert!(ranks >= 1, "a communicator needs at least one rank");
        Self {
            ranks,
            fabric,
            outboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            inboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            seqs: (0..ranks).map(|_| Mutex::new(0)).collect(),
            injector: None,
            recorder: None,
            retry: RetryPolicy::default(),
            stats: Mutex::new(TransportStats::default()),
            dead: Mutex::new(vec![None; ranks]),
            reorder_seed: Mutex::new(None),
        }
    }

    /// Enables (or disables, with `None`) adversarial delivery-order
    /// injection: subsequent deliveries land at seed-derived inbox
    /// positions instead of the tail, so consumers see arrivals in
    /// non-`(src, seq)` order. [`Transport::take_inbox`] still hands
    /// rank code the canonical order — this knob exists to prove that.
    pub fn set_reorder_injection(&mut self, seed: Option<u64>) {
        *self.reorder_seed.lock() = seed;
    }

    /// Number of ranks in the communicator.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The interconnect cost model in use.
    pub fn fabric(&self) -> &Interconnect {
        &self.fabric
    }

    /// Routes link faults through a seeded injector (`comm.halo` /
    /// `comm.migrate` channels).
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        self.injector = Some(FaultInjector::new(config));
    }

    /// The attached fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Emits comm telemetry (bytes counters, per-link spans, retry
    /// events) into the given recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Overrides the transient-fault retry budget.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> TransportStats {
        *self.stats.lock()
    }

    /// Marks a rank dead as of the given step. Its pending and future
    /// messages are dropped, and any message addressed *to* it makes
    /// the next [`Transport::exchange`] fail with
    /// [`CommError::RankDead`] — that failure is the detection event
    /// recovery reacts to.
    pub fn mark_dead(&self, rank: usize, step: u64) {
        assert!(rank < self.ranks, "rank out of range");
        self.dead.lock()[rank] = Some(step);
    }

    /// Brings a dead rank back (respawn recovery: a replacement process
    /// rejoins the communicator on the same slot).
    pub fn revive(&self, rank: usize) {
        assert!(rank < self.ranks, "rank out of range");
        self.dead.lock()[rank] = None;
    }

    /// Ranks currently marked dead, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, d)| d.map(|_| r))
            .collect()
    }

    /// The step at which `rank` died, if it is dead.
    pub fn death_step(&self, rank: usize) -> Option<u64> {
        assert!(rank < self.ranks, "rank out of range");
        self.dead.lock()[rank]
    }

    /// Discards every queued message — outboxes and undelivered
    /// inboxes. Recovery calls this before replaying from a checkpoint
    /// so no message from the abandoned timeline leaks into the rerun.
    pub fn purge(&self) {
        for outbox in &self.outboxes {
            outbox.lock().clear();
        }
        for inbox in &self.inboxes {
            inbox.lock().clear();
        }
    }

    /// Posts a message. Safe to call concurrently from distinct source
    /// ranks; each source's messages keep its program order. Delivery
    /// happens at the next [`Transport::exchange`].
    pub fn send(&self, src: usize, dst: usize, tag: Tag, batch: ParticleBatch) {
        assert!(src < self.ranks && dst < self.ranks, "rank out of range");
        assert_ne!(src, dst, "self-sends are a decomposition bug");
        self.outboxes[src].lock().push((dst, tag, batch));
    }

    /// Drives every posted message to its inbox: the step barrier.
    ///
    /// Must be called from one thread with no concurrent [`Self::send`]s
    /// in flight. Sources are drained in ascending rank order, so fault
    /// ordinals, telemetry, and delivery order are all independent of
    /// how the posting ranks were scheduled.
    pub fn exchange(&self) -> Result<ExchangeReport, CommError> {
        let _span = self.recorder.as_ref().map(|r| r.span("comm.exchange"));
        let dead: Vec<Option<u64>> = self.dead.lock().clone();
        let mut report = ExchangeReport::default();
        for src in 0..self.ranks {
            let posted = std::mem::take(&mut *self.outboxes[src].lock());
            if posted.is_empty() {
                continue;
            }
            if dead[src].is_some() {
                // A dead sender's posted messages never left the node:
                // drop them without costing the fabric.
                continue;
            }
            let mut seq = self.seqs[src].lock();
            for (dst, tag, batch) in posted {
                if let Some(step) = dead[dst] {
                    // A message to a dead peer is how survivors detect
                    // the loss: the matching receive never completes.
                    if let Some(rec) = self.recorder.as_ref() {
                        rec.fault(
                            "fault.rank_dead",
                            FaultInfo {
                                kind: "rank-dead".to_string(),
                                kernel: tag.label().to_string(),
                                variant: String::new(),
                                detail: format!(
                                    "link {src}->{dst}: peer {dst} dead since step {step}"
                                ),
                            },
                            1.0,
                        );
                    }
                    return Err(CommError::RankDead { rank: dst, step });
                }
                let retries = self.clear_link(src, dst, tag)?;
                let bytes = batch.wire_bytes();
                let seconds = self.fabric.cost(src, dst, bytes);
                self.charge(src, dst, bytes, seconds);
                match report
                    .links
                    .iter_mut()
                    .find(|l| l.src == src && l.dst == dst)
                {
                    Some(l) => {
                        l.messages += 1;
                        l.bytes += bytes;
                        l.seconds += seconds;
                        l.retries += retries;
                    }
                    None => report.links.push(LinkTraffic {
                        src,
                        dst,
                        messages: 1,
                        bytes,
                        seconds,
                        retries,
                    }),
                }
                report.messages += 1;
                report.bytes += bytes;
                report.seconds += seconds;
                report.retries += retries;
                self.deliver(Message {
                    src,
                    dst,
                    tag,
                    seq: *seq,
                    batch,
                });
                *seq += 1;
            }
        }
        report.links.sort_by_key(|l| (l.src, l.dst));
        let mut stats = self.stats.lock();
        stats.messages += report.messages;
        stats.bytes += report.bytes;
        stats.seconds += report.seconds;
        stats.retries += report.retries;
        stats.exchanges += 1;
        Ok(report)
    }

    /// Places one message into its destination inbox — at the tail, or
    /// at a seed-derived position when reorder injection is on.
    fn deliver(&self, msg: Message) {
        let reorder = *self.reorder_seed.lock();
        let mut inbox = self.inboxes[msg.dst].lock();
        let at = match reorder {
            Some(seed) => {
                let key =
                    mix64(seed ^ mix64((msg.dst as u64) << 32 ^ (msg.src as u64) << 16 ^ msg.seq));
                (key as usize) % (inbox.len() + 1)
            }
            None => inbox.len(),
        };
        inbox.insert(at, msg);
    }

    /// Drains *one* source rank's outbox to the destination inboxes —
    /// the barrier-free delivery primitive behind the async executor.
    ///
    /// Safe to call concurrently for **distinct** sources: each source
    /// owns its outbox, its sequence counter, and (when faults are on)
    /// its own injector channels (`comm.halo.s<src>` etc.), so flush
    /// tasks never race on an ordinal stream and the fault schedule is
    /// deterministic at any thread count. Dead-rank semantics match
    /// [`Transport::exchange`]: a dead source's posts are dropped, and
    /// a message to a dead peer surfaces [`CommError::RankDead`] naming
    /// the dead rank. Timeouts and link failures name the stalled
    /// `(src, dst)` link exactly as the barriered path does.
    pub fn flush_source(&self, src: usize) -> Result<ExchangeReport, CommError> {
        assert!(src < self.ranks, "rank out of range");
        let dead: Vec<Option<u64>> = self.dead.lock().clone();
        let mut report = ExchangeReport::default();
        let posted = std::mem::take(&mut *self.outboxes[src].lock());
        if !posted.is_empty() && dead[src].is_none() {
            let mut seq = self.seqs[src].lock();
            for (dst, tag, batch) in posted {
                if let Some(step) = dead[dst] {
                    if let Some(rec) = self.recorder.as_ref() {
                        rec.fault(
                            "fault.rank_dead",
                            FaultInfo {
                                kind: "rank-dead".to_string(),
                                kernel: tag.label().to_string(),
                                variant: String::new(),
                                detail: format!(
                                    "link {src}->{dst}: peer {dst} dead since step {step}"
                                ),
                            },
                            1.0,
                        );
                    }
                    return Err(CommError::RankDead { rank: dst, step });
                }
                // Per-source injector channel: each source's ordinal
                // stream is its own program order, so concurrent
                // flushes of distinct sources stay deterministic.
                let channel = format!("{}.s{src}", tag.label());
                let retries = self.clear_link_on(&channel, src, dst, tag)?;
                let bytes = batch.wire_bytes();
                let seconds = self.fabric.cost(src, dst, bytes);
                self.charge(src, dst, bytes, seconds);
                match report
                    .links
                    .iter_mut()
                    .find(|l| l.src == src && l.dst == dst)
                {
                    Some(l) => {
                        l.messages += 1;
                        l.bytes += bytes;
                        l.seconds += seconds;
                        l.retries += retries;
                    }
                    None => report.links.push(LinkTraffic {
                        src,
                        dst,
                        messages: 1,
                        bytes,
                        seconds,
                        retries,
                    }),
                }
                report.messages += 1;
                report.bytes += bytes;
                report.seconds += seconds;
                report.retries += retries;
                self.deliver(Message {
                    src,
                    dst,
                    tag,
                    seq: *seq,
                    batch,
                });
                *seq += 1;
            }
        }
        report.links.sort_by_key(|l| (l.src, l.dst));
        let mut stats = self.stats.lock();
        stats.messages += report.messages;
        stats.bytes += report.bytes;
        stats.seconds += report.seconds;
        stats.retries += report.retries;
        stats.exchanges += 1;
        Ok(report)
    }

    /// Runs one message through the fault injector with bounded retry
    /// under the exchange deadline; returns the number of transient
    /// retries absorbed.
    fn clear_link(&self, src: usize, dst: usize, tag: Tag) -> Result<u64, CommError> {
        self.clear_link_on(tag.label(), src, dst, tag)
    }

    /// [`Self::clear_link`] on an explicit injector channel (the async
    /// path claims per-source channels).
    fn clear_link_on(
        &self,
        kernel: &str,
        src: usize,
        dst: usize,
        tag: Tag,
    ) -> Result<u64, CommError> {
        let Some(injector) = self.injector.as_ref() else {
            return Ok(0);
        };
        let mut attempts = 0u32;
        let mut waited_s = 0.0f64;
        loop {
            let ordinal = injector.next_ordinal(kernel);
            attempts += 1;
            match injector.launch_fault(kernel, ordinal) {
                None => return Ok(u64::from(attempts - 1)),
                Some(err) if err.is_retryable() && attempts <= self.retry.max_retries => {
                    let backoff =
                        self.retry.backoff_base_s * f64::from(1u32 << (attempts - 1).min(16));
                    if waited_s + backoff > self.retry.deadline_s {
                        // The next backoff would sleep past the
                        // deadline: a real barrier would still be
                        // blocked, so surface it as a timeout instead
                        // of waiting forever.
                        if let Some(rec) = self.recorder.as_ref() {
                            rec.fault(
                                "fault.timeout",
                                FaultInfo {
                                    kind: "timeout".to_string(),
                                    kernel: kernel.to_string(),
                                    variant: String::new(),
                                    detail: format!(
                                        "link {src}->{dst} ({kernel}) exceeded the \
                                         {:.3e}s exchange deadline after {attempts} attempts",
                                        self.retry.deadline_s
                                    ),
                                },
                                1.0,
                            );
                        }
                        return Err(CommError::Timeout {
                            src,
                            dst,
                            tag,
                            deadline_s: self.retry.deadline_s,
                            waited_s: waited_s + backoff,
                        });
                    }
                    waited_s += backoff;
                    if let Some(rec) = self.recorder.as_ref() {
                        rec.timer("comm.retry", backoff);
                        rec.counter("comm.retries", 1.0);
                        rec.fault(
                            "fault.retry",
                            FaultInfo {
                                kind: "retry".to_string(),
                                kernel: kernel.to_string(),
                                variant: String::new(),
                                detail: format!("link {src}->{dst} attempt {attempts}"),
                            },
                            1.0,
                        );
                    }
                }
                Some(err) => {
                    return Err(CommError::LinkFailed {
                        src,
                        dst,
                        tag,
                        attempts,
                        last: err,
                    })
                }
            }
        }
    }

    /// Charges one delivered message to telemetry, decomposed against
    /// the α–β model: the latency and serialization terms separately,
    /// plus the bandwidth-utilization fraction `n·β / (α + n·β)` so the
    /// analysis plane can tell latency-bound links from saturated ones.
    fn charge(&self, src: usize, dst: usize, bytes: u64, seconds: f64) {
        if let Some(rec) = self.recorder.as_ref() {
            let link = self.fabric.link(src, dst);
            // One batched span per message: the transport is the
            // highest-frequency emitter in the plane, and the batch
            // path keeps its cost to one lock per delivery.
            rec.span_batch(
                &format!("link.{src}->{dst}"),
                &[
                    (EventKind::Counter, "comm.bytes_sent", bytes as f64),
                    (EventKind::Counter, "comm.bytes_recv", bytes as f64),
                    (
                        EventKind::Counter,
                        "comm.link.alpha_s",
                        link.alpha_seconds(),
                    ),
                    (
                        EventKind::Counter,
                        "comm.link.beta_s",
                        link.beta_seconds(bytes),
                    ),
                    (
                        EventKind::Counter,
                        "comm.link.utilization",
                        link.utilization(bytes),
                    ),
                    (EventKind::Timer, "comm.link", seconds),
                ],
            );
        }
    }

    /// Drains a rank's inbox, sorted by `(src, seq)` — the only order
    /// rank code is allowed to observe.
    pub fn take_inbox(&self, rank: usize) -> Vec<Message> {
        let mut msgs = std::mem::take(&mut *self.inboxes[rank].lock());
        msgs.sort_by_key(|m| (m.src, m.seq));
        msgs
    }

    /// Drains only the messages of one tag from a rank's inbox, sorted
    /// by `(src, seq)`; other tags stay queued. The async path uses
    /// this where the barriered path relied on phase barriers to keep
    /// migrate and halo traffic from ever sharing an inbox: a fast
    /// neighbor's halos may arrive while this rank is still absorbing
    /// migrants, and must not be consumed as migrants.
    pub fn take_inbox_tagged(&self, rank: usize, tag: Tag) -> Vec<Message> {
        let mut inbox = self.inboxes[rank].lock();
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(inbox.len());
        for msg in inbox.drain(..) {
            if msg.tag == tag {
                taken.push(msg);
            } else {
                kept.push(msg);
            }
        }
        *inbox = kept;
        drop(inbox);
        taken.sort_by_key(|m| (m.src, m.seq));
        taken
    }

    /// The raw arrival order of a rank's queued inbox — `(src, seq)`
    /// per message, *without* the canonical sort. Test surface for the
    /// reorder-injection knob: asserts deliveries really did arrive
    /// out of order before `take_inbox` restored canonical order.
    pub fn arrival_order(&self, rank: usize) -> Vec<(usize, u64)> {
        self.inboxes[rank]
            .lock()
            .iter()
            .map(|m| (m.src, m.seq))
            .collect()
    }

    /// Global reduction: sums one contribution per rank in ascending
    /// rank order (the deterministic reduction order every backend must
    /// reproduce) and charges the tree-allreduce cost.
    pub fn allreduce_sum(&self, per_rank: &[f64]) -> f64 {
        assert_eq!(per_rank.len(), self.ranks, "one contribution per rank");
        let seconds = self.fabric.allreduce_cost(self.ranks, 8);
        if let Some(rec) = self.recorder.as_ref() {
            rec.timer("comm.allreduce", seconds);
        }
        let mut stats = self.stats.lock();
        stats.seconds += seconds;
        drop(stats);
        per_rank.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::GpuArch;

    fn transport(ranks: usize) -> Transport {
        Transport::new(ranks, Interconnect::for_arch(&GpuArch::frontier()))
    }

    fn batch(n: usize) -> ParticleBatch {
        let mut b = ParticleBatch::new();
        for i in 0..n {
            b.push(i as u64, [0.0; 3], [0.0; 3], 1.0, 0.1, 0.0);
        }
        b
    }

    #[test]
    fn delivery_is_src_seq_sorted() {
        let t = transport(4);
        t.send(2, 0, Tag::Halo, batch(1));
        t.send(1, 0, Tag::Halo, batch(2));
        t.send(1, 0, Tag::Migrate, batch(3));
        let report = t.exchange().unwrap();
        assert_eq!(report.messages, 3);
        let inbox = t.take_inbox(0);
        let order: Vec<(usize, u64, usize)> = inbox
            .iter()
            .map(|m| (m.src, m.seq, m.batch.len()))
            .collect();
        assert_eq!(order, vec![(1, 0, 2), (1, 1, 3), (2, 0, 1)]);
        assert!(t.take_inbox(0).is_empty(), "inbox drained");
    }

    #[test]
    fn wire_bytes_and_costs_accumulate() {
        let t = transport(2);
        t.send(0, 1, Tag::Halo, batch(10));
        let report = t.exchange().unwrap();
        assert_eq!(
            report.bytes,
            MESSAGE_HEADER_BYTES + 10 * PARTICLE_WIRE_BYTES
        );
        assert!(report.seconds > 0.0);
        assert_eq!(report.rank_bytes_sent(0), report.bytes);
        assert_eq!(report.rank_bytes_sent(1), 0);
        assert!(report.rank_seconds(0) > 0.0);
        assert_eq!(t.stats().exchanges, 1);
    }

    #[test]
    fn transient_link_faults_retry_to_success() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 11,
            transient_rate: 0.4,
            ..FaultConfig::default()
        });
        // At a 40% rate the default 3-retry budget would plausibly
        // exhaust within 50 sends; a deeper budget makes exhaustion
        // astronomically unlikely so every exchange must succeed.
        t.set_retry_policy(RetryPolicy {
            max_retries: 12,
            ..RetryPolicy::default()
        });
        let mut retries = 0;
        for _ in 0..50 {
            t.send(0, 1, Tag::Halo, batch(1));
            let report = t.exchange().unwrap();
            retries += report.retries;
            assert_eq!(t.take_inbox(1).len(), 1);
        }
        assert!(
            retries > 0,
            "a 40% rate over 50 sends must trip at least once"
        );
        assert_eq!(t.stats().retries, retries);
    }

    #[test]
    fn device_loss_surfaces_as_comm_error() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 3,
            device_loss_rate: 1.0,
            ..FaultConfig::default()
        });
        t.send(0, 1, Tag::Migrate, batch(1));
        let err = t.exchange().unwrap_err();
        assert_eq!(err.link(), Some((0, 1)));
        assert!(
            matches!(err, CommError::LinkFailed { attempts: 1, .. }),
            "device loss is not retryable: {err:?}"
        );
        assert!(err.to_string().contains("comm.migrate"));
    }

    #[test]
    fn exhausted_deadline_surfaces_as_timeout() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 7,
            transient_rate: 1.0,
            ..FaultConfig::default()
        });
        // Every attempt faults transiently; with a deadline shorter
        // than the first backoff the link must time out rather than
        // burn the whole retry budget.
        t.set_retry_policy(RetryPolicy {
            max_retries: 1000,
            backoff_base_s: 1e-6,
            deadline_s: 5e-7,
        });
        t.send(0, 1, Tag::Halo, batch(1));
        let err = t.exchange().unwrap_err();
        match err {
            CommError::Timeout {
                src,
                dst,
                tag,
                deadline_s,
                waited_s,
            } => {
                assert_eq!((src, dst), (0, 1));
                assert_eq!(tag, Tag::Halo);
                assert!(waited_s > deadline_s);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn messages_to_a_dead_rank_fail_with_rank_dead() {
        let t = transport(3);
        t.mark_dead(1, 4);
        assert_eq!(t.dead_ranks(), vec![1]);
        assert_eq!(t.death_step(1), Some(4));
        t.send(0, 1, Tag::Halo, batch(1));
        let err = t.exchange().unwrap_err();
        assert!(
            matches!(err, CommError::RankDead { rank: 1, step: 4 }),
            "got {err:?}"
        );
        assert_eq!(err.link(), None);
        // Recovery revives the slot; traffic flows again.
        t.purge();
        t.revive(1);
        assert!(t.dead_ranks().is_empty());
        t.send(0, 1, Tag::Halo, batch(1));
        t.exchange().unwrap();
        assert_eq!(t.take_inbox(1).len(), 1);
    }

    #[test]
    fn messages_from_a_dead_rank_are_dropped() {
        let t = transport(3);
        // Rank 1 posted before dying: its messages vanish with it.
        t.send(1, 0, Tag::Halo, batch(2));
        t.mark_dead(1, 0);
        t.send(2, 0, Tag::Halo, batch(3));
        let report = t.exchange().unwrap();
        assert_eq!(report.messages, 1, "only the live sender delivers");
        let inbox = t.take_inbox(0);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].src, 2);
    }

    #[test]
    fn purge_discards_queued_messages() {
        let t = transport(2);
        t.send(0, 1, Tag::Halo, batch(1));
        t.exchange().unwrap();
        t.send(0, 1, Tag::Migrate, batch(2));
        t.purge();
        let report = t.exchange().unwrap();
        assert_eq!(report.messages, 0, "outboxes were purged");
        assert!(t.take_inbox(1).is_empty(), "inboxes were purged");
    }

    #[test]
    fn allreduce_sums_in_rank_order() {
        let t = transport(4);
        assert_eq!(t.allreduce_sum(&[1.0, 2.0, 3.0, 4.0]), 10.0);
    }

    #[test]
    fn flush_source_delivers_only_that_source() {
        let t = transport(4);
        t.send(1, 0, Tag::Halo, batch(2));
        t.send(2, 0, Tag::Halo, batch(3));
        let report = t.flush_source(1).unwrap();
        assert_eq!(report.messages, 1);
        assert_eq!(report.rank_bytes_sent(1), report.bytes);
        let inbox = t.take_inbox(0);
        assert_eq!(inbox.len(), 1, "rank 2's post is still queued");
        assert_eq!(inbox[0].src, 1);
        // The remaining source flushes independently.
        t.flush_source(2).unwrap();
        assert_eq!(t.take_inbox(0).len(), 1);
        // An empty flush is a no-op that still counts as an exchange.
        assert_eq!(t.flush_source(3).unwrap().messages, 0);
    }

    #[test]
    fn flush_sequences_match_the_barriered_exchange() {
        // Same sends; one transport drains at the barrier, the other
        // flushes per source in arbitrary source order. Consumers must
        // see identical (src, seq, payload) streams.
        let run = |barriered: bool| {
            let t = transport(4);
            t.send(2, 0, Tag::Migrate, batch(1));
            t.send(1, 0, Tag::Migrate, batch(2));
            if barriered {
                t.exchange().unwrap();
            } else {
                // Flush in non-ascending source order on purpose.
                t.flush_source(2).unwrap();
                t.flush_source(1).unwrap();
            }
            t.send(1, 0, Tag::Halo, batch(4));
            t.send(3, 0, Tag::Halo, batch(5));
            if barriered {
                t.exchange().unwrap();
            } else {
                t.flush_source(3).unwrap();
                t.flush_source(1).unwrap();
            }
            t.take_inbox(0)
                .iter()
                .map(|m| (m.src, m.seq, m.batch.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn reordered_arrivals_are_consumed_in_canonical_order() {
        let mut t = transport(4);
        t.set_reorder_injection(Some(0xD15C0));
        for k in 1..4 {
            t.send(k, 0, Tag::Halo, batch(k));
            t.send(k, 0, Tag::Halo, batch(k + 3));
        }
        t.exchange().unwrap();
        let arrival = t.arrival_order(0);
        let mut canonical = arrival.clone();
        canonical.sort();
        assert_ne!(
            arrival, canonical,
            "the reorder knob must actually scramble arrival order"
        );
        let consumed: Vec<(usize, u64, usize)> = t
            .take_inbox(0)
            .iter()
            .map(|m| (m.src, m.seq, m.batch.len()))
            .collect();
        assert_eq!(
            consumed,
            vec![
                (1, 0, 1),
                (1, 1, 4),
                (2, 0, 2),
                (2, 1, 5),
                (3, 0, 3),
                (3, 1, 6)
            ],
            "consumption must be canonical regardless of arrival order"
        );
    }

    #[test]
    fn tagged_take_leaves_other_traffic_queued() {
        let t = transport(3);
        t.send(1, 0, Tag::Migrate, batch(1));
        t.flush_source(1).unwrap();
        // A fast neighbor's halo lands before rank 0 absorbed migrants.
        t.send(2, 0, Tag::Halo, batch(2));
        t.flush_source(2).unwrap();
        let migrants = t.take_inbox_tagged(0, Tag::Migrate);
        assert_eq!(migrants.len(), 1);
        assert_eq!(migrants[0].tag, Tag::Migrate);
        let halos = t.take_inbox_tagged(0, Tag::Halo);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].src, 2);
        assert!(t.take_inbox(0).is_empty());
    }

    #[test]
    fn flush_timeout_names_the_stalled_link() {
        let mut t = transport(2);
        t.enable_fault_injection(FaultConfig {
            seed: 7,
            transient_rate: 1.0,
            ..FaultConfig::default()
        });
        t.set_retry_policy(RetryPolicy {
            max_retries: 1000,
            backoff_base_s: 1e-6,
            deadline_s: 5e-7,
        });
        t.send(0, 1, Tag::Halo, batch(1));
        let err = t.flush_source(0).unwrap_err();
        match err {
            CommError::Timeout { src, dst, tag, .. } => {
                assert_eq!((src, dst), (0, 1), "the error must name the link");
                assert_eq!(tag, Tag::Halo);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(err.to_string().contains("0->1"));
    }

    #[test]
    fn flush_to_a_dead_rank_names_the_dead_rank() {
        let t = transport(3);
        t.mark_dead(2, 6);
        t.send(0, 2, Tag::Migrate, batch(1));
        let err = t.flush_source(0).unwrap_err();
        assert!(
            matches!(err, CommError::RankDead { rank: 2, step: 6 }),
            "got {err:?}"
        );
        // A dead source's posts are dropped silently, as at the barrier.
        t.send(2, 0, Tag::Halo, batch(1));
        let report = t.flush_source(2).unwrap();
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn per_source_fault_channels_are_schedule_independent() {
        // Two sources flush in both orders; with per-source injector
        // channels each source's retry count must not depend on the
        // other's flush position.
        let run = |first: usize, second: usize| {
            let mut t = transport(3);
            t.enable_fault_injection(FaultConfig {
                seed: 21,
                transient_rate: 0.4,
                ..FaultConfig::default()
            });
            t.set_retry_policy(RetryPolicy {
                max_retries: 12,
                ..RetryPolicy::default()
            });
            for _ in 0..10 {
                t.send(0, 2, Tag::Halo, batch(1));
                t.send(1, 2, Tag::Halo, batch(1));
                let a = t.flush_source(first).unwrap();
                let b = t.flush_source(second).unwrap();
                t.take_inbox(2);
                assert_eq!(a.messages + b.messages, 2);
            }
            t.stats().retries
        };
        assert_eq!(run(0, 1), run(1, 0));
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let mut t = transport(2);
            t.enable_fault_injection(FaultConfig {
                seed: 99,
                transient_rate: 0.3,
                ..FaultConfig::default()
            });
            let mut retries = Vec::new();
            for _ in 0..20 {
                t.send(0, 1, Tag::Halo, batch(2));
                retries.push(t.exchange().unwrap().retries);
            }
            retries
        };
        assert_eq!(run(), run());
    }
}
