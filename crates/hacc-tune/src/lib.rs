#![warn(missing_docs)]
//! # hacc-tune
//!
//! Runtime autotuner for the launch-parameter space the cost model
//! exposes (DESIGN.md §4j): **(variant, sub-group size, work-group
//! size, GRF mode, launch bounds)** per **(kernel, architecture,
//! problem-size band)**.
//!
//! The paper hand-picks these knobs per kernel per architecture
//! (Appendix A); "Cross-Platform Performance Portability Using Highly
//! Parametrized SYCL Kernels" shows the production answer is an
//! automated search. This crate owns:
//!
//! * the **persistent cache** ([`TuneCache`]) — a versioned
//!   `tune-cache.json` keyed by [`TuneKey`], hardened against hostile
//!   input exactly like the checkpoint codecs (checked schema/digests,
//!   entry caps, range-validated knobs; truncation and bit-flips parse
//!   to errors, never panics);
//! * the **online selector** ([`Tuner`]) — cache lookup with
//!   deterministic epsilon-greedy exploration (a seeded counter hash,
//!   never wall-clock randomness, so tuned runs stay reproducible);
//! * `tune.*` telemetry counters (trials, cache hits, exploration
//!   picks) through the existing [`Recorder`] plane.
//!
//! The variant axis is carried as a string label so this crate stays
//! below `hacc-kernels` in the dependency order; the kernel layer
//! converts labels back to its `Variant` enum and re-validates every
//! choice against the live architecture before trusting it.

use hacc_telemetry::Recorder;
use std::collections::BTreeMap;
use std::fmt;
use sycl_sim::{GpuArch, GrfMode, LaunchBounds, LaunchConfig};

/// Cache schema version; bump on any format change.
pub const SCHEMA_VERSION: u64 = 1;

/// Default on-disk cache file name.
pub const CACHE_FILE: &str = "tune-cache.json";

/// Hard cap on cache entries — an alloc guard against hostile files.
pub const MAX_ENTRIES: usize = 4096;

/// FNV-1a over a byte string (the workspace's standard digest for
/// deterministic, dependency-free hashing).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over a sequence of strings with separators, for arch/kernel
/// digests.
pub fn digest_strs<'a, I: IntoIterator<Item = &'a str>>(parts: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in parts {
        for &b in s.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Problem-size band: winners are cached per band, not per exact
/// particle count, so one tuning run generalizes across nearby sizes
/// while big regime changes (occupancy, tree depth) re-tune.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeBand {
    /// Fewer than 4096 particles (CI-scale problems).
    Small,
    /// 4096 to 262143 particles.
    Medium,
    /// 262144 particles and up (production scale).
    Large,
}

impl SizeBand {
    /// The band a particle count falls into.
    pub fn of(n_particles: usize) -> Self {
        if n_particles < 4_096 {
            SizeBand::Small
        } else if n_particles < 262_144 {
            SizeBand::Medium
        } else {
            SizeBand::Large
        }
    }

    /// Stable text form used in cache keys.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBand::Small => "small",
            SizeBand::Medium => "medium",
            SizeBand::Large => "large",
        }
    }

    /// Parses [`SizeBand::label`] output.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "small" => Some(SizeBand::Small),
            "medium" => Some(SizeBand::Medium),
            "large" => Some(SizeBand::Large),
            _ => None,
        }
    }
}

/// One candidate launch configuration: the kernel-layer variant (as a
/// label) plus the device-level knobs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TuneChoice {
    /// Communication-variant label (e.g. `"Select"`, `"Broadcast"`).
    pub variant: String,
    /// Sub-group size.
    pub sg_size: usize,
    /// Work-group size.
    pub wg_size: usize,
    /// Register-file mode.
    pub grf: GrfMode,
    /// Launch-bounds register cap.
    pub bounds: LaunchBounds,
}

impl TuneChoice {
    /// Compact display label, e.g. `Broadcast/sg16/wg128/large/default`.
    pub fn label(&self) -> String {
        let grf = match self.grf {
            GrfMode::Default => "std",
            GrfMode::Large => "large",
        };
        format!(
            "{}/sg{}/wg{}/{}/{}",
            self.variant,
            self.sg_size,
            self.wg_size,
            grf,
            self.bounds.label()
        )
    }

    /// True when the device-level knobs are legal on `arch` — re-checked
    /// before a persisted winner is trusted at launch time (the variant
    /// axis is validated by the kernel layer, which owns the enum).
    pub fn device_knobs_valid(&self, arch: &GpuArch) -> bool {
        sycl_sim::TunablePoint {
            sg_size: self.sg_size,
            wg_size: self.wg_size,
            grf: self.grf,
            bounds: self.bounds,
        }
        .is_valid(arch)
    }

    /// Applies the device-level knobs to a base launch configuration,
    /// keeping its execution and metering policies.
    pub fn apply_to(&self, base: LaunchConfig) -> LaunchConfig {
        base.with_sg_size(self.sg_size)
            .with_grf(self.grf)
            .with_bounds(self.bounds)
            .with_wg_size(self.wg_size)
    }
}

/// Cache key: (kernel timer, architecture id, problem-size band).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TuneKey {
    /// Kernel timer name (e.g. `"upGeo"`, `"upGrav"`).
    pub kernel: String,
    /// Architecture id (e.g. `"pvc"`).
    pub arch: String,
    /// Problem-size band.
    pub band: SizeBand,
}

impl TuneKey {
    /// Builds a key.
    pub fn new(kernel: &str, arch: &str, band: SizeBand) -> Self {
        Self {
            kernel: kernel.to_string(),
            arch: arch.to_string(),
            band,
        }
    }

    /// Stable text form (`kernel@arch@band`) used in the cache file.
    pub fn encode(&self) -> String {
        format!("{}@{}@{}", self.kernel, self.arch, self.band.label())
    }

    /// Parses [`TuneKey::encode`] output; rejects malformed or hostile
    /// keys (wrong arity, empty or over-long segments, bad charset).
    pub fn decode(s: &str) -> Option<Self> {
        if s.len() > 96 {
            return None;
        }
        let mut it = s.split('@');
        let (kernel, arch, band) = (it.next()?, it.next()?, it.next()?);
        if it.next().is_some() {
            return None;
        }
        let seg_ok = |seg: &str| {
            !seg.is_empty()
                && seg.len() <= 48
                && seg
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        };
        if !seg_ok(kernel) || !seg_ok(arch) {
            return None;
        }
        Some(Self {
            kernel: kernel.to_string(),
            arch: arch.to_string(),
            band: SizeBand::from_label(band)?,
        })
    }
}

/// A cached winner for one [`TuneKey`].
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// The winning configuration.
    pub choice: TuneChoice,
    /// Its modeled seconds when it won.
    pub modeled_seconds: f64,
    /// Measurements recorded against this key (all candidates).
    pub trials: u64,
}

/// Errors from loading or validating a tuning cache.
#[derive(Clone, Debug, PartialEq)]
pub enum TuneError {
    /// File-system failure (message only; the path is the caller's).
    Io(String),
    /// The text is not valid JSON or not the expected shape.
    Parse(String),
    /// Unsupported schema version.
    Schema {
        /// The version the file declares, when readable.
        found: Option<u64>,
    },
    /// Digest mismatch: the cache was built for different code.
    Digest {
        /// Which digest disagreed (`"arch"` or `"kernel"`).
        which: &'static str,
        /// Expected value.
        want: u64,
        /// Value in the file.
        found: u64,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Io(m) => write!(f, "tune cache I/O: {m}"),
            TuneError::Parse(m) => write!(f, "tune cache rejected: {m}"),
            TuneError::Schema { found } => match found {
                Some(v) => write!(f, "tune cache schema {v} != supported {SCHEMA_VERSION}"),
                None => write!(f, "tune cache missing schema_version"),
            },
            TuneError::Digest { which, want, found } => write!(
                f,
                "tune cache {which} digest {found:016x} != expected {want:016x} (stale cache)"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// The persistent tuning cache: schema version + arch/kernel digests +
/// per-key winners. Serialized as `tune-cache.json`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TuneCache {
    /// Digest of the architecture set the cache was tuned for.
    pub arch_digest: u64,
    /// Digest of the kernel/variant set the cache was tuned for.
    pub kernel_digest: u64,
    /// Winners, keyed by [`TuneKey::encode`] (sorted for stable output).
    pub entries: BTreeMap<String, TuneEntry>,
}

impl TuneCache {
    /// An empty cache stamped with the given digests.
    pub fn new(arch_digest: u64, kernel_digest: u64) -> Self {
        Self {
            arch_digest,
            kernel_digest,
            entries: BTreeMap::new(),
        }
    }

    /// The cached winner for a key, if any.
    pub fn lookup(&self, key: &TuneKey) -> Option<&TuneEntry> {
        self.entries.get(&key.encode())
    }

    /// Records a measurement: bumps the key's trial count and installs
    /// `choice` as the winner when it beats (or first sets) the cached
    /// modeled seconds. Returns `true` when the winner changed.
    pub fn record(&mut self, key: &TuneKey, choice: &TuneChoice, modeled_seconds: f64) -> bool {
        if !modeled_seconds.is_finite() || modeled_seconds < 0.0 {
            return false;
        }
        let slot = self.entries.entry(key.encode());
        match slot {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(TuneEntry {
                    choice: choice.clone(),
                    modeled_seconds,
                    trials: 1,
                });
                true
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.trials = e.trials.saturating_add(1);
                if modeled_seconds < e.modeled_seconds {
                    let changed = e.choice != *choice;
                    e.choice = choice.clone();
                    e.modeled_seconds = modeled_seconds;
                    changed
                } else {
                    false
                }
            }
        }
    }

    /// Serializes to the canonical pretty JSON form (sorted keys, hex
    /// digests) — byte-stable for a given cache state, so committed
    /// caches diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"arch_digest\": \"{:016x}\",\n",
            self.arch_digest
        ));
        out.push_str(&format!(
            "  \"kernel_digest\": \"{:016x}\",\n",
            self.kernel_digest
        ));
        out.push_str("  \"entries\": {");
        let mut first = true;
        for (k, e) in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            let grf = match e.choice.grf {
                GrfMode::Default => "default",
                GrfMode::Large => "large",
            };
            out.push_str(&format!(
                "\n    \"{}\": {{ \"variant\": \"{}\", \"sg_size\": {}, \"wg_size\": {}, \
                 \"grf\": \"{}\", \"bounds\": \"{}\", \"modeled_seconds\": {:e}, \"trials\": {} }}",
                k,
                e.choice.variant,
                e.choice.sg_size,
                e.choice.wg_size,
                grf,
                e.choice.bounds.label(),
                e.modeled_seconds,
                e.trials
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses and validates cache text. Hostile input — truncation,
    /// bit-flips, adversarial headers, oversized entry sets, out-of-range
    /// knobs — returns an error; this function never panics.
    pub fn from_json(text: &str) -> Result<Self, TuneError> {
        if text.len() > 8 * 1024 * 1024 {
            return Err(TuneError::Parse("cache file over 8 MiB".to_string()));
        }
        let root = serde_json::parse_value(text).map_err(|e| TuneError::Parse(format!("{e:?}")))?;
        let obj = root
            .as_object()
            .ok_or_else(|| TuneError::Parse("root is not an object".to_string()))?;
        let _ = obj;
        let version = root.get("schema_version").and_then(|v| v.as_u64());
        if version != Some(SCHEMA_VERSION) {
            return Err(TuneError::Schema { found: version });
        }
        let digest = |key: &str| -> Result<u64, TuneError> {
            let s = root
                .get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| TuneError::Parse(format!("missing {key}")))?;
            if s.len() != 16 {
                return Err(TuneError::Parse(format!("{key} is not 16 hex digits")));
            }
            u64::from_str_radix(s, 16).map_err(|_| TuneError::Parse(format!("{key} is not hex")))
        };
        let arch_digest = digest("arch_digest")?;
        let kernel_digest = digest("kernel_digest")?;
        let entries_v = root
            .get("entries")
            .and_then(|v| v.as_object())
            .ok_or_else(|| TuneError::Parse("missing entries object".to_string()))?;
        if entries_v.len() > MAX_ENTRIES {
            return Err(TuneError::Parse(format!(
                "{} entries exceeds the {MAX_ENTRIES} cap",
                entries_v.len()
            )));
        }
        let mut entries = BTreeMap::new();
        for (k, v) in entries_v {
            let key = TuneKey::decode(k)
                .ok_or_else(|| TuneError::Parse(format!("malformed key {k:?}")))?;
            let entry = parse_entry(v).map_err(|m| TuneError::Parse(format!("key {k:?}: {m}")))?;
            entries.insert(key.encode(), entry);
        }
        Ok(Self {
            arch_digest,
            kernel_digest,
            entries,
        })
    }

    /// Checks the digests against the running build, rejecting caches
    /// tuned for a different architecture or kernel set.
    pub fn check_digests(&self, arch_digest: u64, kernel_digest: u64) -> Result<(), TuneError> {
        if self.arch_digest != arch_digest {
            return Err(TuneError::Digest {
                which: "arch",
                want: arch_digest,
                found: self.arch_digest,
            });
        }
        if self.kernel_digest != kernel_digest {
            return Err(TuneError::Digest {
                which: "kernel",
                want: kernel_digest,
                found: self.kernel_digest,
            });
        }
        Ok(())
    }

    /// Loads and validates a cache file.
    pub fn load(path: &std::path::Path) -> Result<Self, TuneError> {
        let text = std::fs::read_to_string(path).map_err(|e| TuneError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// Writes the canonical JSON form to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TuneError> {
        std::fs::write(path, self.to_json()).map_err(|e| TuneError::Io(e.to_string()))
    }
}

/// Parses and range-validates one cache entry object.
fn parse_entry(v: &serde::Value) -> Result<TuneEntry, String> {
    let variant = v
        .get("variant")
        .and_then(|x| x.as_str())
        .ok_or("missing variant")?;
    if variant.is_empty()
        || variant.len() > 32
        || !variant.chars().all(|c| c.is_ascii_alphanumeric())
    {
        return Err(format!("bad variant label {variant:?}"));
    }
    let int_in = |key: &str, lo: u64, hi: u64| -> Result<u64, String> {
        let n = v
            .get(key)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing {key}"))?;
        if !(lo..=hi).contains(&n) {
            return Err(format!("{key} = {n} outside [{lo}, {hi}]"));
        }
        Ok(n)
    };
    let sg_size = int_in("sg_size", 1, 1024)? as usize;
    let wg_size = int_in("wg_size", 1, 1024)? as usize;
    if !wg_size.is_multiple_of(sg_size) {
        return Err(format!(
            "wg_size {wg_size} not a multiple of sg_size {sg_size}"
        ));
    }
    let grf = match v.get("grf").and_then(|x| x.as_str()) {
        Some("default") => GrfMode::Default,
        Some("large") => GrfMode::Large,
        other => return Err(format!("bad grf {other:?}")),
    };
    let bounds = v
        .get("bounds")
        .and_then(|x| x.as_str())
        .and_then(LaunchBounds::from_label)
        .ok_or("bad bounds label")?;
    let modeled_seconds = v
        .get("modeled_seconds")
        .and_then(|x| x.as_f64())
        .ok_or("missing modeled_seconds")?;
    if !modeled_seconds.is_finite() || !(0.0..1e18).contains(&modeled_seconds) {
        return Err(format!("modeled_seconds {modeled_seconds} out of range"));
    }
    let trials = int_in("trials", 1, 1_000_000_000_000_000)?;
    Ok(TuneEntry {
        choice: TuneChoice {
            variant: variant.to_string(),
            sg_size,
            wg_size,
            grf,
            bounds,
        },
        modeled_seconds,
        trials,
    })
}

/// What [`Tuner::select`] decided for a launch.
#[derive(Clone, Debug, PartialEq)]
pub enum Selection {
    /// Use the cached winner.
    Cached(TuneChoice),
    /// Exploration pick: try this candidate instead of the winner.
    Explore(TuneChoice),
    /// No cached winner and no exploration — the caller falls back to
    /// the hand-picked table.
    Cold,
}

/// The online selector: cache-backed choice with deterministic
/// epsilon-greedy exploration.
///
/// Exploration is seeded by an internal call counter hashed with the
/// key (FNV-1a), not by wall clock or OS randomness, so a tuned run is
/// exactly reproducible: the same call sequence makes the same picks.
#[derive(Clone, Debug)]
pub struct Tuner {
    cache: TuneCache,
    /// Exploration rate in thousandths (0 = pure exploitation).
    epsilon_milli: u32,
    step: u64,
}

impl Tuner {
    /// Wraps a cache with an exploration rate in `[0, 1]` (values are
    /// clamped; 0 disables exploration entirely).
    pub fn new(cache: TuneCache, epsilon: f64) -> Self {
        let epsilon_milli = (epsilon.clamp(0.0, 1.0) * 1000.0).round() as u32;
        Self {
            cache,
            epsilon_milli,
            step: 0,
        }
    }

    /// The wrapped cache.
    pub fn cache(&self) -> &TuneCache {
        &self.cache
    }

    /// Consumes the tuner, returning the (possibly updated) cache for
    /// persistence.
    pub fn into_cache(self) -> TuneCache {
        self.cache
    }

    /// Picks a configuration for `key` from `space`:
    ///
    /// * with probability epsilon (deterministic counter hash), an
    ///   exploration candidate from `space` (`tune.explore_picks`);
    /// * otherwise the cached winner when one exists
    ///   (`tune.cache_hits`);
    /// * otherwise [`Selection::Cold`] — caller falls back to the
    ///   hand-picked table.
    pub fn select(
        &mut self,
        key: &TuneKey,
        space: &[TuneChoice],
        telemetry: Option<&Recorder>,
    ) -> Selection {
        self.step = self.step.wrapping_add(1);
        if self.epsilon_milli > 0 && !space.is_empty() {
            let mut seed = key.encode().into_bytes();
            seed.extend_from_slice(&self.step.to_le_bytes());
            let h = fnv1a(&seed);
            if (h % 1000) < self.epsilon_milli as u64 {
                let idx = ((h >> 16) % space.len() as u64) as usize;
                if let Some(t) = telemetry {
                    t.counter("tune.explore_picks", 1.0);
                }
                return Selection::Explore(space[idx].clone());
            }
        }
        match self.cache.lookup(key) {
            Some(e) => {
                if let Some(t) = telemetry {
                    t.counter("tune.cache_hits", 1.0);
                }
                Selection::Cached(e.choice.clone())
            }
            None => Selection::Cold,
        }
    }

    /// Feeds a measured (modeled) launch time back into the cache and
    /// emits `tune.trials`. Returns `true` when the winner changed.
    pub fn observe(
        &mut self,
        key: &TuneKey,
        choice: &TuneChoice,
        modeled_seconds: f64,
        telemetry: Option<&Recorder>,
    ) -> bool {
        if let Some(t) = telemetry {
            t.counter("tune.trials", 1.0);
        }
        self.cache.record(key, choice, modeled_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(variant: &str, sg: usize) -> TuneChoice {
        TuneChoice {
            variant: variant.to_string(),
            sg_size: sg,
            wg_size: 128,
            grf: GrfMode::Default,
            bounds: LaunchBounds::Default,
        }
    }

    fn key() -> TuneKey {
        TuneKey::new("upGeo", "pvc", SizeBand::Small)
    }

    #[test]
    fn cache_round_trips_canonically() {
        let mut cache = TuneCache::new(0xdead_beef, 0x1234_5678_9abc_def0);
        cache.record(&key(), &choice("Broadcast", 16), 1.5e-4);
        cache.record(
            &TuneKey::new("upGrav", "mi250x", SizeBand::Medium),
            &TuneChoice {
                bounds: LaunchBounds::Capped(96),
                grf: GrfMode::Large,
                ..choice("Select", 64)
            },
            2.75e-3,
        );
        let text = cache.to_json();
        let back = TuneCache::from_json(&text).unwrap();
        assert_eq!(back, cache);
        // Canonical form is byte-stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn record_keeps_the_best_and_counts_trials() {
        let mut cache = TuneCache::new(0, 0);
        assert!(cache.record(&key(), &choice("Select", 32), 2.0));
        assert!(!cache.record(&key(), &choice("Memory32", 32), 3.0));
        assert!(cache.record(&key(), &choice("Broadcast", 16), 1.0));
        let e = cache.lookup(&key()).unwrap();
        assert_eq!(e.choice.variant, "Broadcast");
        assert_eq!(e.modeled_seconds, 1.0);
        assert_eq!(e.trials, 3);
        // NaN and negative measurements are ignored.
        assert!(!cache.record(&key(), &choice("Select", 32), f64::NAN));
        assert!(!cache.record(&key(), &choice("Select", 32), -1.0));
    }

    #[test]
    fn digest_checks_reject_stale_caches() {
        let cache = TuneCache::new(1, 2);
        assert!(cache.check_digests(1, 2).is_ok());
        assert!(matches!(
            cache.check_digests(9, 2),
            Err(TuneError::Digest { which: "arch", .. })
        ));
        assert!(matches!(
            cache.check_digests(1, 9),
            Err(TuneError::Digest {
                which: "kernel",
                ..
            })
        ));
    }

    #[test]
    fn hostile_shapes_are_rejected_not_panicked() {
        for text in [
            "",
            "{",
            "[]",
            "null",
            "{\"schema_version\": 99}",
            "{\"schema_version\": 1}",
            "{\"schema_version\": 1, \"arch_digest\": \"xyz\"}",
            "{\"schema_version\": 1, \"arch_digest\": \"0000000000000000\", \
             \"kernel_digest\": \"0000000000000000\", \"entries\": 7}",
            "{\"schema_version\": 1, \"arch_digest\": \"0000000000000000\", \
             \"kernel_digest\": \"0000000000000000\", \
             \"entries\": {\"bad key\": {}}}",
            "{\"schema_version\": 1, \"arch_digest\": \"0000000000000000\", \
             \"kernel_digest\": \"0000000000000000\", \
             \"entries\": {\"a@b@small\": {\"variant\": \"Select\", \"sg_size\": 0, \
             \"wg_size\": 128, \"grf\": \"default\", \"bounds\": \"default\", \
             \"modeled_seconds\": 1.0, \"trials\": 1}}}",
        ] {
            assert!(TuneCache::from_json(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn epsilon_zero_never_explores_and_is_deterministic() {
        let mut cache = TuneCache::new(0, 0);
        cache.record(&key(), &choice("Broadcast", 16), 1.0);
        let space = vec![choice("Select", 32), choice("Broadcast", 16)];
        let mut a = Tuner::new(cache.clone(), 0.0);
        let mut b = Tuner::new(cache, 0.0);
        for _ in 0..256 {
            let sa = a.select(&key(), &space, None);
            assert_eq!(sa, b.select(&key(), &space, None));
            assert!(matches!(sa, Selection::Cached(_)));
        }
    }

    #[test]
    fn exploration_fires_at_roughly_epsilon_and_replays_exactly() {
        let mut cache = TuneCache::new(0, 0);
        cache.record(&key(), &choice("Broadcast", 16), 1.0);
        let space = vec![choice("Select", 32), choice("Broadcast", 16)];
        let run = || {
            let mut t = Tuner::new(
                {
                    let mut c = TuneCache::new(0, 0);
                    c.record(&key(), &choice("Broadcast", 16), 1.0);
                    c
                },
                0.1,
            );
            (0..2000)
                .map(|_| t.select(&key(), &space, None))
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        // Bit-reproducible: the same call sequence makes the same picks.
        assert_eq!(a, b);
        let explored = a
            .iter()
            .filter(|s| matches!(s, Selection::Explore(_)))
            .count();
        // ~10% of 2000, with generous slack for the hash distribution.
        assert!(
            (100..400).contains(&explored),
            "explored {explored}/2000 at epsilon 0.1"
        );
    }

    #[test]
    fn telemetry_counters_track_tuner_activity() {
        let mut cache = TuneCache::new(0, 0);
        cache.record(&key(), &choice("Broadcast", 16), 1.0);
        let mut t = Tuner::new(cache, 0.0);
        let rec = Recorder::new();
        let space = vec![choice("Select", 32)];
        for _ in 0..5 {
            let _ = t.select(&key(), &space, Some(&rec));
        }
        t.observe(&key(), &choice("Select", 32), 2.0, Some(&rec));
        assert_eq!(
            hacc_telemetry::counter_total(&rec.events(), "tune.cache_hits"),
            5.0
        );
        assert_eq!(
            hacc_telemetry::counter_total(&rec.events(), "tune.trials"),
            1.0
        );
    }
}
