//! Device work lists: half-warp tiles and broadcast chunk lists.
//!
//! The pair-parallel kernels (Select / Memory / vISA variants) process one
//! *tile* per sub-group: up to `h = S/2` particle slots from leaf-chunk A
//! in the lower lanes and up to `h` slots from chunk B in the upper lanes
//! (paper Figure 3). The restructured Broadcast variant is chunk-parallel:
//! one sub-group owns up to `S` particles and loops over all neighboring
//! chunks, so its work list is a chunk array plus a flattened neighbor
//! list.
//!
//! Particle indices refer to *leaf-ordered* storage (the RCB permutation
//! is applied to the device buffers), so slots are contiguous.

use hacc_tree::{InteractionList, RcbTree};
use rayon::prelude::*;

/// One half-warp tile: `a_len ≤ h` slots starting at `a_start`, paired
/// with `b_len ≤ h` slots at `b_start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// First slot of the A side (leaf-ordered index).
    pub a_start: u32,
    /// Number of valid A slots.
    pub a_len: u32,
    /// First slot of the B side.
    pub b_start: u32,
    /// Number of valid B slots.
    pub b_len: u32,
    /// A and B are the same slot range (upper-half writes are masked to
    /// avoid double counting).
    pub self_tile: bool,
}

/// One broadcast-variant chunk plus the range of its neighbor entries in
/// [`ChunkWork::neighbors`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First slot owned by this chunk.
    pub start: u32,
    /// Number of valid slots (≤ sub-group size).
    pub len: u32,
    /// Offset into the flattened neighbor array.
    pub nbr_offset: u32,
    /// Number of neighbor entries.
    pub nbr_count: u32,
}

/// Chunk-parallel work list for the Broadcast variant.
#[derive(Clone, Debug)]
pub struct ChunkWork {
    /// All chunks (one sub-group instance each).
    pub chunks: Vec<Chunk>,
    /// Flattened neighbor chunk ranges: `(start, len)` slot ranges.
    pub neighbors: Vec<(u32, u32)>,
}

/// Splits each leaf into chunks of at most `cap` slots.
fn leaf_chunks(tree: &RcbTree, cap: usize) -> Vec<Vec<(u32, u32)>> {
    (0..tree.n_leaves())
        .map(|li| {
            let node = &tree.nodes[tree.leaves[li]];
            let mut out = Vec::new();
            let mut s = node.start;
            while s < node.end {
                let len = (node.end - s).min(cap);
                out.push((s as u32, len as u32));
                s += len;
            }
            out
        })
        .collect()
}

/// Builds the half-warp tile list for sub-group size `sg_size`
/// (`h = sg_size/2` slots per side).
///
/// Leaf pairs expand to tiles independently, so the expansion fans out
/// across threads; the order-preserving flatten keeps the tile list —
/// and therefore the sub-group → tile assignment — identical to a serial
/// build at any thread count.
pub fn build_tiles(tree: &RcbTree, list: &InteractionList, sg_size: usize) -> Vec<Tile> {
    assert!(sg_size >= 2 && sg_size.is_multiple_of(2));
    let h = sg_size / 2;
    let chunks = leaf_chunks(tree, h);
    list.pairs
        .par_iter()
        .flat_map_iter(|pair| {
            let (la, lb) = (pair.a as usize, pair.b as usize);
            let mut tiles = Vec::new();
            if la == lb {
                // Self pair: unordered chunk combinations, including ca == cb.
                let cs = &chunks[la];
                for i in 0..cs.len() {
                    for j in i..cs.len() {
                        tiles.push(Tile {
                            a_start: cs[i].0,
                            a_len: cs[i].1,
                            b_start: cs[j].0,
                            b_len: cs[j].1,
                            self_tile: i == j,
                        });
                    }
                }
            } else {
                for &(astart, alen) in &chunks[la] {
                    for &(bstart, blen) in &chunks[lb] {
                        tiles.push(Tile {
                            a_start: astart,
                            a_len: alen,
                            b_start: bstart,
                            b_len: blen,
                            self_tile: false,
                        });
                    }
                }
            }
            tiles
        })
        .collect()
}

/// Builds the chunk-parallel work list for the Broadcast variant with
/// chunk capacity `sg_size`.
///
/// Every chunk's neighbor list contains all chunks of all leaves that
/// interact with the chunk's leaf (including its own leaf, and itself).
pub fn build_chunks(tree: &RcbTree, list: &InteractionList, sg_size: usize) -> ChunkWork {
    assert!(sg_size >= 2);
    let chunks_per_leaf = leaf_chunks(tree, sg_size);
    // Adjacency: leaf -> interacting leaves (symmetric closure of pairs).
    let n_leaves = tree.n_leaves();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_leaves];
    for pair in &list.pairs {
        adj[pair.a as usize].push(pair.b);
        if pair.a != pair.b {
            adj[pair.b as usize].push(pair.a);
        }
    }
    // Per-leaf neighbor vectors are independent: generate them in
    // parallel, then assemble offsets serially in leaf order so the
    // flattened layout matches a serial build exactly.
    let leaf_neighbors: Vec<Vec<(u32, u32)>> = adj
        .par_iter()
        .map(|leaf_adj| {
            let mut nbrs = Vec::new();
            for &lnbr in leaf_adj {
                for &(ns, nl) in &chunks_per_leaf[lnbr as usize] {
                    nbrs.push((ns, nl));
                }
            }
            nbrs
        })
        .collect();
    let mut chunks = Vec::new();
    let mut neighbors = Vec::new();
    for (li, leaf_cs) in chunks_per_leaf.iter().enumerate() {
        for &(start, len) in leaf_cs {
            let nbr_offset = neighbors.len() as u32;
            neighbors.extend_from_slice(&leaf_neighbors[li]);
            let nbr_count = neighbors.len() as u32 - nbr_offset;
            chunks.push(Chunk {
                start,
                len,
                nbr_offset,
                nbr_count,
            });
        }
    }
    ChunkWork { chunks, neighbors }
}

/// Verifies (O(n²), tests only) that every close particle pair is covered:
/// by exactly one tile side for the half-warp list, and — for the chunk
/// list — that particle `i`'s chunk has a neighbor entry containing `j`.
pub fn check_tiles_cover(
    tiles: &[Tile],
    tree: &RcbTree,
    positions: &[[f64; 3]],
    box_size: f64,
    cutoff: f64,
) -> Result<(), String> {
    // Slot index of each particle in leaf order.
    let mut slot_of = vec![0u32; positions.len()];
    for (slot, &pi) in tree.order.iter().enumerate() {
        slot_of[pi as usize] = slot as u32;
    }
    let c2 = cutoff * cutoff;
    // Coverage counts per *ordered* (i, j): i must see j exactly once.
    use std::collections::HashMap;
    let mut cover: HashMap<(u32, u32), u32> = HashMap::new();
    for t in tiles {
        for ia in t.a_start..t.a_start + t.a_len {
            for ib in t.b_start..t.b_start + t.b_len {
                *cover.entry((ia, ib)).or_default() += 1;
                if !t.self_tile {
                    *cover.entry((ib, ia)).or_default() += 1;
                } else if ia != ib {
                    // Within a self tile every ordered combination is
                    // enumerated by the loop itself.
                }
            }
        }
    }
    for i in 0..positions.len() {
        for j in 0..positions.len() {
            let d2 = hacc_tree::dist_sq_periodic(&positions[i], &positions[j], box_size);
            if d2 <= c2 {
                let key = (slot_of[i], slot_of[j]);
                match cover.get(&key) {
                    Some(&1) => {}
                    Some(&k) => return Err(format!("pair {i}->{j} covered {k} times")),
                    None => return Err(format!("pair {i}->{j} not covered")),
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, box_size: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                [
                    rng.gen_range(0.0..box_size),
                    rng.gen_range(0.0..box_size),
                    rng.gen_range(0.0..box_size),
                ]
            })
            .collect()
    }

    #[test]
    fn tiles_have_bounded_sides() {
        let pts = random_points(300, 10.0, 1);
        let tree = RcbTree::build(&pts, 16);
        let list = InteractionList::build(&tree, 10.0, 2.0);
        let tiles = build_tiles(&tree, &list, 32);
        for t in &tiles {
            assert!(t.a_len >= 1 && t.a_len <= 16);
            assert!(t.b_len >= 1 && t.b_len <= 16);
        }
    }

    #[test]
    fn tiles_cover_every_close_pair_exactly_once() {
        let box_size = 10.0;
        let pts = random_points(120, box_size, 2);
        let tree = RcbTree::build(&pts, 16);
        let cutoff = 1.8;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let tiles = build_tiles(&tree, &list, 32);
        check_tiles_cover(&tiles, &tree, &pts, box_size, cutoff).unwrap();
    }

    #[test]
    fn tiles_cover_with_small_subgroup() {
        let box_size = 8.0;
        let pts = random_points(90, box_size, 3);
        let tree = RcbTree::build(&pts, 16); // leaves larger than h=8 → chunked
        let cutoff = 1.5;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let tiles = build_tiles(&tree, &list, 16);
        check_tiles_cover(&tiles, &tree, &pts, box_size, cutoff).unwrap();
    }

    #[test]
    fn chunk_neighbors_include_self() {
        let pts = random_points(200, 10.0, 4);
        let tree = RcbTree::build(&pts, 16);
        let list = InteractionList::build(&tree, 10.0, 2.0);
        let work = build_chunks(&tree, &list, 32);
        for c in &work.chunks {
            let nbrs =
                &work.neighbors[c.nbr_offset as usize..(c.nbr_offset + c.nbr_count) as usize];
            assert!(
                nbrs.iter()
                    .any(|&(s, l)| s <= c.start && c.start + c.len <= s + l),
                "chunk at {} must neighbor itself",
                c.start
            );
        }
    }

    #[test]
    fn chunks_partition_all_slots() {
        let pts = random_points(157, 10.0, 5);
        let tree = RcbTree::build(&pts, 16);
        let list = InteractionList::build(&tree, 10.0, 1.0);
        let work = build_chunks(&tree, &list, 32);
        let mut covered = vec![false; pts.len()];
        for c in &work.chunks {
            for s in c.start..c.start + c.len {
                assert!(!covered[s as usize], "slot {s} in two chunks");
                covered[s as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn chunk_neighbor_lists_cover_close_pairs() {
        let box_size = 9.0;
        let pts = random_points(80, box_size, 6);
        let tree = RcbTree::build(&pts, 8);
        let cutoff = 1.5;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let work = build_chunks(&tree, &list, 32);
        let mut slot_of = vec![0u32; pts.len()];
        for (slot, &pi) in tree.order.iter().enumerate() {
            slot_of[pi as usize] = slot as u32;
        }
        // chunk containing a slot
        let chunk_of = |slot: u32| {
            work.chunks
                .iter()
                .find(|c| c.start <= slot && slot < c.start + c.len)
                .expect("slot must be in a chunk")
        };
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let d2 = hacc_tree::dist_sq_periodic(&pts[i], &pts[j], box_size);
                if d2 <= cutoff * cutoff {
                    let c = chunk_of(slot_of[i]);
                    let sj = slot_of[j];
                    let nbrs = &work.neighbors
                        [c.nbr_offset as usize..(c.nbr_offset + c.nbr_count) as usize];
                    assert!(
                        nbrs.iter().any(|&(s, l)| s <= sj && sj < s + l),
                        "pair {i}->{j} not covered by chunk neighbors"
                    );
                }
            }
        }
    }
}
