//! The *Geometry* kernel (timer `upGeo`): measures the volumes of gas
//! particles from the number-density sum `n_i = Σ_j W(r_ij, h̄_ij)`, with
//! `V_i = 1/n_i` (finalized by [`crate::finalize::FinalizeGeometry`]).

use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use crate::physics::pair_geometry;
use sycl_sim::{Lanes, Sg};

/// Exchanged field indices.
const F_VALID: usize = 0;
const F_X: usize = 1;
const F_H: usize = 4;

/// Geometry physics definition.
#[derive(Clone)]
pub struct Geometry {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side (position units).
    pub box_size: f32,
}

impl PairPhysics for Geometry {
    fn name(&self) -> &'static str {
        "upGeo"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        vec![self.data.volume.clone()]
    }

    fn n_acc(&self) -> usize {
        1
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        vec![
            valid_f.clone(),
            sg.load_f32(&self.data.pos[0], slots),
            sg.load_f32(&self.data.pos[1], slots),
            sg.load_f32(&self.data.pos[2], slots),
            sg.load_f32(&self.data.h, slots),
        ]
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let g = pair_geometry(
            sg,
            [&own[F_X], &own[F_X + 1], &own[F_X + 2]],
            &own[F_H],
            [&other[F_X], &other[F_X + 1], &other[F_X + 2]],
            &other[F_H],
            self.box_size,
        );
        // Number-density sum, neutralizing padding partners.
        acc[0] = &acc[0] + &(&g.w * &other[F_VALID]);
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        _own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        crate::halfwarp::accumulate(sg, &self.data.volume, slots, &acc[0], mask, atomic);
    }
}
