//! The *Energy* kernel (timers `upBarDu`, `upBarDuF`): the derivative of
//! the specific internal energy,
//!
//! ```text
//!   du_i/dt = Σ_j m_j (P_i/ρ_i² + ½ Π_ij) (v_i − v_j)·Ĝ_ij
//! ```
//!
//! using the same exchanged particle object and pair-antisymmetric
//! gradient as *Acceleration* (the other "register heavy" hot spot).

use crate::acceleration::{load_force_fields, F_A, F_B, F_CS, F_H, F_M, F_PTERM, F_RHO, F_V, F_X};
use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use crate::physics::{corrected_gradient, pair_geometry, viscosity};
use sycl_sim::{Lanes, Sg};

/// Energy physics definition.
#[derive(Clone)]
pub struct Energy {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side.
    pub box_size: f32,
}

impl PairPhysics for Energy {
    fn name(&self) -> &'static str {
        "upBarDu"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        vec![self.data.du_dt.clone()]
    }

    fn n_acc(&self) -> usize {
        1
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        load_force_fields(&self.data, sg, slots, valid_f)
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let g = pair_geometry(
            sg,
            [&own[F_X], &own[F_X + 1], &own[F_X + 2]],
            &own[F_H],
            [&other[F_X], &other[F_X + 1], &other[F_X + 2]],
            &other[F_H],
            self.box_size,
        );
        let grad = corrected_gradient(
            &g,
            &own[F_A],
            [&own[F_B], &own[F_B + 1], &own[F_B + 2]],
            &other[F_A],
            [&other[F_B], &other[F_B + 1], &other[F_B + 2]],
        );
        let visc = viscosity(
            sg,
            &g,
            [&own[F_V], &own[F_V + 1], &own[F_V + 2]],
            [&other[F_V], &other[F_V + 1], &other[F_V + 2]],
            &own[F_CS],
            &other[F_CS],
            &own[F_RHO],
            &other[F_RHO],
        );
        // v_ij·Ĝ with v_ij = v_i − v_j.
        let vx = &own[F_V] - &other[F_V];
        let vy = &own[F_V + 1] - &other[F_V + 1];
        let vz = &own[F_V + 2] - &other[F_V + 2];
        let vdotg = &(&(&vx * &grad[0]) + &(&vy * &grad[1])) + &(&vz * &grad[2]);
        let p = &own[F_PTERM] + &(&visc.pi * 0.5);
        let contrib = &(&p * &other[F_M]) * &vdotg;
        acc[0] = &acc[0] + &contrib;
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        _own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        crate::halfwarp::accumulate(sg, &self.data.du_dt, slots, &acc[0], mask, atomic);
    }
}
