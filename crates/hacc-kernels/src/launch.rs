//! Orchestration of a full hydro step's kernel launches — the seven
//! GPU timers of Figures 9–11 (`upGeo`, `upCor`, `upBarEx`, `upBarAc`,
//! `upBarAcF`, `upBarDu`, `upBarDuF`) plus the short-range gravity kernel.
//!
//! *Acceleration* and *Energy* are launched twice per time step, as in
//! CRK-HACC's predictor/corrector stepping (which is why they carry two
//! timers each in the paper's figures).

use crate::acceleration::Acceleration;
use crate::corrections::Corrections;
use crate::energy::Energy;
use crate::extras::Extras;
use crate::finalize::{
    lane_parallel_instances, FinalizeCorrections, FinalizeEos, FinalizeGeometry,
};
use crate::geometry::Geometry;
use crate::gravity::Gravity;
use crate::pairkernel::{PairKernel, PairPhysics};
use crate::particles::DeviceParticles;
use crate::variant::Variant;
use crate::worklist::{build_chunks, build_tiles, ChunkWork, Tile};
use hacc_telemetry::{FaultInfo, KernelProfile, Recorder};
use hacc_tree::{InteractionList, RcbTree};
use std::sync::Arc;
use sycl_sim::{Device, LaunchConfig, LaunchError, LaunchReport, SgKernel};

/// Work lists for one (tree, cutoff, sub-group size) combination.
#[derive(Clone)]
pub struct WorkLists {
    /// Half-warp tiles.
    pub tiles: Arc<Vec<Tile>>,
    /// Broadcast chunks.
    pub chunks: Arc<ChunkWork>,
}

impl WorkLists {
    /// Builds both work lists.
    pub fn build(tree: &RcbTree, list: &InteractionList, sg_size: usize) -> Self {
        Self {
            tiles: Arc::new(build_tiles(tree, list, sg_size)),
            chunks: Arc::new(build_chunks(tree, list, sg_size)),
        }
    }
}

/// Gravity-kernel parameters (host-fit polynomial force law).
#[derive(Clone, Copy, Debug)]
pub struct GravityParams {
    /// Polynomial coefficients of the long-range complement.
    pub poly: [f32; 6],
    /// Squared cutoff.
    pub r_cut2: f32,
    /// Squared softening.
    pub soft2: f32,
}

/// One timer's launch result.
#[derive(Clone, Debug)]
pub struct TimerReport {
    /// Timer name (upGeo, upCor, …).
    pub timer: String,
    /// Merged launch report (pairwise kernel + its finalize pass).
    pub report: LaunchReport,
    /// Telemetry profile of each individual launch in the bracket.
    pub profiles: Vec<KernelProfile>,
}

fn merge(mut a: LaunchReport, b: LaunchReport) -> LaunchReport {
    a.stats.merge(&b.stats);
    a.local_bytes_per_wg = a.local_bytes_per_wg.max(b.local_bytes_per_wg);
    a.injected_faults += b.injected_faults;
    a
}

/// Retry and fallback policy for resilient kernel launches.
#[derive(Clone, Copy, Debug)]
pub struct LaunchPolicy {
    /// Maximum retries of one launch after a transient failure.
    pub max_retries: u32,
    /// Simulated seconds charged (to the `upRetry` timer) for the first
    /// backoff; doubles per retry.
    pub backoff_base_s: f64,
    /// Whether a persistently faulting variant may fall back along
    /// [`Variant::fallback`] instead of aborting the step.
    pub allow_fallback: bool,
}

impl Default for LaunchPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_s: 1e-6,
            allow_fallback: true,
        }
    }
}

fn fault_info(kind: &str, kernel: &str, variant: &str, detail: String) -> FaultInfo {
    FaultInfo {
        kind: kind.to_string(),
        kernel: kernel.to_string(),
        variant: variant.to_string(),
        detail,
    }
}

/// Launches `kernel` with bounded retry-with-backoff on transient
/// failures. Every injected fault observed here (transient failure,
/// device loss, silent corruption) is surfaced as a `faults.injected`
/// counter increment plus a `Fault` telemetry event, so the counters
/// reconcile one-to-one with the injector's log. Retries charge
/// exponentially growing simulated seconds to the `upRetry` timer and
/// count on `launch.retries`.
pub fn launch_resilient<K: SgKernel>(
    device: &Device,
    kernel: &K,
    n_subgroups: usize,
    cfg: LaunchConfig,
    policy: &LaunchPolicy,
    telemetry: &Recorder,
    variant_label: &str,
) -> Result<LaunchReport, LaunchError> {
    let mut attempt: u32 = 0;
    loop {
        match device.launch(kernel, n_subgroups, cfg) {
            Ok(report) => {
                // Scheduler observability: one sample per parallel
                // launch. Counters, not timers — barrier wait is
                // wall-clock-derived, and the timer stream must stay
                // bit-reproducible across runs. The metrics registry
                // folds these into log-bucketed histograms.
                if let Some(s) = &report.sched {
                    telemetry.counter("sched.queue_depth", s.queue_depth as f64);
                    telemetry.counter("sched.steals", s.steals as f64);
                    telemetry.counter("sched.barrier_wait_ns", s.barrier_wait_ns as f64);
                }
                if report.injected_faults > 0 {
                    telemetry.counter("faults.injected", report.injected_faults as f64);
                    telemetry.fault(
                        "fault.injected",
                        fault_info(
                            "corruption",
                            kernel.name(),
                            variant_label,
                            format!("{} output word(s) corrupted", report.injected_faults),
                        ),
                        report.injected_faults as f64,
                    );
                }
                return Ok(report);
            }
            Err(err @ LaunchError::Transient { .. }) => {
                telemetry.counter("faults.injected", 1.0);
                telemetry.fault(
                    "fault.injected",
                    fault_info(
                        "transient",
                        kernel.name(),
                        variant_label,
                        format!("attempt {attempt}: {err}"),
                    ),
                    1.0,
                );
                if attempt >= policy.max_retries {
                    return Err(err);
                }
                // Simulated backoff: charge the retry budget to its own
                // timer instead of sleeping.
                telemetry.timer("upRetry", policy.backoff_base_s * f64::from(1 << attempt));
                telemetry.counter("launch.retries", 1.0);
                telemetry.fault(
                    "fault.retry",
                    fault_info(
                        "retry",
                        kernel.name(),
                        variant_label,
                        format!("retry {} of {}", attempt + 1, policy.max_retries),
                    ),
                    1.0,
                );
                attempt += 1;
            }
            Err(err @ LaunchError::DeviceLost { .. }) => {
                telemetry.counter("faults.injected", 1.0);
                telemetry.fault(
                    "fault.injected",
                    fault_info("device-lost", kernel.name(), variant_label, err.to_string()),
                    1.0,
                );
                return Err(err);
            }
            // Config errors are programmer mistakes, not injected faults:
            // no fault accounting, just propagate.
            Err(err) => return Err(err),
        }
    }
}

/// Launches one pairwise kernel resiliently, walking the variant
/// fallback chain when the active variant persistently faults on this
/// device. On success `variant` holds the variant that actually ran, so
/// the rest of the step keeps using it.
fn launch_pair_resilient<P: PairPhysics + Clone>(
    device: &Device,
    physics: P,
    work: &WorkLists,
    variant: &mut Variant,
    cfg: LaunchConfig,
    policy: &LaunchPolicy,
    telemetry: &Recorder,
) -> Result<LaunchReport, LaunchError> {
    loop {
        let blocked = device
            .fault
            .as_ref()
            .is_some_and(|inj| inj.variant_blocked(physics.name(), variant.label()));
        if blocked {
            telemetry.counter("faults.injected", 1.0);
            telemetry.fault(
                "fault.injected",
                fault_info(
                    "persistent-variant",
                    physics.name(),
                    variant.label(),
                    format!("variant {} persistently faults", variant.label()),
                ),
                1.0,
            );
            let next = if policy.allow_fallback {
                variant.fallback()
            } else {
                None
            };
            match next {
                Some(fb) => {
                    telemetry.counter("launch.fallbacks", 1.0);
                    telemetry.fault(
                        "fault.fallback",
                        fault_info(
                            "fallback",
                            physics.name(),
                            variant.label(),
                            format!("falling back {} -> {}", variant.label(), fb.label()),
                        ),
                        1.0,
                    );
                    *variant = fb;
                    continue;
                }
                None => {
                    return Err(LaunchError::PersistentVariant {
                        kernel: physics.name().to_string(),
                        variant: variant.label().to_string(),
                    });
                }
            }
        }
        let kernel = PairKernel {
            physics: physics.clone(),
            tiles: work.tiles.clone(),
            chunks: work.chunks.clone(),
            variant: *variant,
        };
        let n = kernel.n_instances();
        return launch_resilient(device, &kernel, n, cfg, policy, telemetry, variant.label());
    }
}

/// Closes one timer bracket: emits a `Kernel` telemetry event per
/// launch (tagged with timer bucket and variant), charges the bracket's
/// merged cost-model estimate as a `Timer` event, and returns the
/// combined report. The merged estimate — not the per-launch sum — is
/// what the legacy `Timers` table accumulated, so sinks reproduce it
/// bit-for-bit.
fn finish_bracket(
    device: &Device,
    telemetry: &Recorder,
    variant: Variant,
    timer: &str,
    launches: Vec<LaunchReport>,
) -> TimerReport {
    let mut profiles = Vec::with_capacity(launches.len());
    for report in &launches {
        let mut profile = device.profile(report);
        profile.timer = timer.to_string();
        profile.variant = variant.label().to_string();
        telemetry.kernel(profile.clone());
        profiles.push(profile);
    }
    let report = launches
        .into_iter()
        .reduce(merge)
        .expect("bracket has at least one launch");
    telemetry.timer(timer, device.profile(&report).est_seconds);
    TimerReport {
        timer: timer.to_string(),
        report,
        profiles,
    }
}

/// Runs the complete hydro kernel sequence for one time step under the
/// default [`LaunchPolicy`] and returns the seven timer reports (in the
/// paper's order), leaving the outputs in the device buffers.
pub fn run_hydro_step(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    cfg: LaunchConfig,
    telemetry: &Recorder,
) -> Result<Vec<TimerReport>, LaunchError> {
    run_hydro_step_with_policy(
        device,
        data,
        work,
        variant,
        box_size,
        cfg,
        telemetry,
        &LaunchPolicy::default(),
    )
}

/// [`run_hydro_step`] with an explicit retry/fallback policy.
///
/// A variant that persistently faults mid-step is demoted along its
/// fallback chain and the *demoted* variant carries the rest of the
/// step, so all seven timer brackets stay mutually consistent.
#[allow(clippy::too_many_arguments)]
pub fn run_hydro_step_with_policy(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    cfg: LaunchConfig,
    telemetry: &Recorder,
    policy: &LaunchPolicy,
) -> Result<Vec<TimerReport>, LaunchError> {
    if variant.needs_visa() && !device.toolchain.enable_visa {
        return Err(LaunchError::Config {
            message: "the vISA variant requires the SYCL(vISA) toolchain".to_string(),
        });
    }
    data.clear_accumulators();
    let n = data.n;
    let fin_cfg = cfg;
    let fin_instances = lane_parallel_instances(n, cfg.sg_size);
    let mut active = variant;
    let mut timers = Vec::new();

    // Geometry + finalize.
    {
        let _span = telemetry.span("upGeo");
        let geo = launch_pair_resilient(
            device,
            Geometry {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        let fin = launch_resilient(
            device,
            &FinalizeGeometry { data: data.clone() },
            fin_instances,
            fin_cfg,
            policy,
            telemetry,
            active.label(),
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upGeo",
            vec![geo, fin],
        ));
    }

    // Corrections + finalize.
    {
        let _span = telemetry.span("upCor");
        let cor = launch_pair_resilient(
            device,
            Corrections {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        let fin = launch_resilient(
            device,
            &FinalizeCorrections { data: data.clone() },
            fin_instances,
            fin_cfg,
            policy,
            telemetry,
            active.label(),
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upCor",
            vec![cor, fin],
        ));
    }

    // Extras + EOS finalize.
    {
        let _span = telemetry.span("upBarEx");
        let ext = launch_pair_resilient(
            device,
            Extras {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        let fin = launch_resilient(
            device,
            &FinalizeEos { data: data.clone() },
            fin_instances,
            fin_cfg,
            policy,
            telemetry,
            active.label(),
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upBarEx",
            vec![ext, fin],
        ));
    }

    // Acceleration + Energy, predictor pass.
    {
        let _span = telemetry.span("upBarAc");
        let ac = launch_pair_resilient(
            device,
            Acceleration {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upBarAc",
            vec![ac],
        ));
    }
    {
        let _span = telemetry.span("upBarDu");
        let du = launch_pair_resilient(
            device,
            Energy {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upBarDu",
            vec![du],
        ));
    }

    // Corrector pass: CRK-HACC re-evaluates the momentum and energy
    // derivatives after the half-step update. The state here is the same
    // (the driver owns the half-step push), so clear and re-accumulate.
    for c in 0..3 {
        data.acc[c].fill_f32(0.0);
    }
    data.du_dt.fill_f32(0.0);
    data.dt_min.fill_f32(f32::MAX);
    {
        let _span = telemetry.span("upBarAcF");
        let acf = launch_pair_resilient(
            device,
            Acceleration {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upBarAcF",
            vec![acf],
        ));
    }
    {
        let _span = telemetry.span("upBarDuF");
        let duf = launch_pair_resilient(
            device,
            Energy {
                data: data.clone(),
                box_size,
            },
            work,
            &mut active,
            cfg,
            policy,
            telemetry,
        )?;
        timers.push(finish_bracket(
            device,
            telemetry,
            active,
            "upBarDuF",
            vec![duf],
        ));
    }

    Ok(timers)
}

/// Launches the short-range gravity kernel (its own timer, outside the
/// five hydro hot spots) under the default [`LaunchPolicy`].
pub fn run_gravity(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    params: GravityParams,
    cfg: LaunchConfig,
    telemetry: &Recorder,
) -> Result<TimerReport, LaunchError> {
    run_gravity_with_policy(
        device,
        data,
        work,
        variant,
        box_size,
        params,
        cfg,
        telemetry,
        &LaunchPolicy::default(),
    )
}

/// [`run_gravity`] with an explicit retry/fallback policy.
#[allow(clippy::too_many_arguments)]
pub fn run_gravity_with_policy(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    params: GravityParams,
    cfg: LaunchConfig,
    telemetry: &Recorder,
    policy: &LaunchPolicy,
) -> Result<TimerReport, LaunchError> {
    for c in 0..3 {
        data.acc_grav[c].fill_f32(0.0);
    }
    let _span = telemetry.span("upGrav");
    let mut active = variant;
    let grav = launch_pair_resilient(
        device,
        Gravity {
            data: data.clone(),
            box_size,
            poly: params.poly,
            r_cut2: params.r_cut2,
            soft2: params.soft2,
        },
        work,
        &mut active,
        cfg,
        policy,
        telemetry,
    )?;
    Ok(finish_bracket(
        device,
        telemetry,
        active,
        "upGrav",
        vec![grav],
    ))
}

/// The paper's seven hydro timer names, in presentation order.
pub const HYDRO_TIMERS: [&str; 7] = [
    "upGeo", "upCor", "upBarEx", "upBarAc", "upBarAcF", "upBarDu", "upBarDuF",
];

/// The gravity timer name (outside the seven hydro hot spots).
pub const GRAVITY_TIMER: &str = "upGrav";

/// A per-timer launch plan: which (variant, launch config) each kernel
/// bracket runs with. Built by the autotuner from cached winners; a
/// uniform plan reproduces the classic single-choice step exactly.
#[derive(Clone, Debug)]
pub struct StepPlan {
    default: (Variant, LaunchConfig),
    per_timer: std::collections::BTreeMap<String, (Variant, LaunchConfig)>,
}

impl StepPlan {
    /// A plan that uses one (variant, config) for every bracket —
    /// equivalent to the untuned step.
    pub fn uniform(variant: Variant, cfg: LaunchConfig) -> Self {
        Self {
            default: (variant, cfg),
            per_timer: std::collections::BTreeMap::new(),
        }
    }

    /// Overrides the choice for one timer.
    pub fn set(&mut self, timer: &str, variant: Variant, cfg: LaunchConfig) {
        self.per_timer.insert(timer.to_string(), (variant, cfg));
    }

    /// The choice for a timer (the default when not overridden).
    pub fn choice(&self, timer: &str) -> (Variant, LaunchConfig) {
        self.per_timer.get(timer).copied().unwrap_or(self.default)
    }

    /// Every distinct sub-group size the plan launches with — the sizes
    /// a [`WorkSet`] must cover.
    pub fn sg_sizes(&self) -> std::collections::BTreeSet<usize> {
        let mut s = std::collections::BTreeSet::new();
        s.insert(self.default.1.sg_size);
        for (_, cfg) in self.per_timer.values() {
            s.insert(cfg.sg_size);
        }
        s
    }
}

/// Work lists keyed by sub-group size, for plans that tune the
/// sub-group size per kernel. All sizes share one tree (the tree is
/// built once per step; re-partitioning per kernel is not a real
/// option), so per-size lists only re-pack the same leaves into tiles
/// and chunks.
#[derive(Clone, Default)]
pub struct WorkSet {
    by_sg: std::collections::BTreeMap<usize, WorkLists>,
}

impl WorkSet {
    /// Builds work lists for every requested sub-group size.
    pub fn build<I: IntoIterator<Item = usize>>(
        tree: &RcbTree,
        list: &InteractionList,
        sg_sizes: I,
    ) -> Self {
        let mut by_sg = std::collections::BTreeMap::new();
        for sg in sg_sizes {
            by_sg
                .entry(sg)
                .or_insert_with(|| WorkLists::build(tree, list, sg));
        }
        Self { by_sg }
    }

    /// Wraps an already-built list for a single sub-group size.
    pub fn single(sg_size: usize, work: WorkLists) -> Self {
        let mut by_sg = std::collections::BTreeMap::new();
        by_sg.insert(sg_size, work);
        Self { by_sg }
    }

    /// The work lists for a sub-group size, if built.
    pub fn get(&self, sg_size: usize) -> Option<&WorkLists> {
        self.by_sg.get(&sg_size)
    }
}

/// Runs one planned timer bracket: the pairwise kernel under the plan's
/// (variant, config) for this timer, plus an optional lane-parallel
/// finalize pass. Fallback on a persistently faulting variant is local
/// to the bracket — each bracket restarts from its *planned* variant,
/// unlike the untuned step where one demotion carries forward.
fn planned_bracket<P: PairPhysics + Clone, F: SgKernel>(
    device: &Device,
    works: &WorkSet,
    plan: &StepPlan,
    timer: &str,
    physics: P,
    finalize: Option<&F>,
    n: usize,
    telemetry: &Recorder,
    policy: &LaunchPolicy,
) -> Result<TimerReport, LaunchError> {
    let (variant, cfg) = plan.choice(timer);
    if variant.needs_visa() && !device.toolchain.enable_visa {
        return Err(LaunchError::Config {
            message: format!("timer {timer}: the vISA variant requires the SYCL(vISA) toolchain"),
        });
    }
    let work = works.get(cfg.sg_size).ok_or_else(|| LaunchError::Config {
        message: format!(
            "timer {timer}: no work lists built for sub-group size {}",
            cfg.sg_size
        ),
    })?;
    let _span = telemetry.span(timer);
    let mut active = variant;
    let main = launch_pair_resilient(device, physics, work, &mut active, cfg, policy, telemetry)?;
    let mut launches = vec![main];
    if let Some(fin) = finalize {
        launches.push(launch_resilient(
            device,
            fin,
            lane_parallel_instances(n, cfg.sg_size),
            cfg,
            policy,
            telemetry,
            active.label(),
        )?);
    }
    Ok(finish_bracket(device, telemetry, active, timer, launches))
}

/// Runs the hydro step under a per-timer [`StepPlan`] — the tuned
/// counterpart of [`run_hydro_step_with_policy`]. With a uniform plan
/// and a matching [`WorkSet`] the launch sequence, telemetry stream and
/// physics are identical to the untuned step.
pub fn run_hydro_step_planned(
    device: &Device,
    data: &DeviceParticles,
    works: &WorkSet,
    plan: &StepPlan,
    box_size: f32,
    telemetry: &Recorder,
    policy: &LaunchPolicy,
) -> Result<Vec<TimerReport>, LaunchError> {
    data.clear_accumulators();
    let n = data.n;
    let mut timers = vec![planned_bracket(
        device,
        works,
        plan,
        "upGeo",
        Geometry {
            data: data.clone(),
            box_size,
        },
        Some(&FinalizeGeometry { data: data.clone() }),
        n,
        telemetry,
        policy,
    )?];
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upCor",
        Corrections {
            data: data.clone(),
            box_size,
        },
        Some(&FinalizeCorrections { data: data.clone() }),
        n,
        telemetry,
        policy,
    )?);
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upBarEx",
        Extras {
            data: data.clone(),
            box_size,
        },
        Some(&FinalizeEos { data: data.clone() }),
        n,
        telemetry,
        policy,
    )?);
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upBarAc",
        Acceleration {
            data: data.clone(),
            box_size,
        },
        Option::<&FinalizeGeometry>::None,
        n,
        telemetry,
        policy,
    )?);
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upBarDu",
        Energy {
            data: data.clone(),
            box_size,
        },
        Option::<&FinalizeGeometry>::None,
        n,
        telemetry,
        policy,
    )?);
    // Corrector pass (see run_hydro_step_with_policy).
    for c in 0..3 {
        data.acc[c].fill_f32(0.0);
    }
    data.du_dt.fill_f32(0.0);
    data.dt_min.fill_f32(f32::MAX);
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upBarAcF",
        Acceleration {
            data: data.clone(),
            box_size,
        },
        Option::<&FinalizeGeometry>::None,
        n,
        telemetry,
        policy,
    )?);
    timers.push(planned_bracket(
        device,
        works,
        plan,
        "upBarDuF",
        Energy {
            data: data.clone(),
            box_size,
        },
        Option::<&FinalizeGeometry>::None,
        n,
        telemetry,
        policy,
    )?);
    Ok(timers)
}

/// Runs the short-range gravity kernel under a [`StepPlan`]'s
/// [`GRAVITY_TIMER`] choice — the tuned counterpart of
/// [`run_gravity_with_policy`].
pub fn run_gravity_planned(
    device: &Device,
    data: &DeviceParticles,
    works: &WorkSet,
    plan: &StepPlan,
    box_size: f32,
    params: GravityParams,
    telemetry: &Recorder,
    policy: &LaunchPolicy,
) -> Result<TimerReport, LaunchError> {
    for c in 0..3 {
        data.acc_grav[c].fill_f32(0.0);
    }
    let (variant, cfg) = plan.choice(GRAVITY_TIMER);
    if variant.needs_visa() && !device.toolchain.enable_visa {
        return Err(LaunchError::Config {
            message: format!(
                "timer {GRAVITY_TIMER}: the vISA variant requires the SYCL(vISA) toolchain"
            ),
        });
    }
    let work = works.get(cfg.sg_size).ok_or_else(|| LaunchError::Config {
        message: format!(
            "timer {GRAVITY_TIMER}: no work lists built for sub-group size {}",
            cfg.sg_size
        ),
    })?;
    let _span = telemetry.span(GRAVITY_TIMER);
    let mut active = variant;
    let grav = launch_pair_resilient(
        device,
        Gravity {
            data: data.clone(),
            box_size,
            poly: params.poly,
            r_cut2: params.r_cut2,
            soft2: params.soft2,
        },
        work,
        &mut active,
        cfg,
        policy,
        telemetry,
    )?;
    Ok(finish_bracket(
        device,
        telemetry,
        active,
        GRAVITY_TIMER,
        vec![grav],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_telemetry::{counter_total, EventKind};
    use std::sync::Arc as StdArc;
    use sycl_sim::{FaultConfig, FaultInjector, GpuArch, Sg, Toolchain};

    fn faulty_device(cfg: FaultConfig) -> (Device, StdArc<FaultInjector>) {
        let inj = StdArc::new(FaultInjector::new(cfg));
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl())
            .unwrap()
            .with_fault_injector(inj.clone());
        (dev, inj)
    }

    #[test]
    fn parallel_launches_emit_scheduler_counters() {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let kernel = |sg: &mut Sg| {
            let x = sg.splat_f32(2.0);
            let _ = x.rsqrt();
        };
        let policy = LaunchPolicy::default();

        let rec = Recorder::new();
        let cfg = LaunchConfig::defaults_for(&dev.arch).with_threads(4);
        launch_resilient(&dev, &kernel, 256, cfg, &policy, &rec, "Select").unwrap();
        let events = rec.events();
        assert!(
            counter_total(&events, "sched.queue_depth") >= 1.0,
            "parallel launch samples the claim-queue depth"
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "sched.barrier_wait_ns")
                .count(),
            1,
            "one barrier-wait sample per launch"
        );

        // The serial reference path has no scheduler and must emit no
        // sched metrics at all.
        let rec2 = Recorder::new();
        let ser = LaunchConfig::defaults_for(&dev.arch).deterministic();
        launch_resilient(&dev, &kernel, 256, ser, &policy, &rec2, "Select").unwrap();
        assert!(rec2.events().iter().all(|e| !e.name.starts_with("sched.")));
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        // Sweep seeds: at rate 0.5 with generous retries, every seed must
        // eventually succeed, counters must reconcile with the injector's
        // log, and at least one seed must actually exercise the retry path.
        let mut total_retries = 0.0;
        for seed in 0..16 {
            let (dev, inj) = faulty_device(FaultConfig {
                seed,
                transient_rate: 0.5,
                ..FaultConfig::default()
            });
            let rec = Recorder::new();
            let policy = LaunchPolicy {
                max_retries: 16,
                ..LaunchPolicy::default()
            };
            let kernel = |sg: &mut Sg| {
                let x = sg.splat_f32(2.0);
                let _ = x.rsqrt();
            };
            let cfg = LaunchConfig::defaults_for(&dev.arch).deterministic();
            let report =
                launch_resilient(&dev, &kernel, 4, cfg, &policy, &rec, "Select").expect("recovers");
            assert_eq!(report.stats.n_subgroups, 4);
            let events = rec.events();
            let injected = counter_total(&events, "faults.injected");
            let retries = counter_total(&events, "launch.retries");
            assert_eq!(injected as usize, inj.injected(), "counters reconcile");
            assert_eq!(retries, injected, "every transient was retried");
            total_retries += retries;
        }
        assert!(
            total_retries >= 1.0,
            "rate 0.5 over 16 seeds must fault at least once"
        );
    }

    #[test]
    fn retries_are_bounded() {
        let (dev, inj) = faulty_device(FaultConfig {
            transient_rate: 1.0,
            ..FaultConfig::default()
        });
        let rec = Recorder::new();
        let policy = LaunchPolicy {
            max_retries: 2,
            ..LaunchPolicy::default()
        };
        let kernel = |_: &mut Sg| {};
        let cfg = LaunchConfig::defaults_for(&dev.arch).deterministic();
        let err = launch_resilient(&dev, &kernel, 1, cfg, &policy, &rec, "Select").unwrap_err();
        assert!(matches!(err, LaunchError::Transient { .. }));
        // Initial attempt + 2 retries = 3 injected faults, 2 retries.
        assert_eq!(inj.injected(), 3);
        let events = rec.events();
        assert_eq!(counter_total(&events, "faults.injected"), 3.0);
        assert_eq!(counter_total(&events, "launch.retries"), 2.0);
    }

    fn hydro_setup(sg: usize) -> (DeviceParticles, WorkLists) {
        let pos: Vec<[f64; 3]> = (0..16)
            .map(|i| {
                [
                    1.0 + (i % 4) as f64,
                    1.0 + ((i / 4) % 4) as f64,
                    1.0 + (i / 16) as f64,
                ]
            })
            .collect();
        let hp = crate::particles::HostParticles {
            pos: pos.clone(),
            vel: vec![[0.1, 0.0, 0.0]; 16],
            mass: vec![1.0; 16],
            h: vec![1.2; 16],
            u: vec![1.0; 16],
        };
        let tree = RcbTree::build(&hp.pos, sg / 2);
        let list = InteractionList::build(&tree, 6.0, 2.5);
        let work = WorkLists::build(&tree, &list, sg);
        let data = DeviceParticles::upload(&hp.permuted(&tree.order));
        (data, work)
    }

    #[test]
    fn persistent_variant_falls_back_down_the_chain() {
        let (dev, inj) = faulty_device(FaultConfig {
            persistent_variants: vec!["Select".to_string(), "Memory, 32-bit".to_string()],
            ..FaultConfig::default()
        });
        let rec = Recorder::new();
        let (data, work) = hydro_setup(32);
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        let timers = run_hydro_step(&dev, &data, &work, Variant::Select, 6.0, cfg, &rec)
            .expect("fallback chain absorbs the persistent fault");
        assert_eq!(timers.len(), 7);
        // Select and Memory32 are both blocked, so everything ran as
        // MemoryObject — including the brackets after the first demotion.
        for t in &timers {
            for p in &t.profiles {
                assert_eq!(p.variant, "Memory, Object", "timer {}", t.timer);
            }
        }
        let events = rec.events();
        // Two demotions (Select -> Memory32 -> MemoryObject), consulted
        // and recorded once each at the first bracket.
        assert_eq!(counter_total(&events, "launch.fallbacks"), 2.0);
        assert_eq!(
            counter_total(&events, "faults.injected") as usize,
            inj.injected()
        );
    }

    #[test]
    fn fallback_disabled_fails_with_a_structured_error() {
        let (dev, _inj) = faulty_device(FaultConfig {
            persistent_variants: vec!["Select".to_string()],
            ..FaultConfig::default()
        });
        let rec = Recorder::new();
        let (data, work) = hydro_setup(32);
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        let policy = LaunchPolicy {
            allow_fallback: false,
            ..LaunchPolicy::default()
        };
        let err = run_hydro_step_with_policy(
            &dev,
            &data,
            &work,
            Variant::Select,
            6.0,
            cfg,
            &rec,
            &policy,
        )
        .unwrap_err();
        match err {
            LaunchError::PersistentVariant { kernel, variant } => {
                assert_eq!(kernel, "upGeo");
                assert_eq!(variant, "Select");
            }
            other => panic!("expected PersistentVariant, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_injector_emits_no_fault_events() {
        let (dev, inj) = faulty_device(FaultConfig::default());
        let plain = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        let rec_faulty = Recorder::new();
        let rec_plain = Recorder::new();
        let (data, work) = hydro_setup(32);
        let a = run_hydro_step(&dev, &data, &work, Variant::Select, 6.0, cfg, &rec_faulty).unwrap();
        let (data2, work2) = hydro_setup(32);
        let b = run_hydro_step(
            &plain,
            &data2,
            &work2,
            Variant::Select,
            6.0,
            cfg,
            &rec_plain,
        )
        .unwrap();
        assert_eq!(inj.injected(), 0);
        // Event streams are structurally identical: same kinds, names,
        // and values in the same order (timestamps excepted).
        let ea = rec_faulty.events();
        let eb = rec_plain.events();
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.name, y.name);
            assert_eq!(x.value, y.value);
            assert!(x.kind != EventKind::Fault);
        }
        // And the physics is bit-identical.
        assert_eq!(data.rho.to_u32_vec(), data2.rho.to_u32_vec());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn uniform_plan_reproduces_the_untuned_step_exactly() {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        let policy = LaunchPolicy::default();

        let (data_a, work_a) = hydro_setup(32);
        let rec_a = Recorder::new();
        run_hydro_step(&dev, &data_a, &work_a, Variant::Select, 6.0, cfg, &rec_a).unwrap();

        let (data_b, work_b) = hydro_setup(32);
        let rec_b = Recorder::new();
        let plan = StepPlan::uniform(Variant::Select, cfg);
        let works = WorkSet::single(32, work_b);
        run_hydro_step_planned(&dev, &data_b, &works, &plan, 6.0, &rec_b, &policy).unwrap();

        // Physics is bit-identical and the telemetry streams are
        // structurally identical (same kinds/names/values in order).
        assert_eq!(data_a.rho.to_u32_vec(), data_b.rho.to_u32_vec());
        assert_eq!(data_a.du_dt.to_u32_vec(), data_b.du_dt.to_u32_vec());
        let ea = rec_a.events();
        let eb = rec_b.events();
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!((&x.kind, &x.name, x.value), (&y.kind, &y.name, y.value));
        }
    }

    #[test]
    fn mixed_plan_launches_each_timer_with_its_own_knobs() {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let base = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(64)
            .deterministic();
        let policy = LaunchPolicy::default();
        let pos: Vec<[f64; 3]> = (0..16)
            .map(|i| {
                [
                    1.0 + (i % 4) as f64,
                    1.0 + ((i / 4) % 4) as f64,
                    1.0 + (i / 16) as f64,
                ]
            })
            .collect();
        let hp = crate::particles::HostParticles {
            pos: pos.clone(),
            vel: vec![[0.1, 0.0, 0.0]; 16],
            mass: vec![1.0; 16],
            h: vec![1.2; 16],
            u: vec![1.0; 16],
        };
        let tree = RcbTree::build(&hp.pos, 32);
        let list = InteractionList::build(&tree, 6.0, 2.5);
        let data = DeviceParticles::upload(&hp.permuted(&tree.order));

        let mut plan = StepPlan::uniform(Variant::Select, base);
        plan.set(
            "upBarAc",
            Variant::Broadcast,
            base.with_sg_size(32).with_wg_size(256),
        );
        plan.set("upBarAcF", Variant::Memory32, base.with_sg_size(32));
        assert_eq!(
            plan.sg_sizes().into_iter().collect::<Vec<_>>(),
            vec![32, 64]
        );
        let works = WorkSet::build(&tree, &list, plan.sg_sizes());
        let rec = Recorder::new();
        let timers =
            run_hydro_step_planned(&dev, &data, &works, &plan, 6.0, &rec, &policy).unwrap();
        assert_eq!(timers.len(), 7);
        for t in &timers {
            let (want_variant, want_cfg) = plan.choice(&t.timer);
            assert_eq!(t.report.sg_size, want_cfg.sg_size, "timer {}", t.timer);
            for p in &t.profiles {
                assert_eq!(p.variant, want_variant.label(), "timer {}", t.timer);
            }
        }
        assert_eq!(timers[3].report.wg_size, 256);
    }

    #[test]
    fn planned_step_without_worklists_for_a_size_is_a_config_error() {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        let (data, work) = hydro_setup(32);
        let mut plan = StepPlan::uniform(Variant::Select, cfg);
        plan.set("upCor", Variant::Select, cfg.with_sg_size(64));
        let works = WorkSet::single(32, work);
        let err = run_hydro_step_planned(
            &dev,
            &data,
            &works,
            &plan,
            6.0,
            &Recorder::new(),
            &LaunchPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, LaunchError::Config { .. }));
    }

    #[test]
    fn corruption_is_counted_and_reconciles() {
        let (dev, inj) = faulty_device(FaultConfig {
            seed: 5,
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        });
        let rec = Recorder::new();
        let (data, work) = hydro_setup(32);
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        run_hydro_step(&dev, &data, &work, Variant::Select, 6.0, cfg, &rec).unwrap();
        let events = rec.events();
        let injected = counter_total(&events, "faults.injected");
        assert!(injected >= 7.0, "every pair kernel corrupts at rate 1");
        assert_eq!(injected as usize, inj.injected());
        assert_eq!(
            inj.injected_of(sycl_sim::FaultKind::Corruption),
            inj.injected()
        );
    }
}
