//! Orchestration of a full hydro step's kernel launches — the seven
//! GPU timers of Figures 9–11 (`upGeo`, `upCor`, `upBarEx`, `upBarAc`,
//! `upBarAcF`, `upBarDu`, `upBarDuF`) plus the short-range gravity kernel.
//!
//! *Acceleration* and *Energy* are launched twice per time step, as in
//! CRK-HACC's predictor/corrector stepping (which is why they carry two
//! timers each in the paper's figures).

use crate::acceleration::Acceleration;
use crate::corrections::Corrections;
use crate::energy::Energy;
use crate::extras::Extras;
use crate::finalize::{
    lane_parallel_instances, FinalizeCorrections, FinalizeEos, FinalizeGeometry,
};
use crate::geometry::Geometry;
use crate::gravity::Gravity;
use crate::pairkernel::{PairKernel, PairPhysics};
use crate::particles::DeviceParticles;
use crate::variant::Variant;
use crate::worklist::{build_chunks, build_tiles, ChunkWork, Tile};
use hacc_tree::{InteractionList, RcbTree};
use std::sync::Arc;
use sycl_sim::{Device, LaunchConfig, LaunchReport};

/// Work lists for one (tree, cutoff, sub-group size) combination.
#[derive(Clone)]
pub struct WorkLists {
    /// Half-warp tiles.
    pub tiles: Arc<Vec<Tile>>,
    /// Broadcast chunks.
    pub chunks: Arc<ChunkWork>,
}

impl WorkLists {
    /// Builds both work lists.
    pub fn build(tree: &RcbTree, list: &InteractionList, sg_size: usize) -> Self {
        Self {
            tiles: Arc::new(build_tiles(tree, list, sg_size)),
            chunks: Arc::new(build_chunks(tree, list, sg_size)),
        }
    }
}

/// Gravity-kernel parameters (host-fit polynomial force law).
#[derive(Clone, Copy, Debug)]
pub struct GravityParams {
    /// Polynomial coefficients of the long-range complement.
    pub poly: [f32; 6],
    /// Squared cutoff.
    pub r_cut2: f32,
    /// Squared softening.
    pub soft2: f32,
}

/// One timer's launch result.
#[derive(Clone, Debug)]
pub struct TimerReport {
    /// Timer name (upGeo, upCor, …).
    pub timer: String,
    /// Merged launch report (pairwise kernel + its finalize pass).
    pub report: LaunchReport,
}

fn merge(mut a: LaunchReport, b: LaunchReport) -> LaunchReport {
    a.stats.merge(&b.stats);
    a.local_bytes_per_wg = a.local_bytes_per_wg.max(b.local_bytes_per_wg);
    a
}

/// Launches one pairwise kernel under the configured variant.
fn launch_pair<P: PairPhysics>(
    device: &Device,
    physics: P,
    work: &WorkLists,
    variant: Variant,
    cfg: LaunchConfig,
) -> LaunchReport {
    let kernel = PairKernel {
        physics,
        tiles: work.tiles.clone(),
        chunks: work.chunks.clone(),
        variant,
    };
    device.launch(&kernel, kernel.n_instances(), cfg)
}

/// Runs the complete hydro kernel sequence for one time step and returns
/// the seven timer reports (in the paper's order), leaving the outputs in
/// the device buffers.
pub fn run_hydro_step(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    cfg: LaunchConfig,
) -> Vec<TimerReport> {
    assert!(
        !variant.needs_visa() || device.toolchain.enable_visa,
        "the vISA variant requires the SYCL(vISA) toolchain"
    );
    data.clear_accumulators();
    let n = data.n;
    let fin_cfg = cfg;
    let fin_instances = lane_parallel_instances(n, cfg.sg_size);
    let mut timers = Vec::new();

    // Geometry + finalize.
    let geo = launch_pair(device, Geometry { data: data.clone(), box_size }, work, variant, cfg);
    let fin = device.launch(&FinalizeGeometry { data: data.clone() }, fin_instances, fin_cfg);
    timers.push(TimerReport { timer: "upGeo".into(), report: merge(geo, fin) });

    // Corrections + finalize.
    let cor =
        launch_pair(device, Corrections { data: data.clone(), box_size }, work, variant, cfg);
    let fin = device.launch(&FinalizeCorrections { data: data.clone() }, fin_instances, fin_cfg);
    timers.push(TimerReport { timer: "upCor".into(), report: merge(cor, fin) });

    // Extras + EOS finalize.
    let ext = launch_pair(device, Extras { data: data.clone(), box_size }, work, variant, cfg);
    let fin = device.launch(&FinalizeEos { data: data.clone() }, fin_instances, fin_cfg);
    timers.push(TimerReport { timer: "upBarEx".into(), report: merge(ext, fin) });

    // Acceleration + Energy, predictor pass.
    let ac =
        launch_pair(device, Acceleration { data: data.clone(), box_size }, work, variant, cfg);
    timers.push(TimerReport { timer: "upBarAc".into(), report: ac });
    let du = launch_pair(device, Energy { data: data.clone(), box_size }, work, variant, cfg);
    timers.push(TimerReport { timer: "upBarDu".into(), report: du });

    // Corrector pass: CRK-HACC re-evaluates the momentum and energy
    // derivatives after the half-step update. The state here is the same
    // (the driver owns the half-step push), so clear and re-accumulate.
    for c in 0..3 {
        data.acc[c].fill_f32(0.0);
    }
    data.du_dt.fill_f32(0.0);
    data.dt_min.fill_f32(f32::MAX);
    let acf =
        launch_pair(device, Acceleration { data: data.clone(), box_size }, work, variant, cfg);
    timers.push(TimerReport { timer: "upBarAcF".into(), report: acf });
    let duf = launch_pair(device, Energy { data: data.clone(), box_size }, work, variant, cfg);
    timers.push(TimerReport { timer: "upBarDuF".into(), report: duf });

    timers
}

/// Launches the short-range gravity kernel (its own timer, outside the
/// five hydro hot spots).
pub fn run_gravity(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    params: GravityParams,
    cfg: LaunchConfig,
) -> TimerReport {
    for c in 0..3 {
        data.acc_grav[c].fill_f32(0.0);
    }
    let grav = launch_pair(
        device,
        Gravity {
            data: data.clone(),
            box_size,
            poly: params.poly,
            r_cut2: params.r_cut2,
            soft2: params.soft2,
        },
        work,
        variant,
        cfg,
    );
    TimerReport { timer: "upGrav".into(), report: grav }
}

/// The paper's seven hydro timer names, in presentation order.
pub const HYDRO_TIMERS: [&str; 7] =
    ["upGeo", "upCor", "upBarEx", "upBarAc", "upBarAcF", "upBarDu", "upBarDuF"];
