//! Orchestration of a full hydro step's kernel launches — the seven
//! GPU timers of Figures 9–11 (`upGeo`, `upCor`, `upBarEx`, `upBarAc`,
//! `upBarAcF`, `upBarDu`, `upBarDuF`) plus the short-range gravity kernel.
//!
//! *Acceleration* and *Energy* are launched twice per time step, as in
//! CRK-HACC's predictor/corrector stepping (which is why they carry two
//! timers each in the paper's figures).

use crate::acceleration::Acceleration;
use crate::corrections::Corrections;
use crate::energy::Energy;
use crate::extras::Extras;
use crate::finalize::{
    lane_parallel_instances, FinalizeCorrections, FinalizeEos, FinalizeGeometry,
};
use crate::geometry::Geometry;
use crate::gravity::Gravity;
use crate::pairkernel::{PairKernel, PairPhysics};
use crate::particles::DeviceParticles;
use crate::variant::Variant;
use crate::worklist::{build_chunks, build_tiles, ChunkWork, Tile};
use hacc_telemetry::{KernelProfile, Recorder};
use hacc_tree::{InteractionList, RcbTree};
use std::sync::Arc;
use sycl_sim::{Device, LaunchConfig, LaunchReport};

/// Work lists for one (tree, cutoff, sub-group size) combination.
#[derive(Clone)]
pub struct WorkLists {
    /// Half-warp tiles.
    pub tiles: Arc<Vec<Tile>>,
    /// Broadcast chunks.
    pub chunks: Arc<ChunkWork>,
}

impl WorkLists {
    /// Builds both work lists.
    pub fn build(tree: &RcbTree, list: &InteractionList, sg_size: usize) -> Self {
        Self {
            tiles: Arc::new(build_tiles(tree, list, sg_size)),
            chunks: Arc::new(build_chunks(tree, list, sg_size)),
        }
    }
}

/// Gravity-kernel parameters (host-fit polynomial force law).
#[derive(Clone, Copy, Debug)]
pub struct GravityParams {
    /// Polynomial coefficients of the long-range complement.
    pub poly: [f32; 6],
    /// Squared cutoff.
    pub r_cut2: f32,
    /// Squared softening.
    pub soft2: f32,
}

/// One timer's launch result.
#[derive(Clone, Debug)]
pub struct TimerReport {
    /// Timer name (upGeo, upCor, …).
    pub timer: String,
    /// Merged launch report (pairwise kernel + its finalize pass).
    pub report: LaunchReport,
    /// Telemetry profile of each individual launch in the bracket.
    pub profiles: Vec<KernelProfile>,
}

fn merge(mut a: LaunchReport, b: LaunchReport) -> LaunchReport {
    a.stats.merge(&b.stats);
    a.local_bytes_per_wg = a.local_bytes_per_wg.max(b.local_bytes_per_wg);
    a
}

/// Closes one timer bracket: emits a `Kernel` telemetry event per
/// launch (tagged with timer bucket and variant), charges the bracket's
/// merged cost-model estimate as a `Timer` event, and returns the
/// combined report. The merged estimate — not the per-launch sum — is
/// what the legacy `Timers` table accumulated, so sinks reproduce it
/// bit-for-bit.
fn finish_bracket(
    device: &Device,
    telemetry: &Recorder,
    variant: Variant,
    timer: &str,
    launches: Vec<LaunchReport>,
) -> TimerReport {
    let mut profiles = Vec::with_capacity(launches.len());
    for report in &launches {
        let mut profile = device.profile(report);
        profile.timer = timer.to_string();
        profile.variant = variant.label().to_string();
        telemetry.kernel(profile.clone());
        profiles.push(profile);
    }
    let report = launches
        .into_iter()
        .reduce(merge)
        .expect("bracket has at least one launch");
    telemetry.timer(timer, device.profile(&report).est_seconds);
    TimerReport {
        timer: timer.to_string(),
        report,
        profiles,
    }
}

/// Launches one pairwise kernel under the configured variant.
fn launch_pair<P: PairPhysics>(
    device: &Device,
    physics: P,
    work: &WorkLists,
    variant: Variant,
    cfg: LaunchConfig,
) -> LaunchReport {
    let kernel = PairKernel {
        physics,
        tiles: work.tiles.clone(),
        chunks: work.chunks.clone(),
        variant,
    };
    device.launch(&kernel, kernel.n_instances(), cfg)
}

/// Runs the complete hydro kernel sequence for one time step and returns
/// the seven timer reports (in the paper's order), leaving the outputs in
/// the device buffers.
pub fn run_hydro_step(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    cfg: LaunchConfig,
    telemetry: &Recorder,
) -> Vec<TimerReport> {
    assert!(
        !variant.needs_visa() || device.toolchain.enable_visa,
        "the vISA variant requires the SYCL(vISA) toolchain"
    );
    data.clear_accumulators();
    let n = data.n;
    let fin_cfg = cfg;
    let fin_instances = lane_parallel_instances(n, cfg.sg_size);
    let mut timers = Vec::new();
    let bracket = |timer: &str, launches: Vec<LaunchReport>| {
        finish_bracket(device, telemetry, variant, timer, launches)
    };

    // Geometry + finalize.
    {
        let _span = telemetry.span("upGeo");
        let geo = launch_pair(
            device,
            Geometry {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        let fin = device.launch(
            &FinalizeGeometry { data: data.clone() },
            fin_instances,
            fin_cfg,
        );
        timers.push(bracket("upGeo", vec![geo, fin]));
    }

    // Corrections + finalize.
    {
        let _span = telemetry.span("upCor");
        let cor = launch_pair(
            device,
            Corrections {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        let fin = device.launch(
            &FinalizeCorrections { data: data.clone() },
            fin_instances,
            fin_cfg,
        );
        timers.push(bracket("upCor", vec![cor, fin]));
    }

    // Extras + EOS finalize.
    {
        let _span = telemetry.span("upBarEx");
        let ext = launch_pair(
            device,
            Extras {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        let fin = device.launch(&FinalizeEos { data: data.clone() }, fin_instances, fin_cfg);
        timers.push(bracket("upBarEx", vec![ext, fin]));
    }

    // Acceleration + Energy, predictor pass.
    {
        let _span = telemetry.span("upBarAc");
        let ac = launch_pair(
            device,
            Acceleration {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        timers.push(bracket("upBarAc", vec![ac]));
    }
    {
        let _span = telemetry.span("upBarDu");
        let du = launch_pair(
            device,
            Energy {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        timers.push(bracket("upBarDu", vec![du]));
    }

    // Corrector pass: CRK-HACC re-evaluates the momentum and energy
    // derivatives after the half-step update. The state here is the same
    // (the driver owns the half-step push), so clear and re-accumulate.
    for c in 0..3 {
        data.acc[c].fill_f32(0.0);
    }
    data.du_dt.fill_f32(0.0);
    data.dt_min.fill_f32(f32::MAX);
    {
        let _span = telemetry.span("upBarAcF");
        let acf = launch_pair(
            device,
            Acceleration {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        timers.push(bracket("upBarAcF", vec![acf]));
    }
    {
        let _span = telemetry.span("upBarDuF");
        let duf = launch_pair(
            device,
            Energy {
                data: data.clone(),
                box_size,
            },
            work,
            variant,
            cfg,
        );
        timers.push(bracket("upBarDuF", vec![duf]));
    }

    timers
}

/// Launches the short-range gravity kernel (its own timer, outside the
/// five hydro hot spots).
pub fn run_gravity(
    device: &Device,
    data: &DeviceParticles,
    work: &WorkLists,
    variant: Variant,
    box_size: f32,
    params: GravityParams,
    cfg: LaunchConfig,
    telemetry: &Recorder,
) -> TimerReport {
    for c in 0..3 {
        data.acc_grav[c].fill_f32(0.0);
    }
    let _span = telemetry.span("upGrav");
    let grav = launch_pair(
        device,
        Gravity {
            data: data.clone(),
            box_size,
            poly: params.poly,
            r_cut2: params.r_cut2,
            soft2: params.soft2,
        },
        work,
        variant,
        cfg,
    );
    finish_bracket(device, telemetry, variant, "upGrav", vec![grav])
}

/// The paper's seven hydro timer names, in presentation order.
pub const HYDRO_TIMERS: [&str; 7] = [
    "upGeo", "upCor", "upBarEx", "upBarAc", "upBarAcF", "upBarDu", "upBarDuF",
];
