//! Kernel communication variants (paper §5.3–5.4).

use serde::{Deserialize, Serialize};
use sycl_sim::{Lanes, Sg};

/// The five communication variants evaluated in Figures 9–11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// `sycl::select_from_group` XOR shuffle (the out-of-box migration).
    Select,
    /// Work-group local memory, one 32-bit component per exchange.
    Memory32,
    /// Work-group local memory, whole composite object per exchange.
    MemoryObject,
    /// Restructured chunk-parallel kernels using compile-time broadcasts.
    Broadcast,
    /// Inline-vISA butterfly shuffle (Intel only).
    Visa,
}

/// All variants in the paper's presentation order.
pub const ALL_VARIANTS: [Variant; 5] = [
    Variant::Select,
    Variant::Memory32,
    Variant::MemoryObject,
    Variant::Broadcast,
    Variant::Visa,
];

impl Variant {
    /// Label used in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Select => "Select",
            Variant::Memory32 => "Memory, 32-bit",
            Variant::MemoryObject => "Memory, Object",
            Variant::Broadcast => "Broadcast",
            Variant::Visa => "vISA",
        }
    }

    /// Compact identifier (lowercase alphanumeric), used as the variant
    /// axis in the tuning cache where the figure labels' punctuation
    /// would fight the hostile-input charset guard.
    pub fn id(&self) -> &'static str {
        match self {
            Variant::Select => "select",
            Variant::Memory32 => "memory32",
            Variant::MemoryObject => "memoryobject",
            Variant::Broadcast => "broadcast",
            Variant::Visa => "visa",
        }
    }

    /// Parses [`Variant::id`] output.
    pub fn from_id(s: &str) -> Option<Variant> {
        ALL_VARIANTS.into_iter().find(|v| v.id() == s)
    }

    /// Parses [`Variant::label`] output (the figure labels).
    pub fn from_label(s: &str) -> Option<Variant> {
        ALL_VARIANTS.into_iter().find(|v| v.label() == s)
    }

    /// Whether the variant uses the pair-parallel half-warp structure
    /// (`true`) or the chunk-parallel broadcast structure (`false`).
    pub fn is_half_warp(&self) -> bool {
        !matches!(self, Variant::Broadcast)
    }

    /// Whether the variant requires inline vISA support.
    pub fn needs_visa(&self) -> bool {
        matches!(self, Variant::Visa)
    }

    /// The next variant to try when this one persistently faults on an
    /// architecture — the paper's portability argument in executable
    /// form: the specialised fast paths (vISA, restructured broadcast)
    /// degrade to the single-source portable shuffle, which degrades
    /// through the local-memory variants down to `MemoryObject`, the
    /// always-works floor (plain SLM round trips, no cross-lane
    /// hardware assumptions). `None` means there is nothing left to
    /// fall back to.
    pub fn fallback(&self) -> Option<Variant> {
        match self {
            Variant::Visa => Some(Variant::Select),
            Variant::Broadcast => Some(Variant::Select),
            Variant::Select => Some(Variant::Memory32),
            Variant::Memory32 => Some(Variant::MemoryObject),
            Variant::MemoryObject => None,
        }
    }

    /// This variant followed by its transitive fallbacks, in the order
    /// they would be attempted.
    pub fn fallback_chain(&self) -> Vec<Variant> {
        let mut chain = vec![*self];
        let mut cur = *self;
        while let Some(next) = cur.fallback() {
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// The RCB leaf capacity that fills the variant's lanes: half-warp
    /// variants pack two leaves of `S/2` into a sub-group; the
    /// chunk-parallel broadcast variant owns a full sub-group of `S`.
    pub fn preferred_leaf_capacity(&self, sg_size: usize) -> usize {
        if self.is_half_warp() {
            sg_size / 2
        } else {
            sg_size
        }
    }

    /// Performs one half-warp exchange step: every lane receives the
    /// listed fields from its partner lane for step `step` (of `h =
    /// S/2` total steps). The partner pattern is XOR-based for the
    /// portable variants (Figure 4) and the butterfly for vISA (Figure 7);
    /// both enumerate each cross-half pair exactly once with pairwise
    /// symmetry.
    ///
    /// Panics if called on [`Variant::Broadcast`], which does not use
    /// half-warp exchanges.
    pub fn exchange(&self, sg: &Sg, fields: &[&Lanes<f32>], step: usize) -> Vec<Lanes<f32>> {
        let h = sg.size / 2;
        debug_assert!(step < h);
        match self {
            Variant::Select => {
                let idx = sg.lane_id().xor_scalar((h | step) as u32);
                fields
                    .iter()
                    .map(|f| sg.select_from_group(f, &idx))
                    .collect()
            }
            Variant::Memory32 => {
                // One store/barrier/load round trip per 32-bit component.
                let idx = sg.lane_id().xor_scalar((h | step) as u32);
                fields.iter().map(|f| sg.local_exchange(f, &idx)).collect()
            }
            Variant::MemoryObject => {
                // The whole object moves through a larger SLM region with
                // a single barrier.
                let idx = sg.lane_id().xor_scalar((h | step) as u32);
                sg.local_exchange_object(fields, &idx)
            }
            Variant::Visa => fields.iter().map(|f| sg.visa_butterfly(f, step)).collect(),
            Variant::Broadcast => {
                panic!("the Broadcast variant is chunk-parallel and does not exchange")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{GpuArch, SgConfig};

    fn sg(arch: &GpuArch) -> Sg {
        Sg::new(0, 32, SgConfig::for_arch(arch, true, arch.supports_visa))
    }

    #[test]
    fn half_warp_exchange_agrees_across_mechanisms() {
        // Select, Memory32 and MemoryObject share the XOR pattern and must
        // move identical values.
        let s = sg(&GpuArch::frontier());
        let x = s.from_fn_f32(|l| (l * 3) as f32);
        let y = s.from_fn_f32(|l| 1000.0 - l as f32);
        for step in 0..16 {
            let a = Variant::Select.exchange(&s, &[&x, &y], step);
            let b = Variant::Memory32.exchange(&s, &[&x, &y], step);
            let c = Variant::MemoryObject.exchange(&s, &[&x, &y], step);
            for f in 0..2 {
                assert_eq!(a[f].as_slice(), b[f].as_slice());
                assert_eq!(a[f].as_slice(), c[f].as_slice());
            }
        }
    }

    #[test]
    fn every_variant_pairing_is_symmetric_and_complete() {
        // Each lower lane must meet every upper lane exactly once over the
        // h steps, with its partner simultaneously meeting it.
        let intel = sg(&GpuArch::aurora());
        for variant in [
            Variant::Select,
            Variant::Memory32,
            Variant::MemoryObject,
            Variant::Visa,
        ] {
            let h = 16usize;
            let mut met = vec![std::collections::HashSet::new(); h];
            for step in 0..h {
                let x = intel.from_fn_f32(|l| l as f32);
                let got = variant.exchange(&intel, &[&x], step);
                for l in 0..h {
                    let partner = got[0].get(l) as usize;
                    assert!(partner >= h, "{variant:?}: lower lane must pair with upper");
                    assert_eq!(
                        got[0].get(partner) as usize,
                        l,
                        "{variant:?}: pairwise symmetry at step {step}"
                    );
                    met[l].insert(partner);
                }
            }
            for m in &met {
                assert_eq!(m.len(), h, "{variant:?}: must cover all partners");
            }
        }
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Variant::Memory32.label(), "Memory, 32-bit");
        assert_eq!(Variant::MemoryObject.label(), "Memory, Object");
        assert_eq!(Variant::Visa.label(), "vISA");
    }

    #[test]
    fn fallback_chains_terminate_at_the_portable_floor() {
        for v in ALL_VARIANTS {
            let chain = v.fallback_chain();
            assert_eq!(chain[0], v);
            assert_eq!(*chain.last().unwrap(), Variant::MemoryObject);
            // No cycles: every link appears once.
            let mut seen = std::collections::HashSet::new();
            for link in &chain {
                assert!(seen.insert(*link), "{v:?} chain revisits {link:?}");
            }
            // Nothing past the first link needs vISA.
            for link in &chain[1..] {
                assert!(!link.needs_visa(), "fallbacks must be portable");
            }
        }
        assert_eq!(
            Variant::Visa.fallback_chain(),
            vec![
                Variant::Visa,
                Variant::Select,
                Variant::Memory32,
                Variant::MemoryObject
            ]
        );
    }

    #[test]
    #[should_panic(expected = "chunk-parallel")]
    fn broadcast_has_no_exchange() {
        let s = sg(&GpuArch::aurora());
        let x = s.from_fn_f32(|l| l as f32);
        let _ = Variant::Broadcast.exchange(&s, &[&x], 0);
    }
}
