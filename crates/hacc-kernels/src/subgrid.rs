//! Sub-grid baryonic physics — the paper's beyond-adiabatic extension
//! (§3.1, deferred to future work in §3.4.3).
//!
//! CRK-HACC's non-adiabatic modes add radiative cooling, star formation,
//! and feedback. The paper notes two structural properties this module
//! reproduces:
//!
//! * the sub-grid kernels are **less numerically intense** than the
//!   adiabatic hot spots (they are lane-parallel per-particle updates,
//!   not pairwise sums), and
//! * they **tighten the time-stepping criteria**, which "lead\\[s\\] to many
//!   more calls to the adiabatic kernels to converge over the same span
//!   of cosmological time".
//!
//! The physics is a standard minimal model: a bremsstrahlung-like cooling
//! rate `Λ = λ₀ ρ √u` (T ∝ u), a cooling floor, and a Kennicutt-style
//! star-formation threshold (cold + dense gas converts at a fixed
//! efficiency per dynamical time).

use crate::finalize::lane_parallel_instances;
use crate::particles::DeviceParticles;
use sycl_sim::{Buffer, Sg, SgKernel};

/// Sub-grid model parameters.
#[derive(Clone, Copy, Debug)]
pub struct SubgridParams {
    /// Cooling normalization λ₀.
    pub lambda0: f32,
    /// Temperature floor (specific internal energy units).
    pub u_floor: f32,
    /// Star-formation density threshold (code density units).
    pub rho_star: f32,
    /// Star-formation energy ceiling (only cold gas forms stars).
    pub u_star: f32,
    /// Star-formation efficiency per unit time.
    pub sfr_efficiency: f32,
    /// Safety factor of the cooling time-step criterion.
    pub c_cool: f32,
}

impl Default for SubgridParams {
    fn default() -> Self {
        Self {
            lambda0: 0.1,
            u_floor: 1e-8,
            rho_star: 5.0,
            u_star: 1e-3,
            sfr_efficiency: 0.02,
            c_cool: 0.25,
        }
    }
}

/// The sub-grid kernel (timer `upSub`): lane-parallel over particles.
///
/// Writes the cooling rate into `cool_rate`, the star-formation mass
/// rate into `sf_rate`, and folds the cooling time `C·u/|Λ|` into the
/// global `dt_min` with the same floating-point atomic-min the CFL
/// criterion uses (§5.1).
pub struct Subgrid {
    /// The particle state.
    pub data: DeviceParticles,
    /// Cooling-rate output buffer (one per particle).
    pub cool_rate: Buffer,
    /// Star-formation mass-rate output buffer.
    pub sf_rate: Buffer,
    /// Model parameters.
    pub params: SubgridParams,
}

impl Subgrid {
    /// Builds the kernel with freshly allocated output buffers.
    pub fn new(data: DeviceParticles, params: SubgridParams) -> Self {
        let n = data.n;
        Self {
            data,
            cool_rate: Buffer::zeros(n),
            sf_rate: Buffer::zeros(n),
            params,
        }
    }

    /// Number of sub-group instances for a launch.
    pub fn n_instances(&self, sg_size: usize) -> usize {
        lane_parallel_instances(self.data.n, sg_size)
    }
}

impl SgKernel for Subgrid {
    fn name(&self) -> &str {
        "upSub"
    }

    fn run(&self, sg: &mut Sg) {
        let n = self.data.n;
        let base = (sg.sg_id * sg.size) as u32;
        let raw = sg.lane_id().add_scalar(base);
        let last = sg.splat_u32((n - 1) as u32);
        let slots = raw.min(&last);
        let valid = raw.lt_scalar(n as u32);

        let rho = sg.load_f32(&self.data.rho, &slots);
        let u = sg.load_f32(&self.data.u, &slots);
        let p = &self.params;

        // Λ = λ₀ ρ √u, masked to zero at/below the floor.
        let u_safe = u.max(&sg.splat_f32(0.0));
        let sqrt_u = u_safe.sqrt();
        let lambda = &(&rho * &sqrt_u) * p.lambda0;
        let above_floor = u.gt_scalar(p.u_floor);
        let lambda = lambda.zero_unless(&above_floor);
        let neg_lambda = -&lambda;
        sg.store_f32(&self.cool_rate, &slots, &neg_lambda, &valid);

        // Star formation: cold, dense gas converts at ε·m per unit time.
        let m = sg.load_f32(&self.data.mass, &slots);
        let dense = rho.gt_scalar(p.rho_star);
        let cold = u.lt_scalar(p.u_star);
        let eligible = dense.and(&cold);
        let rate = (&m * p.sfr_efficiency).zero_unless(&eligible);
        sg.store_f32(&self.sf_rate, &slots, &rate, &valid);

        // Cooling time-step criterion: dt = C·u/Λ (huge when not cooling),
        // folded into the same dt_min the CFL uses.
        let lambda_safe = lambda.max(&sg.splat_f32(1e-30));
        let dt = &(&u_safe * p.c_cool) / &lambda_safe;
        let dt = dt.min(&sg.splat_f32(f32::MAX / 2.0));
        let zero = sg.splat_u32(0);
        let write = valid.and(&above_floor);
        sg.atomic_min(&self.data.dt_min, &zero, &dt, &write);
    }
}

/// f64 reference for the sub-grid update.
pub fn reference(
    rho: &[f64],
    u: &[f64],
    mass: &[f64],
    params: &SubgridParams,
) -> (Vec<f64>, Vec<f64>, f64) {
    let mut cool = vec![0.0; rho.len()];
    let mut sf = vec![0.0; rho.len()];
    let mut dt_min = f64::MAX;
    for i in 0..rho.len() {
        if u[i] > params.u_floor as f64 {
            let lambda = params.lambda0 as f64 * rho[i] * u[i].max(0.0).sqrt();
            cool[i] = -lambda;
            dt_min = dt_min.min(params.c_cool as f64 * u[i] / lambda.max(1e-300));
        }
        if rho[i] > params.rho_star as f64 && u[i] < params.u_star as f64 {
            sf[i] = params.sfr_efficiency as f64 * mass[i];
        }
    }
    (cool, sf, dt_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::HostParticles;
    use sycl_sim::{Device, GpuArch, LaunchConfig, Toolchain};

    fn particles(n: usize) -> (DeviceParticles, Vec<f64>, Vec<f64>, Vec<f64>) {
        let hp = HostParticles {
            pos: (0..n).map(|i| [i as f64, 0.0, 0.0]).collect(),
            vel: vec![[0.0; 3]; n],
            mass: vec![1.5; n],
            h: vec![1.0; n],
            // Stay off the exact u_star threshold (f32/f64 rounding would
            // make the comparison flip between device and reference).
            u: (0..n).map(|i| 9.3e-5 * (1.0 + i as f64)).collect(),
        };
        let dp = DeviceParticles::upload(&hp);
        let rho: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        for (i, &r) in rho.iter().enumerate() {
            dp.rho.write_f32(i, r as f32);
        }
        (dp, rho, hp.u.clone(), hp.mass.clone())
    }

    fn launch(k: &Subgrid) {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        struct Wrap<'a>(&'a Subgrid);
        impl SgKernel for Wrap<'_> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn run(&self, sg: &mut Sg) {
                self.0.run(sg)
            }
        }
        dev.launch(&Wrap(k), k.n_instances(32), cfg).unwrap();
    }

    #[test]
    fn matches_reference() {
        let (dp, rho, u, mass) = particles(40);
        dp.dt_min.fill_f32(f32::MAX);
        let k = Subgrid::new(dp.clone(), SubgridParams::default());
        launch(&k);
        let (cool, sf, dt_min) = reference(&rho, &u, &mass, &SubgridParams::default());
        for i in 0..40 {
            assert!(
                (k.cool_rate.read_f32(i) as f64 - cool[i]).abs() < 1e-6 * cool[i].abs().max(1e-12),
                "cool[{i}]"
            );
            assert!(
                (k.sf_rate.read_f32(i) as f64 - sf[i]).abs() < 1e-9,
                "sf[{i}]"
            );
        }
        let dt = dp.dt_min.read_f32(0) as f64;
        assert!((dt / dt_min - 1.0).abs() < 1e-4, "dt {dt} vs {dt_min}");
    }

    #[test]
    fn cooling_respects_the_floor() {
        let (dp, _, _, _) = particles(8);
        for i in 0..8 {
            dp.u.write_f32(i, 1e-9); // below u_floor
        }
        let k = Subgrid::new(dp.clone(), SubgridParams::default());
        launch(&k);
        for i in 0..8 {
            assert_eq!(k.cool_rate.read_f32(i), 0.0, "floored gas must not cool");
        }
    }

    #[test]
    fn star_formation_needs_cold_dense_gas() {
        let (dp, _, _, _) = particles(4);
        let p = SubgridParams::default();
        // 0: dense+cold → forms; 1: dense+hot; 2: thin+cold; 3: thin+hot.
        dp.rho.write_f32(0, 10.0);
        dp.u.write_f32(0, 1e-4);
        dp.rho.write_f32(1, 10.0);
        dp.u.write_f32(1, 1.0);
        dp.rho.write_f32(2, 0.1);
        dp.u.write_f32(2, 1e-4);
        dp.rho.write_f32(3, 0.1);
        dp.u.write_f32(3, 1.0);
        let k = Subgrid::new(dp.clone(), p);
        launch(&k);
        assert!(k.sf_rate.read_f32(0) > 0.0);
        assert_eq!(k.sf_rate.read_f32(1), 0.0);
        assert_eq!(k.sf_rate.read_f32(2), 0.0);
        assert_eq!(k.sf_rate.read_f32(3), 0.0);
    }

    #[test]
    fn cooling_tightens_the_time_step() {
        // The paper's structural point: enabling sub-grid physics shrinks
        // dt_min, forcing more adiabatic sub-cycles.
        let (dp, _, _, _) = particles(16);
        dp.dt_min.fill_f32(1.0); // pretend the CFL allowed dt = 1
        let strong = SubgridParams {
            lambda0: 100.0,
            ..Default::default()
        };
        let k = Subgrid::new(dp.clone(), strong);
        launch(&k);
        let dt = dp.dt_min.read_f32(0);
        assert!(dt < 0.1, "strong cooling must tighten dt: {dt}");
    }

    #[test]
    fn subgrid_is_cheaper_than_a_pairwise_kernel() {
        // §3.1: "the sub-grid kernels are less numerically intense".
        use sycl_sim::CostModel;
        let (dp, _, _, _) = particles(64);
        let k = Subgrid::new(dp, SubgridParams::default());
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        struct Wrap<'a>(&'a Subgrid);
        impl SgKernel for Wrap<'_> {
            fn name(&self) -> &str {
                "upSub"
            }
            fn run(&self, sg: &mut Sg) {
                self.0.run(sg)
            }
        }
        let report = dev.launch(&Wrap(&k), k.n_instances(32), cfg).unwrap();
        let est = CostModel::new(GpuArch::frontier()).estimate(&report);
        // Sub-grid cost per particle is tiny: ~100 lane-cycles, versus
        // thousands for any pairwise hot spot.
        let per_particle = est.total_lane_cycles() / 64.0;
        assert!(
            per_particle < 1000.0,
            "sub-grid cost/particle = {per_particle}"
        );
    }
}
