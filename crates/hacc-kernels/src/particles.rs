//! Device-side particle state (structure of arrays).
//!
//! Mirrors the GPU-resident buffers of CRK-HACC's hydro solver: positions,
//! velocities, SPH smoothing lengths and thermodynamic state, CRK
//! correction coefficients, and the accumulator fields written by the hot
//! kernels. All device fields are FP32, like the production kernels; the
//! host-side reference implementations in [`crate::reference`] use f64.

use sycl_sim::Buffer;

/// Adiabatic index of the ideal-gas equation of state used by the
/// adiabatic ("non-radiative") CRK-HACC configuration.
pub const GAMMA: f32 = 5.0 / 3.0;

/// Host-side particle sample (one species) used to populate the device.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostParticles {
    /// Comoving positions (same length units as the interaction cutoff).
    pub pos: Vec<[f64; 3]>,
    /// Peculiar velocities.
    pub vel: Vec<[f64; 3]>,
    /// Particle masses.
    pub mass: Vec<f64>,
    /// SPH smoothing lengths.
    pub h: Vec<f64>,
    /// Specific internal energies.
    pub u: Vec<f64>,
}

impl HostParticles {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Checks that all fields have matching lengths and finite values.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.pos.len();
        if self.vel.len() != n || self.mass.len() != n || self.h.len() != n || self.u.len() != n {
            return Err("particle field lengths differ".into());
        }
        for i in 0..n {
            if self.h[i] <= 0.0 {
                return Err(format!("particle {i} has non-positive smoothing length"));
            }
            if self.mass[i] < 0.0 {
                return Err(format!("particle {i} has negative mass"));
            }
        }
        Ok(())
    }

    /// Reorders all fields by `order` (the RCB permutation), so leaf slots
    /// are contiguous in the device buffers.
    pub fn permuted(&self, order: &[u32]) -> HostParticles {
        assert_eq!(order.len(), self.len());
        let g = |i: &u32| *i as usize;
        HostParticles {
            pos: order.iter().map(|i| self.pos[g(i)]).collect(),
            vel: order.iter().map(|i| self.vel[g(i)]).collect(),
            mass: order.iter().map(|i| self.mass[g(i)]).collect(),
            h: order.iter().map(|i| self.h[g(i)]).collect(),
            u: order.iter().map(|i| self.u[g(i)]).collect(),
        }
    }

    /// Gathers an arbitrary subset (indices need not be unique or
    /// sorted, and may be fewer than `len()`) — the per-rank slice of a
    /// domain decomposition.
    pub fn select(&self, indices: &[u32]) -> HostParticles {
        let g = |i: &u32| *i as usize;
        HostParticles {
            pos: indices.iter().map(|i| self.pos[g(i)]).collect(),
            vel: indices.iter().map(|i| self.vel[g(i)]).collect(),
            mass: indices.iter().map(|i| self.mass[g(i)]).collect(),
            h: indices.iter().map(|i| self.h[g(i)]).collect(),
            u: indices.iter().map(|i| self.u[g(i)]).collect(),
        }
    }
}

/// The device-resident SoA state for one species' hydro step.
#[derive(Clone, Debug)]
pub struct DeviceParticles {
    /// Particle count.
    pub n: usize,
    /// Positions, one buffer per component.
    pub pos: [Buffer; 3],
    /// Velocities.
    pub vel: [Buffer; 3],
    /// Masses.
    pub mass: Buffer,
    /// Smoothing lengths.
    pub h: Buffer,
    /// Specific internal energies.
    pub u: Buffer,
    /// Volumes (output of *Geometry*).
    pub volume: Buffer,
    /// CRK zeroth moment accumulator m₀ (scratch of *Corrections*).
    pub crk_m0: Buffer,
    /// CRK first moment accumulator m₁ (scratch of *Corrections*).
    pub crk_m1: [Buffer; 3],
    /// CRK second moment accumulator m₂ (symmetric: xx, yy, zz, xy, xz,
    /// yz; scratch of *Corrections*).
    pub crk_m2: [Buffer; 6],
    /// CRK zeroth-order coefficient A (output of *Corrections*).
    pub crk_a: Buffer,
    /// CRK first-order coefficients B (output of *Corrections*).
    pub crk_b: [Buffer; 3],
    /// Densities (output of *Extras*).
    pub rho: Buffer,
    /// Density gradients (output of *Extras*).
    pub grad_rho: [Buffer; 3],
    /// Pressures (finalized from ρ and u).
    pub pressure: Buffer,
    /// Sound speeds `c = √(γP/ρ)` (finalized with pressure).
    pub cs: Buffer,
    /// Precomputed force terms `P/ρ²` (finalized with pressure).
    pub pterm: Buffer,
    /// Hydrodynamic accelerations (output of *Acceleration*).
    pub acc: [Buffer; 3],
    /// Short-range gravitational accelerations (output of *Gravity*;
    /// separate from the hydro field because the two kernels carry
    /// different physical couplings and the broadcast variant writes with
    /// plain stores).
    pub acc_grav: [Buffer; 3],
    /// Internal-energy derivatives (output of *Energy*).
    pub du_dt: Buffer,
    /// Per-rank minimum CFL time step (atomic-min target of the
    /// *Acceleration* kernel — the float min/max atomic of §5.1).
    pub dt_min: Buffer,
}

impl DeviceParticles {
    /// Uploads host particles (typically already leaf-ordered).
    pub fn upload(hp: &HostParticles) -> Self {
        hp.validate().expect("invalid host particles");
        let n = hp.len();
        let comp = |sel: fn(&[f64; 3]) -> f64, src: &[[f64; 3]]| -> Buffer {
            Buffer::from_f32(&src.iter().map(|v| sel(v) as f32).collect::<Vec<_>>())
        };
        let scal = |src: &[f64]| -> Buffer {
            Buffer::from_f32(&src.iter().map(|&v| v as f32).collect::<Vec<_>>())
        };
        Self {
            n,
            pos: [
                comp(|v| v[0], &hp.pos),
                comp(|v| v[1], &hp.pos),
                comp(|v| v[2], &hp.pos),
            ],
            vel: [
                comp(|v| v[0], &hp.vel),
                comp(|v| v[1], &hp.vel),
                comp(|v| v[2], &hp.vel),
            ],
            mass: scal(&hp.mass),
            h: scal(&hp.h),
            u: scal(&hp.u),
            volume: Buffer::zeros(n),
            crk_m0: Buffer::zeros(n),
            crk_m1: [Buffer::zeros(n), Buffer::zeros(n), Buffer::zeros(n)],
            crk_m2: [
                Buffer::zeros(n),
                Buffer::zeros(n),
                Buffer::zeros(n),
                Buffer::zeros(n),
                Buffer::zeros(n),
                Buffer::zeros(n),
            ],
            crk_a: Buffer::zeros(n),
            crk_b: [Buffer::zeros(n), Buffer::zeros(n), Buffer::zeros(n)],
            rho: Buffer::zeros(n),
            grad_rho: [Buffer::zeros(n), Buffer::zeros(n), Buffer::zeros(n)],
            pressure: Buffer::zeros(n),
            cs: Buffer::zeros(n),
            pterm: Buffer::zeros(n),
            acc: [Buffer::zeros(n), Buffer::zeros(n), Buffer::zeros(n)],
            acc_grav: [Buffer::zeros(n), Buffer::zeros(n), Buffer::zeros(n)],
            du_dt: Buffer::zeros(n),
            dt_min: Buffer::from_f32(&[f32::MAX]),
        }
    }

    /// Clears the per-step accumulator fields.
    pub fn clear_accumulators(&self) {
        for c in 0..3 {
            self.acc[c].fill_f32(0.0);
            self.acc_grav[c].fill_f32(0.0);
            self.grad_rho[c].fill_f32(0.0);
            self.crk_b[c].fill_f32(0.0);
            self.crk_m1[c].fill_f32(0.0);
        }
        for m in &self.crk_m2 {
            m.fill_f32(0.0);
        }
        self.volume.fill_f32(0.0);
        self.crk_m0.fill_f32(0.0);
        self.crk_a.fill_f32(0.0);
        self.rho.fill_f32(0.0);
        self.du_dt.fill_f32(0.0);
        self.dt_min.fill_f32(f32::MAX);
    }

    /// Every device buffer with a stable label, in declaration order.
    ///
    /// This is the canonical enumeration used by bitwise-equivalence
    /// checks (parallel-vs-serial, golden snapshots): hashing or
    /// comparing the `to_u32_vec` images of these buffers covers the
    /// complete device-resident state of a step.
    pub fn all_buffers(&self) -> Vec<(&'static str, &Buffer)> {
        let mut out: Vec<(&'static str, &Buffer)> = vec![
            ("pos.x", &self.pos[0]),
            ("pos.y", &self.pos[1]),
            ("pos.z", &self.pos[2]),
            ("vel.x", &self.vel[0]),
            ("vel.y", &self.vel[1]),
            ("vel.z", &self.vel[2]),
            ("mass", &self.mass),
            ("h", &self.h),
            ("u", &self.u),
            ("volume", &self.volume),
            ("crk_m0", &self.crk_m0),
        ];
        for (c, b) in self.crk_m1.iter().enumerate() {
            out.push((["crk_m1.x", "crk_m1.y", "crk_m1.z"][c], b));
        }
        for (c, b) in self.crk_m2.iter().enumerate() {
            out.push((
                [
                    "crk_m2.xx",
                    "crk_m2.yy",
                    "crk_m2.zz",
                    "crk_m2.xy",
                    "crk_m2.xz",
                    "crk_m2.yz",
                ][c],
                b,
            ));
        }
        out.push(("crk_a", &self.crk_a));
        for (c, b) in self.crk_b.iter().enumerate() {
            out.push((["crk_b.x", "crk_b.y", "crk_b.z"][c], b));
        }
        out.push(("rho", &self.rho));
        for (c, b) in self.grad_rho.iter().enumerate() {
            out.push((["grad_rho.x", "grad_rho.y", "grad_rho.z"][c], b));
        }
        out.push(("pressure", &self.pressure));
        out.push(("cs", &self.cs));
        out.push(("pterm", &self.pterm));
        for (c, b) in self.acc.iter().enumerate() {
            out.push((["acc.x", "acc.y", "acc.z"][c], b));
        }
        for (c, b) in self.acc_grav.iter().enumerate() {
            out.push((["acc_grav.x", "acc_grav.y", "acc_grav.z"][c], b));
        }
        out.push(("du_dt", &self.du_dt));
        out.push(("dt_min", &self.dt_min));
        out
    }

    /// FNV-1a hash over the raw bit patterns of every device buffer (in
    /// [`Self::all_buffers`] order). Two states hash equal iff every
    /// field is bit-identical.
    pub fn state_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (_, buf) in self.all_buffers() {
            for w in buf.to_u32_vec() {
                eat(w as u64);
            }
        }
        hash
    }

    /// Downloads a 3-component field.
    pub fn download_vec3(&self, field: &[Buffer; 3]) -> Vec<[f32; 3]> {
        (0..self.n)
            .map(|i| {
                [
                    field[0].read_f32(i),
                    field[1].read_f32(i),
                    field[2].read_f32(i),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> HostParticles {
        HostParticles {
            pos: (0..n).map(|i| [i as f64, 2.0 * i as f64, 0.5]).collect(),
            vel: vec![[0.0; 3]; n],
            mass: vec![1.0; n],
            h: vec![1.0; n],
            u: vec![0.1; n],
        }
    }

    #[test]
    fn upload_round_trips() {
        let hp = sample(5);
        let dp = DeviceParticles::upload(&hp);
        assert_eq!(dp.n, 5);
        assert_eq!(dp.pos[1].read_f32(3), 6.0);
        assert_eq!(dp.mass.read_f32(4), 1.0);
        assert_eq!(dp.dt_min.read_f32(0), f32::MAX);
    }

    #[test]
    fn permutation_reorders_all_fields() {
        let mut hp = sample(4);
        hp.u = vec![0.0, 1.0, 2.0, 3.0];
        let p = hp.permuted(&[2, 0, 3, 1]);
        assert_eq!(p.u, vec![2.0, 0.0, 3.0, 1.0]);
        assert_eq!(p.pos[0][0], 2.0);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut hp = sample(3);
        hp.h[1] = 0.0;
        assert!(hp.validate().is_err());
        let mut hp = sample(3);
        hp.mass.pop();
        assert!(hp.validate().is_err());
    }

    #[test]
    fn all_buffers_enumerates_every_field() {
        let dp = DeviceParticles::upload(&sample(2));
        let bufs = dp.all_buffers();
        assert_eq!(bufs.len(), 39, "every SoA field appears exactly once");
        let mut names: Vec<&str> = bufs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 39, "labels are unique");
    }

    #[test]
    fn state_digest_tracks_any_bit_flip() {
        let dp = DeviceParticles::upload(&sample(3));
        let before = dp.state_digest();
        assert_eq!(before, dp.state_digest(), "digest is deterministic");
        dp.du_dt
            .write_f32(2, f32::from_bits(dp.du_dt.read_f32(2).to_bits() ^ 1));
        assert_ne!(before, dp.state_digest(), "one flipped bit changes it");
    }

    #[test]
    fn clear_accumulators_resets_outputs() {
        let dp = DeviceParticles::upload(&sample(3));
        dp.acc[0].write_f32(1, 9.0);
        dp.dt_min.write_f32(0, 0.5);
        dp.clear_accumulators();
        assert_eq!(dp.acc[0].read_f32(1), 0.0);
        assert_eq!(dp.dt_min.read_f32(0), f32::MAX);
    }
}
