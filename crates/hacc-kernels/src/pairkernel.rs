//! The generic pairwise kernel: one physics definition, two structures.
//!
//! Every CRK hot kernel is a sum over neighbor particles. [`PairPhysics`]
//! supplies the per-kernel pieces (which fields are exchanged, the
//! interaction math, and the write-back); [`PairKernel`] provides the two
//! execution structures of the paper:
//!
//! * **half-warp** (Select / Memory / vISA variants): one sub-group per
//!   tile, partner data arrives by exchange, results are accumulated with
//!   atomics because a particle appears in many tiles;
//! * **broadcast**: one sub-group per chunk, neighbor data is staged
//!   lane-wise and broadcast per partner with the j-loop unrolled by 4
//!   (holding four partner objects live — the register-pressure cost of
//!   the restructuring, §5.3.2), and results are written with plain
//!   stores since each particle belongs to exactly one chunk (the
//!   "fewer atomic instructions" of §5.3.2).

use crate::halfwarp::{chunk_slots, half_warp_loop, tile_slots};
use crate::variant::Variant;
use crate::worklist::{ChunkWork, Tile};
use std::sync::Arc;
use sycl_sim::{Buffer, Lanes, Sg, SgKernel};

/// Unroll factor of the broadcast j-loop.
///
/// Register-regioned broadcasts need compile-time-known source lanes
/// (Figure 6), which forces the compiler to unroll the partner loop; the
/// unrolled schedule keeps several partner objects live at once. Eight
/// concurrent partners models the reuse distance the paper's restructured
/// kernels exhibit (their large register footprint is what spills on
/// A100, §5.4).
pub const BROADCAST_UNROLL: usize = 8;

/// Per-kernel physics: field selection, interaction, write-back.
pub trait PairPhysics: Sync {
    /// Timer name (upGeo, upCor, …).
    fn name(&self) -> &'static str;

    /// Number of per-lane accumulator registers.
    fn n_acc(&self) -> usize;

    /// Loads the fields every interaction partner must see. Field 0 must
    /// be the validity/weight channel (zero for padding lanes) so partner
    /// contributions from padding are neutralized.
    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>>;

    /// Loads owner-only fields that are *not* exchanged (e.g. the owner's
    /// CRK coefficients in *Extras*).
    fn load_own_extra(&self, _sg: &Sg, _slots: &Lanes<u32>) -> Vec<Lanes<f32>> {
        Vec::new()
    }

    /// One interaction: owner fields vs one partner's fields, updating the
    /// accumulators.
    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    );

    /// Writes the accumulated results for the owner lanes. `atomic` is
    /// true under the half-warp structure (partial sums) and false under
    /// broadcast (complete sums, plain stores).
    #[allow(clippy::too_many_arguments)]
    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        own: &[Lanes<f32>],
        own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    );

    /// The buffers `write` targets — the corruption surface exposed to
    /// an attached fault injector. Defaults to none (immune).
    fn output_buffers(&self) -> Vec<Buffer> {
        Vec::new()
    }
}

/// A launchable kernel: physics + work lists + variant.
pub struct PairKernel<P: PairPhysics> {
    /// The kernel's physics definition.
    pub physics: P,
    /// Half-warp tile list (used by Select/Memory/vISA variants).
    pub tiles: Arc<Vec<Tile>>,
    /// Chunk work list (used by the Broadcast variant).
    pub chunks: Arc<ChunkWork>,
    /// Communication variant.
    pub variant: Variant,
}

impl<P: PairPhysics> PairKernel<P> {
    /// The number of sub-group instances to launch for this variant.
    pub fn n_instances(&self) -> usize {
        if self.variant.is_half_warp() {
            self.tiles.len()
        } else {
            self.chunks.chunks.len()
        }
    }

    fn run_half_warp(&self, sg: &mut Sg) {
        let tile = self.tiles[sg.sg_id];
        let ts = tile_slots(sg, &tile);
        let own = self.physics.load_exchange(sg, &ts.slots, &ts.valid_f);
        let own_extra = self.physics.load_own_extra(sg, &ts.slots);
        let mut acc: Vec<Lanes<f32>> = (0..self.physics.n_acc())
            .map(|_| sg.splat_f32(0.0))
            .collect();
        let refs: Vec<&Lanes<f32>> = own.iter().collect();
        half_warp_loop(sg, self.variant, &refs, |sg, other| {
            self.physics.interact(sg, &own, &own_extra, other, &mut acc);
        });
        self.physics
            .write(sg, &ts.slots, &own, &own_extra, &acc, &ts.write_mask, true);
    }

    fn run_broadcast(&self, sg: &mut Sg) {
        let chunk = self.chunks.chunks[sg.sg_id];
        let cs = chunk_slots(sg, &chunk);
        let valid_f = cs.valid.to_f32();
        let own = self.physics.load_exchange(sg, &cs.slots, &valid_f);
        let own_extra = self.physics.load_own_extra(sg, &cs.slots);
        let mut acc: Vec<Lanes<f32>> = (0..self.physics.n_acc())
            .map(|_| sg.splat_f32(0.0))
            .collect();
        let nbrs = &self.chunks.neighbors
            [chunk.nbr_offset as usize..(chunk.nbr_offset + chunk.nbr_count) as usize];
        for &(nstart, nlen) in nbrs {
            // Stage the neighbor chunk lane-wise (clamped; only valid
            // slots are broadcast because the j-loop bound is host-known).
            let lane = sg.lane_id();
            let raw = lane.add_scalar(nstart);
            let last = sg.splat_u32(nstart + nlen - 1);
            let slots = raw.min(&last);
            let ones = sg.splat_f32(1.0);
            let staged = self.physics.load_exchange(sg, &slots, &ones);
            // Unrolled j-loop: BROADCAST_UNROLL partner objects live at
            // once (higher register pressure, better latency hiding).
            let mut j0 = 0usize;
            while j0 < nlen as usize {
                let group_end = (j0 + BROADCAST_UNROLL).min(nlen as usize);
                let group: Vec<Vec<Lanes<f32>>> = (j0..group_end)
                    .map(|j| staged.iter().map(|f| sg.broadcast(f, j)).collect())
                    .collect();
                for other in &group {
                    self.physics.interact(sg, &own, &own_extra, other, &mut acc);
                }
                j0 = group_end;
            }
        }
        self.physics
            .write(sg, &cs.slots, &own, &own_extra, &acc, &cs.write_mask, false);
    }
}

impl<P: PairPhysics> SgKernel for PairKernel<P> {
    fn name(&self) -> &str {
        self.physics.name()
    }

    fn run(&self, sg: &mut Sg) {
        if self.variant.is_half_warp() {
            self.run_half_warp(sg);
        } else {
            self.run_broadcast(sg);
        }
    }

    fn output_buffers(&self) -> Vec<Buffer> {
        self.physics.output_buffers()
    }
}
