#![warn(missing_docs)]
//! # hacc-kernels
//!
//! The offloaded CRK-HACC kernels over the simulated device: the five
//! hydro hot spots of the paper (§5) — *Geometry*, *Corrections*,
//! *Extras*, *Acceleration*, *Energy* — plus the short-range *Gravity*
//! kernel, each runnable in every communication variant
//! ([`variant::Variant`]): Select, Memory (32-bit), Memory (Object),
//! Broadcast, and vISA.
//!
//! The physics is real (first-order conservative reproducing-kernel SPH,
//! Frontiere et al. 2017): kernels execute lane by lane and their outputs
//! are validated against the f64 [`mod@reference`] implementations — so the
//! performance comparison between variants is a comparison between
//! *working* codes, exactly as in the paper.

pub mod acceleration;
pub mod corrections;
pub mod energy;
pub mod extras;
pub mod finalize;
pub mod geometry;
pub mod gravity;
pub mod halfwarp;
pub mod launch;
pub mod pairkernel;
pub mod particles;
pub mod physics;
pub mod reference;
pub mod sphkernel;
pub mod subgrid;
pub mod tuning;
pub mod variant;
pub mod worklist;

pub use launch::{
    launch_resilient, run_gravity, run_gravity_planned, run_gravity_with_policy, run_hydro_step,
    run_hydro_step_planned, run_hydro_step_with_policy, GravityParams, LaunchPolicy, StepPlan,
    TimerReport, WorkLists, WorkSet, GRAVITY_TIMER, HYDRO_TIMERS,
};
pub use particles::{DeviceParticles, HostParticles, GAMMA};
pub use subgrid::{Subgrid, SubgridParams};
pub use tuning::TunedSelector;
pub use variant::{Variant, ALL_VARIANTS};
pub use worklist::{build_chunks, build_tiles, Chunk, ChunkWork, Tile};

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_telemetry::Recorder;
    use hacc_tree::{InteractionList, RcbTree};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sycl_sim::{Device, GpuArch, LaunchConfig, Toolchain};

    /// A small jittered-lattice gas in a periodic box.
    fn sample(n_side: usize, box_size: f64, seed: u64) -> HostParticles {
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = box_size / n_side as f64;
        let mut hp = HostParticles::default();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    let jig = 0.2 * spacing;
                    hp.pos.push([
                        (i as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                        (j as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                        (k as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    ]);
                    hp.vel.push([
                        rng.gen_range(-0.2..0.2),
                        rng.gen_range(-0.2..0.2),
                        rng.gen_range(-0.2..0.2),
                    ]);
                    hp.mass.push(1.0);
                    hp.h.push(1.2 * spacing);
                    hp.u.push(1.0);
                }
            }
        }
        hp
    }

    struct Setup {
        ordered: HostParticles,
        data: DeviceParticles,
        work: WorkLists,
        box_size: f64,
    }

    fn setup(variant_sg: usize, seed: u64) -> Setup {
        let box_size = 6.0;
        let hp = sample(6, box_size, seed);
        let tree = RcbTree::build(&hp.pos, variant_sg / 2);
        // Cutoff must cover the kernel support 2·h̄_max.
        let cutoff = 2.0 * 1.2 * (box_size / 6.0) + 1e-9;
        let list = InteractionList::build(&tree, box_size, cutoff);
        let work = WorkLists::build(&tree, &list, variant_sg);
        let ordered = hp.permuted(&tree.order);
        let data = DeviceParticles::upload(&ordered);
        Setup {
            ordered,
            data,
            work,
            box_size,
        }
    }

    fn assert_close(name: &str, got: &[f32], want: &[f64], rel: f64) {
        let scale = want.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g as f64 - w).abs() < rel * scale,
                "{name}[{i}]: device {g} vs reference {w} (scale {scale})"
            );
        }
    }

    /// Runs the full hydro step on a device and compares every output
    /// field against the f64 reference pipeline.
    fn check_variant(arch: GpuArch, variant: Variant, sg_size: usize) {
        let tc = if variant.needs_visa() {
            Toolchain::sycl_visa()
        } else {
            Toolchain::sycl()
        };
        let device = Device::new(arch, tc).unwrap();
        let s = setup(sg_size, 42);
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(sg_size)
            .deterministic();
        let timers = run_hydro_step(
            &device,
            &s.data,
            &s.work,
            variant,
            s.box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        assert_eq!(timers.len(), 7);

        let r = reference::full_pipeline(&s.ordered, s.box_size);
        assert_close("volume", &s.data.volume.to_f32_vec(), &r.volume, 2e-4);
        assert_close("crk_a", &s.data.crk_a.to_f32_vec(), &r.crk_a, 5e-4);
        for c in 0..3 {
            let want: Vec<f64> = r.crk_b.iter().map(|b| b[c]).collect();
            assert_close("crk_b", &s.data.crk_b[c].to_f32_vec(), &want, 2e-3);
        }
        assert_close("rho", &s.data.rho.to_f32_vec(), &r.rho, 5e-4);
        assert_close("pressure", &s.data.pressure.to_f32_vec(), &r.pressure, 5e-4);
        for c in 0..3 {
            let want: Vec<f64> = r.acc.iter().map(|a| a[c]).collect();
            assert_close("acc", &s.data.acc[c].to_f32_vec(), &want, 5e-3);
        }
        assert_close("du_dt", &s.data.du_dt.to_f32_vec(), &r.du_dt, 5e-3);
        let dt = s.data.dt_min.read_f32(0) as f64;
        assert!(
            (dt / r.dt_min - 1.0).abs() < 1e-3,
            "dt {dt} vs {}",
            r.dt_min
        );
    }

    #[test]
    fn select_matches_reference_on_frontier() {
        check_variant(GpuArch::frontier(), Variant::Select, 64);
    }

    #[test]
    fn select_matches_reference_on_polaris() {
        check_variant(GpuArch::polaris(), Variant::Select, 32);
    }

    #[test]
    fn memory32_matches_reference_on_aurora() {
        check_variant(GpuArch::aurora(), Variant::Memory32, 32);
    }

    #[test]
    fn memory_object_matches_reference_on_aurora() {
        check_variant(GpuArch::aurora(), Variant::MemoryObject, 16);
    }

    #[test]
    fn broadcast_matches_reference_on_polaris() {
        check_variant(GpuArch::polaris(), Variant::Broadcast, 32);
    }

    #[test]
    fn visa_matches_reference_on_aurora() {
        check_variant(GpuArch::aurora(), Variant::Visa, 32);
    }

    /// All variants must agree with each other (not just with the
    /// reference): same state in, same state out, within FP32 reordering.
    #[test]
    fn variants_agree_pairwise() {
        let device = Device::new(GpuArch::aurora(), Toolchain::sycl_visa()).unwrap();
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(32)
            .deterministic();
        let mut results: Vec<(Variant, Vec<f32>)> = Vec::new();
        for variant in ALL_VARIANTS {
            let s = setup(32, 7);
            run_hydro_step(
                &device,
                &s.data,
                &s.work,
                variant,
                s.box_size as f32,
                cfg,
                &Recorder::new(),
            )
            .unwrap();
            results.push((variant, s.data.acc[0].to_f32_vec()));
        }
        let (v0, base) = &results[0];
        let scale = base.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-30);
        for (v, r) in &results[1..] {
            for i in 0..base.len() {
                assert!(
                    (r[i] - base[i]).abs() < 1e-3 * scale,
                    "{v:?} vs {v0:?} at {i}: {} vs {}",
                    r[i],
                    base[i]
                );
            }
        }
    }

    /// Gravity kernel vs reference.
    #[test]
    fn gravity_matches_reference() {
        let device = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let s = setup(64, 11);
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(64)
            .deterministic();
        let poly = [0.02f32, -0.01, 0.002, -0.0001, 0.0, 0.0];
        let params = GravityParams {
            poly,
            r_cut2: 4.0,
            soft2: 1e-4,
        };
        run_gravity(
            &device,
            &s.data,
            &s.work,
            Variant::Select,
            s.box_size as f32,
            params,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        let polyd: [f64; 6] = std::array::from_fn(|i| poly[i] as f64);
        let want = reference::gravity(&s.ordered, &polyd, 4.0, 1e-4, s.box_size);
        for c in 0..3 {
            let w: Vec<f64> = want.iter().map(|a| a[c]).collect();
            assert_close("grav", &s.data.acc_grav[c].to_f32_vec(), &w, 5e-3);
        }
    }

    /// The register-pressure ordering the paper's §5 relies on: the
    /// Broadcast variant's peak register demand exceeds the half-warp
    /// variants', and the force kernels exceed Geometry.
    #[test]
    fn register_pressure_ordering() {
        let device = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(32)
            .deterministic();
        let s = setup(32, 13);
        let select = run_hydro_step(
            &device,
            &s.data,
            &s.work,
            Variant::Select,
            s.box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        let s2 = setup(32, 13);
        let broadcast = run_hydro_step(
            &device,
            &s2.data,
            &s2.work,
            Variant::Broadcast,
            s2.box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        let regs = |t: &[TimerReport], name: &str| {
            t.iter()
                .find(|r| r.timer == name)
                .unwrap()
                .report
                .stats
                .peak_regs
        };
        assert!(
            regs(&broadcast, "upBarAc") > regs(&select, "upBarAc"),
            "broadcast must be more register-hungry: {} vs {}",
            regs(&broadcast, "upBarAc"),
            regs(&select, "upBarAc")
        );
        assert!(
            regs(&select, "upBarAc") > regs(&select, "upGeo"),
            "force kernels carry more registers than Geometry"
        );
    }

    /// Atomic counts: the Broadcast variant issues far fewer atomics than
    /// the half-warp variants (§5.3.2), and Corrections is the most
    /// atomic-heavy kernel.
    #[test]
    fn atomic_counts_match_paper_structure() {
        use sycl_sim::InstrClass;
        let device = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&device.arch)
            .with_sg_size(32)
            .deterministic();
        let s = setup(32, 17);
        let select = run_hydro_step(
            &device,
            &s.data,
            &s.work,
            Variant::Select,
            s.box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        let s2 = setup(32, 17);
        let broadcast = run_hydro_step(
            &device,
            &s2.data,
            &s2.work,
            Variant::Broadcast,
            s2.box_size as f32,
            cfg,
            &Recorder::new(),
        )
        .unwrap();
        let atomics = |t: &[TimerReport], name: &str| {
            let r = &t.iter().find(|r| r.timer == name).unwrap().report.stats;
            r.count(InstrClass::AtomicNative) + r.count(InstrClass::AtomicCas)
        };
        for timer in ["upGeo", "upCor", "upBarEx"] {
            assert!(
                atomics(&select, timer) > 5 * atomics(&broadcast, timer).max(1),
                "{timer}: select {} vs broadcast {}",
                atomics(&select, timer),
                atomics(&broadcast, timer)
            );
        }
        assert!(
            atomics(&select, "upCor") > atomics(&select, "upGeo"),
            "Corrections has 10 accumulators vs Geometry's 1"
        );
    }
}
