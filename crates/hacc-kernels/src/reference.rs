//! Scalar f64 reference implementations of every device kernel.
//!
//! These are brute-force O(n²) sums over all particle pairs (the SPH
//! kernel's compact support makes distant pairs contribute exactly zero),
//! mirroring the device formulas term by term. Integration tests require
//! every variant × architecture combination to agree with these within
//! FP32 accumulation tolerance.

use crate::particles::HostParticles;
use crate::physics::{CFL, VISC_ALPHA, VISC_BETA, VISC_EPS};
use crate::sphkernel::{dw_dr_scalar, w_scalar};
use hacc_tree::min_image;

/// Full per-particle hydro state computed by the reference pipeline.
#[derive(Clone, Debug, Default)]
pub struct ReferenceState {
    /// Volumes (Geometry).
    pub volume: Vec<f64>,
    /// CRK coefficients (Corrections).
    pub crk_a: Vec<f64>,
    /// CRK first-order coefficients.
    pub crk_b: Vec<[f64; 3]>,
    /// Densities (Extras).
    pub rho: Vec<f64>,
    /// Density gradients (Extras).
    pub grad_rho: Vec<[f64; 3]>,
    /// Pressures (EOS).
    pub pressure: Vec<f64>,
    /// Sound speeds.
    pub cs: Vec<f64>,
    /// Force terms P/ρ².
    pub pterm: Vec<f64>,
    /// Hydro accelerations (Acceleration).
    pub acc: Vec<[f64; 3]>,
    /// Energy derivatives (Energy).
    pub du_dt: Vec<f64>,
    /// Global CFL time step (Acceleration).
    pub dt_min: f64,
}

struct Pair {
    eta: [f64; 3],
    r2: f64,
    hbar: f64,
    w: f64,
    dw_over_r: f64,
}

fn pair(hp: &HostParticles, i: usize, j: usize, box_size: f64) -> Pair {
    let eta = min_image(&hp.pos[i], &hp.pos[j], box_size);
    let r2 = eta[0] * eta[0] + eta[1] * eta[1] + eta[2] * eta[2];
    let hbar = 0.5 * (hp.h[i] + hp.h[j]);
    let tiny = 1e-12 * hbar * hbar;
    let r = r2.max(tiny).sqrt();
    let w = w_scalar(r, hbar);
    let dw_over_r = if r2 > 1e-12 {
        dw_dr_scalar(r, hbar) / r
    } else {
        0.0
    };
    Pair {
        eta,
        r2,
        hbar,
        w,
        dw_over_r,
    }
}

/// Geometry: `V_i = 1 / Σ_j W_ij` (self term included).
pub fn geometry(hp: &HostParticles, box_size: f64) -> Vec<f64> {
    let n = hp.len();
    (0..n)
        .map(|i| {
            let nsum: f64 = (0..n).map(|j| pair(hp, i, j, box_size).w).sum();
            1.0 / nsum.max(1e-300)
        })
        .collect()
}

/// Corrections: first-order CRK coefficients from volume-weighted moments.
pub fn corrections(hp: &HostParticles, volume: &[f64], box_size: f64) -> (Vec<f64>, Vec<[f64; 3]>) {
    let n = hp.len();
    let mut a_out = vec![0.0; n];
    let mut b_out = vec![[0.0; 3]; n];
    for i in 0..n {
        let mut m0 = 0.0;
        let mut m1 = [0.0f64; 3];
        let mut m2 = [0.0f64; 6]; // xx, yy, zz, xy, xz, yz
        for j in 0..n {
            let p = pair(hp, i, j, box_size);
            let vw = volume[j] * p.w;
            m0 += vw;
            for c in 0..3 {
                m1[c] += vw * p.eta[c];
            }
            m2[0] += vw * p.eta[0] * p.eta[0];
            m2[1] += vw * p.eta[1] * p.eta[1];
            m2[2] += vw * p.eta[2] * p.eta[2];
            m2[3] += vw * p.eta[0] * p.eta[1];
            m2[4] += vw * p.eta[0] * p.eta[2];
            m2[5] += vw * p.eta[1] * p.eta[2];
        }
        let (xx, yy, zz, xy, xz, yz) = (m2[0], m2[1], m2[2], m2[3], m2[4], m2[5]);
        let c00 = yy * zz - yz * yz;
        let c01 = xz * yz - xy * zz;
        let c02 = xy * yz - xz * yy;
        let c11 = xx * zz - xz * xz;
        let c12 = xy * xz - xx * yz;
        let c22 = xx * yy - xy * xy;
        let det = xx * c00 + xy * c01 + xz * c02;
        let trace = xx + yy + zz;
        let ok = det.abs() >= 1e-6 * trace * trace * trace && det.abs() > 0.0;
        let b = if ok {
            let inv = 1.0 / det;
            [
                -(c00 * m1[0] + c01 * m1[1] + c02 * m1[2]) * inv,
                -(c01 * m1[0] + c11 * m1[1] + c12 * m1[2]) * inv,
                -(c02 * m1[0] + c12 * m1[1] + c22 * m1[2]) * inv,
            ]
        } else {
            [0.0; 3]
        };
        let denom = (m0 + b[0] * m1[0] + b[1] * m1[1] + b[2] * m1[2]).max(1e-300);
        a_out[i] = 1.0 / denom;
        b_out[i] = b;
    }
    (a_out, b_out)
}

/// Extras: density and density gradient with the owner-corrected kernel.
pub fn extras(
    hp: &HostParticles,
    crk_a: &[f64],
    crk_b: &[[f64; 3]],
    box_size: f64,
) -> (Vec<f64>, Vec<[f64; 3]>) {
    let n = hp.len();
    let mut rho = vec![0.0; n];
    let mut grad = vec![[0.0; 3]; n];
    for i in 0..n {
        for j in 0..n {
            let p = pair(hp, i, j, box_size);
            let bi_eta = crk_b[i][0] * p.eta[0] + crk_b[i][1] * p.eta[1] + crk_b[i][2] * p.eta[2];
            let wr = crk_a[i] * (1.0 + bi_eta) * p.w;
            rho[i] += hp.mass[j] * wr;
            let radial = -crk_a[i] * (1.0 + bi_eta) * p.dw_over_r;
            for c in 0..3 {
                grad[i][c] += hp.mass[j] * (radial * p.eta[c] - crk_a[i] * crk_b[i][c] * p.w);
            }
        }
    }
    (rho, grad)
}

/// EOS closure shared by the reference pipeline.
pub fn eos(hp: &HostParticles, rho: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let gamma = crate::particles::GAMMA as f64;
    let n = hp.len();
    let mut p = vec![0.0; n];
    let mut cs = vec![0.0; n];
    let mut pt = vec![0.0; n];
    for i in 0..n {
        let r = rho[i].max(1e-300);
        p[i] = (gamma - 1.0) * r * hp.u[i];
        cs[i] = (gamma * p[i] / r).sqrt();
        pt[i] = p[i] / (r * r);
    }
    (p, cs, pt)
}

/// The pair-antisymmetric corrected gradient (reference form).
fn corrected_gradient(p: &Pair, a_i: f64, b_i: [f64; 3], a_j: f64, b_j: [f64; 3]) -> [f64; 3] {
    let bi_eta = b_i[0] * p.eta[0] + b_i[1] * p.eta[1] + b_i[2] * p.eta[2];
    let bj_eta = b_j[0] * p.eta[0] + b_j[1] * p.eta[1] + b_j[2] * p.eta[2];
    let bracket = a_i * (1.0 + bi_eta) + a_j * (1.0 - bj_eta);
    let radial = -0.5 * bracket * p.dw_over_r;
    std::array::from_fn(|c| radial * p.eta[c] - 0.5 * (a_i * b_i[c] - a_j * b_j[c]) * p.w)
}

struct Visc {
    pi: f64,
    mu_abs: f64,
}

#[allow(clippy::too_many_arguments)]
fn viscosity(
    p: &Pair,
    vi: [f64; 3],
    vj: [f64; 3],
    ci: f64,
    cj: f64,
    rho_i: f64,
    rho_j: f64,
) -> Visc {
    let v = [vi[0] - vj[0], vi[1] - vj[1], vi[2] - vj[2]];
    let proj = v[0] * p.eta[0] + v[1] * p.eta[1] + v[2] * p.eta[2];
    let approaching = proj.max(0.0);
    let mu = p.hbar * approaching / (p.r2 + VISC_EPS as f64 * p.hbar * p.hbar);
    let cbar = 0.5 * (ci + cj);
    let rhobar = (0.5 * (rho_i + rho_j)).max(1e-300);
    let pi = (VISC_ALPHA as f64 * cbar * mu + VISC_BETA as f64 * mu * mu) / rhobar;
    Visc { pi, mu_abs: mu }
}

/// Acceleration + CFL time step.
#[allow(clippy::too_many_arguments)]
pub fn acceleration(
    hp: &HostParticles,
    crk_a: &[f64],
    crk_b: &[[f64; 3]],
    rho: &[f64],
    cs: &[f64],
    pterm: &[f64],
    box_size: f64,
) -> (Vec<[f64; 3]>, f64) {
    let n = hp.len();
    let mut acc = vec![[0.0; 3]; n];
    let mut dt_min = f64::MAX;
    for i in 0..n {
        let mut mu_max = 0.0f64;
        for j in 0..n {
            let p = pair(hp, i, j, box_size);
            if p.r2 <= 1e-12 {
                continue;
            }
            let g = corrected_gradient(&p, crk_a[i], crk_b[i], crk_a[j], crk_b[j]);
            let v = viscosity(&p, hp.vel[i], hp.vel[j], cs[i], cs[j], rho[i], rho[j]);
            let scale = -(pterm[i] + pterm[j] + v.pi) * hp.mass[j];
            for c in 0..3 {
                acc[i][c] += scale * g[c];
            }
            mu_max = mu_max.max(v.mu_abs);
        }
        let dt = CFL as f64 * hp.h[i] / (cs[i] + 2.0 * mu_max).max(1e-300);
        dt_min = dt_min.min(dt);
    }
    (acc, dt_min)
}

/// Energy derivative.
pub fn energy(
    hp: &HostParticles,
    crk_a: &[f64],
    crk_b: &[[f64; 3]],
    rho: &[f64],
    cs: &[f64],
    pterm: &[f64],
    box_size: f64,
) -> Vec<f64> {
    let n = hp.len();
    let mut du = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let p = pair(hp, i, j, box_size);
            if p.r2 <= 1e-12 {
                continue;
            }
            let g = corrected_gradient(&p, crk_a[i], crk_b[i], crk_a[j], crk_b[j]);
            let v = viscosity(&p, hp.vel[i], hp.vel[j], cs[i], cs[j], rho[i], rho[j]);
            let vij = [
                hp.vel[i][0] - hp.vel[j][0],
                hp.vel[i][1] - hp.vel[j][1],
                hp.vel[i][2] - hp.vel[j][2],
            ];
            let vdotg = vij[0] * g[0] + vij[1] * g[1] + vij[2] * g[2];
            du[i] += (pterm[i] + 0.5 * v.pi) * hp.mass[j] * vdotg;
        }
    }
    du
}

/// Short-range gravity with the degree-5 polynomial force law.
pub fn gravity(
    hp: &HostParticles,
    poly: &[f64; 6],
    r_cut2: f64,
    soft2: f64,
    box_size: f64,
) -> Vec<[f64; 3]> {
    let n = hp.len();
    let mut acc = vec![[0.0; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let eta = min_image(&hp.pos[i], &hp.pos[j], box_size);
            let r2 = eta[0] * eta[0] + eta[1] * eta[1] + eta[2] * eta[2];
            if r2 >= r_cut2 || r2 <= 1e-12 {
                continue;
            }
            let inv_r = 1.0 / (r2 + soft2).sqrt();
            let inv_r3 = inv_r * inv_r * inv_r;
            let mut p = poly[5];
            for k in (0..5).rev() {
                p = p * r2 + poly[k];
            }
            let f = (inv_r3 - p) * hp.mass[j];
            for c in 0..3 {
                acc[i][c] += f * eta[c];
            }
        }
    }
    acc
}

/// Runs the full reference pipeline (Geometry → Corrections → Extras →
/// EOS → Acceleration → Energy).
pub fn full_pipeline(hp: &HostParticles, box_size: f64) -> ReferenceState {
    let volume = geometry(hp, box_size);
    let (crk_a, crk_b) = corrections(hp, &volume, box_size);
    let (rho, grad_rho) = extras(hp, &crk_a, &crk_b, box_size);
    let (pressure, cs, pterm) = eos(hp, &rho);
    let (acc, dt_min) = acceleration(hp, &crk_a, &crk_b, &rho, &cs, &pterm, box_size);
    let du_dt = energy(hp, &crk_a, &crk_b, &rho, &cs, &pterm, box_size);
    ReferenceState {
        volume,
        crk_a,
        crk_b,
        rho,
        grad_rho,
        pressure,
        cs,
        pterm,
        acc,
        du_dt,
        dt_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A glass-like random particle set with uniform h.
    fn sample(n_side: usize, box_size: f64, seed: u64) -> HostParticles {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = box_size / n_side as f64;
        let mut hp = HostParticles::default();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    let jig = 0.2 * spacing;
                    hp.pos.push([
                        (i as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                        (j as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                        (k as f64 + 0.5) * spacing + rng.gen_range(-jig..jig),
                    ]);
                    hp.vel.push([
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                    ]);
                    hp.mass.push(1.0);
                    hp.h.push(1.3 * spacing);
                    hp.u.push(1.0);
                }
            }
        }
        hp
    }

    #[test]
    fn volumes_are_near_lattice_cell_volume() {
        let box_size = 8.0;
        let hp = sample(8, box_size, 1);
        let v = geometry(&hp, box_size);
        let cell = (box_size / 8.0).powi(3);
        for (i, &vi) in v.iter().enumerate() {
            assert!(
                (vi / cell - 1.0).abs() < 0.3,
                "particle {i}: V = {vi}, cell = {cell}"
            );
        }
    }

    /// The defining property of CRK: constant fields are reproduced
    /// *exactly* (to round-off): Σ_j V_j W^R_ij = 1.
    #[test]
    fn crk_reproduces_constant_field() {
        let box_size = 6.0;
        let hp = sample(6, box_size, 2);
        let v = geometry(&hp, box_size);
        let (a, b) = corrections(&hp, &v, box_size);
        for i in 0..hp.len() {
            let mut sum = 0.0;
            for j in 0..hp.len() {
                let p = pair(&hp, i, j, box_size);
                let bi_eta = b[i][0] * p.eta[0] + b[i][1] * p.eta[1] + b[i][2] * p.eta[2];
                sum += v[j] * a[i] * (1.0 + bi_eta) * p.w;
            }
            assert!((sum - 1.0).abs() < 1e-10, "particle {i}: Σ V W^R = {sum}");
        }
    }

    /// First-order consistency: linear fields are reproduced exactly:
    /// Σ_j V_j η W^R_ij = 0 (the interpolated position equals x_i).
    #[test]
    fn crk_reproduces_linear_field() {
        let box_size = 6.0;
        let hp = sample(6, box_size, 3);
        let v = geometry(&hp, box_size);
        let (a, b) = corrections(&hp, &v, box_size);
        for i in (0..hp.len()).step_by(17) {
            let mut sum = [0.0f64; 3];
            for j in 0..hp.len() {
                let p = pair(&hp, i, j, box_size);
                let bi_eta = b[i][0] * p.eta[0] + b[i][1] * p.eta[1] + b[i][2] * p.eta[2];
                let wr = a[i] * (1.0 + bi_eta) * p.w;
                for c in 0..3 {
                    sum[c] += v[j] * p.eta[c] * wr;
                }
            }
            for c in 0..3 {
                assert!(sum[c].abs() < 1e-9, "particle {i}, axis {c}: {}", sum[c]);
            }
        }
    }

    /// Uniform lattice with equal masses: ρ ≈ m/V_cell everywhere and the
    /// momentum (pressure-gradient) accelerations are near zero.
    #[test]
    fn uniform_medium_is_in_equilibrium() {
        let box_size = 6.0;
        let mut hp = sample(6, box_size, 4);
        // Zero velocities: no viscosity.
        for v in hp.vel.iter_mut() {
            *v = [0.0; 3];
        }
        let st = full_pipeline(&hp, box_size);
        let cell = (box_size / 6.0).powi(3);
        let rho_expect = 1.0 / cell;
        for i in 0..hp.len() {
            assert!(
                (st.rho[i] / rho_expect - 1.0).abs() < 0.1,
                "rho[{i}] = {} vs {rho_expect}",
                st.rho[i]
            );
        }
        // Accelerations from a constant-pressure medium should be small
        // compared to the naive pressure-force scale P/(ρ h). The 20%
        // position jitter is not a relaxed glass, so residuals of a few
        // tens of percent of the naive scale are expected.
        let scale = st.pressure[0] / (st.rho[0] * hp.h[0]);
        for i in 0..hp.len() {
            for c in 0..3 {
                assert!(
                    st.acc[i][c].abs() < 0.3 * scale,
                    "acc[{i}][{c}] = {} vs scale {scale}",
                    st.acc[i][c]
                );
            }
        }
        assert!(st.dt_min > 0.0 && st.dt_min.is_finite());
    }

    /// Momentum conservation: Σ m a = 0 for the pairwise-antisymmetric
    /// force (with viscosity active).
    #[test]
    fn momentum_is_conserved() {
        let box_size = 5.0;
        let hp = sample(5, box_size, 5);
        let st = full_pipeline(&hp, box_size);
        let mut net = [0.0f64; 3];
        let mut scale = 0.0f64;
        for i in 0..hp.len() {
            for c in 0..3 {
                net[c] += hp.mass[i] * st.acc[i][c];
                scale = scale.max(st.acc[i][c].abs());
            }
        }
        for c in 0..3 {
            assert!(
                net[c].abs() < 1e-9 * scale.max(1.0) * hp.len() as f64,
                "net momentum drift: {net:?}"
            );
        }
    }

    /// Adiabatic consistency: for zero velocities du/dt = 0 (no PdV work,
    /// no viscous heating).
    #[test]
    fn static_medium_has_no_heating() {
        let box_size = 5.0;
        let mut hp = sample(5, box_size, 6);
        for v in hp.vel.iter_mut() {
            *v = [0.0; 3];
        }
        let st = full_pipeline(&hp, box_size);
        for i in 0..hp.len() {
            assert!(st.du_dt[i].abs() < 1e-12, "du_dt[{i}] = {}", st.du_dt[i]);
        }
    }

    /// Compression heats: a uniformly contracting velocity field gives
    /// du/dt > 0 for interior particles.
    #[test]
    fn compression_heats_gas() {
        let box_size = 6.0;
        let mut hp = sample(6, box_size, 7);
        let center = box_size / 2.0;
        for (p, v) in hp.pos.iter().zip(hp.vel.iter_mut()) {
            // Pure radial contraction toward the box center.
            *v = [
                -0.3 * (p[0] - center),
                -0.3 * (p[1] - center),
                -0.3 * (p[2] - center),
            ];
        }
        let st = full_pipeline(&hp, box_size);
        // Check a central particle (away from the periodic seam where the
        // contraction field is discontinuous).
        let i = hp
            .pos
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().map(|x| (x - center).powi(2)).sum();
                let db: f64 = b.iter().map(|x| (x - center).powi(2)).sum();
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
            .0;
        assert!(st.du_dt[i] > 0.0, "central du_dt = {}", st.du_dt[i]);
    }

    /// Gravity: a close pair attracts along the separation, antisymmetric.
    #[test]
    fn gravity_pair_attracts() {
        let hp = HostParticles {
            pos: vec![[4.0, 5.0, 5.0], [6.0, 5.0, 5.0]],
            vel: vec![[0.0; 3]; 2],
            mass: vec![1.0, 1.0],
            h: vec![0.5; 2],
            u: vec![1.0; 2],
        };
        // Pure Newtonian (zero polynomial, huge cutoff).
        let acc = gravity(&hp, &[0.0; 6], 100.0, 0.0, 10.0);
        assert!(acc[0][0] > 0.0 && acc[1][0] < 0.0);
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-14);
        assert!((acc[0][0] - 0.25).abs() < 1e-12, "1/r² = 1/4 at r = 2");
    }
}
