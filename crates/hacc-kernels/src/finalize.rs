//! Per-particle finalization kernels (lane-parallel, no exchange).
//!
//! Each pairwise kernel accumulates sums; these small device kernels turn
//! the sums into the quantities the next kernel consumes:
//!
//! * [`FinalizeGeometry`] — `V = 1/n` from the number-density sum,
//! * [`FinalizeCorrections`] — solves the first-order CRK system for
//!   `A, B` from the moments `m₀, m₁, m₂` (a 3×3 symmetric solve per
//!   particle, by cofactor inversion),
//! * [`FinalizeEos`] — ideal-gas closure `P = (γ−1)ρu`, `c = √(γP/ρ)`,
//!   and the force term `P/ρ²`.

use crate::particles::{DeviceParticles, GAMMA};
use sycl_sim::{Lanes, Sg, SgKernel};

/// Lane→particle mapping for a lane-parallel kernel over `n` particles.
fn particle_slots(sg: &Sg, n: usize) -> (Lanes<u32>, Lanes<bool>) {
    let base = (sg.sg_id * sg.size) as u32;
    let raw = sg.lane_id().add_scalar(base);
    let last = sg.splat_u32((n - 1) as u32);
    let slots = raw.min(&last);
    let valid = raw.lt_scalar(n as u32);
    (slots, valid)
}

/// Number of sub-groups needed to cover `n` particles.
pub fn lane_parallel_instances(n: usize, sg_size: usize) -> usize {
    n.div_ceil(sg_size)
}

/// `V = 1/n`: inverts the Geometry number-density sum in place.
pub struct FinalizeGeometry {
    /// The particle state.
    pub data: DeviceParticles,
}

impl SgKernel for FinalizeGeometry {
    fn name(&self) -> &str {
        "upGeoFin"
    }

    fn run(&self, sg: &mut Sg) {
        let (slots, valid) = particle_slots(sg, self.data.n);
        let n_sum = sg.load_f32(&self.data.volume, &slots);
        let safe = n_sum.max(&sg.splat_f32(1e-30));
        let one = sg.splat_f32(1.0);
        let v = &one / &safe;
        sg.store_f32(&self.data.volume, &slots, &v, &valid);
    }
}

/// Solves the first-order CRK system per particle:
///
/// ```text
///   B = −M₂⁻¹ m₁        A = 1/(m₀ + B·m₁)
/// ```
///
/// (equivalent to `A = 1/(m₀ − m₁ᵀM₂⁻¹m₁)`). Falls back to plain SPH
/// (`A = 1/m₀`, `B = 0`) when the second-moment matrix is numerically
/// singular (isolated particles).
pub struct FinalizeCorrections {
    /// The particle state.
    pub data: DeviceParticles,
}

impl SgKernel for FinalizeCorrections {
    fn name(&self) -> &str {
        "upCorFin"
    }

    fn run(&self, sg: &mut Sg) {
        let (slots, valid) = particle_slots(sg, self.data.n);
        let m0 = sg.load_f32(&self.data.crk_m0, &slots);
        let m1: Vec<Lanes<f32>> = (0..3)
            .map(|c| sg.load_f32(&self.data.crk_m1[c], &slots))
            .collect();
        // m2 layout: xx, yy, zz, xy, xz, yz.
        let m2: Vec<Lanes<f32>> = (0..6)
            .map(|k| sg.load_f32(&self.data.crk_m2[k], &slots))
            .collect();
        let (xx, yy, zz, xy, xz, yz) = (&m2[0], &m2[1], &m2[2], &m2[3], &m2[4], &m2[5]);

        // Cofactors of the symmetric matrix.
        let c00 = &(yy * zz) - &(yz * yz);
        let c01 = &(xz * yz) - &(xy * zz);
        let c02 = &(xy * yz) - &(xz * yy);
        let c11 = &(xx * zz) - &(xz * xz);
        let c12 = &(xy * xz) - &(xx * yz);
        let c22 = &(xx * yy) - &(xy * xy);
        let det = &(&(xx * &c00) + &(xy * &c01)) + &(xz * &c02);

        // Scale for the singularity test: det ~ (h²-scale)³; compare with
        // the cube of the trace as a dimensionally consistent yardstick.
        let trace = &(xx + yy) + zz;
        let tr3 = &(&(&trace * &trace) * &trace) * 1e-6;
        let ok = det.abs().gt_scalar(0.0).and(&det.abs().lt(&tr3).not());

        let safe_det = det.select(&ok, &sg.splat_f32(1.0));
        let inv_det = &sg.splat_f32(1.0) / &safe_det;

        // B = −M₂⁻¹ m₁ (cofactor rows dotted with m₁).
        let bx_raw = &(&(&(&c00 * &m1[0]) + &(&c01 * &m1[1])) + &(&c02 * &m1[2])) * &inv_det;
        let by_raw = &(&(&(&c01 * &m1[0]) + &(&c11 * &m1[1])) + &(&c12 * &m1[2])) * &inv_det;
        let bz_raw = &(&(&(&c02 * &m1[0]) + &(&c12 * &m1[1])) + &(&c22 * &m1[2])) * &inv_det;
        let zero = sg.splat_f32(0.0);
        let bx = (-&bx_raw).select(&ok, &zero);
        let by = (-&by_raw).select(&ok, &zero);
        let bz = (-&bz_raw).select(&ok, &zero);

        // A = 1/(m0 + B·m1).
        let denom = &(&m0 + &(&bx * &m1[0])) + &(&(&by * &m1[1]) + &(&bz * &m1[2]));
        let denom = denom.max(&sg.splat_f32(1e-30));
        let a = &sg.splat_f32(1.0) / &denom;

        sg.store_f32(&self.data.crk_a, &slots, &a, &valid);
        sg.store_f32(&self.data.crk_b[0], &slots, &bx, &valid);
        sg.store_f32(&self.data.crk_b[1], &slots, &by, &valid);
        sg.store_f32(&self.data.crk_b[2], &slots, &bz, &valid);
    }
}

/// Ideal-gas closure: `P = (γ−1)ρu`, `c = √(γP/ρ)`, `pterm = P/ρ²`.
pub struct FinalizeEos {
    /// The particle state.
    pub data: DeviceParticles,
}

impl SgKernel for FinalizeEos {
    fn name(&self) -> &str {
        "upEosFin"
    }

    fn run(&self, sg: &mut Sg) {
        let (slots, valid) = particle_slots(sg, self.data.n);
        let rho = sg.load_f32(&self.data.rho, &slots);
        let u = sg.load_f32(&self.data.u, &slots);
        let rho_safe = rho.max(&sg.splat_f32(1e-30));
        let p = &(&rho_safe * &u) * (GAMMA - 1.0);
        let cs = (&(&p / &rho_safe) * GAMMA).sqrt();
        let pterm = &p / &(&rho_safe * &rho_safe);
        sg.store_f32(&self.data.pressure, &slots, &p, &valid);
        sg.store_f32(&self.data.cs, &slots, &cs, &valid);
        sg.store_f32(&self.data.pterm, &slots, &pterm, &valid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::HostParticles;
    use sycl_sim::{Device, GpuArch, LaunchConfig, Toolchain};

    fn upload(n: usize) -> DeviceParticles {
        let hp = HostParticles {
            pos: (0..n).map(|i| [i as f64, 0.0, 0.0]).collect(),
            vel: vec![[0.0; 3]; n],
            mass: vec![2.0; n],
            h: vec![1.0; n],
            u: vec![0.9; n],
        };
        DeviceParticles::upload(&hp)
    }

    fn launch(k: &dyn SgKernel, n_particles: usize) {
        let dev = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
        let cfg = LaunchConfig::defaults_for(&dev.arch)
            .with_sg_size(32)
            .deterministic();
        struct Wrap<'a>(&'a dyn SgKernel);
        impl sycl_sim::SgKernel for Wrap<'_> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn run(&self, sg: &mut Sg) {
                self.0.run(sg)
            }
        }
        dev.launch(&Wrap(k), lane_parallel_instances(n_particles, 32), cfg)
            .unwrap();
    }

    #[test]
    fn geometry_finalize_inverts() {
        let dp = upload(40);
        for i in 0..40 {
            dp.volume.write_f32(i, (i + 1) as f32);
        }
        launch(&FinalizeGeometry { data: dp.clone() }, 40);
        for i in 0..40 {
            let want = 1.0 / (i + 1) as f32;
            assert!((dp.volume.read_f32(i) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn eos_finalize_matches_closed_form() {
        let dp = upload(10);
        for i in 0..10 {
            dp.rho.write_f32(i, 2.0 + i as f32);
        }
        launch(&FinalizeEos { data: dp.clone() }, 10);
        for i in 0..10 {
            let rho = 2.0 + i as f32;
            let p = (GAMMA - 1.0) * rho * 0.9;
            assert!((dp.pressure.read_f32(i) - p).abs() < 1e-5);
            assert!((dp.cs.read_f32(i) - (GAMMA * p / rho).sqrt()).abs() < 1e-5);
            assert!((dp.pterm.read_f32(i) - p / (rho * rho)).abs() < 1e-6);
        }
    }

    #[test]
    fn corrections_finalize_solves_diagonal_system() {
        // With m2 = diag(d) and m1 = (p, q, r): B = −(p/d, q/d, r/d),
        // A = 1/(m0 + B·m1).
        let dp = upload(4);
        for i in 0..4 {
            dp.crk_m0.write_f32(i, 2.0);
            dp.crk_m1[0].write_f32(i, 0.2);
            dp.crk_m1[1].write_f32(i, -0.1);
            dp.crk_m1[2].write_f32(i, 0.05);
            dp.crk_m2[0].write_f32(i, 0.5); // xx
            dp.crk_m2[1].write_f32(i, 0.5); // yy
            dp.crk_m2[2].write_f32(i, 0.5); // zz
            dp.crk_m2[3].write_f32(i, 0.0);
            dp.crk_m2[4].write_f32(i, 0.0);
            dp.crk_m2[5].write_f32(i, 0.0);
        }
        launch(&FinalizeCorrections { data: dp.clone() }, 4);
        let bx = dp.crk_b[0].read_f32(0);
        let by = dp.crk_b[1].read_f32(0);
        let bz = dp.crk_b[2].read_f32(0);
        assert!((bx + 0.4).abs() < 1e-5, "bx = {bx}");
        assert!((by - 0.2).abs() < 1e-5, "by = {by}");
        assert!((bz + 0.1).abs() < 1e-5, "bz = {bz}");
        let denom = 2.0 + bx * 0.2 + by * -0.1 + bz * 0.05;
        assert!((dp.crk_a.read_f32(0) - 1.0 / denom).abs() < 1e-5);
    }

    #[test]
    fn corrections_finalize_falls_back_when_singular() {
        let dp = upload(2);
        for i in 0..2 {
            dp.crk_m0.write_f32(i, 4.0);
            // m2 = 0 (no neighbors): singular.
        }
        launch(&FinalizeCorrections { data: dp.clone() }, 2);
        assert!(
            (dp.crk_a.read_f32(0) - 0.25).abs() < 1e-6,
            "A falls back to 1/m0"
        );
        assert_eq!(dp.crk_b[0].read_f32(0), 0.0);
    }
}
