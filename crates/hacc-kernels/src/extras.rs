//! The *Extras* kernel (timer `upBarEx`): evaluates the density and its
//! gradient with the owner-corrected reproducing kernel,
//!
//! ```text
//!   ρ_i  = Σ_j m_j W^R_i(η)        ∇ρ_i = Σ_j m_j ∇ᵢW^R_i(η)
//! ```
//!
//! The owner's CRK coefficients `A_i, B_i` are loaded once and are *not*
//! exchanged (the partner only contributes mass, position, and smoothing
//! length).

use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use crate::physics::{corrected_gradient_own, corrected_kernel, pair_geometry};
use sycl_sim::{Lanes, Sg};

/// Exchanged fields: mass weight, position, h.
const F_M: usize = 0;
const F_X: usize = 1;
const F_H: usize = 4;
/// Owner-only fields: A, B.
const E_A: usize = 0;
const E_B: usize = 1;

/// Extras physics definition.
#[derive(Clone)]
pub struct Extras {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side.
    pub box_size: f32,
}

impl PairPhysics for Extras {
    fn name(&self) -> &'static str {
        "upBarEx"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        let mut bufs = vec![self.data.rho.clone()];
        bufs.extend(self.data.grad_rho.iter().cloned());
        bufs
    }

    /// ρ + ∇ρ (3).
    fn n_acc(&self) -> usize {
        4
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        let m = sg.load_f32(&self.data.mass, slots);
        vec![
            &m * valid_f,
            sg.load_f32(&self.data.pos[0], slots),
            sg.load_f32(&self.data.pos[1], slots),
            sg.load_f32(&self.data.pos[2], slots),
            sg.load_f32(&self.data.h, slots),
        ]
    }

    fn load_own_extra(&self, sg: &Sg, slots: &Lanes<u32>) -> Vec<Lanes<f32>> {
        vec![
            sg.load_f32(&self.data.crk_a, slots),
            sg.load_f32(&self.data.crk_b[0], slots),
            sg.load_f32(&self.data.crk_b[1], slots),
            sg.load_f32(&self.data.crk_b[2], slots),
        ]
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let g = pair_geometry(
            sg,
            [&own[F_X], &own[F_X + 1], &own[F_X + 2]],
            &own[F_H],
            [&other[F_X], &other[F_X + 1], &other[F_X + 2]],
            &other[F_H],
            self.box_size,
        );
        let a_i = &own_extra[E_A];
        let b_i = [&own_extra[E_B], &own_extra[E_B + 1], &own_extra[E_B + 2]];
        let wr = corrected_kernel(&g, a_i, b_i);
        acc[0] = &acc[0] + &(&wr * &other[F_M]);
        let grad = corrected_gradient_own(&g, a_i, b_i);
        for c in 0..3 {
            acc[1 + c] = &acc[1 + c] + &(&grad[c] * &other[F_M]);
        }
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        _own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        use crate::halfwarp::accumulate;
        accumulate(sg, &self.data.rho, slots, &acc[0], mask, atomic);
        for c in 0..3 {
            accumulate(sg, &self.data.grad_rho[c], slots, &acc[1 + c], mask, atomic);
        }
    }
}
