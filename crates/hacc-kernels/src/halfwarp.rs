//! Shared execution machinery for the half-warp (pair-parallel) and
//! broadcast (chunk-parallel) kernel structures.
//!
//! Both structures present the same contract to the physics code: the
//! kernel loads its *own* particle fields once, then receives the *other*
//! particle's fields once per interaction instance, accumulating into
//! live-register accumulators. The difference — which lanes own which
//! particles, how the other side's data arrives, and when results are
//! written back — is captured here.

use crate::variant::Variant;
use crate::worklist::{Chunk, Tile};
use sycl_sim::{Buffer, Lanes, Sg};

/// Slot assignment for a half-warp tile: lower lanes map to side A,
/// upper lanes to side B (paper Figure 3).
pub struct TileSlots {
    /// Global (leaf-ordered) slot index per lane, clamped in-bounds for
    /// padding lanes.
    pub slots: Lanes<u32>,
    /// Validity of each lane's own slot.
    pub valid: Lanes<bool>,
    /// Validity as 1.0/0.0, exchanged alongside data so partners can
    /// neutralize padding contributions.
    pub valid_f: Lanes<f32>,
    /// Lanes allowed to write results (valid, and lower-half-only for
    /// self tiles to avoid double counting).
    pub write_mask: Lanes<bool>,
}

/// Computes the lane→slot mapping for a tile.
pub fn tile_slots(sg: &Sg, tile: &Tile) -> TileSlots {
    let h = (sg.size / 2) as u32;
    let lane = sg.lane_id();
    let is_lower = lane.lt_scalar(h);
    // Offsets within each side, clamped to the last valid slot so padding
    // lanes still load in-bounds data (neutralized via valid flags).
    let a_off = lane.clone();
    let b_off = lane.add_scalar(0u32.wrapping_sub(h)); // lane − h (wrapping; masked)
    let a_slot_raw = a_off.add_scalar(tile.a_start);
    let b_slot_raw = b_off.add_scalar(tile.b_start);
    let a_last = sg.splat_u32(tile.a_start + tile.a_len - 1);
    let b_last = sg.splat_u32(tile.b_start + tile.b_len - 1);
    let a_slot = clamp_max(&a_slot_raw, &a_last);
    let b_slot = clamp_max(&b_slot_raw, &b_last);
    let slots = a_slot.select(&is_lower, &b_slot);
    let a_valid = lane.lt_scalar(tile.a_len.min(h));
    // lane − h < b_len for upper lanes.
    let b_valid = lane.lt_scalar(h + tile.b_len.min(h)).and(&is_lower.not());
    let valid = a_valid.and(&is_lower).or(&b_valid);
    let valid_f = valid.to_f32();
    let write_mask = if tile.self_tile {
        valid.and(&is_lower)
    } else {
        valid.clone()
    };
    TileSlots {
        slots,
        valid,
        valid_f,
        write_mask,
    }
}

/// `min(x, hi)` per lane.
fn clamp_max(x: &Lanes<u32>, hi: &Lanes<u32>) -> Lanes<u32> {
    x.min(hi)
}

/// Executes the half-warp interaction loop: `interact` is called `h`
/// times, once per exchange step, receiving the partner's fields in the
/// same order as `own_fields`.
pub fn half_warp_loop(
    sg: &Sg,
    variant: Variant,
    own_fields: &[&Lanes<f32>],
    mut interact: impl FnMut(&Sg, &[Lanes<f32>]),
) {
    debug_assert!(variant.is_half_warp());
    let h = sg.size / 2;
    for step in 0..h {
        let other = variant.exchange(sg, own_fields, step);
        interact(sg, &other);
    }
}

/// Slot assignment for a broadcast-variant chunk: each lane owns one slot
/// of the chunk (full sub-group width).
pub struct ChunkSlots {
    /// Global slot per lane (clamped).
    pub slots: Lanes<u32>,
    /// Validity of the lane's own slot.
    pub valid: Lanes<bool>,
    /// Write mask (same as `valid` — each particle lives in exactly one
    /// chunk, so broadcast kernels write without atomics).
    pub write_mask: Lanes<bool>,
}

/// Computes the lane→slot mapping for a chunk.
pub fn chunk_slots(sg: &Sg, chunk: &Chunk) -> ChunkSlots {
    let lane = sg.lane_id();
    let raw = lane.add_scalar(chunk.start);
    let last = sg.splat_u32(chunk.start + chunk.len - 1);
    let slots = raw.min(&last);
    let valid = lane.lt_scalar(chunk.len);
    ChunkSlots {
        write_mask: valid.clone(),
        slots,
        valid,
    }
}

/// Executes the broadcast interaction loop over one neighbor chunk:
/// loads the neighbor fields lane-wise with `load`, then broadcasts each
/// valid slot in turn, calling `interact` with the broadcast fields.
///
/// The j-loop bound is known on the host, so no validity flag needs to be
/// exchanged — but every lane redundantly evaluates every interaction
/// (the paper's "redundantly compute intermediate values", §5.3.2).
pub fn broadcast_loop(
    sg: &Sg,
    nbr_start: u32,
    nbr_len: u32,
    load: impl Fn(&Sg, &Lanes<u32>) -> Vec<Lanes<f32>>,
    mut interact: impl FnMut(&Sg, &[Lanes<f32>]),
) {
    let lane = sg.lane_id();
    let raw = lane.add_scalar(nbr_start);
    let last = sg.splat_u32(nbr_start + nbr_len - 1);
    let slots = raw.min(&last);
    let staged = load(sg, &slots);
    for j in 0..nbr_len as usize {
        let other: Vec<Lanes<f32>> = staged.iter().map(|f| sg.broadcast(f, j)).collect();
        interact(sg, &other);
    }
}

/// Writes an accumulator back: atomic add under the half-warp structure
/// (partial sums from many tiles), plain store under broadcast (complete
/// sums, one owner chunk per particle).
pub fn accumulate(
    sg: &Sg,
    buf: &Buffer,
    slots: &Lanes<u32>,
    v: &Lanes<f32>,
    mask: &Lanes<bool>,
    atomic: bool,
) {
    if atomic {
        sg.atomic_add(buf, slots, v, mask);
    } else {
        sg.store_f32(buf, slots, v, mask);
    }
}

/// Minimum-image displacement component `other − own` in a periodic box.
pub fn min_image_lanes(own: &Lanes<f32>, other: &Lanes<f32>, box_size: f32) -> Lanes<f32> {
    let d = other - own;
    let wraps = (&d / box_size).round();
    &d - &(&wraps * box_size)
}

/// Loads the standard position triplet at `slots`.
pub fn load_pos(sg: &Sg, pos: &[Buffer; 3], slots: &Lanes<u32>) -> [Lanes<f32>; 3] {
    [
        sg.load_f32(&pos[0], slots),
        sg.load_f32(&pos[1], slots),
        sg.load_f32(&pos[2], slots),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{GpuArch, SgConfig};

    fn sg() -> Sg {
        Sg::new(0, 32, SgConfig::for_arch(&GpuArch::frontier(), true, false))
    }

    #[test]
    fn tile_slot_mapping() {
        let s = sg();
        let tile = Tile {
            a_start: 100,
            a_len: 10,
            b_start: 200,
            b_len: 16,
            self_tile: false,
        };
        let ts = tile_slots(&s, &tile);
        // Lower lanes 0..10 valid, map to 100+lane.
        for l in 0..10 {
            assert!(ts.valid.get(l));
            assert_eq!(ts.slots.get(l), 100 + l as u32);
        }
        for l in 10..16 {
            assert!(!ts.valid.get(l), "lane {l} is padding");
            assert_eq!(ts.slots.get(l), 109, "padding clamps to last valid");
        }
        // Upper lanes all valid (b_len = 16).
        for l in 16..32 {
            assert!(ts.valid.get(l));
            assert_eq!(ts.slots.get(l), 200 + (l as u32 - 16));
        }
        // Non-self tile: write mask equals validity.
        for l in 0..32 {
            assert_eq!(ts.write_mask.get(l), ts.valid.get(l));
        }
    }

    #[test]
    fn self_tile_masks_upper_writes() {
        let s = sg();
        let tile = Tile {
            a_start: 0,
            a_len: 16,
            b_start: 0,
            b_len: 16,
            self_tile: true,
        };
        let ts = tile_slots(&s, &tile);
        for l in 0..16 {
            assert!(ts.write_mask.get(l));
        }
        for l in 16..32 {
            assert!(ts.valid.get(l), "upper lanes still load data");
            assert!(
                !ts.write_mask.get(l),
                "upper lanes must not write in self tiles"
            );
        }
    }

    #[test]
    fn chunk_slot_mapping() {
        let s = sg();
        let chunk = Chunk {
            start: 64,
            len: 20,
            nbr_offset: 0,
            nbr_count: 0,
        };
        let cs = chunk_slots(&s, &chunk);
        for l in 0..20 {
            assert!(cs.valid.get(l));
            assert_eq!(cs.slots.get(l), 64 + l as u32);
        }
        for l in 20..32 {
            assert!(!cs.valid.get(l));
            assert_eq!(cs.slots.get(l), 83);
        }
    }

    #[test]
    fn min_image_wraps_displacements() {
        let s = sg();
        let own = s.from_fn_f32(|_| 0.5);
        let other = s.from_fn_f32(|_| 9.5);
        let d = min_image_lanes(&own, &other, 10.0);
        for l in 0..32 {
            assert!(
                (d.get(l) + 1.0).abs() < 1e-6,
                "wrapped to −1, got {}",
                d.get(l)
            );
        }
    }

    #[test]
    fn broadcast_loop_visits_each_neighbor_once() {
        let s = sg();
        let buf = Buffer::from_f32(&(0..100).map(|i| i as f32).collect::<Vec<_>>());
        let mut seen = Vec::new();
        broadcast_loop(
            &s,
            40,
            5,
            |sg, slots| vec![sg.load_f32(&buf, slots)],
            |_, other| seen.push(other[0].get(0)),
        );
        assert_eq!(seen, vec![40.0, 41.0, 42.0, 43.0, 44.0]);
    }
}
