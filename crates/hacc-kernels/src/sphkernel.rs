//! The SPH interpolation kernel (cubic B-spline) in scalar (f64 reference)
//! and device (`Lanes<f32>`) forms.
//!
//! CRK-SPH builds its reproducing-kernel corrections on top of a standard
//! spherical kernel; CRK-HACC uses the cubic spline. Conventions:
//! `q = r/h`, support radius `2h`,
//!
//! ```text
//!   W(q, h) = σ/h³ · { 1 − 3/2 q² + 3/4 q³   0 ≤ q ≤ 1
//!                    { 1/4 (2 − q)³          1 < q ≤ 2
//!                    { 0                     q > 2
//!   σ = 1/π
//! ```
//!
//! and `dW/dr` follows by differentiation. The device form charges the
//! meter through ordinary `Lanes` arithmetic, so kernel evaluations
//! contribute realistically to the instruction mix.

use sycl_sim::{Lanes, Sg};

/// Normalization σ = 1/π for the 3D cubic spline.
pub const SIGMA_3D: f64 = 1.0 / std::f64::consts::PI;

/// Scalar (f64) kernel value `W(r, h)`.
pub fn w_scalar(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    let q = r / h;
    let s = SIGMA_3D / (h * h * h);
    if q <= 1.0 {
        s * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
    } else if q <= 2.0 {
        let t = 2.0 - q;
        s * 0.25 * t * t * t
    } else {
        0.0
    }
}

/// Scalar kernel radial derivative `dW/dr (r, h)`.
pub fn dw_dr_scalar(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    let q = r / h;
    let s = SIGMA_3D / (h * h * h * h);
    if q <= 1.0 {
        s * (-3.0 * q + 2.25 * q * q)
    } else if q <= 2.0 {
        let t = 2.0 - q;
        s * (-0.75) * t * t
    } else {
        0.0
    }
}

/// Device kernel value for a whole sub-group: `W(r[l], h[l])` per lane.
///
/// Branch-free (both polynomial pieces evaluated and blended with
/// predicated selects), as GPU kernels are compiled.
pub fn w_lanes(sg: &Sg, r: &Lanes<f32>, h: &Lanes<f32>) -> Lanes<f32> {
    let q = r / h;
    let h3 = &(h * h) * h;
    let s = &sg.splat_f32(SIGMA_3D as f32) / &h3;
    // Inner piece: 1 − 1.5 q² + 0.75 q³.
    let q2 = &q * &q;
    let inner = &(&(&q2 * -1.5) + &(&(&q2 * &q) * 0.75)) + 1.0;
    // Outer piece: 0.25 (2 − q)³.
    let t = &(-&q) + 2.0;
    let t = t.max(&sg.splat_f32(0.0));
    let outer = &(&(&t * &t) * &t) * 0.25;
    let use_inner = q.lt_scalar(1.0);
    let w = inner.select(&use_inner, &outer);
    &w * &s
}

/// Device kernel derivative `dW/dr` per lane (branch-free).
pub fn dw_dr_lanes(sg: &Sg, r: &Lanes<f32>, h: &Lanes<f32>) -> Lanes<f32> {
    let q = r / h;
    let h2 = h * h;
    let h4 = &h2 * &h2;
    let s = &sg.splat_f32(SIGMA_3D as f32) / &h4;
    // Inner: −3q + 2.25 q².
    let inner = &(&q * -3.0) + &(&(&q * &q) * 2.25);
    // Outer: −0.75 (2 − q)².
    let t = &(-&q) + 2.0;
    let t = t.max(&sg.splat_f32(0.0));
    let outer = &(&t * &t) * -0.75;
    let use_inner = q.lt_scalar(1.0);
    let dw = inner.select(&use_inner, &outer);
    &dw * &s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{GpuArch, SgConfig};

    fn sg() -> Sg {
        Sg::new(0, 32, SgConfig::for_arch(&GpuArch::frontier(), true, false))
    }

    #[test]
    fn kernel_is_normalized() {
        // ∫ W 4π r² dr = 1 over [0, 2h].
        let h = 1.3;
        let n = 4000;
        let dr = 2.0 * h / n as f64;
        let integral: f64 = (0..n)
            .map(|i| {
                let r = (i as f64 + 0.5) * dr;
                w_scalar(r, h) * 4.0 * std::f64::consts::PI * r * r * dr
            })
            .sum();
        assert!((integral - 1.0).abs() < 1e-4, "∫W = {integral}");
    }

    #[test]
    fn kernel_has_compact_support() {
        assert_eq!(w_scalar(2.001, 1.0), 0.0);
        assert_eq!(dw_dr_scalar(2.5, 1.0), 0.0);
        assert!(w_scalar(1.999, 1.0) > 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 0.9;
        for r in [0.1, 0.5, 0.95, 1.3, 1.9] {
            let eps = 1e-6;
            let fd = (w_scalar(r + eps, h) - w_scalar(r - eps, h)) / (2.0 * eps);
            let an = dw_dr_scalar(r, h);
            assert!(
                (fd - an).abs() < 1e-5 * an.abs().max(1.0),
                "r = {r}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn derivative_is_nonpositive() {
        for i in 0..100 {
            let r = i as f64 * 0.021;
            assert!(dw_dr_scalar(r, 1.0) <= 0.0, "monotone decreasing kernel");
        }
    }

    #[test]
    fn device_kernel_matches_scalar() {
        let sg = sg();
        let r = sg.from_fn_f32(|l| 0.07 * l as f32);
        let h = sg.from_fn_f32(|l| 0.8 + 0.01 * l as f32);
        let w = w_lanes(&sg, &r, &h);
        let dw = dw_dr_lanes(&sg, &r, &h);
        for l in 0..32 {
            let want_w = w_scalar(r.get(l) as f64, h.get(l) as f64) as f32;
            let want_dw = dw_dr_scalar(r.get(l) as f64, h.get(l) as f64) as f32;
            assert!(
                (w.get(l) - want_w).abs() < 1e-4 * want_w.abs().max(1.0),
                "lane {l}"
            );
            assert!(
                (dw.get(l) - want_dw).abs() < 1e-3 * want_dw.abs().max(1.0),
                "lane {l}"
            );
        }
    }

    #[test]
    fn device_kernel_is_branch_free_beyond_support() {
        // q > 2 lanes must produce exactly zero (clamped outer piece).
        let sg = sg();
        let r = sg.from_fn_f32(|l| 2.0 + l as f32);
        let h = sg.from_fn_f32(|_| 0.5);
        let w = w_lanes(&sg, &r, &h);
        let dw = dw_dr_lanes(&sg, &r, &h);
        for l in 0..32 {
            assert_eq!(w.get(l), 0.0);
            assert_eq!(dw.get(l), 0.0);
        }
    }
}
