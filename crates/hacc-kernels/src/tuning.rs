//! Kernel-layer glue for the runtime autotuner (DESIGN.md §4j).
//!
//! `hacc-tune` owns the persistent cache and the epsilon-greedy
//! selector but carries the communication variant only as a string
//! label (it sits below this crate in the dependency order). This
//! module composes the full search space — **variant ×
//! [`sycl_sim::tunable`] device knobs** — stamps the cache with
//! arch/kernel digests, and converts cached winners into validated
//! per-timer [`StepPlan`]s, falling back to the paper's hand-picked
//! table (Appendix A) whenever a cache entry is cold, stale, or fails
//! re-validation against the live architecture.

use crate::launch::{StepPlan, TimerReport, GRAVITY_TIMER, HYDRO_TIMERS};
use crate::variant::{Variant, ALL_VARIANTS};
use hacc_telemetry::Recorder;
use hacc_tune::{
    digest_strs, Selection, SizeBand, TuneCache, TuneChoice, TuneError, TuneKey, Tuner,
};
use sycl_sim::{tunable, Device, GpuArch, GrfMode, LaunchBounds, LaunchConfig};

/// All timers the tuner plans: the seven hydro brackets plus gravity.
pub fn tuned_timers() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = HYDRO_TIMERS.to_vec();
    v.push(GRAVITY_TIMER);
    v
}

/// The paper's hand-picked launch knobs for a variant on an
/// architecture (Appendix A): sub-group 16 on Aurora for the broadcast
/// kernels and 32 otherwise, both with large GRF; 32 on Polaris; 64 on
/// Frontier; clamped to a supported size for anything else (the CPU
/// host tops out at 16).
pub fn hand_picked_knobs(arch: &GpuArch, variant: Variant) -> (usize, GrfMode) {
    let (sg, grf) = match arch.id {
        "pvc" => {
            if variant == Variant::Broadcast {
                (16, GrfMode::Large)
            } else {
                (32, GrfMode::Large)
            }
        }
        "a100" => (32, GrfMode::Default),
        "mi250x" => (64, GrfMode::Default),
        _ => (arch.max_sg_size(), GrfMode::Default),
    };
    let sg = if arch.supports_sg_size(sg) {
        sg
    } else {
        arch.max_sg_size()
    };
    let grf = if arch.has_large_grf {
        grf
    } else {
        GrfMode::Default
    };
    (sg, grf)
}

/// The hand-picked table as a [`TuneChoice`] — the cold-cache fallback
/// and the baseline the autotuner must never lose to.
pub fn hand_picked_choice(arch: &GpuArch, variant: Variant) -> TuneChoice {
    let (sg, grf) = hand_picked_knobs(arch, variant);
    TuneChoice {
        variant: variant.id().to_string(),
        sg_size: sg,
        wg_size: 128.max(sg),
        grf,
        bounds: LaunchBounds::Default,
    }
}

/// Variants legal on `arch` under `toolchain_visa` (whether the build
/// enables inline vISA).
pub fn variant_candidates(arch: &GpuArch, toolchain_visa: bool) -> Vec<Variant> {
    ALL_VARIANTS
        .into_iter()
        .filter(|v| !v.needs_visa() || (arch.supports_visa && toolchain_visa))
        .collect()
}

/// The composed search space for `arch`: every legal variant crossed
/// with the device-level tunable points — the full space when `full`,
/// the bounded per-push space (sub-group × GRF at work-group 128)
/// otherwise.
pub fn search_space(arch: &GpuArch, full: bool, toolchain_visa: bool) -> Vec<TuneChoice> {
    let points = if full {
        tunable::enumerate(arch)
    } else {
        tunable::enumerate_bounded(arch)
    };
    let mut out = Vec::new();
    for v in variant_candidates(arch, toolchain_visa) {
        for p in &points {
            out.push(TuneChoice {
                variant: v.id().to_string(),
                sg_size: p.sg_size,
                wg_size: p.wg_size,
                grf: p.grf,
                bounds: p.bounds,
            });
        }
    }
    out
}

/// Digest of one architecture's tuning-relevant description, so a cache
/// tuned for one arch set is rejected on another.
pub fn arch_digest(arch: &GpuArch) -> u64 {
    let sgs = arch
        .sg_sizes
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    digest_strs([
        arch.id,
        &sgs,
        if arch.has_large_grf { "grf" } else { "-" },
        if arch.supports_visa { "visa" } else { "-" },
    ])
}

/// Digest of the kernel/variant set this build tunes — bumps whenever a
/// timer or variant is added, renamed, or removed, invalidating caches
/// tuned for the old set.
pub fn kernel_digest() -> u64 {
    let mut parts: Vec<&str> = tuned_timers();
    for v in ALL_VARIANTS {
        parts.push(v.id());
    }
    digest_strs(parts)
}

/// Re-validates a cached or explored choice against the live build:
/// the variant label must parse, vISA needs the vISA toolchain, and the
/// device knobs must be legal on `arch`.
pub fn validate_choice(
    arch: &GpuArch,
    toolchain_visa: bool,
    choice: &TuneChoice,
) -> Option<(Variant, TuneChoice)> {
    let variant = Variant::from_id(&choice.variant)?;
    if variant.needs_visa() && !(arch.supports_visa && toolchain_visa) {
        return None;
    }
    if !choice.device_knobs_valid(arch) {
        return None;
    }
    Some((variant, choice.clone()))
}

/// The per-simulation tuned selector: wraps the [`Tuner`] with the
/// composed search space for one (architecture, problem-size band) and
/// builds validated [`StepPlan`]s.
#[derive(Clone, Debug)]
pub struct TunedSelector {
    tuner: Tuner,
    arch: GpuArch,
    band: SizeBand,
    toolchain_visa: bool,
    space: Vec<TuneChoice>,
}

impl TunedSelector {
    /// Wraps a digest-checked cache. `epsilon` is the exploration rate
    /// in `[0, 1]`; exploration draws from the bounded space (cheap
    /// single-step experiments), while the nightly soak walks the full
    /// space offline.
    pub fn new(
        arch: &GpuArch,
        n_particles: usize,
        cache: TuneCache,
        epsilon: f64,
        toolchain_visa: bool,
    ) -> Self {
        Self {
            tuner: Tuner::new(cache, epsilon),
            arch: arch.clone(),
            band: SizeBand::of(n_particles),
            toolchain_visa,
            space: search_space(arch, false, toolchain_visa),
        }
    }

    /// Loads `path`, validates schema and digests, and wraps the result;
    /// any load failure (missing file, hostile bytes, stale digests)
    /// starts from an empty stamped cache instead, returning the error
    /// alongside so callers can log it.
    pub fn from_cache_file(
        arch: &GpuArch,
        n_particles: usize,
        path: &std::path::Path,
        epsilon: f64,
        toolchain_visa: bool,
    ) -> (Self, Option<TuneError>) {
        let want_arch = arch_digest(arch);
        let want_kernel = kernel_digest();
        let (cache, err) = match TuneCache::load(path) {
            Ok(c) => match c.check_digests(want_arch, want_kernel) {
                Ok(()) => (c, None),
                Err(e) => (TuneCache::new(want_arch, want_kernel), Some(e)),
            },
            Err(e) => (TuneCache::new(want_arch, want_kernel), Some(e)),
        };
        (
            Self::new(arch, n_particles, cache, epsilon, toolchain_visa),
            err,
        )
    }

    /// The problem-size band this selector tunes for.
    pub fn band(&self) -> SizeBand {
        self.band
    }

    /// The wrapped cache (for persistence or inspection).
    pub fn cache(&self) -> &TuneCache {
        self.tuner.cache()
    }

    /// Writes the cache to `path` in canonical form.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TuneError> {
        self.tuner.cache().save(path)
    }

    /// Read-only look at the validated cached winner for a timer, if
    /// any — used where a `&mut` selector is not available (e.g. the
    /// gravity context snapshot).
    pub fn peek(&self, timer: &str) -> Option<(Variant, TuneChoice)> {
        let key = TuneKey::new(timer, self.arch.id, self.band);
        let entry = self.tuner.cache().lookup(&key)?;
        validate_choice(&self.arch, self.toolchain_visa, &entry.choice)
    }

    /// Builds the step plan for the next step: per timer, the cached
    /// winner (or an exploration candidate at rate epsilon), re-validated
    /// against the live architecture; anything cold or invalid falls
    /// back to the hand-picked table for `default_variant`. `base`
    /// supplies the execution and metering policies.
    pub fn plan(
        &mut self,
        default_variant: Variant,
        base: LaunchConfig,
        telemetry: Option<&Recorder>,
    ) -> StepPlan {
        let hand = hand_picked_choice(&self.arch, default_variant);
        let (hand_variant, hand_choice) = validate_choice(&self.arch, self.toolchain_visa, &hand)
            .unwrap_or_else(|| {
                // The hand-picked table is always device-valid; the only
                // way to get here is an unsupported default variant
                // (vISA without the toolchain) — degrade to its fallback.
                let v = default_variant.fallback().unwrap_or(Variant::MemoryObject);
                let c = hand_picked_choice(&self.arch, v);
                (v, c)
            });
        let mut plan = StepPlan::uniform(hand_variant, hand_choice.apply_to(base));
        for timer in tuned_timers() {
            let key = TuneKey::new(timer, self.arch.id, self.band);
            let picked = match self.tuner.select(&key, &self.space, telemetry) {
                Selection::Cached(c) | Selection::Explore(c) => {
                    validate_choice(&self.arch, self.toolchain_visa, &c)
                }
                Selection::Cold => None,
            };
            if let Some((variant, choice)) = picked {
                plan.set(timer, variant, choice.apply_to(base));
            }
        }
        plan
    }

    /// Feeds a completed step's timer reports back into the cache: each
    /// bracket's merged cost-model estimate is recorded against the
    /// choice that actually ran (which may be a fallback demotion of the
    /// planned variant). Unmetered launches (zero estimate) are skipped —
    /// a zero would otherwise win every comparison.
    pub fn observe_step(
        &mut self,
        device: &Device,
        timers: &[TimerReport],
        telemetry: Option<&Recorder>,
    ) {
        for t in timers {
            let Some(first) = t.profiles.first() else {
                continue;
            };
            let Some(variant) = Variant::from_label(&first.variant) else {
                continue;
            };
            let est = device.profile(&t.report).est_seconds;
            if est <= 0.0 {
                continue;
            }
            let choice = TuneChoice {
                variant: variant.id().to_string(),
                sg_size: t.report.sg_size,
                wg_size: t.report.wg_size,
                grf: t.report.grf,
                bounds: t.report.bounds,
            };
            let key = TuneKey::new(&t.timer, self.arch.id, self.band);
            self.tuner.observe(&key, &choice, est, telemetry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_ids_round_trip_and_pass_the_cache_charset() {
        for v in ALL_VARIANTS {
            assert_eq!(Variant::from_id(v.id()), Some(v));
            assert_eq!(Variant::from_label(v.label()), Some(v));
            assert!(v.id().chars().all(|c| c.is_ascii_alphanumeric()));
        }
        assert_eq!(Variant::from_id("Memory, 32-bit"), None);
    }

    #[test]
    fn hand_picked_matches_the_paper_table() {
        let pvc = GpuArch::aurora();
        assert_eq!(
            hand_picked_knobs(&pvc, Variant::Broadcast),
            (16, GrfMode::Large)
        );
        assert_eq!(
            hand_picked_knobs(&pvc, Variant::Select),
            (32, GrfMode::Large)
        );
        assert_eq!(
            hand_picked_knobs(&GpuArch::polaris(), Variant::Select),
            (32, GrfMode::Default)
        );
        assert_eq!(
            hand_picked_knobs(&GpuArch::frontier(), Variant::Select),
            (64, GrfMode::Default)
        );
        // Clamped to a supported size on the CPU host.
        let cpu = GpuArch::cpu_host();
        let (sg, _) = hand_picked_knobs(&cpu, Variant::Select);
        assert!(cpu.supports_sg_size(sg));
    }

    #[test]
    fn search_space_contains_the_hand_picked_table() {
        for arch in GpuArch::all() {
            let space = search_space(&arch, true, arch.supports_visa);
            for v in variant_candidates(&arch, arch.supports_visa) {
                let hand = hand_picked_choice(&arch, v);
                assert!(
                    space.contains(&hand),
                    "{} missing hand-picked {}",
                    arch.id,
                    hand.label()
                );
            }
        }
    }

    #[test]
    fn visa_is_gated_by_arch_and_toolchain() {
        let pvc = GpuArch::aurora();
        assert!(variant_candidates(&pvc, true).contains(&Variant::Visa));
        assert!(!variant_candidates(&pvc, false).contains(&Variant::Visa));
        assert!(!variant_candidates(&GpuArch::frontier(), true).contains(&Variant::Visa));
        let visa_choice = TuneChoice {
            variant: "visa".to_string(),
            sg_size: 32,
            wg_size: 128,
            grf: GrfMode::Large,
            bounds: LaunchBounds::Default,
        };
        assert!(validate_choice(&pvc, true, &visa_choice).is_some());
        assert!(validate_choice(&pvc, false, &visa_choice).is_none());
    }

    #[test]
    fn digests_distinguish_architectures() {
        let mut seen = std::collections::HashSet::new();
        for arch in GpuArch::all_with_cpu() {
            assert!(seen.insert(arch_digest(&arch)), "collision on {}", arch.id);
        }
        assert_ne!(kernel_digest(), 0);
    }

    #[test]
    fn cold_selector_plans_the_hand_picked_table() {
        let arch = GpuArch::frontier();
        let cache = TuneCache::new(arch_digest(&arch), kernel_digest());
        let mut sel = TunedSelector::new(&arch, 512, cache, 0.0, false);
        let base = LaunchConfig::defaults_for(&arch);
        let plan = sel.plan(Variant::Select, base, None);
        for timer in tuned_timers() {
            let (v, cfg) = plan.choice(timer);
            assert_eq!(v, Variant::Select);
            assert_eq!(cfg.sg_size, 64);
            assert_eq!(cfg.wg_size, 128);
        }
    }

    #[test]
    fn cached_winners_and_invalid_entries_resolve_correctly() {
        let arch = GpuArch::frontier();
        let mut cache = TuneCache::new(arch_digest(&arch), kernel_digest());
        let band = SizeBand::of(512);
        // A valid winner for upGeo...
        cache.record(
            &TuneKey::new("upGeo", arch.id, band),
            &TuneChoice {
                variant: "broadcast".to_string(),
                sg_size: 32,
                wg_size: 256,
                grf: GrfMode::Default,
                bounds: LaunchBounds::Capped(96),
            },
            1e-4,
        );
        // ...and an arch-invalid one for upCor (sg 16 unsupported on
        // MI250X) that must fall back to hand-picked.
        cache.record(
            &TuneKey::new("upCor", arch.id, band),
            &TuneChoice {
                variant: "select".to_string(),
                sg_size: 16,
                wg_size: 128,
                grf: GrfMode::Default,
                bounds: LaunchBounds::Default,
            },
            1e-4,
        );
        let mut sel = TunedSelector::new(&arch, 512, cache, 0.0, false);
        let base = LaunchConfig::defaults_for(&arch);
        let plan = sel.plan(Variant::Select, base, None);
        let (v_geo, cfg_geo) = plan.choice("upGeo");
        assert_eq!(v_geo, Variant::Broadcast);
        assert_eq!(cfg_geo.sg_size, 32);
        assert_eq!(cfg_geo.wg_size, 256);
        assert_eq!(cfg_geo.bounds, LaunchBounds::Capped(96));
        let (v_cor, cfg_cor) = plan.choice("upCor");
        assert_eq!(v_cor, Variant::Select);
        assert_eq!(cfg_cor.sg_size, 64);
        // peek sees the same winner without mutating the tuner.
        assert!(sel.peek("upGeo").is_some());
        assert!(sel.peek("upCor").is_none(), "invalid entries don't peek");
        assert!(sel.peek("upGrav").is_none());
    }

    #[test]
    fn stale_digests_start_a_fresh_cache() {
        let arch = GpuArch::frontier();
        let dir = std::env::temp_dir().join("hacc-tune-test-stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune-cache.json");
        let mut stale = TuneCache::new(0xbad, 0xbad);
        stale.record(
            &TuneKey::new("upGeo", arch.id, SizeBand::Small),
            &hand_picked_choice(&arch, Variant::Select),
            1.0,
        );
        stale.save(&path).unwrap();
        let (sel, err) = TunedSelector::from_cache_file(&arch, 512, &path, 0.0, false);
        assert!(matches!(err, Some(TuneError::Digest { .. })));
        assert!(sel.cache().entries.is_empty());
        assert_eq!(sel.cache().arch_digest, arch_digest(&arch));
        let _ = std::fs::remove_file(&path);
    }
}
