//! Shared per-pair physics evaluated inside the device kernels.
//!
//! The same formulas exist twice in this crate: here in `Lanes<f32>` form
//! (metered device code) and in [`crate::reference`] in scalar f64 form
//! (ground truth). Tests require the two to agree per particle.
//!
//! Conventions: `eta = x_j − x_i` (minimum image), `h̄ = (h_i + h_j)/2`,
//! `W = W(r, h̄)`. The pair-antisymmetric corrected kernel gradient is
//!
//! ```text
//!   Ĝ_ij = −½ [A_i(1+B_i·η) + A_j(1−B_j·η)] (W′/r) η − ½ (A_i B_i − A_j B_j) W
//! ```
//!
//! which reduces to ∇ᵢW for A = 1, B = 0 and satisfies `Ĝ_ij = −Ĝ_ji`
//! (momentum conservation).

use crate::halfwarp::min_image_lanes;
use crate::sphkernel::{dw_dr_lanes, w_lanes};
use sycl_sim::{Lanes, Sg};

/// Artificial-viscosity linear coefficient α.
pub const VISC_ALPHA: f32 = 1.0;
/// Artificial-viscosity quadratic coefficient β.
pub const VISC_BETA: f32 = 2.0;
/// CFL safety factor for the time-step criterion.
pub const CFL: f32 = 0.25;
/// Softening of the viscosity denominator, in units of h̄².
pub const VISC_EPS: f32 = 0.01;

/// Pair geometry computed once per interaction instance.
pub struct PairGeom {
    /// Displacement `x_j − x_i`, minimum image.
    pub eta: [Lanes<f32>; 3],
    /// Squared distance.
    pub r2: Lanes<f32>,
    /// Symmetrized smoothing length.
    pub hbar: Lanes<f32>,
    /// Kernel value `W(r, h̄)`.
    pub w: Lanes<f32>,
    /// `W′(r, h̄)/r`, with the `r → 0` singularity masked to zero (the
    /// self-interaction term carries no force).
    pub dw_over_r: Lanes<f32>,
}

/// Builds the pair geometry from own/other positions and smoothing
/// lengths.
pub fn pair_geometry(
    sg: &Sg,
    own_pos: [&Lanes<f32>; 3],
    own_h: &Lanes<f32>,
    other_pos: [&Lanes<f32>; 3],
    other_h: &Lanes<f32>,
    box_size: f32,
) -> PairGeom {
    let ex = min_image_lanes(own_pos[0], other_pos[0], box_size);
    let ey = min_image_lanes(own_pos[1], other_pos[1], box_size);
    let ez = min_image_lanes(own_pos[2], other_pos[2], box_size);
    let r2 = &(&(&ex * &ex) + &(&ey * &ey)) + &(&ez * &ez);
    let hbar = &(own_h + other_h) * 0.5;
    // Distance with a floor to keep rsqrt finite on the self term; the
    // force path is separately masked below.
    let tiny = &(&hbar * &hbar) * 1e-12;
    let r2_safe = r2.max(&tiny);
    let r = r2_safe.sqrt();
    let w = w_lanes(sg, &r, &hbar);
    let dwdr = dw_dr_lanes(sg, &r, &hbar);
    let raw = &dwdr / &r;
    // Mask the self/colocated term out of the force factor.
    let self_mask = r2.gt_scalar(1e-12);
    let dw_over_r = raw.zero_unless(&self_mask);
    PairGeom {
        eta: [ex, ey, ez],
        r2,
        hbar,
        w,
        dw_over_r,
    }
}

/// `B·η` for a correction vector.
pub fn b_dot_eta(b: [&Lanes<f32>; 3], eta: &[Lanes<f32>; 3]) -> Lanes<f32> {
    &(&(b[0] * &eta[0]) + &(b[1] * &eta[1])) + &(b[2] * &eta[2])
}

/// The pair-antisymmetric corrected gradient Ĝ_ij (three components).
///
/// `a_i, b_i` are the owner's CRK coefficients, `a_j, b_j` the partner's.
pub fn corrected_gradient(
    g: &PairGeom,
    a_i: &Lanes<f32>,
    b_i: [&Lanes<f32>; 3],
    a_j: &Lanes<f32>,
    b_j: [&Lanes<f32>; 3],
) -> [Lanes<f32>; 3] {
    let bi_eta = b_dot_eta(b_i, &g.eta);
    let bj_eta = b_dot_eta(b_j, &g.eta);
    // bracket = A_i(1 + B_i·η) + A_j(1 − B_j·η)
    let bracket = &(a_i * &(&bi_eta + 1.0)) + &(a_j * &(&(-&bj_eta) + 1.0));
    let radial = &(&bracket * &g.dw_over_r) * -0.5;
    std::array::from_fn(|c| {
        let diff = &(a_i * b_i[c]) - &(a_j * b_j[c]);
        &(&radial * &g.eta[c]) - &(&(&diff * &g.w) * 0.5)
    })
}

/// The owner-corrected kernel value `W^R = A_i (1 + B_i·η) W` used by the
/// density sums of *Extras*.
pub fn corrected_kernel(g: &PairGeom, a_i: &Lanes<f32>, b_i: [&Lanes<f32>; 3]) -> Lanes<f32> {
    let bi_eta = b_dot_eta(b_i, &g.eta);
    &(a_i * &(&bi_eta + 1.0)) * &g.w
}

/// The owner-corrected kernel gradient `∇ᵢW^R` (not antisymmetrized) used
/// by the gradient estimators of *Extras*:
/// `∇ᵢW^R = −A_i B_i W − A_i (1 + B_i·η)(W′/r) η`.
pub fn corrected_gradient_own(
    g: &PairGeom,
    a_i: &Lanes<f32>,
    b_i: [&Lanes<f32>; 3],
) -> [Lanes<f32>; 3] {
    let bi_eta = b_dot_eta(b_i, &g.eta);
    let radial = &(&(a_i * &(&bi_eta + 1.0)) * &g.dw_over_r) * -1.0;
    std::array::from_fn(|c| &(&radial * &g.eta[c]) - &(&(a_i * b_i[c]) * &g.w))
}

/// Monaghan artificial viscosity Π_ij and the |μ| used by the CFL
/// criterion. `v_ij = v_i − v_j` (owner minus partner); the pair is
/// approaching when `v_ij·η > 0` with our η convention.
pub struct Viscosity {
    /// Π_ij (non-negative; zero for receding pairs).
    pub pi: Lanes<f32>,
    /// |μ_ij| (the signal-velocity measure for the time step).
    pub mu_abs: Lanes<f32>,
}

/// Computes the artificial viscosity for a pair.
#[allow(clippy::too_many_arguments)]
pub fn viscosity(
    sg: &Sg,
    g: &PairGeom,
    own_vel: [&Lanes<f32>; 3],
    other_vel: [&Lanes<f32>; 3],
    own_cs: &Lanes<f32>,
    other_cs: &Lanes<f32>,
    own_rho: &Lanes<f32>,
    other_rho: &Lanes<f32>,
) -> Viscosity {
    let vx = own_vel[0] - other_vel[0];
    let vy = own_vel[1] - other_vel[1];
    let vz = own_vel[2] - other_vel[2];
    let proj = &(&(&vx * &g.eta[0]) + &(&vy * &g.eta[1])) + &(&vz * &g.eta[2]);
    let approaching = proj.max(&sg.splat_f32(0.0));
    let h2 = &g.hbar * &g.hbar;
    let denom = &g.r2 + &(&h2 * VISC_EPS);
    let mu = &(&g.hbar * &approaching) / &denom;
    let cbar = &(own_cs + other_cs) * 0.5;
    let rhobar = &(own_rho + other_rho) * 0.5;
    let num = &(&cbar * &mu) * VISC_ALPHA;
    let num = &num + &(&(&mu * &mu) * VISC_BETA);
    // Guard against zero density on padding lanes.
    let rho_safe = rhobar.max(&sg.splat_f32(1e-30));
    let pi = &num / &rho_safe;
    Viscosity { mu_abs: mu, pi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{GpuArch, SgConfig};

    fn sg() -> Sg {
        Sg::new(0, 32, SgConfig::for_arch(&GpuArch::frontier(), true, false))
    }

    fn splat3(s: &Sg, v: [f32; 3]) -> [Lanes<f32>; 3] {
        [s.splat_f32(v[0]), s.splat_f32(v[1]), s.splat_f32(v[2])]
    }

    #[test]
    fn pair_geometry_basics() {
        let s = sg();
        let pi = splat3(&s, [1.0, 2.0, 3.0]);
        let pj = splat3(&s, [1.5, 2.0, 3.0]);
        let h = s.splat_f32(1.0);
        let g = pair_geometry(
            &s,
            [&pi[0], &pi[1], &pi[2]],
            &h,
            [&pj[0], &pj[1], &pj[2]],
            &h,
            100.0,
        );
        assert!((g.eta[0].get(0) - 0.5).abs() < 1e-6);
        assert!((g.r2.get(0) - 0.25).abs() < 1e-6);
        let want_w = crate::sphkernel::w_scalar(0.5, 1.0) as f32;
        assert!((g.w.get(0) - want_w).abs() < 1e-5);
        assert!(g.dw_over_r.get(0) < 0.0);
    }

    #[test]
    fn self_pair_has_kernel_value_but_no_force() {
        let s = sg();
        let p = splat3(&s, [5.0, 5.0, 5.0]);
        let h = s.splat_f32(0.8);
        let g = pair_geometry(
            &s,
            [&p[0], &p[1], &p[2]],
            &h,
            [&p[0], &p[1], &p[2]],
            &h,
            10.0,
        );
        assert!(g.w.get(0) > 0.0, "self term contributes W(0)");
        assert_eq!(g.dw_over_r.get(0), 0.0, "self term must not produce force");
    }

    #[test]
    fn corrected_gradient_is_antisymmetric() {
        let s = sg();
        let pi = splat3(&s, [0.0, 0.0, 0.0]);
        let pj = splat3(&s, [0.7, -0.3, 0.4]);
        let h = s.splat_f32(1.0);
        let ai = s.splat_f32(1.1);
        let aj = s.splat_f32(0.9);
        let bi = splat3(&s, [0.05, -0.02, 0.01]);
        let bj = splat3(&s, [-0.03, 0.04, 0.02]);
        let gij = pair_geometry(
            &s,
            [&pi[0], &pi[1], &pi[2]],
            &h,
            [&pj[0], &pj[1], &pj[2]],
            &h,
            50.0,
        );
        let gji = pair_geometry(
            &s,
            [&pj[0], &pj[1], &pj[2]],
            &h,
            [&pi[0], &pi[1], &pi[2]],
            &h,
            50.0,
        );
        let g1 = corrected_gradient(
            &gij,
            &ai,
            [&bi[0], &bi[1], &bi[2]],
            &aj,
            [&bj[0], &bj[1], &bj[2]],
        );
        let g2 = corrected_gradient(
            &gji,
            &aj,
            [&bj[0], &bj[1], &bj[2]],
            &ai,
            [&bi[0], &bi[1], &bi[2]],
        );
        for c in 0..3 {
            assert!(
                (g1[c].get(0) + g2[c].get(0)).abs() < 1e-6,
                "component {c}: {} vs {}",
                g1[c].get(0),
                g2[c].get(0)
            );
        }
    }

    #[test]
    fn corrected_gradient_reduces_to_plain_kernel_gradient() {
        let s = sg();
        let pi = splat3(&s, [0.0, 0.0, 0.0]);
        let pj = splat3(&s, [0.6, 0.0, 0.0]);
        let h = s.splat_f32(1.0);
        let one = s.splat_f32(1.0);
        let zero = splat3(&s, [0.0, 0.0, 0.0]);
        let g = pair_geometry(
            &s,
            [&pi[0], &pi[1], &pi[2]],
            &h,
            [&pj[0], &pj[1], &pj[2]],
            &h,
            50.0,
        );
        let grad = corrected_gradient(
            &g,
            &one,
            [&zero[0], &zero[1], &zero[2]],
            &one,
            [&zero[0], &zero[1], &zero[2]],
        );
        // ∇ᵢW = −(W′/r)·η… with η = 0.6 x̂: component = −W′(0.6)·(0.6/0.6) = −W′.
        let want = -(crate::sphkernel::dw_dr_scalar(0.6, 1.0) as f32);
        assert!(
            (grad[0].get(0) - want).abs() < 1e-5,
            "{} vs {want}",
            grad[0].get(0)
        );
        assert!(grad[1].get(0).abs() < 1e-7);
    }

    #[test]
    fn viscosity_vanishes_for_receding_pairs() {
        let s = sg();
        let pi = splat3(&s, [0.0; 3]);
        let pj = splat3(&s, [1.0, 0.0, 0.0]);
        let h = s.splat_f32(1.0);
        let g = pair_geometry(
            &s,
            [&pi[0], &pi[1], &pi[2]],
            &h,
            [&pj[0], &pj[1], &pj[2]],
            &h,
            50.0,
        );
        let cs = s.splat_f32(1.0);
        let rho = s.splat_f32(1.0);
        // Owner moving away from partner (−x): v_ij·η = −1 < 0 → receding.
        let v_away = splat3(&s, [-1.0, 0.0, 0.0]);
        let vzero = splat3(&s, [0.0; 3]);
        let visc = viscosity(
            &s,
            &g,
            [&v_away[0], &v_away[1], &v_away[2]],
            [&vzero[0], &vzero[1], &vzero[2]],
            &cs,
            &cs,
            &rho,
            &rho,
        );
        assert_eq!(visc.pi.get(0), 0.0);
        // Owner moving toward partner (+x): approaching → Π > 0.
        let v_toward = splat3(&s, [1.0, 0.0, 0.0]);
        let visc = viscosity(
            &s,
            &g,
            [&v_toward[0], &v_toward[1], &v_toward[2]],
            [&vzero[0], &vzero[1], &vzero[2]],
            &cs,
            &cs,
            &rho,
            &rho,
        );
        assert!(visc.pi.get(0) > 0.0);
        assert!(visc.mu_abs.get(0) > 0.0);
    }
}
