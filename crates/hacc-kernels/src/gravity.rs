//! The short-range gravity kernel (timer `upGrav`): the direct
//! particle–particle force of HACC's force-split solver,
//!
//! ```text
//!   a_i += Σ_j m_j [1/r³ − poly(r²)] η      (r < r_cut)
//! ```
//!
//! where `poly` is the degree-5 polynomial fit of the filtered long-range
//! complement (`HACC_CUDA_POLY_ORDER=5`), computed host-side by
//! `hacc_mesh::PolyShortRange` and baked into the kernel as coefficients.

use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use sycl_sim::{Lanes, Sg};

/// Exchanged fields: mass weight + position.
const F_M: usize = 0;
const F_X: usize = 1;

/// Short-range gravity physics definition.
#[derive(Clone)]
pub struct Gravity {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side.
    pub box_size: f32,
    /// Polynomial coefficients of the long-range complement, lowest order
    /// first (`Σ c_k (r²)^k`).
    pub poly: [f32; 6],
    /// Squared interaction cutoff.
    pub r_cut2: f32,
    /// Plummer-equivalent softening squared (regularizes close pairs, as
    /// in the production gravity kernel).
    pub soft2: f32,
}

impl PairPhysics for Gravity {
    fn name(&self) -> &'static str {
        "upGrav"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        self.data.acc_grav.to_vec()
    }

    fn n_acc(&self) -> usize {
        3
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        let m = sg.load_f32(&self.data.mass, slots);
        vec![
            &m * valid_f,
            sg.load_f32(&self.data.pos[0], slots),
            sg.load_f32(&self.data.pos[1], slots),
            sg.load_f32(&self.data.pos[2], slots),
        ]
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let ex = crate::halfwarp::min_image_lanes(&own[F_X], &other[F_X], self.box_size);
        let ey = crate::halfwarp::min_image_lanes(&own[F_X + 1], &other[F_X + 1], self.box_size);
        let ez = crate::halfwarp::min_image_lanes(&own[F_X + 2], &other[F_X + 2], self.box_size);
        let r2 = &(&(&ex * &ex) + &(&ey * &ey)) + &(&ez * &ez);
        // Newtonian part with softening: (r² + ε²)^(−3/2) via rsqrt.
        let r2_soft = &r2 + self.soft2;
        let inv_r = r2_soft.rsqrt();
        let inv_r3 = &(&inv_r * &inv_r) * &inv_r;
        // Long-range complement: Horner in r².
        let mut poly = sg.splat_f32(self.poly[5]);
        for k in (0..5).rev() {
            let c = sg.splat_f32(self.poly[k]);
            poly = poly.fma(&r2, &c);
        }
        let f_over_r = &inv_r3 - &poly;
        // Cutoff and self-pair masks.
        let in_range = r2.lt_scalar(self.r_cut2);
        let not_self = r2.gt_scalar(1e-12);
        let active = in_range.and(&not_self);
        let f = (&f_over_r * &other[F_M]).zero_unless(&active);
        acc[0] = ex.fma(&f, &acc[0]);
        acc[1] = ey.fma(&f, &acc[1]);
        acc[2] = ez.fma(&f, &acc[2]);
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        _own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        for c in 0..3 {
            crate::halfwarp::accumulate(sg, &self.data.acc_grav[c], slots, &acc[c], mask, atomic);
        }
    }
}
