//! The *Acceleration* kernel (timers `upBarAc`, `upBarAcF`): the momentum
//! derivative of the CRK-SPH scheme,
//!
//! ```text
//!   dv_i/dt = −Σ_j m_j (P_i/ρ_i² + P_j/ρ_j² + Π_ij) Ĝ_ij
//! ```
//!
//! with Monaghan artificial viscosity `Π_ij` and the pair-antisymmetric
//! corrected gradient `Ĝ_ij`. Also evaluates the CFL time-step criterion
//! per particle and folds it into a global minimum with a floating-point
//! `atomic_min` — the operation NVIDIA GPUs must emulate with a CAS loop
//! (§5.1).
//!
//! This is one of the paper's "register heavy" kernels: both sides'
//! velocities, thermodynamic state, and CRK coefficients are exchanged
//! (15 32-bit fields per particle).

use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use crate::physics::{corrected_gradient, pair_geometry, viscosity, CFL};
use sycl_sim::{Lanes, Sg};

/// Exchanged field indices.
pub(crate) const F_M: usize = 0;
pub(crate) const F_X: usize = 1;
pub(crate) const F_V: usize = 4;
pub(crate) const F_H: usize = 7;
pub(crate) const F_PTERM: usize = 8;
pub(crate) const F_A: usize = 9;
pub(crate) const F_B: usize = 10;
pub(crate) const F_CS: usize = 13;
pub(crate) const F_RHO: usize = 14;

/// Loads the full hydro-force particle object (shared with *Energy*).
pub(crate) fn load_force_fields(
    data: &DeviceParticles,
    sg: &Sg,
    slots: &Lanes<u32>,
    valid_f: &Lanes<f32>,
) -> Vec<Lanes<f32>> {
    let m = sg.load_f32(&data.mass, slots);
    vec![
        &m * valid_f,
        sg.load_f32(&data.pos[0], slots),
        sg.load_f32(&data.pos[1], slots),
        sg.load_f32(&data.pos[2], slots),
        sg.load_f32(&data.vel[0], slots),
        sg.load_f32(&data.vel[1], slots),
        sg.load_f32(&data.vel[2], slots),
        sg.load_f32(&data.h, slots),
        sg.load_f32(&data.pterm, slots),
        sg.load_f32(&data.crk_a, slots),
        sg.load_f32(&data.crk_b[0], slots),
        sg.load_f32(&data.crk_b[1], slots),
        sg.load_f32(&data.crk_b[2], slots),
        sg.load_f32(&data.cs, slots),
        sg.load_f32(&data.rho, slots),
    ]
}

/// Acceleration physics definition.
#[derive(Clone)]
pub struct Acceleration {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side.
    pub box_size: f32,
}

impl PairPhysics for Acceleration {
    fn name(&self) -> &'static str {
        "upBarAc"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        let mut bufs = self.data.acc.to_vec();
        bufs.push(self.data.dt_min.clone());
        bufs
    }

    /// acc (3) + max|μ| for the CFL criterion.
    fn n_acc(&self) -> usize {
        4
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        load_force_fields(&self.data, sg, slots, valid_f)
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let g = pair_geometry(
            sg,
            [&own[F_X], &own[F_X + 1], &own[F_X + 2]],
            &own[F_H],
            [&other[F_X], &other[F_X + 1], &other[F_X + 2]],
            &other[F_H],
            self.box_size,
        );
        let grad = corrected_gradient(
            &g,
            &own[F_A],
            [&own[F_B], &own[F_B + 1], &own[F_B + 2]],
            &other[F_A],
            [&other[F_B], &other[F_B + 1], &other[F_B + 2]],
        );
        let visc = viscosity(
            sg,
            &g,
            [&own[F_V], &own[F_V + 1], &own[F_V + 2]],
            [&other[F_V], &other[F_V + 1], &other[F_V + 2]],
            &own[F_CS],
            &other[F_CS],
            &own[F_RHO],
            &other[F_RHO],
        );
        // −m_j (pterm_i + pterm_j + Π) per component.
        let p = &(&own[F_PTERM] + &other[F_PTERM]) + &visc.pi;
        let scale = &(&p * &other[F_M]) * -1.0;
        for c in 0..3 {
            acc[c] = grad[c].fma(&scale, &acc[c]);
        }
        acc[3] = acc[3].max(&visc.mu_abs);
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        use crate::halfwarp::accumulate;
        for c in 0..3 {
            accumulate(sg, &self.data.acc[c], slots, &acc[c], mask, atomic);
        }
        // CFL: dt = C h_i / (c_i + 2 max|μ|) → global atomic minimum.
        // (Always atomic: there is a single reduction target.)
        let denom = &own[F_CS] + &(&acc[3] * 2.0);
        let denom = denom.max(&sg.splat_f32(1e-30));
        let dt = &(&own[F_H] * CFL) / &denom;
        let zero = sg.splat_u32(0);
        sg.atomic_min(&self.data.dt_min, &zero, &dt, mask);
    }
}
