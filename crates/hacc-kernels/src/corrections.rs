//! The *Corrections* kernel (timer `upCor`): accumulates the
//! volume-weighted moments of the SPH kernel,
//!
//! ```text
//!   m₀ = Σ_j V_j W_ij        m₁ = Σ_j V_j η W_ij        m₂ = Σ_j V_j η⊗η W_ij
//! ```
//!
//! from which [`crate::finalize::FinalizeCorrections`] solves the
//! first-order reproducing-kernel coefficients `A_i`, `B_i` (Frontiere,
//! Raskin & Owen 2017). This kernel has the largest number of atomic
//! accumulators (10 per particle) of the five hot spots.

use crate::pairkernel::PairPhysics;
use crate::particles::DeviceParticles;
use crate::physics::pair_geometry;
use sycl_sim::{Lanes, Sg};

/// Exchanged field indices: weight (`V_j`, zero for padding), position, h.
const F_W: usize = 0;
const F_X: usize = 1;
const F_H: usize = 4;

/// Corrections physics definition.
#[derive(Clone)]
pub struct Corrections {
    /// The particle state.
    pub data: DeviceParticles,
    /// Periodic box side.
    pub box_size: f32,
}

impl PairPhysics for Corrections {
    fn name(&self) -> &'static str {
        "upCor"
    }

    fn output_buffers(&self) -> Vec<sycl_sim::Buffer> {
        let mut bufs = vec![self.data.crk_m0.clone()];
        bufs.extend(self.data.crk_m1.iter().cloned());
        bufs.extend(self.data.crk_m2.iter().cloned());
        bufs
    }

    /// m0 (1) + m1 (3) + m2 (6 symmetric components).
    fn n_acc(&self) -> usize {
        10
    }

    fn load_exchange(&self, sg: &Sg, slots: &Lanes<u32>, valid_f: &Lanes<f32>) -> Vec<Lanes<f32>> {
        let v = sg.load_f32(&self.data.volume, slots);
        vec![
            &v * valid_f,
            sg.load_f32(&self.data.pos[0], slots),
            sg.load_f32(&self.data.pos[1], slots),
            sg.load_f32(&self.data.pos[2], slots),
            sg.load_f32(&self.data.h, slots),
        ]
    }

    fn interact(
        &self,
        sg: &Sg,
        own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        other: &[Lanes<f32>],
        acc: &mut [Lanes<f32>],
    ) {
        let g = pair_geometry(
            sg,
            [&own[F_X], &own[F_X + 1], &own[F_X + 2]],
            &own[F_H],
            [&other[F_X], &other[F_X + 1], &other[F_X + 2]],
            &other[F_H],
            self.box_size,
        );
        let vw = &g.w * &other[F_W];
        // m0
        acc[0] = &acc[0] + &vw;
        // m1[c] += V_j η_c W
        for c in 0..3 {
            acc[1 + c] = &acc[1 + c] + &(&vw * &g.eta[c]);
        }
        // m2: xx, yy, zz, xy, xz, yz.
        let pairs: [(usize, usize); 6] = [(0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)];
        for (k, (a, b)) in pairs.iter().enumerate() {
            let prod = &g.eta[*a] * &g.eta[*b];
            acc[4 + k] = &acc[4 + k] + &(&vw * &prod);
        }
    }

    fn write(
        &self,
        sg: &Sg,
        slots: &Lanes<u32>,
        _own: &[Lanes<f32>],
        _own_extra: &[Lanes<f32>],
        acc: &[Lanes<f32>],
        mask: &Lanes<bool>,
        atomic: bool,
    ) {
        use crate::halfwarp::accumulate;
        accumulate(sg, &self.data.crk_m0, slots, &acc[0], mask, atomic);
        for c in 0..3 {
            accumulate(sg, &self.data.crk_m1[c], slots, &acc[1 + c], mask, atomic);
        }
        for k in 0..6 {
            accumulate(sg, &self.data.crk_m2[k], slots, &acc[4 + k], mask, atomic);
        }
    }
}
