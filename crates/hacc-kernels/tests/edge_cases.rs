//! Edge-case and failure-injection tests for the kernel layer: degenerate
//! particle sets, extreme smoothing lengths, colocated particles, and
//! minimal work lists must neither crash nor poison results with NaNs.

use hacc_kernels::{reference, run_hydro_step, DeviceParticles, HostParticles, Variant, WorkLists};
use hacc_telemetry::Recorder;
use hacc_tree::{InteractionList, RcbTree};
use sycl_sim::{Device, GpuArch, LaunchConfig, Toolchain};

fn run(hp: &HostParticles, box_size: f64, variant: Variant, sg: usize) -> DeviceParticles {
    let device = Device::new(GpuArch::frontier(), Toolchain::sycl()).unwrap();
    let cfg = LaunchConfig::defaults_for(&device.arch)
        .with_sg_size(sg)
        .deterministic();
    let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg));
    let h_max = hp.h.iter().cloned().fold(0.0, f64::max);
    let cutoff = (2.0 * h_max + 1e-9).min(box_size * 0.49);
    let list = InteractionList::build(&tree, box_size, cutoff);
    let work = WorkLists::build(&tree, &list, sg);
    let data = DeviceParticles::upload(&hp.permuted(&tree.order));
    run_hydro_step(
        &device,
        &data,
        &work,
        variant,
        box_size as f32,
        cfg,
        &Recorder::new(),
    )
    .expect("fault-free hydro step must succeed");
    data
}

/// Like [`run`] but on Aurora with the vISA toolchain, so variants that
/// need inline vISA can run too.
fn run_visa_capable(
    hp: &HostParticles,
    box_size: f64,
    variant: Variant,
    sg: usize,
) -> DeviceParticles {
    let device = Device::new(GpuArch::aurora(), Toolchain::sycl_visa()).unwrap();
    let cfg = LaunchConfig::defaults_for(&device.arch)
        .with_sg_size(sg)
        .deterministic();
    let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(sg));
    let h_max = hp.h.iter().cloned().fold(0.0, f64::max);
    let cutoff = (2.0 * h_max + 1e-9).min(box_size * 0.49);
    let list = InteractionList::build(&tree, box_size, cutoff);
    let work = WorkLists::build(&tree, &list, sg);
    let data = DeviceParticles::upload(&hp.permuted(&tree.order));
    run_hydro_step(
        &device,
        &data,
        &work,
        variant,
        box_size as f32,
        cfg,
        &Recorder::new(),
    )
    .expect("fault-free hydro step must succeed");
    data
}

fn assert_all_finite(data: &DeviceParticles) {
    for (name, buf) in [
        ("volume", &data.volume),
        ("rho", &data.rho),
        ("du_dt", &data.du_dt),
        ("crk_a", &data.crk_a),
        ("pressure", &data.pressure),
    ] {
        for (i, v) in buf.to_f32_vec().into_iter().enumerate() {
            assert!(v.is_finite(), "{name}[{i}] = {v}");
        }
    }
    for c in 0..3 {
        for (i, v) in data.acc[c].to_f32_vec().into_iter().enumerate() {
            assert!(v.is_finite(), "acc[{c}][{i}] = {v}");
        }
    }
}

#[test]
fn single_particle_runs() {
    let hp = HostParticles {
        pos: vec![[5.0, 5.0, 5.0]],
        vel: vec![[0.1, -0.2, 0.3]],
        mass: vec![2.0],
        h: vec![1.0],
        u: vec![0.5],
    };
    for variant in [Variant::Select, Variant::Broadcast] {
        let data = run(&hp, 10.0, variant, 32);
        assert_all_finite(&data);
        // A lone particle sees only its self term: V = 1/W(0,h).
        let want = 1.0 / hacc_kernels::sphkernel::w_scalar(0.0, 1.0);
        let got = data.volume.read_f32(0) as f64;
        assert!((got / want - 1.0).abs() < 1e-4, "V = {got} vs {want}");
        // No pair forces.
        assert_eq!(data.acc[0].read_f32(0), 0.0);
        assert_eq!(data.du_dt.read_f32(0), 0.0);
    }
}

#[test]
fn colocated_particles_produce_finite_results() {
    // Two particles at exactly the same position: the self-mask must keep
    // 1/r out of the force path while the kernel sums stay finite.
    let hp = HostParticles {
        pos: vec![[3.0, 3.0, 3.0], [3.0, 3.0, 3.0], [4.0, 3.0, 3.0]],
        vel: vec![[0.0; 3], [0.1, 0.0, 0.0], [0.0; 3]],
        mass: vec![1.0; 3],
        h: vec![1.0; 3],
        u: vec![1.0; 3],
    };
    for variant in [Variant::Select, Variant::MemoryObject, Variant::Broadcast] {
        let data = run(&hp, 10.0, variant, 32);
        assert_all_finite(&data);
    }
}

#[test]
fn tiny_smoothing_lengths_do_not_explode() {
    let hp = HostParticles {
        pos: (0..8).map(|i| [i as f64 + 0.5, 4.0, 4.0]).collect(),
        vel: vec![[0.0; 3]; 8],
        mass: vec![1.0; 8],
        h: vec![1e-3; 8], // kernels see almost no neighbors
        u: vec![1.0; 8],
    };
    let data = run(&hp, 8.0, Variant::Select, 32);
    assert_all_finite(&data);
    // Isolated particles: A falls back to plain SPH (B = 0).
    for i in 0..8 {
        assert_eq!(data.crk_b[0].read_f32(i), 0.0);
    }
}

#[test]
fn two_particle_system_matches_reference_under_all_variants() {
    let hp = HostParticles {
        pos: vec![[4.0, 5.0, 5.0], [5.2, 5.0, 5.0]],
        vel: vec![[0.2, 0.0, 0.0], [-0.2, 0.0, 0.0]],
        mass: vec![1.0, 1.5],
        h: vec![1.0, 1.1],
        u: vec![0.8, 1.2],
    };
    let r = reference::full_pipeline(&hp, 10.0);
    for variant in [
        Variant::Select,
        Variant::Memory32,
        Variant::MemoryObject,
        Variant::Broadcast,
    ] {
        let data = run(&hp, 10.0, variant, 32);
        // Scatter back: tree order of 2 particles.
        let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(32));
        for (slot, &pi) in tree.order.iter().enumerate() {
            let pi = pi as usize;
            let got = data.rho.read_f32(slot) as f64;
            assert!(
                (got / r.rho[pi] - 1.0).abs() < 1e-4,
                "{variant:?}: rho[{pi}] {got} vs {}",
                r.rho[pi]
            );
        }
    }
}

#[test]
fn coincident_particles_finite_under_every_fallback_chain_variant() {
    // Every variant in the deepest fallback chain (vISA → Select →
    // Memory32 → MemoryObject) must yield finite output on an input
    // engineered to provoke 1/r singularities — so a mid-step variant
    // demotion can never turn a recoverable fault into NaN poisoning.
    let hp = HostParticles {
        pos: vec![
            [3.0, 3.0, 3.0],
            [3.0, 3.0, 3.0],
            [3.0, 3.0, 3.0],
            [4.2, 3.0, 3.0],
        ],
        vel: vec![[0.3, 0.0, 0.0], [-0.3, 0.0, 0.0], [0.0, 0.2, 0.0], [0.0; 3]],
        mass: vec![1.0; 4],
        h: vec![1.0; 4],
        u: vec![1.0; 4],
    };
    let chain = Variant::Visa.fallback_chain();
    assert_eq!(chain.len(), 4, "deepest chain covers four variants");
    for variant in chain {
        let data = run_visa_capable(&hp, 10.0, variant, 32);
        assert_all_finite(&data);
    }
    // The Broadcast chain's head too (its tail repeats the above).
    let data = run(&hp, 10.0, Variant::Broadcast, 32);
    assert_all_finite(&data);
}

#[test]
fn zero_smoothing_length_is_rejected_before_launch() {
    // h = 0 would divide by zero inside every kernel; the upload guard
    // (HostParticles::validate) must refuse it for each chain variant's
    // leaf capacity rather than let the kernels poison device state.
    for variant in Variant::Visa.fallback_chain() {
        let hp = HostParticles {
            pos: vec![[1.0, 1.0, 1.0], [2.0, 1.0, 1.0]],
            vel: vec![[0.0; 3]; 2],
            mass: vec![1.0; 2],
            h: vec![0.0, 1.0],
            u: vec![1.0; 2],
        };
        let tree = RcbTree::build(&hp.pos, variant.preferred_leaf_capacity(32));
        let ordered = hp.permuted(&tree.order);
        assert!(
            ordered.validate().is_err(),
            "{variant:?}: zero smoothing length must be rejected"
        );
    }
}

#[test]
fn near_zero_smoothing_length_stays_finite_under_chain_variants() {
    // The smallest positive h the validator accepts must still produce
    // finite output under every variant of the deepest fallback chain.
    let hp = HostParticles {
        pos: (0..4).map(|i| [1.0 + i as f64, 2.0, 2.0]).collect(),
        vel: vec![[0.0; 3]; 4],
        mass: vec![1.0; 4],
        h: vec![1e-6; 4],
        u: vec![1.0; 4],
    };
    for variant in Variant::Visa.fallback_chain() {
        let data = run_visa_capable(&hp, 8.0, variant, 32);
        assert_all_finite(&data);
    }
}

#[test]
fn sub_group_sixty_four_handles_small_problems() {
    // Fewer particles than one sub-group: padding lanes dominate.
    let hp = HostParticles {
        pos: (0..5).map(|i| [1.0 + i as f64, 2.0, 2.0]).collect(),
        vel: vec![[0.0; 3]; 5],
        mass: vec![1.0; 5],
        h: vec![0.8; 5],
        u: vec![1.0; 5],
    };
    let data = run(&hp, 8.0, Variant::Select, 64);
    assert_all_finite(&data);
    let r = reference::full_pipeline(&hp, 8.0);
    let tree = RcbTree::build(&hp.pos, 32);
    for (slot, &pi) in tree.order.iter().enumerate() {
        let got = data.volume.read_f32(slot) as f64;
        let want = r.volume[pi as usize];
        assert!((got / want - 1.0).abs() < 1e-4, "V[{pi}] {got} vs {want}");
    }
}
