#![warn(missing_docs)]
//! # syclomatic-mini
//!
//! A miniature reproduction of the paper's migration pipeline (§4):
//!
//! 1. [`migrate`](migrate::migrate) — the SYCLomatic-style CUDA→SYCL
//!    source translation (Figure 1a → 1b), with the diagnostics the paper
//!    reports for CRK-HACC (removable `__ldg`, `frexp` precision);
//! 2. [`functor::functorize`] — the authors' custom
//!    Clang-LibTooling pass that turns unnamed kernel lambdas into named
//!    function objects (Figure 1b → 1c) so CRK-HACC's launch wrappers can
//!    keep referencing kernels by name, generating one header per kernel
//!    with one constructor argument per line (the §6.2 line-count
//!    inflation).
//!
//! The input language is the subset of CUDA that CRK-HACC-style kernels
//! use: `__global__` functions, `<<<>>>` launches, thread/block builtins,
//! warp shuffles, atomics, and `__syncthreads`.

pub mod functor;
pub mod lexutil;
pub mod migrate;

pub use functor::{functorize, FunctorOutput};
pub use migrate::{migrate, Diagnostic, KernelInfo, Migration};

/// Runs the complete two-stage pipeline (the paper's §4.2 "short
/// migration pipeline"): CUDA source in, functorized SYCL + generated
/// headers + diagnostics out.
pub fn migrate_pipeline(cuda: &str) -> (FunctorOutput, Vec<Diagnostic>) {
    let m = migrate(cuda);
    let diags = m.diagnostics.clone();
    (functorize(&m), diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CRK-HACC-flavoured kernel: half-warp xor exchange, atomics,
    /// `__ldg` loads — the constructs §4–5 discuss.
    const HALF_WARP: &str = r#"
__global__ void upBarAc(float *ax, const float *px, const float *m, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float xi = __ldg(&px[i]);
    float mi = __ldg(&m[i]);
    float acc = 0.0f;
    for (int s = 0; s < 16; ++s) {
        float xj = __shfl_xor_sync(0xffffffff, xi, 16 + s);
        float mj = __shfl_xor_sync(0xffffffff, mi, 16 + s);
        float dx = xj - xi;
        acc += mj * dx;
    }
    atomicAdd(&ax[i], acc);
}
void launch_upBarAc(float *ax, const float *px, const float *m, int n) {
    upBarAc<<<n / 128, 128>>>(ax, px, m, n);
}
"#;

    #[test]
    fn full_pipeline_on_a_half_warp_kernel() {
        let (out, diags) = migrate_pipeline(HALF_WARP);
        // Functor header exists and carries all four parameters.
        assert_eq!(out.headers.len(), 1);
        let header = &out.headers[0].1;
        assert!(header.contains("struct upBarAc"));
        assert!(header.contains("float *ax;"));
        assert!(header.contains("int n;"));
        // Body uses the sub-group xor permute inside the loop.
        assert!(out
            .source
            .contains("dpct::permute_sub_group_by_xor(sg, xi, 16 + s)"));
        // Launch constructs the named functor (the launch-wrapper
        // requirement that motivated the pass).
        assert!(out.source.contains("upBarAc(ax, px, m, n))"));
        // Two __ldg diagnostics, matching the paper's report that only
        // removable intrinsics and math precision were flagged.
        assert_eq!(diags.iter().filter(|d| d.code == "DPCT1026").count(), 2);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let (a, _) = migrate_pipeline(HALF_WARP);
        let (b, _) = migrate_pipeline(HALF_WARP);
        assert_eq!(a.source, b.source);
        assert_eq!(a.headers, b.headers);
    }

    #[test]
    fn migrated_source_has_no_cuda_constructs_left() {
        let (out, _) = migrate_pipeline(HALF_WARP);
        for forbidden in [
            "__global__",
            "<<<",
            "__shfl_xor_sync",
            "__ldg",
            "threadIdx",
            "blockIdx",
            "blockDim",
            "atomicAdd(",
        ] {
            assert!(
                !out.source.contains(forbidden),
                "{forbidden} survived migration:\n{}",
                out.source
            );
        }
    }
}
