//! The SYCLomatic-style migration pass (paper §4.1, Figure 1a → 1b).
//!
//! Translates a (restricted) CUDA kernel source file into SYCL:
//!
//! * `__global__ void K(args) {…}` becomes a plain function taking a
//!   trailing `const sycl::nd_item<3> &item_ct1`;
//! * `K<<<grid, block>>>(args);` becomes a `q.parallel_for` submission of
//!   an unnamed lambda that calls `K` (the form the paper's launch
//!   wrappers *cannot* use, motivating the functor pass);
//! * thread/block builtins, shuffles, atomics, and `__syncthreads` are
//!   rewritten to their SYCL/dpct equivalents;
//! * constructs that cannot be migrated safely produce diagnostics — for
//!   CRK-HACC the paper reports exactly two kinds: removable
//!   `__ldg` intrinsics and math functions with different precision
//!   guarantees (`frexp`).

use crate::lexutil::*;

/// A migration diagnostic (the `DPCT` warnings SYCLomatic emits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `DPCT1026` (removed call), `DPCT1017`
    /// (precision difference).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// 1-based source line in the *input*.
    pub line: usize,
}

/// A migrated kernel's metadata, used by the functor pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Parameter declarations (without the trailing nd_item).
    pub params: Vec<String>,
}

/// Result of the lambda-migration pass.
#[derive(Clone, Debug)]
pub struct Migration {
    /// The migrated SYCL source.
    pub source: String,
    /// Diagnostics for manual attention.
    pub diagnostics: Vec<Diagnostic>,
    /// Kernels discovered (for the functor pass).
    pub kernels: Vec<KernelInfo>,
}

/// Simple token rewrites applied inside kernel bodies.
const BUILTIN_MAP: [(&str, &str); 9] = [
    ("threadIdx.x", "item_ct1.get_local_id(2)"),
    ("threadIdx.y", "item_ct1.get_local_id(1)"),
    ("threadIdx.z", "item_ct1.get_local_id(0)"),
    ("blockIdx.x", "item_ct1.get_group(2)"),
    ("blockIdx.y", "item_ct1.get_group(1)"),
    ("blockIdx.z", "item_ct1.get_group(0)"),
    ("blockDim.x", "item_ct1.get_local_range(2)"),
    ("blockDim.y", "item_ct1.get_local_range(1)"),
    ("blockDim.z", "item_ct1.get_local_range(0)"),
];

/// Call rewrites `cuda_fn(args…)` → `sycl_fn(prefix_args…, args…)`.
/// The boolean marks calls that need the sub-group as first argument.
const CALL_MAP: [(&str, &str, bool); 6] = [
    ("__shfl_xor_sync", "dpct::permute_sub_group_by_xor", true),
    ("__shfl_sync", "dpct::select_from_sub_group", true),
    ("__syncthreads", "item_ct1.barrier", false),
    ("atomicAdd", "dpct::atomic_fetch_add", false),
    ("atomicMin", "dpct::atomic_fetch_min", false),
    ("atomicMax", "dpct::atomic_fetch_max", false),
];

/// Migrates a CUDA source string to SYCL (lambda launch form).
pub fn migrate(cuda: &str) -> Migration {
    let mut diagnostics = Vec::new();
    let mut kernels = Vec::new();
    let mut out = String::with_capacity(cuda.len() * 2);
    out.push_str("// Migrated by syclomatic-mini (CUDA → SYCL).\n");
    out.push_str("#include <sycl/sycl.hpp>\n#include <dpct/dpct.hpp>\n");

    // Pass 1: collect kernels and rewrite their definitions.
    let mut rest = cuda.to_string();
    // Strip the CUDA header include if present.
    rest = rest.replace("#include <cuda_runtime.h>\n", "");

    let mut cursor = 0usize;
    let mut result = String::new();
    while let Some(gpos) = find_token(&rest, "__global__", cursor) {
        result.push_str(&rest[cursor..gpos]);
        // Parse: __global__ void NAME ( params ) { body }
        let after = gpos + "__global__".len();
        let void_pos = find_token(&rest, "void", after).expect("__global__ without void");
        let name_start = rest[void_pos + 4..]
            .find(|c: char| is_ident_char(c))
            .map(|o| void_pos + 4 + o)
            .expect("kernel name");
        let name_end = rest[name_start..]
            .find(|c: char| !is_ident_char(c))
            .map(|o| name_start + o)
            .expect("kernel name end");
        let name = rest[name_start..name_end].to_string();
        let paren_open = rest[name_end..]
            .find('(')
            .map(|o| name_end + o)
            .expect("params");
        let paren_close = matching(&rest, paren_open).expect("unbalanced params");
        let params_text = rest[paren_open + 1..paren_close].to_string();
        let brace_open = rest[paren_close..]
            .find('{')
            .map(|o| paren_close + o)
            .expect("kernel body");
        let brace_close = matching(&rest, brace_open).expect("unbalanced kernel body");
        let body = rest[brace_open + 1..brace_close].to_string();

        let (new_body, mut diags) = migrate_body(&body, line_of(&rest, brace_open));
        diagnostics.append(&mut diags);

        let params: Vec<String> = split_args(&params_text);
        result.push_str(&format!(
            "void {name}({}, const sycl::nd_item<3> &item_ct1) {{{new_body}}}",
            params.join(", ")
        ));
        kernels.push(KernelInfo { name, params });
        cursor = brace_close + 1;
    }
    result.push_str(&rest[cursor..]);

    // Pass 2: rewrite triple-chevron launches.
    let launched = rewrite_launches(&result, &kernels);
    out.push_str(&launched);

    Migration {
        source: out,
        diagnostics,
        kernels,
    }
}

/// Rewrites one kernel body.
fn migrate_body(body: &str, base_line: usize) -> (String, Vec<Diagnostic>) {
    let mut b = body.to_string();
    let mut diags = Vec::new();

    // Builtins.
    for (cuda, sycl) in BUILTIN_MAP {
        b = replace_token(&b, cuda, sycl);
    }

    // __ldg(&expr) → expr, with the paper's "safely removable" diagnostic.
    while let Some(pos) = find_token(&b, "__ldg", 0) {
        let open = b[pos..].find('(').map(|o| pos + o).expect("__ldg call");
        let close = matching(&b, open).expect("__ldg args");
        let arg = b[open + 1..close].trim().to_string();
        let replacement = arg
            .strip_prefix('&')
            .map(|s| s.to_string())
            .unwrap_or(format!("*({arg})"));
        diags.push(Diagnostic {
            code: "DPCT1026",
            message: format!(
                "the call to __ldg was removed because there is no corresponding API in SYCL ({replacement} is read directly)"
            ),
            line: base_line + line_of(&b, pos) - 1,
        });
        b.replace_range(pos..=close, &format!("({replacement})"));
    }

    // frexp: migrated, but flagged for precision review (§4.1).
    if let Some(pos) = find_token(&b, "frexp", 0) {
        diags.push(Diagnostic {
            code: "DPCT1017",
            message: "sycl::frexp may have different precision guarantees than the CUDA \
                      counterpart; verify numerical requirements"
                .into(),
            line: base_line + line_of(&b, pos) - 1,
        });
        b = replace_token(&b, "frexp", "sycl::frexp");
    }

    // Sub-group-based calls need the sub-group handle in scope.
    let needs_sg = CALL_MAP
        .iter()
        .any(|(cuda, _, sg)| *sg && find_token(&b, cuda, 0).is_some());

    for (cuda, sycl, takes_sg) in CALL_MAP {
        while let Some(pos) = find_token(&b, cuda, 0) {
            let open = b[pos..].find('(').map(|o| pos + o).expect("call parens");
            let close = matching(&b, open).expect("call args");
            let mut args = split_args(&b[open + 1..close]);
            if takes_sg {
                // Drop the CUDA sync mask, prepend the sub-group.
                if !args.is_empty() && (args[0].starts_with("0x") || args[0] == "~0u") {
                    args.remove(0);
                }
                args.insert(0, "sg".to_string());
            }
            let repl = format!("{sycl}({})", args.join(", "));
            b.replace_range(pos..=close, &repl);
        }
    }

    if needs_sg {
        b = format!("\n    sycl::sub_group sg = item_ct1.get_sub_group();{b}");
    }
    (b, diags)
}

/// Replaces whole-token occurrences outside strings/comments.
fn replace_token(src: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0;
    while let Some(pos) = find_token(src, from, cursor) {
        out.push_str(&src[cursor..pos]);
        out.push_str(to);
        cursor = pos + from.len();
    }
    out.push_str(&src[cursor..]);
    out
}

/// Rewrites `K<<<grid, block>>>(args);` into the lambda submission form
/// of Figure 1b.
fn rewrite_launches(src: &str, kernels: &[KernelInfo]) -> String {
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0;
    while let Some(pos) = src[cursor..].find("<<<").map(|o| cursor + o) {
        // Kernel name runs backwards from the chevrons.
        let name_end = src[..pos].trim_end().len();
        let name_start = src[..name_end]
            .rfind(|c: char| !is_ident_char(c))
            .map(|o| o + 1)
            .unwrap_or(0);
        let name = &src[name_start..name_end];
        let close_chev = src[pos..]
            .find(">>>")
            .map(|o| pos + o)
            .expect("unclosed <<<");
        let launch_cfg = split_args(&src[pos + 3..close_chev]);
        let args_open = src[close_chev + 3..]
            .find('(')
            .map(|o| close_chev + 3 + o)
            .expect("launch args");
        let args_close = matching(src, args_open).expect("unbalanced launch args");
        let args = split_args(&src[args_open + 1..args_close]);
        // Consume the trailing semicolon if present.
        let mut end = args_close + 1;
        if src[end..].trim_start().starts_with(';') {
            end += src[end..].find(';').unwrap() + 1;
        }

        out.push_str(&src[cursor..name_start]);
        let known = kernels.iter().any(|k| k.name == name);
        let (grid, block) = (
            launch_cfg.first().cloned().unwrap_or_else(|| "grid".into()),
            launch_cfg.get(1).cloned().unwrap_or_else(|| "block".into()),
        );
        let mut call_args = args.clone();
        call_args.push("item_ct1".to_string());
        out.push_str(&format!(
            "q_ct1.parallel_for(\n    sycl::nd_range<3>(sycl::range<3>(1, 1, {grid}) * sycl::range<3>(1, 1, {block}), sycl::range<3>(1, 1, {block})),\n    [=](sycl::nd_item<3> item_ct1) {{ {name}({}); }});",
            call_args.join(", ")
        ));
        debug_assert!(known || !name.is_empty());
        cursor = end;
    }
    out.push_str(&src[cursor..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"#include <cuda_runtime.h>

__global__ void StepKernel(float *acc, const float *pos, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float x = __ldg(&pos[i]);
    float y = __shfl_xor_sync(0xffffffff, x, 16);
    atomicAdd(&acc[i], y);
    __syncthreads();
}

void launch(float *acc, const float *pos, int n, int grid, int block) {
    StepKernel<<<grid, block>>>(acc, pos, n);
}
"#;

    #[test]
    fn kernel_signature_gains_nd_item() {
        let m = migrate(SAMPLE);
        assert!(m
            .source
            .contains("void StepKernel(float *acc, const float *pos, int n, const sycl::nd_item<3> &item_ct1)"));
        assert_eq!(m.kernels.len(), 1);
        assert_eq!(m.kernels[0].name, "StepKernel");
        assert_eq!(m.kernels[0].params.len(), 3);
    }

    #[test]
    fn builtins_are_rewritten() {
        let m = migrate(SAMPLE);
        assert!(m.source.contains(
            "item_ct1.get_group(2) * item_ct1.get_local_range(2) + item_ct1.get_local_id(2)"
        ));
        assert!(!m.source.contains("threadIdx"));
        assert!(!m.source.contains("blockIdx"));
    }

    #[test]
    fn shuffles_atomics_and_barriers_map_to_dpct() {
        let m = migrate(SAMPLE);
        assert!(m
            .source
            .contains("dpct::permute_sub_group_by_xor(sg, x, 16)"));
        assert!(m.source.contains("dpct::atomic_fetch_add(&acc[i], y)"));
        assert!(m.source.contains("item_ct1.barrier()"));
        assert!(m
            .source
            .contains("sycl::sub_group sg = item_ct1.get_sub_group();"));
    }

    #[test]
    fn ldg_is_removed_with_the_papers_diagnostic() {
        let m = migrate(SAMPLE);
        assert!(m.source.contains("float x = (pos[i]);"));
        let d = m
            .diagnostics
            .iter()
            .find(|d| d.code == "DPCT1026")
            .expect("__ldg diag");
        assert!(d.message.contains("__ldg"));
    }

    #[test]
    fn frexp_gets_precision_diagnostic() {
        let src = "__global__ void K(float *o) { int e; o[0] = frexp(o[0], &e); }";
        let m = migrate(src);
        assert!(m.diagnostics.iter().any(|d| d.code == "DPCT1017"));
        assert!(m.source.contains("sycl::frexp"));
    }

    #[test]
    fn launch_becomes_lambda_submission() {
        let m = migrate(SAMPLE);
        assert!(m.source.contains("q_ct1.parallel_for("));
        assert!(m
            .source
            .contains("[=](sycl::nd_item<3> item_ct1) { StepKernel(acc, pos, n, item_ct1); }"));
        assert!(!m.source.contains("<<<"));
    }

    #[test]
    fn clean_code_produces_no_diagnostics() {
        let src = "__global__ void K(float *o, int n) { int i = threadIdx.x; if (i < n) o[i] = 2.0f * o[i]; }";
        let m = migrate(src);
        assert!(m.diagnostics.is_empty(), "{:?}", m.diagnostics);
    }

    #[test]
    fn multiple_kernels_are_all_migrated() {
        let src = r#"
__global__ void A(float *x) { x[threadIdx.x] = 0.f; }
__global__ void B(float *y, int n) { if (threadIdx.x < n) y[threadIdx.x] += 1.f; }
void go(float* x, float* y, int n) { A<<<1, 32>>>(x); B<<<2, 64>>>(y, n); }
"#;
        let m = migrate(src);
        assert_eq!(m.kernels.len(), 2);
        assert_eq!(m.source.matches("q_ct1.parallel_for").count(), 2);
    }

    #[test]
    fn comments_and_strings_are_left_alone() {
        let src = r#"__global__ void K(float *o) {
    // threadIdx.x in a comment stays
    const char *s = "blockIdx.x";
    o[threadIdx.x] = 1.f;
}"#;
        let m = migrate(src);
        assert!(m.source.contains("// threadIdx.x in a comment stays"));
        assert!(m.source.contains("\"blockIdx.x\""));
        assert!(m.source.contains("o[item_ct1.get_local_id(2)]"));
    }
}
