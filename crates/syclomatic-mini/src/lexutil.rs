//! Small lexical helpers for the migration passes: identifier scanning,
//! balanced-delimiter extraction, and comment/string-aware search over
//! C-family source text.

/// True for characters that can appear in a C identifier.
#[inline]
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Finds the next occurrence of `needle` at or after `from` that is a
/// whole token (not embedded in a longer identifier) and not inside a
/// string, character literal, or comment.
pub fn find_token(src: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = src.as_bytes();
    let mut i = from;
    while let Some(rel) = src[i..].find(needle) {
        let pos = i + rel;
        if in_code(src, pos) {
            let before_ok = pos == 0 || !is_ident_char(bytes[pos - 1] as char);
            let end = pos + needle.len();
            let after_ok = end >= src.len() || !is_ident_char(bytes[end] as char);
            // Only apply token boundaries when the needle itself looks
            // like an identifier.
            let is_word = needle.chars().all(is_ident_char);
            if !is_word || (before_ok && after_ok) {
                return Some(pos);
            }
        }
        i = pos + 1;
    }
    None
}

/// True when byte offset `pos` is in live code (not in a string literal,
/// char literal, line comment, or block comment). O(pos) scan — fine for
/// the kernel-sized inputs this tool handles.
pub fn in_code(src: &str, pos: usize) -> bool {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        Chr,
        Line,
        Block,
    }
    let mut st = St::Code;
    let mut prev = '\0';
    for (i, c) in src.char_indices() {
        if i >= pos {
            return st == St::Code;
        }
        st = match st {
            St::Code => match (prev, c) {
                (_, '"') => St::Str,
                (_, '\'') => St::Chr,
                ('/', '/') => St::Line,
                ('/', '*') => St::Block,
                _ => St::Code,
            },
            St::Str if c == '"' && prev != '\\' => St::Code,
            St::Chr if c == '\'' && prev != '\\' => St::Code,
            St::Line if c == '\n' => St::Code,
            St::Block if prev == '*' && c == '/' => St::Code,
            other => other,
        };
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    st == St::Code
}

/// Given `src[open]` is an opening delimiter (`(`, `{`, `[`, `<`),
/// returns the offset of the matching closer, respecting nesting and
/// skipping strings/comments.
pub fn matching(src: &str, open: usize) -> Option<usize> {
    let (o, c) = match src.as_bytes()[open] as char {
        '(' => ('(', ')'),
        '{' => ('{', '}'),
        '[' => ('[', ']'),
        '<' => ('<', '>'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (i, ch) in src[open..].char_indices() {
        let pos = open + i;
        if !in_code(src, pos) {
            continue;
        }
        if ch == o {
            depth += 1;
        } else if ch == c {
            depth -= 1;
            if depth == 0 {
                return Some(pos);
            }
        }
    }
    None
}

/// Splits a C argument list (the text between parentheses) at top-level
/// commas.
pub fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in args.chars() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Extracts the parameter *name* from a C declaration like
/// `const float *__restrict__ pos` → `pos`.
pub fn param_name(decl: &str) -> String {
    decl.trim_end_matches(' ')
        .rsplit(|c: char| !is_ident_char(c))
        .find(|s| !s.is_empty())
        .unwrap_or("")
        .to_string()
}

/// 1-based line number of a byte offset.
pub fn line_of(src: &str, pos: usize) -> usize {
    src[..pos.min(src.len())]
        .bytes()
        .filter(|&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_search_respects_boundaries_and_comments() {
        let src = "int foo_bar; // foo\nfoo(1); \"foo\"; foo";
        let first = find_token(src, "foo", 0).unwrap();
        assert_eq!(&src[first..first + 4], "foo(");
        assert_eq!(find_token(src, "foo", first + 1), Some(src.len() - 3));
    }

    #[test]
    fn matching_parens_nest() {
        let src = "f(a, g(b, c), d) + 1";
        let close = matching(src, 1).unwrap();
        assert_eq!(&src[1..=close], "(a, g(b, c), d)");
    }

    #[test]
    fn split_args_handles_nesting() {
        let args = split_args("a, g(b, c), d[1], (x, y)");
        assert_eq!(args, vec!["a", "g(b, c)", "d[1]", "(x, y)"]);
    }

    #[test]
    fn param_names() {
        assert_eq!(param_name("const float *__restrict__ pos"), "pos");
        assert_eq!(param_name("int n"), "n");
        assert_eq!(param_name("float4 *out"), "out");
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\nc";
        assert_eq!(line_of(src, 0), 1);
        assert_eq!(line_of(src, 2), 2);
        assert_eq!(line_of(src, 4), 3);
    }
}
