//! Property-based tests of the migration pipeline over generated CUDA
//! kernels: the translator must handle arbitrary identifier names,
//! parameter counts, and bodies built from the supported construct set,
//! always producing CUDA-free output with balanced braces.

use proptest::prelude::*;
use syclomatic_mini::{functorize, migrate};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}".prop_filter("avoid keywords/builtins", |s| {
        !matches!(
            s.as_str(),
            "void" | "int" | "float" | "if" | "for" | "return" | "sg" | "item_ct1"
        ) && !s.starts_with("__")
    })
}

fn kernel_source() -> impl Strategy<Value = (String, usize)> {
    (ident(), 1usize..6, prop::collection::vec(0usize..5, 1..6)).prop_map(|(name, nparams, ops)| {
        let params: Vec<String> = (0..nparams).map(|i| format!("float *p{i}")).collect();
        let mut body = String::from("    int i = blockIdx.x * blockDim.x + threadIdx.x;\n");
        for (k, op) in ops.iter().enumerate() {
            body.push_str(&match op {
                0 => format!("    float v{k} = __ldg(&p0[i]);\n"),
                1 => format!(
                    "    float w{k} = __shfl_xor_sync(0xffffffff, (float)i, {});\n",
                    (k % 16) + 1
                ),
                2 => format!("    atomicAdd(&p0[i], {k}.0f);\n"),
                3 => "    __syncthreads();\n".to_string(),
                _ => format!("    p0[i] = p0[i] * {k}.5f;\n"),
            });
        }
        let args: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
        let src = format!(
            "__global__ void {name}({}) {{\n{body}}}\nvoid go({}) {{ {name}<<<4, 128>>>({}); }}\n",
            params.join(", "),
            params.join(", "),
            args.join(", ")
        );
        (src, nparams)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Migration removes every CUDA construct and keeps braces balanced.
    #[test]
    fn output_is_cuda_free_and_balanced((src, _n) in kernel_source()) {
        let m = migrate(&src);
        for forbidden in ["__global__", "<<<", "__shfl_xor_sync", "__ldg(", "threadIdx", "atomicAdd("] {
            prop_assert!(!m.source.contains(forbidden), "{forbidden} in output");
        }
        let open = m.source.matches('{').count();
        let close = m.source.matches('}').count();
        prop_assert_eq!(open, close, "unbalanced braces");
    }

    /// The functor header always declares exactly the kernel's parameters
    /// as members, and the pipeline is deterministic.
    #[test]
    fn functor_header_matches_arity((src, n) in kernel_source()) {
        let m = migrate(&src);
        prop_assert_eq!(m.kernels.len(), 1);
        prop_assert_eq!(m.kernels[0].params.len(), n);
        let out1 = functorize(&m);
        let out2 = functorize(&migrate(&src));
        prop_assert_eq!(out1.headers.len(), 1);
        let header = &out1.headers[0].1;
        for i in 0..n {
            prop_assert!(header.contains(&format!("float *p{i};")), "member p{i}");
        }
        prop_assert_eq!(&out1.source, &out2.source);
    }

    /// Diagnostics appear exactly when `__ldg` appears.
    #[test]
    fn ldg_diagnostics_count((src, _n) in kernel_source()) {
        let expected = src.matches("__ldg").count();
        let m = migrate(&src);
        let got = m.diagnostics.iter().filter(|d| d.code == "DPCT1026").count();
        prop_assert_eq!(got, expected);
    }
}
