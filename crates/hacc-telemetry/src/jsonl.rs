//! JSON Lines exporter with a versioned schema.
//!
//! The first line is a header object carrying [`SCHEMA_VERSION`] and
//! the event count; every following line is one [`Event`] serialized
//! through serde. [`from_jsonl`] is the strict inverse and doubles as
//! the schema validator used by CI.

use serde::{Deserialize, Error, Serialize};

use crate::{Event, SCHEMA_VERSION};

/// First line of every JSONL telemetry dump.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Header {
    /// Schema version the events were written with.
    pub schema_version: u32,
    /// Number of event lines that follow.
    pub n_events: u64,
}

/// Serializes the event stream to JSON Lines (header first).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    let header = Header {
        schema_version: SCHEMA_VERSION,
        n_events: events.len() as u64,
    };
    out.push_str(&serde_json::to_string(&header).expect("header serializes"));
    out.push('\n');
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Parses and validates a JSONL telemetry dump.
///
/// Fails if the header is missing, the schema version does not match,
/// the event count disagrees with the header, or any line is not a
/// well-formed [`Event`].
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, Error> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines
        .next()
        .ok_or_else(|| Error::custom("empty telemetry file"))?;
    let header: Header = serde_json::from_str(header_line)
        .map_err(|e| Error::custom(format!("bad header line: {e}")))?;
    if header.schema_version != SCHEMA_VERSION {
        return Err(Error::custom(format!(
            "schema version mismatch: file has {}, reader expects {}",
            header.schema_version, SCHEMA_VERSION
        )));
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let ev: Event = serde_json::from_str(line)
            .map_err(|e| Error::custom(format!("bad event on line {}: {e}", i + 2)))?;
        events.push(ev);
    }
    if events.len() as u64 != header.n_events {
        return Err(Error::custom(format!(
            "event count mismatch: header says {}, found {}",
            header.n_events,
            events.len()
        )));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_profile, Recorder};
    use proptest::prelude::*;

    fn sample_events() -> Vec<Event> {
        let rec = Recorder::new();
        let run = rec.span("run");
        rec.kernel(sample_profile("CrkSphGeometry", "upGeo", 1));
        rec.kernel(sample_profile("GravityShort", "upGrav", 2));
        rec.timer("upGeo", 2.5e-4);
        rec.counter("xfer.d2h.bytes", 65536.0);
        drop(run);
        rec.events()
    }

    #[test]
    fn round_trips_exactly() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let back = from_jsonl(&text).expect("round trip");
        assert_eq!(back, events);
    }

    #[test]
    fn header_carries_schema_version() {
        let text = to_jsonl(&sample_events());
        let first = text.lines().next().unwrap();
        let header: Header = serde_json::from_str(first).unwrap();
        assert_eq!(header.schema_version, SCHEMA_VERSION);
        assert_eq!(header.n_events, 6);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let mut text = to_jsonl(&sample_events());
        text = text.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert!(from_jsonl(&text).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let text = to_jsonl(&sample_events());
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(
            from_jsonl(&truncated).is_err(),
            "count mismatch must be caught"
        );
    }

    #[test]
    fn rejects_garbage_line() {
        let mut text = to_jsonl(&sample_events());
        text.push_str("{not json}\n");
        assert!(from_jsonl(&text).is_err());
    }

    proptest! {
        #[test]
        fn random_counters_and_timers_round_trip(
            values in proptest::collection::vec((0u64..1_000_000, 0.0f64..1e9), 1..40),
        ) {
            let rec = Recorder::new();
            for (i, (bytes, seconds)) in values.iter().enumerate() {
                if i % 2 == 0 {
                    rec.counter("xfer.h2d.bytes", *bytes as f64);
                } else {
                    rec.timer("upXfer", *seconds);
                }
            }
            let events = rec.events();
            let back = from_jsonl(&to_jsonl(&events)).expect("round trip");
            prop_assert_eq!(back, events);
        }
    }
}
