//! Typed metrics registry: counters, gauges, and log-bucketed
//! histograms with p50/p95/p99, fed either directly or by ingesting a
//! recorded [`Event`] stream.
//!
//! The registry is the aggregation side of the analysis plane: the
//! emitting layers (scheduler, transport, multi-rank engine) keep
//! writing flat events into a [`crate::Recorder`]; a [`Registry`]
//! folds that stream into per-name summaries that reports and gates
//! consume. Keeping ingestion here (rather than pushing aggregates
//! from below) preserves the crate's leaf position and keeps the hot
//! emit path a plain `Vec` push.
//!
//! Histograms are log₂-bucketed: an observation `v > 0` lands in the
//! bucket whose bound is `2^floor(log2 v)`, so the buckets span twelve
//! decades in ~80 sparse slots and quantiles are exact to within one
//! octave (reported at the bucket's geometric midpoint, clamped to the
//! exact observed min/max). Everything stored is a count or a sum, so
//! two registries fed the same events agree bit-for-bit.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Event, EventKind};

/// How a metric accumulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic sum of increments (`sum` is the total).
    Counter,
    /// Point-in-time level; `last` is the current value, `min`/`max`
    /// the observed envelope.
    Gauge,
    /// Log-bucketed distribution with quantile estimates.
    Histogram,
}

/// Exponent range of the log₂ buckets: 2⁻⁴⁰ (≈ 9e-13) … 2⁴⁰ (≈ 1.1e12)
/// covers nanosecond-scale timer charges through multi-gigabyte byte
/// counts. Values outside land in the edge buckets.
const MIN_EXP: i32 = -40;
/// Upper exponent bound; see [`MIN_EXP`].
const MAX_EXP: i32 = 40;

fn bucket_of(v: f64) -> i32 {
    if v <= 0.0 {
        return MIN_EXP - 1; // dedicated ≤0 bucket
    }
    (v.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP)
}

/// One registered metric: identity, running summary statistics, and
/// (for histograms) the sparse log₂ bucket counts. Only the
/// [`MetricSummary`] view is serialized; the raw buckets stay
/// in-process.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Accumulation semantics.
    pub kind: MetricKind,
    /// Number of updates applied.
    pub count: u64,
    /// Sum of all values (for a counter, the total).
    pub sum: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Most recent value.
    pub last: f64,
    /// Sparse log₂ buckets: exponent → observation count. Only
    /// populated for histograms.
    pub buckets: BTreeMap<i32, u64>,
}

impl Metric {
    fn new(kind: MetricKind) -> Self {
        Self {
            kind,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            buckets: BTreeMap::new(),
        }
    }

    fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
        if self.kind == MetricKind::Histogram {
            *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Quantile estimate from the log buckets (`q` in `[0, 1]`).
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// `q`-th observation and reports its geometric midpoint, clamped
    /// to the exact observed `[min, max]`. `None` when empty or not a
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.kind != MetricKind::Histogram || self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&exp, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                let mid = if exp < MIN_EXP {
                    0.0
                } else {
                    // Geometric midpoint of [2^exp, 2^(exp+1)).
                    (2f64).powi(exp) * std::f64::consts::SQRT_2
                };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// One row of a [`MetricsSnapshot`]: a metric's name plus its summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Metric name (dotted, e.g. `sched.queue_depth`).
    pub name: String,
    /// Accumulation semantics.
    pub kind: MetricKind,
    /// Number of updates.
    pub count: u64,
    /// Sum of all values.
    pub sum: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Most recent value.
    pub last: f64,
    /// Median estimate (histograms only).
    pub p50: Option<f64>,
    /// 95th-percentile estimate (histograms only).
    pub p95: Option<f64>,
    /// 99th-percentile estimate (histograms only).
    pub p99: Option<f64>,
}

/// Serializable snapshot of a whole registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// One summary row per registered metric, name-sorted.
    pub metrics: Vec<MetricSummary>,
}

impl MetricsSnapshot {
    /// Looks up a row by name.
    pub fn get(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// The typed metrics registry. Single-writer by design: analysis code
/// owns one and folds event streams (or direct updates) into it.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn metric(&mut self, name: &str, kind: MetricKind) -> &mut Metric {
        self.metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::new(kind))
    }

    /// Adds `v` to the named counter.
    pub fn inc(&mut self, name: &str, v: f64) {
        self.metric(name, MetricKind::Counter).update(v);
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.metric(name, MetricKind::Gauge).update(v);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.metric(name, MetricKind::Histogram).update(v);
    }

    /// Direct access to a metric, if registered.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Folds a recorded event stream into the registry.
    ///
    /// * `Counter` and `Timer` events become histograms under the
    ///   event name — `sum` recovers the counter/timer total while the
    ///   buckets expose the per-event distribution (queue depths,
    ///   per-link latencies, …).
    /// * `Kernel` events feed `kernel.<name>.seconds` (estimate
    ///   distribution) and the `kernel.<name>.bytes` counter.
    /// * `Fault` events become plain counters under the event label.
    /// * Spans carry no value and are left to the critical-path pass
    ///   in [`crate::analysis`].
    pub fn ingest(&mut self, events: &[Event]) {
        for ev in events {
            match ev.kind {
                EventKind::Counter | EventKind::Timer => self.observe(&ev.name, ev.value),
                EventKind::Kernel => {
                    if let Some(profile) = &ev.kernel {
                        self.observe(
                            &format!("kernel.{}.seconds", profile.kernel),
                            profile.est_seconds,
                        );
                        self.inc(
                            &format!("kernel.{}.bytes", profile.kernel),
                            profile.bytes_moved as f64,
                        );
                    }
                }
                EventKind::Fault => self.inc(&ev.name, ev.value),
                EventKind::SpanBegin | EventKind::SpanEnd => {}
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Summary snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(name, m)| MetricSummary {
                    name: name.clone(),
                    kind: m.kind,
                    count: m.count,
                    sum: m.sum,
                    min: if m.count == 0 { 0.0 } else { m.min },
                    max: if m.count == 0 { 0.0 } else { m.max },
                    last: m.last,
                    p50: m.quantile(0.50),
                    p95: m.quantile(0.95),
                    p99: m.quantile(0.99),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn counter_gauge_histogram_semantics() {
        let mut reg = Registry::new();
        reg.inc("bytes", 10.0);
        reg.inc("bytes", 32.0);
        reg.set_gauge("depth", 4.0);
        reg.set_gauge("depth", 2.0);
        for v in [1.0, 2.0, 4.0, 1024.0] {
            reg.observe("lat", v);
        }
        let snap = reg.snapshot();
        let bytes = snap.get("bytes").unwrap();
        assert_eq!(bytes.kind, MetricKind::Counter);
        assert_eq!(bytes.sum, 42.0);
        assert_eq!(bytes.count, 2);
        assert!(bytes.p50.is_none(), "counters report no quantiles");
        let depth = snap.get("depth").unwrap();
        assert_eq!(depth.kind, MetricKind::Gauge);
        assert_eq!(depth.last, 2.0);
        assert_eq!(depth.max, 4.0);
        let lat = snap.get("lat").unwrap();
        assert_eq!(lat.kind, MetricKind::Histogram);
        assert_eq!(lat.count, 4);
        assert_eq!(lat.min, 1.0);
        assert_eq!(lat.max, 1024.0);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut reg = Registry::new();
        // 99 small observations and one enormous outlier: the median
        // must stay small and p99 must reach for the outlier's bucket.
        for _ in 0..99 {
            reg.observe("v", 1.0);
        }
        reg.observe("v", 1.0e6);
        let m = reg.get("v").unwrap();
        assert!(
            m.quantile(0.50).unwrap() < 2.0,
            "median stays in the 1.0 octave"
        );
        assert!(
            m.quantile(0.95).unwrap() < 2.0,
            "p95 stays in the 1.0 octave"
        );
        let p99 = m.quantile(0.999).unwrap();
        assert!(p99 > 1e5, "extreme quantile reaches the outlier, got {p99}");
    }

    #[test]
    fn quantile_bucket_resolution_is_one_octave() {
        let mut reg = Registry::new();
        for i in 1..=1000 {
            reg.observe("u", i as f64 * 1e-6);
        }
        let m = reg.get("u").unwrap();
        // Exact p50 is 500.5e-6; one octave of slack either side.
        let p50 = m.quantile(0.5).unwrap();
        assert!(
            (2.5e-4..=1.0e-3).contains(&p50),
            "p50 within an octave: {p50}"
        );
        assert!(m.quantile(1.0).unwrap() <= m.max);
        assert!(m.quantile(0.0).unwrap() >= m.min);
    }

    #[test]
    fn nonpositive_values_do_not_panic() {
        let mut reg = Registry::new();
        reg.observe("z", 0.0);
        reg.observe("z", -3.0);
        reg.observe("z", 8.0);
        let m = reg.get("z").unwrap();
        assert_eq!(m.count, 3);
        // The ≤0 bucket sorts first, so low quantiles land at its
        // 0.0 midpoint (within the observed [-3, 8] envelope).
        assert_eq!(m.quantile(0.01).unwrap(), 0.0);
    }

    #[test]
    fn ingest_recovers_counter_and_timer_totals() {
        let rec = Recorder::new();
        rec.counter("comm.bytes_sent", 100.0);
        rec.counter("comm.bytes_sent", 28.0);
        rec.timer("upGeo", 0.5);
        rec.timer("upGeo", 0.25);
        rec.kernel(crate::sample_profile("CRKSPH::geometry", "upGeo", 3));
        let mut reg = Registry::new();
        reg.ingest(&rec.events());
        let snap = reg.snapshot();
        assert_eq!(snap.get("comm.bytes_sent").unwrap().sum, 128.0);
        assert_eq!(snap.get("upGeo").unwrap().sum, 0.75);
        assert_eq!(snap.get("upGeo").unwrap().count, 2);
        let k = snap.get("kernel.CRKSPH::geometry.seconds").unwrap();
        assert_eq!(k.count, 1);
        assert!(snap.get("kernel.CRKSPH::geometry.bytes").unwrap().sum > 0.0);
    }

    #[test]
    fn two_registries_fed_the_same_stream_agree() {
        let rec = Recorder::new();
        for i in 0..50 {
            rec.counter("c", (i * 17 % 13) as f64);
            rec.timer("t", 1e-6 * (i + 1) as f64);
        }
        let events = rec.events();
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.ingest(&events);
        b.ingest(&events);
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
