//! Structured observability for the CRK-HACC reproduction.
//!
//! The crate is a leaf: it knows nothing about devices, kernels, or the
//! simulation — those layers *emit* into a [`Recorder`] and this crate
//! stores, aggregates, and exports. The event model is deliberately
//! small:
//!
//! * **Spans** — hierarchical begin/end pairs (run → step → phase →
//!   kernel bracket). Nesting is tracked per host thread, so spans
//!   opened inside data-parallel workers parent correctly without any
//!   global coordination.
//! * **Counters** — named monotonically accumulated quantities
//!   (e.g. `xfer.h2d.bytes`).
//! * **Kernel profiles** — one [`KernelProfile`] per simulated kernel
//!   launch: instruction-class histogram, register pressure, spills,
//!   bytes moved, and the cost model's time estimate.
//! * **Timers** — the classic CRK-HACC named accumulators (`upGeo`,
//!   `upGrav`, …) as typed events, so the legacy
//!   `Timers` table becomes just one sink over the stream.
//!
//! Exporters live in [`chrome`] (Perfetto-loadable trace-event JSON),
//! [`jsonl`] (versioned JSON Lines), and [`table`] (end-of-run text
//! profile). The analysis plane lives in [`registry`] (typed metrics
//! with log-bucketed histograms), [`analysis`] (cross-rank
//! critical-path attribution over the span tree), and [`roofline`]
//! (per-kernel arithmetic-intensity placement).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

pub mod analysis;
pub mod chrome;
pub mod jsonl;
pub mod registry;
pub mod roofline;
pub mod table;

/// Version of the event schema emitted by [`jsonl`] and stamped into
/// every export. Bump on any breaking change to [`Event`] or
/// [`KernelProfile`]. Version 2 added the `Fault` event kind and the
/// optional per-event `fault` payload.
pub const SCHEMA_VERSION: u32 = 2;

/// Number of instruction classes in a [`KernelProfile`] histogram.
///
/// Mirrors `sycl_sim::meter::N_CLASSES`; the simulator crate carries a
/// test pinning the two (and the label order below) together.
pub const N_INSTR_CLASSES: usize = 15;

/// Labels for the instruction-class histogram slots, in slot order.
pub const INSTR_CLASS_LABELS: [&str; N_INSTR_CLASSES] = [
    "alu",
    "div",
    "math.fast",
    "math.precise",
    "mem.load",
    "mem.store",
    "slm.load",
    "slm.store",
    "shuffle.indirect",
    "shuffle.dedicated",
    "shuffle.regioned",
    "shuffle.visa",
    "atomic.native",
    "atomic.cas",
    "barrier",
];

/// What a single [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened; `id` identifies the span, `parent` its enclosing
    /// span (0 for a root span).
    SpanBegin,
    /// A span closed; `parent` is the id of the matching `SpanBegin`.
    SpanEnd,
    /// A counter increment; `value` is the amount added.
    Counter,
    /// One simulated kernel launch; `kernel` holds the profile and
    /// `value` its estimated seconds.
    Kernel,
    /// A named timer charge; `value` is seconds.
    Timer,
    /// A fault-handling event (injected fault observed, retry, variant
    /// fallback, or checkpoint rollback); `fault` holds the detail and
    /// `value` a count.
    Fault,
}

/// Detail payload of a [`EventKind::Fault`] event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInfo {
    /// Fault or recovery-action kind (`transient`, `persistent-variant`,
    /// `corruption`, `device-lost`, `retry`, `fallback`, `rollback`).
    pub kind: String,
    /// Kernel the fault targeted (empty for simulation-level events).
    pub kernel: String,
    /// Communication-variant label in play, if any.
    pub variant: String,
    /// Free-form detail.
    pub detail: String,
}

/// Per-launch profile of one simulated kernel execution.
///
/// Everything the cost model knows about the launch, flattened for
/// export: identity (kernel, timer bucket, communication variant,
/// architecture), launch geometry, the instruction-class histogram
/// (slot order = [`INSTR_CLASS_LABELS`]), register pressure, and the
/// derived time estimate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name as reported by the simulator.
    pub kernel: String,
    /// CRK-HACC timer bucket this launch is charged to (`upGeo`, …).
    pub timer: String,
    /// Communication variant label (`Select`, `Memory32`, …).
    pub variant: String,
    /// Architecture id (`pvc`, `a100`, `mi250x`).
    pub arch: String,
    /// Sub-group size the kernel ran with.
    pub sg_size: u64,
    /// Work-group size.
    pub wg_size: u64,
    /// Number of sub-groups launched.
    pub n_subgroups: u64,
    /// Instruction-class histogram, slot order = [`INSTR_CLASS_LABELS`].
    pub instr: [u64; N_INSTR_CLASSES],
    /// Peak live virtual registers over all sub-groups.
    pub peak_regs: u64,
    /// Registers spilled (demand above the per-thread budget).
    pub spilled_regs: u64,
    /// Work-group local (shared) memory footprint in bytes.
    pub local_bytes_per_wg: u64,
    /// Global-memory traffic estimate in bytes (loads + stores).
    pub bytes_moved: u64,
    /// Cost-model time estimate for this launch, in seconds.
    pub est_seconds: f64,
    /// Combined stall multiplier (occupancy × spill × L1 pressure).
    pub stall_mult: f64,
    /// Achieved occupancy fraction in `[0, 1]`.
    pub occupancy: f64,
}

impl KernelProfile {
    /// Index of the most-executed instruction class.
    pub fn dominant_class(&self) -> usize {
        self.instr
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total instruction count across all classes.
    pub fn total_instr(&self) -> u64 {
        self.instr.iter().sum()
    }
}

/// One record in the telemetry stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Unique id of this event (1-based, allocation order).
    pub id: u64,
    /// Enclosing span id (0 = none). For `SpanEnd`, the id of the
    /// matching `SpanBegin` event.
    pub parent: u64,
    /// Span / counter / timer / kernel name.
    pub name: String,
    /// Nanoseconds since the recorder's epoch. Assigned under the
    /// event-stream lock, so the stored stream is monotonic.
    pub t_ns: u64,
    /// Counter increment, timer seconds, or kernel estimated seconds.
    pub value: f64,
    /// Present only for `Kernel` events. Boxed so the common payload-free
    /// event stays small on the emit hot path (the profile is ~6× the
    /// size of the rest of the record).
    pub kernel: Option<Box<KernelProfile>>,
    /// Present only for `Fault` events. Boxed for the same reason.
    pub fault: Option<Box<FaultInfo>>,
}

/// A consumer notified of every event as it is recorded.
///
/// Sinks run synchronously on the emitting thread; keep them cheap.
pub trait Sink: Send + Sync {
    /// Called once per recorded event, in stream order per thread.
    fn on_event(&self, event: &Event);
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    events: Mutex<Vec<Event>>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    /// Mirrors `!sinks.is_empty()` so the emit hot path can skip the
    /// sink lock (and the per-event clone it forces) entirely in the
    /// common no-sink configuration.
    has_sinks: AtomicBool,
}

/// The telemetry collector. Cheap to clone (`Arc` inside); one
/// instance is shared across the simulation, kernel layer, and device.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("events", &self.len())
            .finish()
    }
}

thread_local! {
    /// Stack of open span ids on this host thread; the top is the
    /// implicit parent for new events.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// A fresh recorder with its epoch at "now".
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                sinks: Mutex::new(Vec::new()),
                has_sinks: AtomicBool::new(false),
            }),
        }
    }

    /// Registers a sink; it sees every event recorded afterwards.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().push(sink);
        self.inner.has_sinks.store(true, Ordering::Release);
    }

    fn emit(
        &self,
        kind: EventKind,
        name: String,
        parent: u64,
        value: f64,
        kernel: Option<KernelProfile>,
    ) -> u64 {
        self.emit_full(kind, name, parent, value, kernel, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_full(
        &self,
        kind: EventKind,
        name: String,
        parent: u64,
        value: f64,
        kernel: Option<KernelProfile>,
        fault: Option<FaultInfo>,
    ) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut ev = Event {
            kind,
            id,
            parent,
            name,
            t_ns: 0,
            value,
            kernel: kernel.map(Box::new),
            fault: fault.map(Box::new),
        };
        // Sinks force a clone (the stored stream and the sink both need
        // the event); without them the emit path is a single push.
        let for_sinks = self.inner.has_sinks.load(Ordering::Acquire);
        {
            // Timestamp under the lock so the stored stream is
            // monotonic even with concurrent emitters.
            let mut events = self.inner.events.lock();
            ev.t_ns = self.inner.epoch.elapsed().as_nanos() as u64;
            if for_sinks {
                events.push(ev.clone());
            } else {
                events.push(ev);
                return id;
            }
        }
        for sink in self.inner.sinks.lock().iter() {
            sink.on_event(&ev);
        }
        id
    }

    fn current_parent() -> u64 {
        SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    /// Opens a span nested under the current thread's innermost open
    /// span. Close it by dropping the returned guard.
    pub fn span(&self, name: &str) -> Span {
        let parent = Self::current_parent();
        let id = self.emit(EventKind::SpanBegin, name.to_string(), parent, 0.0, None);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            recorder: self.clone(),
            id,
            name: name.to_string(),
        }
    }

    /// Adds `value` to the named counter.
    pub fn counter(&self, name: &str, value: f64) {
        self.emit(
            EventKind::Counter,
            name.to_string(),
            Self::current_parent(),
            value,
            None,
        );
    }

    /// Charges `seconds` to the named timer.
    pub fn timer(&self, name: &str, seconds: f64) {
        self.emit(
            EventKind::Timer,
            name.to_string(),
            Self::current_parent(),
            seconds,
            None,
        );
    }

    /// Records a complete span — begin, the given counter/timer payload
    /// nested inside it, end — under a single lock acquisition and a
    /// single timestamp.
    ///
    /// This is the high-frequency emit path: callers that charge a
    /// fixed bundle of events per occurrence (the transport emits one
    /// batch per delivered message) would otherwise pay a lock, an
    /// `Instant::now`, and the span-guard machinery per event. Entry
    /// kinds must be leaf kinds (`Counter` or `Timer`); the batch never
    /// touches the thread's span stack beyond reading the current
    /// parent, so it cannot unbalance surrounding spans.
    pub fn span_batch(&self, name: &str, entries: &[(EventKind, &str, f64)]) {
        debug_assert!(entries
            .iter()
            .all(|(k, _, _)| matches!(k, EventKind::Counter | EventKind::Timer)));
        let parent = Self::current_parent();
        let count = entries.len() as u64 + 2;
        let first = self.inner.next_id.fetch_add(count, Ordering::Relaxed);
        let leaf = |kind: EventKind, id: u64, ename: &str, value: f64| Event {
            kind,
            id,
            parent: first,
            name: ename.to_string(),
            t_ns: 0,
            value,
            kernel: None,
            fault: None,
        };
        let mut batch: Vec<Event> = Vec::with_capacity(entries.len() + 2);
        batch.push(Event {
            kind: EventKind::SpanBegin,
            id: first,
            parent,
            name: name.to_string(),
            t_ns: 0,
            value: 0.0,
            kernel: None,
            fault: None,
        });
        for (i, (kind, ename, value)) in entries.iter().enumerate() {
            batch.push(leaf(*kind, first + 1 + i as u64, ename, *value));
        }
        batch.push(leaf(EventKind::SpanEnd, first + count - 1, name, 0.0));

        let for_sinks = self.inner.has_sinks.load(Ordering::Acquire);
        let sink_copy = for_sinks.then(|| batch.clone());
        let t_ns;
        {
            let mut events = self.inner.events.lock();
            t_ns = self.inner.epoch.elapsed().as_nanos() as u64;
            for mut ev in batch {
                ev.t_ns = t_ns;
                events.push(ev);
            }
        }
        if let Some(mut copy) = sink_copy {
            let sinks = self.inner.sinks.lock();
            for ev in copy.iter_mut() {
                ev.t_ns = t_ns;
                for sink in sinks.iter() {
                    sink.on_event(ev);
                }
            }
        }
    }

    /// Records a fault-handling event; `name` is the event label
    /// (`fault.injected`, `fault.retry`, `fault.fallback`,
    /// `fault.rollback`) and `count` the number of occurrences it covers.
    pub fn fault(&self, name: &str, info: FaultInfo, count: f64) {
        self.emit_full(
            EventKind::Fault,
            name.to_string(),
            Self::current_parent(),
            count,
            None,
            Some(info),
        );
    }

    /// Records one kernel launch.
    pub fn kernel(&self, profile: KernelProfile) {
        let name = profile.kernel.clone();
        let value = profile.est_seconds;
        self.emit(
            EventKind::Kernel,
            name,
            Self::current_parent(),
            value,
            Some(profile),
        );
    }

    /// Snapshot of the event stream so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events (sinks stay registered).
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }
}

/// RAII guard for an open span; dropping it emits the `SpanEnd`.
pub struct Span {
    recorder: Recorder,
    id: u64,
    name: String,
}

impl Span {
    /// The span's event id (what child events carry as `parent`).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally we are the top of the stack; truncating at our
            // position also force-closes any child spans leaked past
            // their parent (they still emit their own SpanEnd later,
            // but no longer parent new events).
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.truncate(pos);
            }
        });
        self.recorder.emit(
            EventKind::SpanEnd,
            std::mem::take(&mut self.name),
            self.id,
            0.0,
            None,
        );
    }
}

/// Sums the instruction-class histograms of every `Kernel` event.
///
/// This is the quantity conserved against the simulator's global
/// launch statistics: per-launch histograms partition the metered
/// instruction stream.
pub fn kernel_instr_totals(events: &[Event]) -> [u64; N_INSTR_CLASSES] {
    let mut totals = [0u64; N_INSTR_CLASSES];
    for ev in events {
        if let Some(profile) = &ev.kernel {
            for (slot, count) in totals.iter_mut().zip(profile.instr.iter()) {
                *slot += count;
            }
        }
    }
    totals
}

/// Sums `Timer` event seconds per timer name, with call counts.
pub fn timer_totals(events: &[Event]) -> Vec<(String, f64, u64)> {
    let mut map: std::collections::BTreeMap<String, (f64, u64)> = std::collections::BTreeMap::new();
    for ev in events {
        if ev.kind == EventKind::Timer {
            let entry = map.entry(ev.name.clone()).or_insert((0.0, 0));
            entry.0 += ev.value;
            entry.1 += 1;
        }
    }
    map.into_iter()
        .map(|(name, (seconds, calls))| (name, seconds, calls))
        .collect()
}

/// Sums the values of every `Counter` event with the given name.
pub fn counter_total(events: &[Event], name: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.name == name)
        .map(|e| e.value)
        .fold(0.0, |a, v| a + v)
}

/// Sums the values (occurrence counts) of every `Fault` event with the
/// given label (`fault.injected`, `fault.retry`, …).
pub fn fault_total(events: &[Event], name: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.kind == EventKind::Fault && e.name == name)
        .map(|e| e.value)
        .fold(0.0, |a, v| a + v)
}

#[cfg(test)]
pub(crate) fn sample_profile(kernel: &str, timer: &str, seed: u64) -> KernelProfile {
    let mut instr = [0u64; N_INSTR_CLASSES];
    for (i, slot) in instr.iter_mut().enumerate() {
        *slot = (seed + 1) * (i as u64 + 3) % 997;
    }
    KernelProfile {
        kernel: kernel.to_string(),
        timer: timer.to_string(),
        variant: "Select".to_string(),
        arch: "pvc".to_string(),
        sg_size: 16,
        wg_size: 64,
        n_subgroups: 128 + seed,
        instr,
        peak_regs: 96 + seed % 32,
        spilled_regs: seed % 5,
        local_bytes_per_wg: 2048,
        bytes_moved: 1_048_576 + seed * 4096,
        est_seconds: 1.25e-4 * (seed + 1) as f64,
        stall_mult: 1.0 + (seed % 7) as f64 * 0.125,
        occupancy: 1.0 / (1.0 + (seed % 3) as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn ids_unique_and_stream_monotonic() {
        let rec = Recorder::new();
        {
            let _run = rec.span("run");
            for i in 0..10 {
                let _step = rec.span("step");
                rec.counter("bytes", i as f64);
            }
        }
        let events = rec.events();
        let mut ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), events.len(), "event ids must be unique");
        assert!(
            events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "stored stream must have monotonic timestamps"
        );
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let rec = Recorder::new();
        let run = rec.span("run");
        let step = rec.span("step");
        rec.counter("c", 1.0);
        drop(step);
        rec.counter("after", 1.0);
        drop(run);

        let events = rec.events();
        let run_begin = &events[0];
        let step_begin = &events[1];
        assert_eq!(run_begin.kind, EventKind::SpanBegin);
        assert_eq!(run_begin.parent, 0);
        assert_eq!(step_begin.parent, run_begin.id, "step nests under run");
        let counter = events.iter().find(|e| e.name == "c").unwrap();
        assert_eq!(counter.parent, step_begin.id, "counter nests under step");
        let after = events.iter().find(|e| e.name == "after").unwrap();
        assert_eq!(after.parent, run_begin.id, "parent pops back to run");
        let step_end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "step")
            .unwrap();
        assert_eq!(step_end.parent, step_begin.id, "end links to begin");
    }

    #[test]
    fn spans_balance_under_concurrent_use() {
        let rec = Recorder::new();
        let outer = rec.span("outer");
        (0u64..64).into_par_iter().for_each(|i| {
            let worker = rec.span("worker");
            {
                let _inner = rec.span("inner");
                rec.counter("work", i as f64);
            }
            drop(worker);
        });
        drop(outer);

        let events = rec.events();
        let begins: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .collect();
        let ends: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .collect();
        assert_eq!(begins.len(), ends.len(), "every span closes");
        assert_eq!(begins.len(), 1 + 64 * 2);
        // Every end points at exactly one begin.
        for end in &ends {
            let matching: Vec<_> = begins.iter().filter(|b| b.id == end.parent).collect();
            assert_eq!(matching.len(), 1);
            assert_eq!(matching[0].name, end.name);
        }
        // Inner spans parent to a worker span opened on the same
        // thread, never to another worker's inner span.
        let worker_ids: Vec<u64> = begins
            .iter()
            .filter(|b| b.name == "worker")
            .map(|b| b.id)
            .collect();
        for b in begins.iter().filter(|b| b.name == "inner") {
            assert!(
                worker_ids.contains(&b.parent),
                "inner spans nest under a worker span"
            );
        }
        // Worker spans parent either to `outer` (same thread) or to
        // root (fresh pool thread) — never to an unrelated span.
        let outer_id = begins.iter().find(|b| b.name == "outer").unwrap().id;
        for b in begins.iter().filter(|b| b.name == "worker") {
            assert!(b.parent == outer_id || b.parent == 0);
        }
        // Counter conservation across threads.
        let total: f64 = events
            .iter()
            .filter(|e| e.kind == EventKind::Counter)
            .map(|e| e.value)
            .sum();
        assert_eq!(total, (0..64).sum::<u64>() as f64);
    }

    #[test]
    fn sinks_see_every_event() {
        struct CountSink(std::sync::atomic::AtomicU64);
        impl Sink for CountSink {
            fn on_event(&self, _event: &Event) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let rec = Recorder::new();
        let sink = std::sync::Arc::new(CountSink(std::sync::atomic::AtomicU64::new(0)));
        struct Fwd(std::sync::Arc<CountSink>);
        impl Sink for Fwd {
            fn on_event(&self, event: &Event) {
                self.0.on_event(event);
            }
        }
        rec.add_sink(Box::new(Fwd(sink.clone())));
        rec.timer("upGeo", 0.5);
        rec.counter("bytes", 7.0);
        let _s = rec.span("phase");
        drop(_s);
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn kernel_histograms_aggregate() {
        let rec = Recorder::new();
        let mut expected = [0u64; N_INSTR_CLASSES];
        for seed in 0..5 {
            let p = sample_profile("k", "upGeo", seed);
            for (slot, c) in expected.iter_mut().zip(p.instr.iter()) {
                *slot += c;
            }
            rec.kernel(p);
        }
        assert_eq!(kernel_instr_totals(&rec.events()), expected);
    }

    #[test]
    fn timer_totals_accumulate() {
        let rec = Recorder::new();
        rec.timer("upGeo", 1.0);
        rec.timer("upGeo", 2.0);
        rec.timer("upGrav", 0.25);
        let totals = timer_totals(&rec.events());
        assert_eq!(
            totals,
            vec![
                ("upGeo".to_string(), 3.0, 2),
                ("upGrav".to_string(), 0.25, 1)
            ]
        );
    }

    #[test]
    fn fault_events_carry_their_payload() {
        let rec = Recorder::new();
        let _step = rec.span("step");
        rec.fault(
            "fault.injected",
            FaultInfo {
                kind: "transient".to_string(),
                kernel: "upGeo".to_string(),
                variant: "Select".to_string(),
                detail: "launch #3".to_string(),
            },
            1.0,
        );
        rec.fault(
            "fault.injected",
            FaultInfo {
                kind: "corruption".to_string(),
                kernel: "upGrav".to_string(),
                variant: "Select".to_string(),
                detail: "bit flip".to_string(),
            },
            2.0,
        );
        let events = rec.events();
        let faults: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::Fault)
            .collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].fault.as_ref().unwrap().kind, "transient");
        assert!(faults[0].parent > 0, "fault nests under the open span");
        assert_eq!(fault_total(&events, "fault.injected"), 3.0);
        assert_eq!(counter_total(&events, "missing"), 0.0);
    }

    #[test]
    fn labels_cover_every_slot() {
        assert_eq!(INSTR_CLASS_LABELS.len(), N_INSTR_CLASSES);
        let mut sorted = INSTR_CLASS_LABELS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), N_INSTR_CLASSES, "labels must be distinct");
    }
}
