//! End-of-run text profile table.
//!
//! Aggregates the event stream into one row per timer bucket: launch
//! count, estimated seconds, share of total, dominant instruction
//! class, time-weighted stall multiplier, and peak register pressure —
//! the quantities §6 of the paper discusses per kernel.

use std::collections::BTreeMap;

use crate::{Event, EventKind, KernelProfile, INSTR_CLASS_LABELS, N_INSTR_CLASSES};

/// Aggregated statistics for one timer bucket.
#[derive(Clone, Debug, Default)]
pub struct TimerRow {
    /// Timer bracket charges (what `Timers` counts as calls).
    pub calls: u64,
    /// Individual kernel launches inside the bracket.
    pub launches: u64,
    /// Seconds charged through `Timer` events.
    pub seconds: f64,
    /// Summed instruction histogram over all launches.
    pub instr: [u64; N_INSTR_CLASSES],
    /// Maximum peak register count over all launches.
    pub peak_regs: u64,
    /// Maximum spill count over all launches.
    pub spilled_regs: u64,
    /// Time-weighted mean stall multiplier.
    pub stall_mult: f64,
    /// Total bytes moved by the launches.
    pub bytes_moved: u64,
}

impl TimerRow {
    fn absorb(&mut self, profile: &KernelProfile) {
        self.launches += 1;
        for (slot, c) in self.instr.iter_mut().zip(profile.instr.iter()) {
            *slot += c;
        }
        self.peak_regs = self.peak_regs.max(profile.peak_regs);
        self.spilled_regs = self.spilled_regs.max(profile.spilled_regs);
        self.bytes_moved += profile.bytes_moved;
        // Accumulate est-seconds-weighted stall multiplier; finalized
        // in `aggregate`.
        self.stall_mult += profile.stall_mult * profile.est_seconds;
    }

    /// Label and share of the dominant instruction class.
    pub fn dominant_class(&self) -> (&'static str, f64) {
        let total: u64 = self.instr.iter().sum();
        let (idx, &count) = self
            .instr
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap_or((0, &0));
        let share = if total > 0 {
            count as f64 / total as f64
        } else {
            0.0
        };
        (INSTR_CLASS_LABELS[idx], share)
    }
}

/// Collapses the event stream into per-timer rows.
///
/// `Timer` events provide `calls` and `seconds`; `Kernel` events (keyed
/// by their profile's `timer` field, falling back to the kernel name)
/// provide launches, histograms, and register pressure.
pub fn aggregate(events: &[Event]) -> BTreeMap<String, TimerRow> {
    let mut rows: BTreeMap<String, TimerRow> = BTreeMap::new();
    let mut est_weight: BTreeMap<String, f64> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Timer => {
                let row = rows.entry(ev.name.clone()).or_default();
                row.calls += 1;
                row.seconds += ev.value;
            }
            EventKind::Kernel => {
                if let Some(profile) = &ev.kernel {
                    let key = if profile.timer.is_empty() {
                        profile.kernel.clone()
                    } else {
                        profile.timer.clone()
                    };
                    rows.entry(key.clone()).or_default().absorb(profile);
                    *est_weight.entry(key).or_insert(0.0) += profile.est_seconds;
                }
            }
            _ => {}
        }
    }
    for (name, row) in rows.iter_mut() {
        let w = est_weight.get(name).copied().unwrap_or(0.0);
        row.stall_mult = if w > 0.0 { row.stall_mult / w } else { 0.0 };
    }
    rows
}

/// Renders the per-timer profile table.
pub fn profile_table(title: &str, events: &[Event]) -> String {
    let rows = aggregate(events);
    let total: f64 = rows.values().map(|r| r.seconds).sum();
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>12} {:>7}  {:<22} {:>6} {:>6} {:>10}\n",
        "timer",
        "calls",
        "launches",
        "seconds",
        "%",
        "dominant class",
        "regs",
        "spill",
        "MiB moved"
    ));
    let mut ordered: Vec<(&String, &TimerRow)> = rows.iter().collect();
    ordered.sort_by(|a, b| {
        b.1.seconds
            .partial_cmp(&a.1.seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, row) in &ordered {
        let (class, share) = row.dominant_class();
        let pct = if total > 0.0 {
            100.0 * row.seconds / total
        } else {
            0.0
        };
        let dominant = if row.launches > 0 {
            format!("{} ({:.0}%)", class, 100.0 * share)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<10} {:>6} {:>9} {:>12.6} {:>6.1}%  {:<22} {:>6} {:>6} {:>10.2}\n",
            name,
            row.calls,
            row.launches,
            row.seconds,
            pct,
            dominant,
            row.peak_regs,
            row.spilled_regs,
            row.bytes_moved as f64 / (1024.0 * 1024.0),
        ));
    }
    out.push_str(&format!(
        "{:<10} {:>6} {:>9} {:>12.6} {:>6.1}%\n",
        "total",
        rows.values().map(|r| r.calls).sum::<u64>(),
        rows.values().map(|r| r.launches).sum::<u64>(),
        total,
        if total > 0.0 { 100.0 } else { 0.0 },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_profile, Recorder};

    fn recorder_with_rows() -> Recorder {
        let rec = Recorder::new();
        for seed in 0..3 {
            rec.kernel(sample_profile("CrkSphGeometry", "upGeo", seed));
        }
        rec.timer("upGeo", 0.25);
        rec.timer("upGeo", 0.75);
        rec.kernel(sample_profile("GravityShort", "upGrav", 7));
        rec.timer("upGrav", 1.0);
        rec
    }

    #[test]
    fn aggregates_calls_launches_and_seconds() {
        let rows = aggregate(&recorder_with_rows().events());
        let geo = &rows["upGeo"];
        assert_eq!(geo.calls, 2);
        assert_eq!(geo.launches, 3);
        assert!((geo.seconds - 1.0).abs() < 1e-12);
        let grav = &rows["upGrav"];
        assert_eq!(grav.calls, 1);
        assert_eq!(grav.launches, 1);
        assert!(grav.stall_mult > 0.0);
    }

    #[test]
    fn table_lists_every_timer_and_total_percent() {
        let text = profile_table("profile: pvc", &recorder_with_rows().events());
        assert!(text.contains("upGeo"));
        assert!(text.contains("upGrav"));
        assert!(text.contains("100.0%"));
        assert!(text.lines().count() >= 5, "title + header + 2 rows + total");
    }

    #[test]
    fn dominant_class_share_is_normalized() {
        let rows = aggregate(&recorder_with_rows().events());
        for row in rows.values() {
            let (_, share) = row.dominant_class();
            assert!((0.0..=1.0).contains(&share));
        }
    }
}
