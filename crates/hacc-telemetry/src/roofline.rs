//! Roofline placement for recorded kernel launches.
//!
//! Places each kernel × architecture pair on the classic roofline:
//! arithmetic intensity (modeled FLOPs per byte of global traffic) on
//! the x-axis, achieved GFLOP/s on the y-axis, against the machine's
//! memory-bandwidth slope and peak-compute ceiling. The inputs are
//! plain numbers so this crate stays a leaf: the bench layer supplies
//! the architecture's peak FLOP rate and memory bandwidth (from
//! `sycl_sim::arch`), and the FLOP/byte counts come from the recorded
//! [`KernelProfile`]s.
//!
//! The FLOP model matches the simulator's cost model: each lane-op in
//! a FLOP-bearing instruction class (`alu`, `div`, `math.fast`,
//! `math.precise`) is worth 2 FLOPs (FMA issue), and a sub-group
//! instruction covers `sg_size` lanes.

use serde::{Deserialize, Serialize};

use crate::KernelProfile;

/// Instruction classes counted as FLOP-bearing, by histogram slot.
/// Pinned against [`crate::INSTR_CLASS_LABELS`] by a test below.
pub const FLOP_CLASSES: [usize; 4] = [0, 1, 2, 3];

/// FLOPs per lane-op: the cost model's 2-FLOP-per-lane-cycle FMA rate.
pub const FLOPS_PER_LANE_OP: f64 = 2.0;

/// Modeled FLOPs of one recorded launch: FLOP-class lane-ops × 2.
pub fn profile_flops(profile: &KernelProfile) -> f64 {
    let lane_ops: u64 = FLOP_CLASSES
        .iter()
        .map(|&c| profile.instr[c] * profile.sg_size)
        .sum();
    lane_ops as f64 * FLOPS_PER_LANE_OP
}

/// One kernel's placement on one architecture's roofline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: String,
    /// Architecture id (`pvc`, `a100`, `mi250x`, …).
    pub arch: String,
    /// Launches aggregated into this point.
    pub launches: u64,
    /// Total modeled FLOPs across the launches.
    pub flops: f64,
    /// Total modeled global-memory bytes across the launches.
    pub bytes: f64,
    /// Total modeled seconds across the launches.
    pub seconds: f64,
    /// Arithmetic intensity in FLOPs/byte.
    pub ai: f64,
    /// Achieved GFLOP/s (modeled FLOPs over modeled seconds).
    pub achieved_gflops: f64,
    /// Roofline ceiling at this AI: `min(peak, ai × bandwidth)`.
    pub attainable_gflops: f64,
    /// The machine's peak-compute ceiling in GFLOP/s.
    pub peak_gflops: f64,
    /// The machine's memory bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Ridge-point AI where the two roofs meet.
    pub ridge_ai: f64,
    /// Which roof binds at this AI: `"memory"` or `"compute"`.
    pub bound: String,
    /// Achieved over attainable, in `[0, 1]` for a consistent model.
    pub efficiency: f64,
}

/// Places one kernel on one architecture's roofline from aggregate
/// launch totals. `peak_gflops` and `mem_gbps` describe the machine.
pub fn place(
    kernel: &str,
    arch: &str,
    launches: u64,
    flops: f64,
    bytes: f64,
    seconds: f64,
    peak_gflops: f64,
    mem_gbps: f64,
) -> RooflinePoint {
    let ai = if bytes > 0.0 { flops / bytes } else { 0.0 };
    let achieved = if seconds > 0.0 {
        flops / seconds / 1e9
    } else {
        0.0
    };
    let mem_roof = ai * mem_gbps; // GB/s × FLOP/byte = GFLOP/s
    let attainable = mem_roof.min(peak_gflops);
    let ridge = if mem_gbps > 0.0 {
        peak_gflops / mem_gbps
    } else {
        0.0
    };
    RooflinePoint {
        kernel: kernel.to_string(),
        arch: arch.to_string(),
        launches,
        flops,
        bytes,
        seconds,
        ai,
        achieved_gflops: achieved,
        attainable_gflops: attainable,
        peak_gflops,
        mem_gbps,
        ridge_ai: ridge,
        bound: if mem_roof < peak_gflops {
            "memory".to_string()
        } else {
            "compute".to_string()
        },
        efficiency: if attainable > 0.0 {
            achieved / attainable
        } else {
            0.0
        },
    }
}

/// Aggregates every recorded launch of every kernel into one roofline
/// point per kernel, on a machine with the given roofs. Points come
/// back kernel-name-sorted.
pub fn place_profiles(
    profiles: &[KernelProfile],
    arch: &str,
    peak_gflops: f64,
    mem_gbps: f64,
) -> Vec<RooflinePoint> {
    let mut agg: std::collections::BTreeMap<String, (u64, f64, f64, f64)> =
        std::collections::BTreeMap::new();
    for p in profiles {
        let e = agg.entry(p.kernel.clone()).or_insert((0, 0.0, 0.0, 0.0));
        e.0 += 1;
        e.1 += profile_flops(p);
        e.2 += p.bytes_moved as f64;
        e.3 += p.est_seconds;
    }
    agg.into_iter()
        .map(|(kernel, (launches, flops, bytes, seconds))| {
            place(
                &kernel,
                arch,
                launches,
                flops,
                bytes,
                seconds,
                peak_gflops,
                mem_gbps,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_classes_pin_the_label_order() {
        let expected = ["alu", "div", "math.fast", "math.precise"];
        for (&slot, want) in FLOP_CLASSES.iter().zip(expected) {
            assert_eq!(crate::INSTR_CLASS_LABELS[slot], want);
        }
    }

    #[test]
    fn memory_bound_below_the_ridge() {
        // AI 0.5 on a machine with ridge at 10 FLOP/byte.
        let p = place("k", "pvc", 1, 0.5e9, 1e9, 1.0, 10_000.0, 1000.0);
        assert_eq!(p.bound, "memory");
        assert!((p.ai - 0.5).abs() < 1e-12);
        assert!((p.attainable_gflops - 500.0).abs() < 1e-9);
        assert!((p.ridge_ai - 10.0).abs() < 1e-12);
        assert!((p.achieved_gflops - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_above_the_ridge() {
        let p = place("k", "a100", 1, 100e9, 1e9, 1.0, 10_000.0, 1000.0);
        assert_eq!(p.bound, "compute");
        assert!((p.attainable_gflops - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn profile_aggregation_sums_launches() {
        let a = crate::sample_profile("kA", "upGeo", 1);
        let b = crate::sample_profile("kA", "upGeo", 2);
        let c = crate::sample_profile("kB", "upGrav", 3);
        let pts = place_profiles(&[a.clone(), b.clone(), c.clone()], "pvc", 45_900.0, 1638.0);
        assert_eq!(pts.len(), 2);
        let ka = &pts[0];
        assert_eq!(ka.kernel, "kA");
        assert_eq!(ka.launches, 2);
        let want_flops = profile_flops(&a) + profile_flops(&b);
        assert!((ka.flops - want_flops).abs() < 1e-6);
        assert!(
            (ka.bytes - (a.bytes_moved + b.bytes_moved) as f64).abs() < 1e-6,
            "bytes aggregate"
        );
        assert!(ka.ai > 0.0 && ka.efficiency >= 0.0);
    }

    #[test]
    fn zero_traffic_and_zero_time_are_safe() {
        let p = place("k", "cpu", 0, 0.0, 0.0, 0.0, 16_000.0, 800.0);
        assert_eq!(p.ai, 0.0);
        assert_eq!(p.achieved_gflops, 0.0);
        assert_eq!(p.efficiency, 0.0);
        assert_eq!(p.bound, "memory");
    }
}
