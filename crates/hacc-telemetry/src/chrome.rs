//! Chrome trace-event exporter (Perfetto / `chrome://tracing` loadable).
//!
//! Layout: each event group (typically one per architecture) becomes a
//! trace *process*; inside a process, tid 0 carries the span hierarchy
//! and counters, and every timer bucket (`upGeo`, `upGrav`, …) gets its
//! own thread track so per-kernel launches line up visually. Multi-rank
//! runs add one further level: every `rank.<N>` span subtree is lifted
//! into its own trace process (`<group> rank.<N>`), so each simulated
//! rank's phase timers render as a separate lane instead of
//! interleaving on one track. Span durations are host wall-clock;
//! kernel durations are the cost model's *simulated* seconds, which is
//! the quantity the paper's figures plot.

use serde_json::Value;

use crate::{Event, EventKind, INSTR_CLASS_LABELS, SCHEMA_VERSION};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(t_ns: u64) -> Value {
    Value::F64(t_ns as f64 / 1_000.0)
}

fn profile_args(profile: &crate::KernelProfile) -> Value {
    let mut fields = vec![
        ("timer", Value::String(profile.timer.clone())),
        ("variant", Value::String(profile.variant.clone())),
        ("arch", Value::String(profile.arch.clone())),
        ("sg_size", Value::U64(profile.sg_size)),
        ("wg_size", Value::U64(profile.wg_size)),
        ("n_subgroups", Value::U64(profile.n_subgroups)),
        ("peak_regs", Value::U64(profile.peak_regs)),
        ("spilled_regs", Value::U64(profile.spilled_regs)),
        ("local_bytes_per_wg", Value::U64(profile.local_bytes_per_wg)),
        ("bytes_moved", Value::U64(profile.bytes_moved)),
        ("est_seconds", Value::F64(profile.est_seconds)),
        ("stall_mult", Value::F64(profile.stall_mult)),
        ("occupancy", Value::F64(profile.occupancy)),
    ];
    for (label, count) in INSTR_CLASS_LABELS.iter().zip(profile.instr.iter()) {
        fields.push((label, Value::U64(*count)));
    }
    obj(fields)
}

/// Renders one event group as a complete Chrome trace JSON document.
pub fn chrome_trace(events: &[Event]) -> String {
    chrome_trace_named(&[("run", events)])
}

/// Renders several named event groups (e.g. one per architecture) into
/// one Chrome trace document, one trace process per group.
pub fn chrome_trace_named(groups: &[(&str, &[Event])]) -> String {
    let mut trace_events: Vec<(f64, Value)> = Vec::new();
    let mut metadata: Vec<Value> = Vec::new();
    // Rank lanes claim pids after every group's base pid, so bases stay
    // stable (1, 2, …) whether or not a trace is multi-rank.
    let mut next_rank_pid = groups.len() as u64 + 1;

    for (gi, (group_name, events)) in groups.iter().enumerate() {
        let base_pid = gi as u64 + 1;
        metadata.push(process_meta(base_pid, group_name));
        metadata.push(thread_meta(base_pid, 0, "spans"));

        // Stable tid per (pid, timer bucket), in order of first appearance.
        let mut tids: Vec<(u64, String)> = Vec::new();
        let mut tid_of = |pid: u64, track: &str, metadata: &mut Vec<Value>| -> u64 {
            if let Some(pos) = tids.iter().position(|(p, t)| *p == pid && t == track) {
                return tids[..=pos].iter().filter(|(p, _)| *p == pid).count() as u64;
            }
            tids.push((pid, track.to_string()));
            let tid = tids.iter().filter(|(p, _)| *p == pid).count() as u64;
            metadata.push(thread_meta(pid, tid, track));
            tid
        };

        // Per-rank process lanes: a `rank.<N>` span switches the current
        // lane for everything nested inside it.
        let mut rank_pids: Vec<(String, u64)> = Vec::new();
        let mut rank_stack: Vec<(u64, u64)> = Vec::new(); // (span id, lane to restore)
        let mut lane = base_pid;

        // Pair up span begin/end by id, remembering each span's lane.
        let mut open: Vec<(u64, &Event, u64)> = Vec::new();
        for ev in events.iter() {
            match ev.kind {
                EventKind::SpanBegin => {
                    if ev.name.starts_with("rank.") {
                        let rank_pid = match rank_pids.iter().find(|(n, _)| *n == ev.name) {
                            Some((_, p)) => *p,
                            None => {
                                let p = next_rank_pid;
                                next_rank_pid += 1;
                                rank_pids.push((ev.name.clone(), p));
                                metadata
                                    .push(process_meta(p, &format!("{group_name} {}", ev.name)));
                                metadata.push(thread_meta(p, 0, "spans"));
                                p
                            }
                        };
                        rank_stack.push((ev.id, lane));
                        lane = rank_pid;
                    }
                    open.push((ev.id, ev, lane));
                }
                EventKind::SpanEnd => {
                    if let Some(pos) = open.iter().rposition(|(id, _, _)| *id == ev.parent) {
                        let (_, begin, span_lane) = open.remove(pos);
                        if let Some(&(rank_id, restore)) = rank_stack.last() {
                            if rank_id == begin.id {
                                rank_stack.pop();
                                lane = restore;
                            }
                        }
                        trace_events.push((
                            begin.t_ns as f64 / 1_000.0,
                            obj(vec![
                                ("name", Value::String(begin.name.clone())),
                                ("ph", Value::String("X".to_string())),
                                ("pid", Value::U64(span_lane)),
                                ("tid", Value::U64(0)),
                                ("ts", us(begin.t_ns)),
                                ("dur", Value::F64((ev.t_ns - begin.t_ns) as f64 / 1_000.0)),
                            ]),
                        ));
                    }
                }
                EventKind::Counter => {
                    trace_events.push((
                        ev.t_ns as f64 / 1_000.0,
                        obj(vec![
                            ("name", Value::String(ev.name.clone())),
                            ("ph", Value::String("C".to_string())),
                            ("pid", Value::U64(lane)),
                            ("tid", Value::U64(0)),
                            ("ts", us(ev.t_ns)),
                            ("args", obj(vec![("value", Value::F64(ev.value))])),
                        ]),
                    ));
                }
                EventKind::Kernel => {
                    let profile = ev.kernel.as_ref();
                    let track = profile
                        .map(|p| {
                            if p.timer.is_empty() {
                                p.kernel.clone()
                            } else {
                                p.timer.clone()
                            }
                        })
                        .unwrap_or_else(|| ev.name.clone());
                    let tid = tid_of(lane, &track, &mut metadata);
                    let mut fields = vec![
                        ("name", Value::String(ev.name.clone())),
                        ("ph", Value::String("X".to_string())),
                        ("pid", Value::U64(lane)),
                        ("tid", Value::U64(tid)),
                        ("ts", us(ev.t_ns)),
                        ("dur", Value::F64(ev.value * 1e6)),
                    ];
                    if let Some(p) = profile {
                        fields.push(("args", profile_args(p)));
                    }
                    trace_events.push((ev.t_ns as f64 / 1_000.0, obj(fields)));
                }
                EventKind::Timer => {
                    let tid = tid_of(lane, &ev.name, &mut metadata);
                    trace_events.push((
                        ev.t_ns as f64 / 1_000.0,
                        obj(vec![
                            ("name", Value::String(ev.name.clone())),
                            ("ph", Value::String("X".to_string())),
                            ("pid", Value::U64(lane)),
                            ("tid", Value::U64(tid)),
                            ("ts", us(ev.t_ns)),
                            ("dur", Value::F64(ev.value * 1e6)),
                            ("args", obj(vec![("seconds", Value::F64(ev.value))])),
                        ]),
                    ));
                }
                EventKind::Fault => {
                    // Faults render as instants so recovery activity is
                    // visible on the span track.
                    let mut args = vec![("count", Value::F64(ev.value))];
                    if let Some(info) = &ev.fault {
                        args.push(("kind", Value::String(info.kind.clone())));
                        args.push(("kernel", Value::String(info.kernel.clone())));
                        args.push(("variant", Value::String(info.variant.clone())));
                        args.push(("detail", Value::String(info.detail.clone())));
                    }
                    trace_events.push((
                        ev.t_ns as f64 / 1_000.0,
                        obj(vec![
                            ("name", Value::String(ev.name.clone())),
                            ("ph", Value::String("i".to_string())),
                            ("s", Value::String("p".to_string())),
                            ("pid", Value::U64(lane)),
                            ("tid", Value::U64(0)),
                            ("ts", us(ev.t_ns)),
                            ("args", obj(args)),
                        ]),
                    ));
                }
            }
        }
        // Spans still open at export time get a zero-length marker so
        // they do not vanish from the trace.
        for (_, begin, span_lane) in open {
            trace_events.push((
                begin.t_ns as f64 / 1_000.0,
                obj(vec![
                    ("name", Value::String(format!("{} (unclosed)", begin.name))),
                    ("ph", Value::String("X".to_string())),
                    ("pid", Value::U64(span_lane)),
                    ("tid", Value::U64(0)),
                    ("ts", us(begin.t_ns)),
                    ("dur", Value::F64(0.0)),
                ]),
            ));
        }
    }

    trace_events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut all: Vec<Value> = metadata;
    all.extend(trace_events.into_iter().map(|(_, v)| v));

    let doc = obj(vec![
        ("traceEvents", Value::Array(all)),
        ("displayTimeUnit", Value::String("ms".to_string())),
        (
            "otherData",
            obj(vec![
                ("schema_version", Value::U64(SCHEMA_VERSION as u64)),
                ("generator", Value::String("hacc-telemetry".to_string())),
            ]),
        ),
    ]);
    doc.to_string()
}

fn process_meta(pid: u64, name: &str) -> Value {
    obj(vec![
        ("name", Value::String("process_name".to_string())),
        ("ph", Value::String("M".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(0)),
        ("args", obj(vec![("name", Value::String(name.to_string()))])),
    ])
}

fn thread_meta(pid: u64, tid: u64, name: &str) -> Value {
    obj(vec![
        ("name", Value::String("thread_name".to_string())),
        ("ph", Value::String("M".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", obj(vec![("name", Value::String(name.to_string()))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_profile, Recorder};

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new();
        let run = rec.span("run");
        for seed in 0..4 {
            let step = rec.span("step");
            rec.kernel(sample_profile("CrkSphGeometry", "upGeo", seed));
            rec.timer("upGeo", 1e-3 * (seed + 1) as f64);
            rec.counter("xfer.h2d.bytes", 4096.0);
            drop(step);
        }
        drop(run);
        rec
    }

    #[test]
    fn trace_is_valid_json_with_monotonic_timestamps() {
        let rec = sample_recorder();
        let text = chrome_trace(&rec.events());
        let doc: Value = serde_json::from_str(&text).expect("trace must be valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert!(!events.is_empty());
        let mut last_ts = f64::MIN;
        let mut timed = 0;
        for ev in events {
            if ev["ph"].as_str() == Some("M") {
                continue; // metadata records carry no timestamp
            }
            let ts = ev["ts"].as_f64().expect("ts present");
            assert!(ts >= last_ts, "timestamps must be sorted");
            last_ts = ts;
            timed += 1;
        }
        assert!(
            timed >= 13,
            "span + 4×(kernel, timer, counter) events expected"
        );
        assert_eq!(
            doc["otherData"]["schema_version"].as_u64(),
            Some(SCHEMA_VERSION as u64)
        );
    }

    #[test]
    fn kernel_args_carry_instruction_histogram() {
        let rec = sample_recorder();
        let text = chrome_trace(&rec.events());
        let doc: Value = serde_json::from_str(&text).unwrap();
        let kernel = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["name"].as_str() == Some("CrkSphGeometry"))
            .expect("kernel slice present");
        for label in INSTR_CLASS_LABELS {
            assert!(
                !kernel["args"][label].is_null(),
                "missing histogram slot {label}"
            );
        }
        assert_eq!(kernel["args"]["variant"].as_str(), Some("Select"));
    }

    #[test]
    fn rank_spans_get_their_own_process_lanes() {
        let rec = Recorder::new();
        let step = rec.span("step");
        for r in 0..2 {
            let rank = rec.span(&format!("rank.{r}"));
            rec.timer("phase.interior", 1e-3);
            rec.timer("phase.halo", 2e-3);
            drop(rank);
        }
        drop(step);
        let text = chrome_trace_named(&[("pvc", &rec.events())]);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();

        // Three processes: the group plus one lane per rank.
        let processes: Vec<(u64, String)> = events
            .iter()
            .filter(|e| e["name"].as_str() == Some("process_name"))
            .map(|e| {
                (
                    e["pid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(
            processes,
            vec![
                (1, "pvc".to_string()),
                (2, "pvc rank.0".to_string()),
                (3, "pvc rank.1".to_string()),
            ]
        );

        // Phase timers land on their rank's lane; the step span stays
        // on the group lane; each rank span renders inside its lane.
        let pid_of = |name: &str, nth: usize| -> u64 {
            events
                .iter()
                .filter(|e| e["name"].as_str() == Some(name) && e["ph"].as_str() == Some("X"))
                .nth(nth)
                .unwrap_or_else(|| panic!("missing slice {name}[{nth}]"))["pid"]
                .as_u64()
                .unwrap()
        };
        assert_eq!(pid_of("step", 0), 1);
        assert_eq!(pid_of("rank.0", 0), 2);
        assert_eq!(pid_of("rank.1", 0), 3);
        assert_eq!(pid_of("phase.interior", 0), 2);
        assert_eq!(pid_of("phase.interior", 1), 3);
        assert_eq!(pid_of("phase.halo", 1), 3);

        // Timer tracks are per-lane: each rank lane numbers its own tids.
        let tracks: Vec<(u64, u64, String)> = events
            .iter()
            .filter(|e| e["name"].as_str() == Some("thread_name"))
            .map(|e| {
                (
                    e["pid"].as_u64().unwrap(),
                    e["tid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert!(tracks.contains(&(2, 1, "phase.interior".to_string())));
        assert!(tracks.contains(&(2, 2, "phase.halo".to_string())));
        assert!(tracks.contains(&(3, 1, "phase.interior".to_string())));
        assert!(tracks.contains(&(3, 2, "phase.halo".to_string())));
    }

    #[test]
    fn one_thread_track_per_timer() {
        let rec = Recorder::new();
        rec.timer("upGeo", 1e-3);
        rec.timer("upGrav", 1e-3);
        rec.timer("upGeo", 1e-3);
        let text = chrome_trace_named(&[("pvc", &rec.events())]);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let names: Vec<String> = doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
            .map(|e| e["args"]["name"].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["spans", "upGeo", "upGrav"]);
    }
}
