//! Critical-path extraction and wall-time attribution over the
//! recorded span tree.
//!
//! The multi-rank engine emits, for every step, one `step` span
//! containing a `rank.<r>` span per rank, and under each rank span the
//! modeled phase timers:
//!
//! * `phase.migrate`  — particle migration (exchange, blocking)
//! * `phase.interior` — interior compute, overlapped with the halo
//! * `phase.halo`     — halo exchange in flight during the interior
//! * `phase.boundary` — boundary compute after ghosts land
//!
//! This pass folds those into a per-rank attribution of the step's
//! node time to **compute-interior / compute-boundary / exchange /
//! wait**. The algebra mirrors the engine's step model exactly: with
//! `exposed = max(halo − interior, 0)` (the part of the exchange not
//! hidden behind interior compute),
//!
//! ```text
//! step_r = migrate + interior + exposed + boundary
//!        = migrate + max(halo, interior) + boundary
//! node   = max over ranks of step_r
//! wait_r = node − step_r          (idle at the step barrier)
//! ```
//!
//! so the four fractions partition `node` per rank; `wait` is reported
//! as one minus the other three, making the per-rank sum exactly 1 up
//! to a last-place rounding. The **critical path** of the step is the
//! phase sequence of the rank with the largest `step_r` — the rank
//! every other rank waits for.

use serde::{Deserialize, Serialize};

use crate::{Event, EventKind};

/// Phase timer names the multi-rank engine emits under each rank span.
pub const PHASE_TIMERS: [&str; 4] = [
    "phase.migrate",
    "phase.interior",
    "phase.halo",
    "phase.boundary",
];

/// One rank's share of one step: raw phase seconds plus the four
/// attribution fractions of the node's step time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankAttribution {
    /// Rank index.
    pub rank: usize,
    /// Migration seconds (blocking exchange).
    pub migrate_seconds: f64,
    /// Interior-compute seconds (overlap window).
    pub interior_seconds: f64,
    /// Halo-exchange seconds (in flight during the interior).
    pub halo_seconds: f64,
    /// Boundary-compute seconds.
    pub boundary_seconds: f64,
    /// Exchange seconds not hidden behind interior compute.
    pub exposed_exchange_seconds: f64,
    /// This rank's serialized step time.
    pub step_seconds: f64,
    /// Barrier idle time: node step time minus this rank's.
    pub wait_seconds: f64,
    /// Fraction of node time in interior compute.
    pub frac_compute_interior: f64,
    /// Fraction of node time in boundary compute.
    pub frac_compute_boundary: f64,
    /// Fraction of node time in exposed exchange (migrate + exposed halo).
    pub frac_exchange: f64,
    /// Fraction of node time idle at the barrier (1 − the others).
    pub frac_wait: f64,
}

/// One segment of a step's critical path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathSegment {
    /// Rank the segment executes on.
    pub rank: usize,
    /// Segment label (`migrate`, `compute-interior`,
    /// `exchange-exposed`, `compute-boundary`).
    pub phase: String,
    /// Segment length in seconds.
    pub seconds: f64,
}

/// Critical-path analysis of one step across all ranks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepCriticalPath {
    /// Step index (encounter order in the stream, 0-based).
    pub step: usize,
    /// Node step time: the slowest rank's serialized step seconds.
    pub node_seconds: f64,
    /// The rank that sets `node_seconds` (lowest index on ties).
    pub critical_rank: usize,
    /// Phase sequence of the critical rank; segment seconds sum to
    /// `node_seconds`.
    pub path: Vec<PathSegment>,
    /// Per-rank attribution, rank-sorted.
    pub per_rank: Vec<RankAttribution>,
}

fn attribution(
    rank: usize,
    migrate: f64,
    interior: f64,
    halo: f64,
    boundary: f64,
) -> RankAttribution {
    let exposed = (halo - interior).max(0.0);
    let step = migrate + interior + exposed + boundary;
    RankAttribution {
        rank,
        migrate_seconds: migrate,
        interior_seconds: interior,
        halo_seconds: halo,
        boundary_seconds: boundary,
        exposed_exchange_seconds: exposed,
        step_seconds: step,
        wait_seconds: 0.0,
        frac_compute_interior: 0.0,
        frac_compute_boundary: 0.0,
        frac_exchange: 0.0,
        frac_wait: 0.0,
    }
}

fn finish_step(step: usize, mut ranks: Vec<RankAttribution>) -> StepCriticalPath {
    ranks.sort_by_key(|r| r.rank);
    let node = ranks.iter().fold(0.0f64, |a, r| a.max(r.step_seconds));
    let critical = ranks
        .iter()
        .filter(|r| r.step_seconds == node)
        .map(|r| r.rank)
        .next()
        .unwrap_or(0);
    for r in &mut ranks {
        r.wait_seconds = (node - r.step_seconds).max(0.0);
        if node > 0.0 {
            r.frac_compute_interior = r.interior_seconds / node;
            r.frac_compute_boundary = r.boundary_seconds / node;
            r.frac_exchange = (r.migrate_seconds + r.exposed_exchange_seconds) / node;
            // Reported as the complement so the four fractions sum to
            // 1 exactly (up to one last-place rounding per rank).
            r.frac_wait =
                (1.0 - r.frac_compute_interior - r.frac_compute_boundary - r.frac_exchange)
                    .max(0.0);
        }
    }
    let path = ranks
        .iter()
        .find(|r| r.rank == critical)
        .map(|r| {
            vec![
                PathSegment {
                    rank: critical,
                    phase: "migrate".to_string(),
                    seconds: r.migrate_seconds,
                },
                PathSegment {
                    rank: critical,
                    phase: "compute-interior".to_string(),
                    seconds: r.interior_seconds,
                },
                PathSegment {
                    rank: critical,
                    phase: "exchange-exposed".to_string(),
                    seconds: r.exposed_exchange_seconds,
                },
                PathSegment {
                    rank: critical,
                    phase: "compute-boundary".to_string(),
                    seconds: r.boundary_seconds,
                },
            ]
        })
        .unwrap_or_default();
    StepCriticalPath {
        step,
        node_seconds: node,
        critical_rank: critical,
        path,
        per_rank: ranks,
    }
}

/// Builds one [`RankAttribution`] from raw phase seconds (the same
/// construction the event walk uses); fractions are filled in by the
/// step-level pass.
pub fn attribute_rank(
    rank: usize,
    migrate: f64,
    interior: f64,
    halo: f64,
    boundary: f64,
) -> RankAttribution {
    attribution(rank, migrate, interior, halo, boundary)
}

/// Folds per-rank phase seconds for one step into its critical path.
pub fn attribute_step(step: usize, ranks: Vec<RankAttribution>) -> StepCriticalPath {
    finish_step(step, ranks)
}

/// Walks the span tree of a recorded event stream and extracts the
/// critical path of every `step` span (see the module docs for the
/// expected shape). Steps are numbered in encounter order.
pub fn critical_paths(events: &[Event]) -> Vec<StepCriticalPath> {
    // step span id → step index, rank span id → (step index, rank).
    let mut step_ids: Vec<u64> = Vec::new();
    let mut rank_of_span: std::collections::HashMap<u64, (usize, usize)> =
        std::collections::HashMap::new();
    // (step, rank) → [migrate, interior, halo, boundary]
    let mut phases: std::collections::HashMap<(usize, usize), [f64; 4]> =
        std::collections::HashMap::new();

    for ev in events {
        match ev.kind {
            EventKind::SpanBegin if ev.name == "step" => step_ids.push(ev.id),
            EventKind::SpanBegin => {
                if let Some(r) = ev.name.strip_prefix("rank.").and_then(|s| s.parse().ok()) {
                    if let Some(step) = step_ids.iter().position(|&id| id == ev.parent) {
                        rank_of_span.insert(ev.id, (step, r));
                    }
                }
            }
            EventKind::Timer => {
                if let Some(&(step, rank)) = rank_of_span.get(&ev.parent) {
                    if let Some(slot) = PHASE_TIMERS.iter().position(|&p| p == ev.name) {
                        phases.entry((step, rank)).or_insert([0.0; 4])[slot] += ev.value;
                    }
                }
            }
            _ => {}
        }
    }

    let mut per_step: Vec<Vec<RankAttribution>> = vec![Vec::new(); step_ids.len()];
    let mut keys: Vec<(usize, usize)> = phases.keys().copied().collect();
    keys.sort_unstable();
    for (step, rank) in keys {
        let [m, i, h, b] = phases[&(step, rank)];
        per_step[step].push(attribution(rank, m, i, h, b));
    }
    per_step
        .into_iter()
        .enumerate()
        .filter(|(_, ranks)| !ranks.is_empty())
        .map(|(step, ranks)| finish_step(step, ranks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn emit_step(rec: &Recorder, ranks: &[[f64; 4]]) {
        let _step = rec.span("step");
        for (r, [m, i, h, b]) in ranks.iter().enumerate() {
            let _rank = rec.span(&format!("rank.{r}"));
            rec.timer("phase.migrate", *m);
            rec.timer("phase.interior", *i);
            rec.timer("phase.halo", *h);
            rec.timer("phase.boundary", *b);
        }
    }

    #[test]
    fn fractions_partition_node_time() {
        let rec = Recorder::new();
        emit_step(
            &rec,
            &[
                [0.1, 1.0, 0.4, 0.3], // halo hidden: step = 0.1+1.0+0.3
                [0.2, 0.5, 0.9, 0.1], // halo exposed by 0.4: step = 0.2+0.5+0.4+0.1
            ],
        );
        let steps = critical_paths(&rec.events());
        assert_eq!(steps.len(), 1);
        let s = &steps[0];
        assert!((s.node_seconds - 1.4).abs() < 1e-12);
        assert_eq!(s.critical_rank, 0);
        for r in &s.per_rank {
            let sum =
                r.frac_compute_interior + r.frac_compute_boundary + r.frac_exchange + r.frac_wait;
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "rank {} fractions sum to {sum}",
                r.rank
            );
        }
        let r1 = &s.per_rank[1];
        assert!((r1.exposed_exchange_seconds - 0.4).abs() < 1e-12);
        assert!((r1.wait_seconds - (1.4 - 1.2)).abs() < 1e-12);
    }

    #[test]
    fn critical_path_follows_the_slowest_rank() {
        let rec = Recorder::new();
        emit_step(&rec, &[[0.0, 0.2, 0.1, 0.1], [0.05, 0.3, 0.6, 0.2]]);
        let steps = critical_paths(&rec.events());
        let s = &steps[0];
        assert_eq!(s.critical_rank, 1);
        let path_total: f64 = s.path.iter().map(|p| p.seconds).sum();
        assert!(
            (path_total - s.node_seconds).abs() < 1e-12,
            "critical-path segments sum to node time"
        );
        assert_eq!(s.path.len(), 4);
        assert!(s.path.iter().all(|p| p.rank == 1));
    }

    #[test]
    fn multiple_steps_number_in_order() {
        let rec = Recorder::new();
        emit_step(&rec, &[[0.0, 1.0, 0.0, 0.0]]);
        emit_step(&rec, &[[0.0, 2.0, 0.0, 0.0]]);
        emit_step(&rec, &[[0.0, 3.0, 0.0, 0.0]]);
        let steps = critical_paths(&rec.events());
        assert_eq!(steps.len(), 3);
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step, i);
            assert!((s.node_seconds - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_has_no_wait() {
        let rec = Recorder::new();
        emit_step(&rec, &[[0.1, 0.5, 0.2, 0.3]]);
        let s = &critical_paths(&rec.events())[0];
        assert_eq!(s.per_rank.len(), 1);
        assert_eq!(s.per_rank[0].wait_seconds, 0.0);
        assert!(s.per_rank[0].frac_wait.abs() < 1e-12);
    }

    #[test]
    fn unrelated_events_are_ignored() {
        let rec = Recorder::new();
        rec.timer("upGeo", 1.0);
        {
            let _other = rec.span("run");
            rec.timer("phase.migrate", 5.0); // not under a rank span
        }
        emit_step(&rec, &[[0.0, 1.0, 0.5, 0.25]]);
        let steps = critical_paths(&rec.events());
        assert_eq!(steps.len(), 1);
        assert!((steps[0].node_seconds - 1.25).abs() < 1e-12);
    }
}
