//! Criterion benches for the substrate crates: FFT, particle-mesh,
//! spatial decomposition, and the halo finder. These measure *host*
//! execution speed of the library (the simulated-device timings of the
//! paper's figures come from the `figures` binary and the `kernels`
//! bench).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hacc_fft::{Complex, Dims, Direction, Fft1d, Fft3d};
use hacc_mesh::{cic, ForceSplit, PmSolver, PolyShortRange};
use hacc_tree::{fof_halos, ChainingMesh, InteractionList, RcbTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, box_size: f64, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            [
                rng.gen_range(0.0..box_size),
                rng.gen_range(0.0..box_size),
                rng.gen_range(0.0..box_size),
            ]
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.sample_size(20);
    for n in [256usize, 1024] {
        let plan = Fft1d::new(n);
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        g.bench_function(format!("fft1d_{n}"), |b| {
            b.iter(|| {
                let mut d = data.clone();
                plan.process(&mut d, Direction::Forward);
                black_box(d)
            })
        });
    }
    let dims = Dims::cube(32);
    let plan = Fft3d::new(dims);
    let grid: Vec<f64> = (0..dims.len()).map(|i| (i as f64 * 0.37).sin()).collect();
    g.bench_function("fft3d_32cubed", |b| {
        b.iter(|| black_box(plan.forward_real(&grid)))
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.sample_size(20);
    let ng = 32;
    let pts = random_points(8192, ng as f64, 1);
    let masses = vec![1.0; pts.len()];
    let dims = Dims::cube(ng);
    g.bench_function("cic_deposit_8k", |b| {
        let mut grid = vec![0.0; dims.len()];
        b.iter(|| cic::deposit(dims, &pts, &masses, &mut grid))
    });
    let mut pm = PmSolver::new(ng, Some(ForceSplit::new(1.5, 5.0)));
    g.bench_function("pm_forces_8k_32cubed", |b| {
        let mut out = Vec::new();
        b.iter(|| pm.accelerations(&pts, &masses, &mut out))
    });
    g.bench_function("poly_fit_degree5", |b| {
        b.iter(|| black_box(PolyShortRange::fit(ForceSplit::new(1.5, 5.0), 5)))
    });
    g.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree");
    g.sample_size(20);
    let box_size = 16.0;
    let pts = random_points(8192, box_size, 2);
    g.bench_function("rcb_build_8k", |b| {
        b.iter(|| black_box(RcbTree::build(&pts, 16)))
    });
    let tree = RcbTree::build(&pts, 16);
    g.bench_function("interaction_list_8k", |b| {
        b.iter(|| black_box(InteractionList::build(&tree, box_size, 1.5)))
    });
    g.bench_function("chaining_mesh_8k", |b| {
        b.iter(|| black_box(ChainingMesh::build(&pts, box_size, 1.0)))
    });
    let masses = vec![1.0; pts.len()];
    g.bench_function("fof_8k", |b| {
        b.iter(|| black_box(fof_halos(&pts, &masses, box_size, 0.3, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench_fft, bench_mesh, bench_tree);
criterion_main!(benches);
