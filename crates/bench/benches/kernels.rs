//! Criterion benches over the offloaded kernels: one benchmark per
//! (architecture × variant), executing the full seven-timer hydro kernel
//! sequence on the standard workload. Before timing, each group prints
//! the simulated-device seconds — the quantity the paper's Figures 9–11
//! plot — so `cargo bench` regenerates the per-variant data alongside
//! the host-speed measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use hacc_bench::experiments::{kernel_seconds, total_seconds, workload, VariantChoice};
use hacc_kernels::Variant;
use sycl_sim::{GpuArch, Toolchain};

fn bench_variants(c: &mut Criterion) {
    let problem = workload(6, 7);
    let mut g = c.benchmark_group("variants");
    g.sample_size(10);
    for arch in GpuArch::all() {
        for variant in [
            Variant::Select,
            Variant::Memory32,
            Variant::MemoryObject,
            Variant::Broadcast,
            Variant::Visa,
        ] {
            if variant.needs_visa() && !arch.supports_visa {
                continue;
            }
            let tc = if variant.needs_visa() {
                Toolchain::sycl_visa()
            } else {
                Toolchain::sycl()
            };
            let choice = VariantChoice::paper_default(&arch, variant);
            // Print the simulated seconds once (the figure datum).
            let secs = kernel_seconds(&arch, tc, choice, &problem);
            println!(
                "[simulated] {:<9} {:<16} total = {:.4e} s",
                arch.system,
                variant.label(),
                total_seconds(&secs)
            );
            g.bench_function(
                format!("{}_{}", arch.id, variant.label().replace([',', ' '], "")),
                |b| b.iter(|| kernel_seconds(&arch, tc, choice, &problem)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
