//! Criterion bench that regenerates every table and figure at a reduced
//! problem size, printing each one before measuring its end-to-end
//! generation cost. `cargo bench --bench figures` therefore reproduces
//! the paper's full evaluation output.

use criterion::{criterion_group, criterion_main, Criterion};
use hacc_bench::experiments::workload;
use hacc_bench::figures::*;
use hacc_metrics::{find_workspace_root, RepoInventory};
use std::path::Path;
use sycl_sim::GpuArch;

fn bench_figures(c: &mut Criterion) {
    let problem = workload(6, 3);
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let inventory = RepoInventory::measure(&root).unwrap();

    // Print every artifact once.
    println!("{}", table1());
    println!("{}", table2(&inventory));
    println!("{}", fig2(&problem));
    for arch in GpuArch::all() {
        println!("{}", fig_variants(&arch, &problem).0);
    }
    let data = portability_data(&problem);
    let (fig12_text, records) = fig12(&data);
    println!("{fig12_text}");
    println!("{}", fig13(&records, &inventory));
    println!("{}", ablation_registers(&problem));
    println!("{}", ablation_fast_math(&problem));
    println!("{}", ablation_memory_granularity(&problem));

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2", |b| b.iter(|| fig2(&problem)));
    g.bench_function("fig9_aurora", |b| {
        b.iter(|| fig_variants(&GpuArch::aurora(), &problem).0)
    });
    g.bench_function("fig12_13", |b| {
        b.iter(|| {
            let data = portability_data(&problem);
            let (_, records) = fig12(&data);
            fig13(&records, &inventory)
        })
    });
    g.bench_function("table2", |b| {
        b.iter(|| table2(&RepoInventory::measure(&root).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
