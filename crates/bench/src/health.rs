//! The cross-rank performance health report (`figures -- health`).
//!
//! One collection pass drives the whole analysis plane end to end and
//! folds the result into a single serializable [`HealthReport`]:
//!
//! * a **kernel profile run** per architecture (the §5.4 hydro-step
//!   sequence plus gravity) supplies per-launch [`KernelProfile`]s,
//!   which the [`hacc_telemetry::roofline`] pass places against each
//!   machine's compute peak and memory bandwidth — one point per
//!   kernel per architecture;
//! * a **multi-rank run** per architecture (8 ranks, the paper's node)
//!   emits the `step`/`rank.<r>`/`phase.*` span tree, which the
//!   [`hacc_telemetry::analysis`] pass folds into per-step critical
//!   paths with compute/exchange/wait attribution;
//! * both event streams feed one [`Registry`] per architecture, whose
//!   snapshot is the metric surface the explaining perf gate diffs.
//!
//! The report serializes as `BENCH_observe.json`; [`dashboard`]
//! renders the same data as a dependency-free single-file HTML page
//! (inline SVG, no scripts), and [`regressions`] ranks metric movement
//! against a baseline report for the gate and the nightly diff.

use crate::experiments::{profile_run_faulty, workload, VariantChoice};
use hacc_core::{MultiRankProblem, MultiRankSim};
use hacc_kernels::Variant;
use hacc_telemetry::analysis::{critical_paths, StepCriticalPath};
use hacc_telemetry::registry::{MetricSummary, Registry};
use hacc_telemetry::roofline::{place_profiles, RooflinePoint};
use hacc_telemetry::{KernelProfile, Recorder};
use serde::{Deserialize, Serialize};
use sycl_sim::{FaultConfig, GpuArch, Toolchain};

/// Schema version of `BENCH_observe.json`.
pub const HEALTH_SCHEMA: u32 = 1;

/// Ranks in the health report's multi-rank run (the paper's node).
pub const HEALTH_RANKS: usize = 8;

/// One architecture's slice of the health report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArchHealth {
    /// Architecture id (`pvc`, `a100`, `mi250x`).
    pub arch: String,
    /// System name (Aurora, Polaris, Frontier).
    pub system: String,
    /// Per-step critical-path attribution from the multi-rank run.
    pub critical_paths: Vec<StepCriticalPath>,
    /// One roofline point per kernel launched in the profile run.
    pub roofline: Vec<RooflinePoint>,
    /// Registry snapshot over both event streams, name-sorted.
    pub metrics: Vec<MetricSummary>,
}

/// The full health report, serialized as `BENCH_observe.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthReport {
    /// Schema version ([`HEALTH_SCHEMA`]).
    pub schema: u32,
    /// Particles in the multi-rank problem.
    pub n_particles: usize,
    /// Ranks in the multi-rank run.
    pub ranks: usize,
    /// Steps advanced per architecture.
    pub steps: u64,
    /// IC seed shared by both runs.
    pub seed: u64,
    /// One slice per architecture, in [`GpuArch::all`] order.
    pub archs: Vec<ArchHealth>,
}

/// One metric's movement against a baseline report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Architecture the metric belongs to.
    pub arch: String,
    /// Metric name.
    pub name: String,
    /// Baseline sum.
    pub baseline: f64,
    /// Current sum.
    pub current: f64,
    /// Percent change of the sum (positive = regression for
    /// time/byte-like metrics).
    pub pct: f64,
}

/// True for metrics carrying host wall-clock (scheduler busy/barrier
/// times, queue depths under OS scheduling) — excluded from regression
/// ranking because they are not reproducible across machines.
pub fn is_volatile(name: &str) -> bool {
    name.starts_with("sched.")
}

/// Collects the health report at the standard configuration.
pub fn collect(size: usize, steps: u64, seed: u64) -> HealthReport {
    collect_faulty(size, steps, seed, None)
}

/// [`collect`] with a fault configuration installed on the profile
/// run's device. `FaultConfig::slow_kernels` manufactures a known
/// kernel-level regression for gate acceptance tests.
pub fn collect_faulty(
    size: usize,
    steps: u64,
    seed: u64,
    fault: Option<FaultConfig>,
) -> HealthReport {
    let problem = workload(size, seed);
    let n = size * size * size;
    let mr_problem = MultiRankProblem::small(n, seed);
    let mut archs = Vec::new();
    for arch in GpuArch::all() {
        let choice = VariantChoice::paper_default(&arch, Variant::Select);
        let kernel_rec =
            profile_run_faulty(&arch, Toolchain::sycl(), choice, &problem, fault.clone());
        let mut sim = MultiRankSim::new(HEALTH_RANKS, arch.clone(), mr_problem);
        let rank_rec = Recorder::new();
        sim.set_recorder(rank_rec.clone());
        sim.run(steps).expect("fault-free health run must complete");

        let kernel_events = kernel_rec.events();
        let rank_events = rank_rec.events();
        let profiles: Vec<KernelProfile> = kernel_events
            .iter()
            .filter_map(|e| e.kernel.as_deref().cloned())
            .collect();
        let roofline = place_profiles(
            &profiles,
            arch.id,
            arch.fp32_peak_tflops * 1e3,
            arch.mem_gbps,
        );
        let mut reg = Registry::new();
        reg.ingest(&kernel_events);
        reg.ingest(&rank_events);
        archs.push(ArchHealth {
            arch: arch.id.to_string(),
            system: arch.system.to_string(),
            critical_paths: critical_paths(&rank_events),
            roofline,
            metrics: reg.snapshot().metrics,
        });
    }
    HealthReport {
        schema: HEALTH_SCHEMA,
        n_particles: n,
        ranks: HEALTH_RANKS,
        steps,
        seed,
        archs,
    }
}

/// Ranks metric movement of `current` against `baseline`, largest
/// increase first (ties broken by arch then name for stable output).
/// Volatile wall-clock metrics and metrics absent from the baseline
/// are skipped; so are sub-ppb changes.
pub fn regressions(current: &HealthReport, baseline: &HealthReport) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for cur in &current.archs {
        let Some(base) = baseline.archs.iter().find(|a| a.arch == cur.arch) else {
            continue;
        };
        for m in &cur.metrics {
            if is_volatile(&m.name) {
                continue;
            }
            let Some(b) = base.metrics.iter().find(|x| x.name == m.name) else {
                continue;
            };
            if b.sum == 0.0 {
                continue;
            }
            let pct = (m.sum - b.sum) / b.sum * 100.0;
            if pct.abs() > 1e-7 {
                out.push(MetricDelta {
                    arch: cur.arch.clone(),
                    name: m.name.clone(),
                    baseline: b.sum,
                    current: m.sum,
                    pct,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.pct
            .partial_cmp(&a.pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.arch.cmp(&b.arch))
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Serializes the report for `BENCH_observe.json`.
pub fn to_json(report: &HealthReport) -> String {
    serde_json::to_string_pretty(report).expect("serialize health report")
}

/// Re-reads a serialized report (baseline diffing).
pub fn from_json(text: &str) -> Option<HealthReport> {
    serde_json::from_str(text).ok()
}

/// Renders the report as a console summary.
pub fn render(report: &HealthReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== Performance health: {} particles over {} ranks, {} steps ==\n",
        report.n_particles, report.ranks, report.steps
    ));
    for a in &report.archs {
        let node: f64 = a.critical_paths.iter().map(|s| s.node_seconds).sum();
        let crit = a
            .critical_paths
            .last()
            .map(|s| s.critical_rank)
            .unwrap_or(0);
        out.push_str(&format!(
            "\n{} ({}) — node {:.3} ms over {} steps, critical rank {}\n",
            a.system,
            a.arch,
            node * 1e3,
            a.critical_paths.len(),
            crit
        ));
        out.push_str(&format!(
            "  {:<12} {:>9} {:>12} {:>12} {:>8} {:>8}\n",
            "kernel", "AI", "GF/s", "roof GF/s", "eff", "bound"
        ));
        for p in &a.roofline {
            out.push_str(&format!(
                "  {:<12} {:>9.3} {:>12.1} {:>12.1} {:>7.1}% {:>8}\n",
                p.kernel,
                p.ai,
                p.achieved_gflops,
                p.attainable_gflops,
                p.efficiency * 100.0,
                p.bound
            ));
        }
    }
    out
}

/// Renders ranked metric deltas as a console table (the nightly diff).
pub fn render_regressions(deltas: &[MetricDelta], top: usize) -> String {
    if deltas.is_empty() {
        return "no metric moved against the baseline\n".to_string();
    }
    let mut out = format!(
        "{:<8} {:<32} {:>14} {:>14} {:>9}\n",
        "arch", "metric", "baseline", "current", "delta"
    );
    for d in deltas.iter().take(top) {
        out.push_str(&format!(
            "{:<8} {:<32} {:>14.6e} {:>14.6e} {:>+8.2}%\n",
            d.arch, d.name, d.baseline, d.current, d.pct
        ));
    }
    out
}

// ---------------------------------------------------------------- HTML

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

const PHASE_COLORS: [(&str, &str); 5] = [
    ("migrate", "#8e44ad"),
    ("interior", "#2e86c1"),
    ("exchange", "#e67e22"),
    ("boundary", "#27ae60"),
    ("wait", "#bdc3c7"),
];

/// Per-rank phase timeline for one architecture: one stacked horizontal
/// bar per rank, phases summed over all steps, width scaled to the
/// total node time.
fn timeline_svg(a: &ArchHealth) -> String {
    let ranks = a
        .critical_paths
        .first()
        .map(|s| s.per_rank.len())
        .unwrap_or(0);
    if ranks == 0 {
        return "<p>no multi-rank telemetry</p>".to_string();
    }
    let node_total: f64 = a.critical_paths.iter().map(|s| s.node_seconds).sum();
    let (w, bar_h, gap, left) = (640.0f64, 18.0f64, 6.0f64, 64.0f64);
    let h = ranks as f64 * (bar_h + gap) + gap;
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" font-family="monospace" font-size="11">"#,
        w + left + 8.0,
        h + 4.0
    );
    for r in 0..ranks {
        // [migrate, interior, exchange(exposed), boundary, wait] summed
        // over steps for this rank.
        let mut seg = [0.0f64; 5];
        for s in &a.critical_paths {
            if let Some(att) = s.per_rank.iter().find(|x| x.rank == r) {
                seg[0] += att.migrate_seconds;
                seg[1] += att.interior_seconds;
                seg[2] += att.exposed_exchange_seconds;
                seg[3] += att.boundary_seconds;
                seg[4] += att.wait_seconds;
            }
        }
        let y = gap + r as f64 * (bar_h + gap);
        svg.push_str(&format!(
            r#"<text x="0" y="{:.1}">rank {r}</text>"#,
            y + bar_h - 5.0
        ));
        let mut x = left;
        for (i, &(_, color)) in PHASE_COLORS.iter().enumerate() {
            let frac = if node_total > 0.0 {
                seg[i] / node_total
            } else {
                0.0
            };
            let bw = frac * w;
            if bw > 0.0 {
                svg.push_str(&format!(
                    r#"<rect x="{x:.2}" y="{y:.1}" width="{bw:.2}" height="{bar_h}" fill="{color}"><title>{}: {:.3e} s</title></rect>"#,
                    PHASE_COLORS[i].0, seg[i]
                ));
            }
            x += bw;
        }
    }
    svg.push_str("</svg>");
    let legend: String = PHASE_COLORS
        .iter()
        .map(|(name, color)| {
            format!(r#"<span style="color:{color}">&#9632;</span> {name}&nbsp;&nbsp;"#)
        })
        .collect();
    format!("{svg}<div>{legend}</div>")
}

/// Log-log roofline scatter for one architecture: bandwidth slope,
/// compute ceiling, one labeled point per kernel.
fn roofline_svg(a: &ArchHealth) -> String {
    if a.roofline.is_empty() {
        return "<p>no kernel profiles</p>".to_string();
    }
    let peak = a.roofline[0].peak_gflops;
    let bw = a.roofline[0].mem_gbps;
    let (w, h, ml, mb) = (420.0f64, 260.0f64, 48.0f64, 28.0f64);
    // Log-space bounds padded one decade past the data and the ridge.
    let ridge = a.roofline[0].ridge_ai.max(1e-3);
    let mut x_min: f64 = (ridge / 100.0).log10();
    let mut x_max: f64 = (ridge * 10.0).log10();
    let mut y_min: f64 = (peak / 1e5).log10();
    let y_max: f64 = (peak * 3.0).log10();
    for p in &a.roofline {
        if p.ai > 0.0 {
            x_min = x_min.min(p.ai.log10() - 0.5);
            x_max = x_max.max(p.ai.log10() + 0.5);
        }
        if p.achieved_gflops > 0.0 {
            y_min = y_min.min(p.achieved_gflops.log10() - 0.5);
        }
    }
    let px = |ai_log: f64| ml + (ai_log - x_min) / (x_max - x_min) * (w - ml - 8.0);
    let py = |gf_log: f64| (h - mb) - (gf_log - y_min) / (y_max - y_min) * (h - mb - 8.0);
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" font-family="monospace" font-size="10">"#
    );
    // Roof: bandwidth slope up to the ridge, then the flat peak.
    let roof_at = |ai_log: f64| (10f64.powf(ai_log) * bw).min(peak).log10();
    let mut pts = String::new();
    let steps = 64;
    for i in 0..=steps {
        let ai_log = x_min + (x_max - x_min) * i as f64 / steps as f64;
        pts.push_str(&format!("{:.1},{:.1} ", px(ai_log), py(roof_at(ai_log))));
    }
    svg.push_str(&format!(
        r##"<polyline points="{}" fill="none" stroke="#555" stroke-width="1.5"/>"##,
        pts.trim_end()
    ));
    // Axes labels.
    svg.push_str(&format!(
        r#"<text x="{:.0}" y="{:.0}">AI [flop/byte], log</text>"#,
        w / 2.0 - 40.0,
        h - 6.0
    ));
    svg.push_str(&format!(
        r#"<text x="2" y="12">GF/s, log (peak {peak:.0}, bw {bw:.0} GB/s)</text>"#
    ));
    for p in &a.roofline {
        if p.ai <= 0.0 || p.achieved_gflops <= 0.0 {
            continue;
        }
        let (x, y) = (px(p.ai.log10()), py(p.achieved_gflops.log10()));
        svg.push_str(&format!(
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="#c0392b"><title>{}: AI {:.3}, {:.1} GF/s, {:.1}% of roof</title></circle>"##,
            esc(&p.kernel),
            p.ai,
            p.achieved_gflops,
            p.efficiency * 100.0
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            x + 5.0,
            y + 3.0,
            esc(&p.kernel)
        ));
    }
    svg.push_str("</svg>");
    svg
}

fn metrics_table(a: &ArchHealth) -> String {
    let mut rows = String::new();
    for m in &a.metrics {
        let q = |v: Option<f64>| v.map(|x| format!("{x:.3e}")).unwrap_or_default();
        rows.push_str(&format!(
            "<tr><td>{}</td><td>{:?}</td><td>{}</td><td>{:.6e}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&m.name),
            m.kind,
            m.count,
            m.sum,
            q(m.p50),
            q(m.p95),
            q(m.p99)
        ));
    }
    format!(
        "<details><summary>{} metrics</summary><table>\
         <tr><th>name</th><th>kind</th><th>count</th><th>sum</th>\
         <th>p50</th><th>p95</th><th>p99</th></tr>{rows}</table></details>",
        a.metrics.len()
    )
}

/// Renders the report (and, when a baseline is supplied, its top
/// regressions) as one self-contained HTML page: inline SVG only, no
/// scripts, no external assets.
pub fn dashboard(report: &HealthReport, baseline: Option<&HealthReport>) -> String {
    let mut body = format!(
        "<h1>Performance health</h1>\
         <p>{} particles over {} ranks, {} steps, seed {} — schema v{}</p>",
        report.n_particles, report.ranks, report.steps, report.seed, report.schema
    );
    match baseline {
        Some(base) => {
            let deltas = regressions(report, base);
            body.push_str("<h2>Top regressions vs baseline</h2>");
            if deltas.is_empty() {
                body.push_str("<p>no metric moved against the baseline</p>");
            } else {
                body.push_str(
                    "<table><tr><th>arch</th><th>metric</th>\
                     <th>baseline</th><th>current</th><th>&Delta;</th></tr>",
                );
                for d in deltas.iter().take(10) {
                    body.push_str(&format!(
                        "<tr><td>{}</td><td>{}</td><td>{:.6e}</td>\
                         <td>{:.6e}</td><td>{:+.2}%</td></tr>",
                        esc(&d.arch),
                        esc(&d.name),
                        d.baseline,
                        d.current,
                        d.pct
                    ));
                }
                body.push_str("</table>");
            }
        }
        None => body.push_str("<p><em>no baseline supplied — regression table omitted</em></p>"),
    }
    for a in &report.archs {
        body.push_str(&format!(
            "<h2>{} ({})</h2><h3>Phase timeline per rank</h3>{}\
             <h3>Roofline</h3>{}{}",
            esc(&a.system),
            esc(&a.arch),
            timeline_svg(a),
            roofline_svg(a),
            metrics_table(a)
        ));
    }
    format!(
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>Performance health</title><style>\
         body{{font-family:monospace;margin:24px;max-width:900px}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #ccc;padding:2px 8px;text-align:right}}\
         th{{background:#eee}}td:first-child,td:nth-child(2){{text-align:left}}\
         </style></head><body>{body}</body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> HealthReport {
        collect(8, 2, 9)
    }

    #[test]
    fn report_covers_every_kernel_on_every_arch() {
        let report = small_report();
        assert_eq!(report.archs.len(), 3);
        // The kernel set is identical across architectures — one
        // roofline point per registered kernel per machine.
        let kernels = |a: &ArchHealth| {
            a.roofline
                .iter()
                .map(|p| p.kernel.clone())
                .collect::<std::collections::BTreeSet<_>>()
        };
        let first = kernels(&report.archs[0]);
        assert!(first.contains("upGeo") && first.contains("upGrav"));
        for a in &report.archs[1..] {
            assert_eq!(kernels(a), first, "{} kernel set diverged", a.arch);
        }
        for a in &report.archs {
            for p in &a.roofline {
                assert!(p.seconds > 0.0 && p.bytes > 0.0, "{}/{}", a.arch, p.kernel);
                assert!(p.attainable_gflops > 0.0);
            }
        }
    }

    #[test]
    fn attribution_fractions_partition_every_rank() {
        let report = small_report();
        for a in &report.archs {
            assert_eq!(a.critical_paths.len(), 2, "one path per step");
            for s in &a.critical_paths {
                assert_eq!(s.per_rank.len(), HEALTH_RANKS);
                for r in &s.per_rank {
                    let total = r.frac_compute_interior
                        + r.frac_compute_boundary
                        + r.frac_exchange
                        + r.frac_wait;
                    assert!(
                        (total - 1.0).abs() < 1e-9,
                        "{} step {} rank {}: fractions sum to {total}",
                        a.arch,
                        s.step,
                        r.rank
                    );
                }
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let report = small_report();
        let text = to_json(&report);
        let back = from_json(&text).expect("re-read own serialization");
        assert_eq!(back.schema, HEALTH_SCHEMA);
        assert_eq!(back.archs.len(), report.archs.len());
        for (b, r) in back.archs.iter().zip(&report.archs) {
            assert_eq!(b.arch, r.arch);
            assert_eq!(b.roofline, r.roofline);
            assert_eq!(b.critical_paths, r.critical_paths);
            assert_eq!(b.metrics, r.metrics);
        }
    }

    #[test]
    fn slowed_kernel_tops_the_regressions() {
        let base = collect(8, 1, 9);
        let slowed = collect_faulty(
            8,
            1,
            9,
            Some(FaultConfig {
                slow_kernels: vec![("upGeo".to_string(), 5.0)],
                ..FaultConfig::default()
            }),
        );
        let deltas = regressions(&slowed, &base);
        assert!(!deltas.is_empty(), "a 5x slowdown must register");
        assert!(
            deltas[0].name.contains("upGeo"),
            "top regression must name the slowed kernel, got {} ({:+.1}%)",
            deltas[0].name,
            deltas[0].pct
        );
        assert!(deltas[0].pct > 300.0, "5x slowdown ⇒ ≈ +400%");
        // No phantom movers: every reported delta traces to the knob.
        for d in &deltas {
            assert!(
                d.name.contains("upGeo"),
                "unexpected mover {} ({:+.2}%)",
                d.name,
                d.pct
            );
        }
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let report = small_report();
        let html = dashboard(&report, None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("upGeo"));
        assert!(html.contains("no baseline supplied"));
        assert!(!html.contains("<script"), "dashboard must not need JS");
        assert!(!html.contains("http://") || html.contains("www.w3.org"));

        let base = collect(8, 2, 10);
        let with_base = dashboard(&report, Some(&base));
        assert!(with_base.contains("Top regressions"));
    }

    #[test]
    fn volatile_metrics_never_rank() {
        let report = small_report();
        let mut other = report.clone();
        for a in &mut other.archs {
            for m in &mut a.metrics {
                if is_volatile(&m.name) {
                    m.sum *= 100.0;
                }
            }
        }
        assert!(
            regressions(&other, &report).is_empty(),
            "sched.* wall-clock noise must not rank as a regression"
        );
    }
}
